"""Shared fixtures for the benchmark harness.

The benchmark campaign is mid-size (8 runs on the small VM) so that one
``pytest benchmarks/ --benchmark-only`` pass regenerates every table and
figure of the paper in a few minutes. The campaign is simulated once per
session and shared.

Absolute timings belong to this hardware; the assertions in each bench
check the paper's *shape* claims (orderings, monotonicity, crossovers),
which is what the reproduction is accountable for.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AggregationConfig, aggregate_history
from repro.system import CampaignConfig, MachineConfig, TestbedSimulator

#: Aggregation window used throughout the benchmark harness (seconds).
BENCH_WINDOW = 20.0


def bench_campaign() -> CampaignConfig:
    machine = MachineConfig(
        ram_kb=524_288.0,
        swap_kb=262_144.0,
        os_base_kb=131_072.0,
        app_working_set_kb=65_536.0,
        min_cache_kb=16_384.0,
        shared_kb=8_192.0,
        buffers_kb=4_096.0,
    )
    return CampaignConfig(
        n_runs=8,
        seed=13,
        machine=machine,
        n_browsers=40,
        p_leak_range=(0.3, 0.5),
        leak_kb_range=(1024.0, 4096.0),
        max_run_seconds=3000.0,
    )


@pytest.fixture(scope="session")
def campaign_config():
    return bench_campaign()


@pytest.fixture(scope="session")
def bench_window():
    return BENCH_WINDOW


@pytest.fixture(scope="session")
def history():
    return TestbedSimulator(bench_campaign()).run_campaign()


@pytest.fixture(scope="session")
def dataset(history):
    return aggregate_history(history, AggregationConfig(window_seconds=BENCH_WINDOW))


@pytest.fixture(scope="session")
def split(dataset):
    """(train, validation) split shared by the model benches."""
    return dataset.split(0.3, seed=0)


@pytest.fixture(scope="session")
def selection(dataset):
    """The Lasso selection at the Table-I operating point."""
    from repro.core import LassoFeatureSelector

    return LassoFeatureSelector().fit(dataset).strongest_with_at_least(6)


@pytest.fixture(scope="session")
def selected_split(split, selection):
    """The same train/validation rows, projected onto the selection."""
    train, val = split
    return (
        train.select_features(selection.selected),
        val.select_features(selection.selected),
    )


@pytest.fixture(scope="session")
def smae_threshold(history):
    """The paper's 10%-of-horizon S-MAE tolerance."""
    return 0.10 * history.mean_run_length
