"""Substrate benches — simulator and aggregation throughput.

Not paper artefacts; these keep the two hot paths honest:

- the campaign simulator must stay ~10^4 x faster than real time, or the
  "one week of monitoring in seconds" substitution stops being true;
- datapoint aggregation is the per-experiment preprocessing step and is
  implemented with sorted-segment reductions — it must stay linear and
  fast (tens of thousands of raw datapoints per millisecond-scale call).
"""

from __future__ import annotations

import numpy as np

from repro.core import AggregationConfig, aggregate_history, aggregate_run
from repro.core.aggregation import OnlineAggregator
from repro.system import TestbedSimulator


def test_simulator_run_throughput(benchmark, campaign_config):
    sim = TestbedSimulator(campaign_config)

    run = benchmark.pedantic(lambda: sim.run_once(seed=123), rounds=1, iterations=1)

    # faster-than-real-time contract: >= 1000 simulated seconds per wall
    # second is ample slack on any hardware (typically ~5000x)
    assert run.fail_time > 100.0
    wall = benchmark.stats.stats.mean
    assert run.fail_time / wall > 1000.0


def test_batch_aggregation_throughput(benchmark, history):
    cfg = AggregationConfig(window_seconds=20.0)

    dataset = benchmark(lambda: aggregate_history(history, cfg))

    assert dataset.n_samples > 100
    n_raw = history.n_datapoints
    wall = benchmark.stats.stats.mean
    # vectorized reduceat path: > 100k raw datapoints per second
    assert n_raw / wall > 100_000.0


def test_online_aggregation_throughput(benchmark, history):
    run = history[0]

    def stream():
        agg = OnlineAggregator(20.0)
        rows = [out for raw in run.features if (out := agg.add(raw)) is not None]
        tail = agg.flush()
        if tail is not None:
            rows.append(tail)
        return np.vstack(rows)

    online = benchmark(stream)

    # parity with the batch path (the core invariant; also tested in unit
    # tests — asserted here so the bench never drifts from it)
    batch, _ = aggregate_run(run, AggregationConfig(window_seconds=20.0))
    assert np.allclose(online, batch)
