"""Substrate benches — simulator and aggregation throughput.

Not paper artefacts; these keep the two hot paths honest:

- the campaign simulator must stay ~10^4 x faster than real time, or the
  "one week of monitoring in seconds" substitution stops being true;
- the fused substrate must stay decisively faster than the legacy loop
  (that is its entire reason to exist); one pass records both engines'
  ticks/sec and the ratio into ``BENCH_substrate.json`` next to this
  file (see ``docs/PERFORMANCE.md`` for how to read it);
- datapoint aggregation is the per-experiment preprocessing step and is
  implemented with sorted-segment reductions — it must stay linear and
  fast (tens of thousands of raw datapoints per millisecond-scale call).
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

import numpy as np

from repro.core import AggregationConfig, aggregate_history, aggregate_run
from repro.core.aggregation import OnlineAggregator
from repro.system import TestbedSimulator

BENCH_PATH = Path(__file__).parent / "BENCH_substrate.json"

#: Minimum fused-over-loop speedup asserted by the bench. The ISSUE
#: target is 5x (the committed baseline measures ~5.9x); the asserted
#: floor leaves headroom for noisy shared CI boxes.
SPEEDUP_FLOOR = 3.0


def test_simulator_run_throughput(benchmark, campaign_config):
    sim = TestbedSimulator(campaign_config)

    run = benchmark.pedantic(lambda: sim.run_once(seed=123), rounds=1, iterations=1)

    # faster-than-real-time contract: >= 1000 simulated seconds per wall
    # second is ample slack on any hardware (typically ~5000x)
    assert run.fail_time > 100.0
    wall = benchmark.stats.stats.mean
    assert run.fail_time / wall > 1000.0


def test_substrate_speedup(campaign_config):
    """Record ticks/sec for both substrates and assert the fused win.

    Best-of-3 per substrate: the ratio of best passes is far less noisy
    than single-shot timing, which is what lets this assert a floor at
    all on shared hardware. Both passes verify bit-identical output
    first — a speedup over different work would be meaningless.
    """
    n_measure = 4

    def measure(substrate: str) -> tuple[float, int, list]:
        config = dataclasses.replace(campaign_config, substrate=substrate)
        sim = TestbedSimulator(config)
        best = float("inf")
        records = []
        ticks = 0
        for _ in range(3):
            rngs = np.random.default_rng(config.seed).spawn(n_measure)
            start = time.perf_counter()
            records = [sim.run_once(r) for r in rngs]
            elapsed = time.perf_counter() - start
            best = min(best, elapsed)
            ticks = sum(int(round(r.fail_time / config.dt)) for r in records)
        return best, ticks, records

    loop_s, loop_ticks, loop_records = measure("loop")
    fused_s, fused_ticks, fused_records = measure("fused")

    assert loop_ticks == fused_ticks
    for a, b in zip(loop_records, fused_records):
        assert a.features.tobytes() == b.features.tobytes()
        assert a.fail_time == b.fail_time

    speedup = loop_s / fused_s
    record = {
        "bench": "substrate_speedup",
        "n_runs": n_measure,
        "ticks": loop_ticks,
        "loop": {
            "best_s": round(loop_s, 4),
            "ticks_per_s": round(loop_ticks / loop_s, 1),
        },
        "fused": {
            "best_s": round(fused_s, 4),
            "ticks_per_s": round(fused_ticks / fused_s, 1),
        },
        "speedup": round(speedup, 3),
        "speedup_floor": SPEEDUP_FLOOR,
        "bit_identical": True,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    assert speedup >= SPEEDUP_FLOOR, (
        f"fused substrate only {speedup:.2f}x over the loop "
        f"(floor {SPEEDUP_FLOOR}x); see {BENCH_PATH.name}"
    )


def test_batch_aggregation_throughput(benchmark, history):
    cfg = AggregationConfig(window_seconds=20.0)

    dataset = benchmark(lambda: aggregate_history(history, cfg))

    assert dataset.n_samples > 100
    n_raw = history.n_datapoints
    wall = benchmark.stats.stats.mean
    # vectorized reduceat path: > 100k raw datapoints per second
    assert n_raw / wall > 100_000.0


def test_online_aggregation_throughput(benchmark, history):
    run = history[0]

    def stream():
        agg = OnlineAggregator(20.0)
        rows = [out for raw in run.features if (out := agg.add(raw)) is not None]
        tail = agg.flush()
        if tail is not None:
            rows.append(tail)
        return np.vstack(rows)

    online = benchmark(stream)

    # parity with the batch path (the core invariant; also tested in unit
    # tests — asserted here so the bench never drifts from it)
    batch, _ = aggregate_run(run, AggregationConfig(window_seconds=20.0))
    assert np.allclose(online, batch)
