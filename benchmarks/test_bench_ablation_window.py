"""Ablation bench — aggregation window size (paper Sec. III-B motivation).

The paper motivates aggregation with (a) de-noising of scheduler skew and
(b) reducing the datapoint count ("without affecting the accuracy of the
model"). This ablation sweeps the window size and checks that claim:
the aggregated dataset shrinks roughly linearly with the window, while
the best model's S-MAE stays within a modest factor of the finest
window's.
"""

from __future__ import annotations

import pytest

from repro.core import AggregationConfig, aggregate_history
from repro.core.model_zoo import make_model
from repro.ml.metrics import soft_mean_absolute_error

WINDOWS = [10.0, 20.0, 40.0, 80.0]

_SMAE: dict[float, float] = {}
_ROWS: dict[float, int] = {}


@pytest.mark.parametrize("window", WINDOWS)
def test_ablation_window(benchmark, history, smae_threshold, window):
    def aggregate_and_fit():
        ds = aggregate_history(history, AggregationConfig(window_seconds=window))
        train, val = ds.split(0.3, seed=0)
        model = make_model("m5p").fit(train.X, train.y)
        smae = soft_mean_absolute_error(
            val.y, model.predict(val.X), smae_threshold
        )
        return ds.n_samples, smae

    n_rows, smae = benchmark.pedantic(aggregate_and_fit, rounds=1, iterations=1)
    _ROWS[window] = n_rows
    _SMAE[window] = smae


def test_ablation_window_shape(history, smae_threshold):
    for window in WINDOWS:
        if window not in _SMAE:
            ds = aggregate_history(history, AggregationConfig(window_seconds=window))
            train, val = ds.split(0.3, seed=0)
            model = make_model("m5p").fit(train.X, train.y)
            _ROWS[window] = ds.n_samples
            _SMAE[window] = soft_mean_absolute_error(
                val.y, model.predict(val.X), smae_threshold
            )
    # dataset size decreases monotonically with the window
    rows = [_ROWS[w] for w in WINDOWS]
    assert rows == sorted(rows, reverse=True)
    assert rows[0] > 3 * rows[-1]
    # accuracy does not collapse: paper's "without affecting the accuracy"
    assert _SMAE[40.0] < 5.0 * max(_SMAE[10.0], 1.0)
