"""Bench TAB1 — the strongest-selection weight table (paper Table I).

Benchmarks the selection at the maximal-shrinkage operating point and
asserts the table's shape: the surviving set is dominated by memory/swap
quantities and includes slope features.
"""

from __future__ import annotations

from repro.core import LassoFeatureSelector


def test_table1_strongest_selection(benchmark, dataset):
    selector = LassoFeatureSelector().fit(dataset)

    def select():
        return selector.strongest_with_at_least(6)

    selection = benchmark(select)

    # --- Table I shape assertions ------------------------------------------
    assert selection.n_selected >= 6
    memoryish = [n for n in selection.selected if "mem_" in n or "swap_" in n]
    assert len(memoryish) * 2 >= selection.n_selected
    assert any(n.endswith("_slope") for n in selection.selected)
    # weight table is sorted by decreasing magnitude
    weights = [abs(w) for _, w in selection.weight_table()]
    assert weights == sorted(weights, reverse=True)
