"""Bench FIG5 — predicted-vs-real RTTF curves (paper Fig. 5).

Benchmarks the generation of each panel's prediction series and asserts
the figure's shape: prediction error shrinks as the true RTTF approaches
zero (the models are most accurate where proactive rejuvenation needs
them), and the Lasso-as-a-predictor panel stays far from the diagonal.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.model_zoo import make_model

PANELS = [
    ("lasso(1e9)", "lasso", {"lam": 1e9}),
    ("linear", "linear", {}),
    ("m5p", "m5p", {}),
    ("reptree", "reptree", {}),
    ("svm", "svm", {"max_iter": 60_000}),
    ("svm2", "svm2", {}),
]


@pytest.mark.parametrize("label,zoo,overrides", PANELS, ids=[p[0] for p in PANELS])
def test_fig5_panel(benchmark, split, label, zoo, overrides):
    train, val = split
    model = make_model(zoo, **overrides).fit(train.X, train.y)

    pred = benchmark(lambda: model.predict(val.X))

    y = val.y
    err = np.abs(pred - y)
    edges = np.quantile(y, [1 / 3, 2 / 3])
    near = err[y <= edges[0]].mean()
    far = err[y > edges[1]].mean()

    if label == "lasso(1e9)":
        # the degenerate panel: poor everywhere
        assert err.mean() > 0.3 * np.abs(y - y.mean()).mean()
    else:
        # error is smallest while approaching the failure point
        assert near < far
