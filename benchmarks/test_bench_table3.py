"""Bench TAB3 — training time per method (paper Table III).

This bench *is* the table: pytest-benchmark times ``fit`` per method on
both the all-parameters and Lasso-selected training sets. Shape
assertions: the SVM trains orders of magnitude slower than the
closed-form/greedy methods, and the selected feature set never trains
slower than the full one (beyond timing noise).
"""

from __future__ import annotations

import time

import pytest

from repro.core.model_zoo import make_model

METHODS = [
    ("linear", {}),
    ("m5p", {}),
    ("reptree", {}),
    ("svm", {"max_iter": 60_000}),
    ("svm2", {}),
    ("lasso", {"lam": 1e4}),
]


@pytest.mark.parametrize("feature_set", ["all", "selected"])
@pytest.mark.parametrize("name,overrides", METHODS, ids=[m[0] for m in METHODS])
def test_table3_training_time(
    benchmark, split, selected_split, name, overrides, feature_set
):
    train, _ = split if feature_set == "all" else selected_split
    model = make_model(name, **overrides)

    benchmark.pedantic(
        lambda: make_model(name, **overrides).fit(train.X, train.y),
        rounds=1,
        iterations=1,
    )
    del model


def test_table3_shape(split, selected_split):
    """SVM training dominates; feature selection speeds training up."""
    train_all, _ = split
    train_sel, _ = selected_split

    def fit_time(name, overrides, train):
        t0 = time.perf_counter()
        make_model(name, **overrides).fit(train.X, train.y)
        return time.perf_counter() - t0

    t_svm = fit_time("svm", {"max_iter": 60_000}, train_all)
    t_linear = fit_time("linear", {}, train_all)
    t_m5p = fit_time("m5p", {}, train_all)
    t_reptree = fit_time("reptree", {}, train_all)
    assert t_svm > 10.0 * max(t_linear, t_m5p, t_reptree)

    # selection shrinks the design: tree/linear training gets cheaper
    t_m5p_sel = fit_time("m5p", {}, train_sel)
    assert t_m5p_sel < t_m5p * 1.2
