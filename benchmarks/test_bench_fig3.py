"""Bench FIG3 — the response-time correlation of the paper's Fig. 3.

Benchmarks the correlation-model fit over one instrumented run and
asserts the figure's shape: generation time and response time both grow
toward the failure point and the linear model explains the RT variance.
"""

from __future__ import annotations

from repro.core import ResponseTimeCorrelator


def test_fig3_rt_correlation(benchmark, history):
    run = history[0]

    def fit():
        return ResponseTimeCorrelator().fit_run(run)

    series = benchmark(fit)

    # --- Fig. 3 shape assertions -------------------------------------------
    k = series.time.size // 4
    assert series.generation_time[-k:].mean() > 1.5 * series.generation_time[:k].mean()
    assert series.response_time[-k:].mean() > 1.5 * series.response_time[:k].mean()
    assert series.r2 > 0.4
    # the correlated-RT curve tracks measured RT within its own scale
    assert series.mae < 0.5 * series.response_time.max()
