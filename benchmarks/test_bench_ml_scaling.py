"""Scaling bench — training cost vs dataset size per learner.

Not a paper artefact, but the quantitative backbone of its Table III
discussion: the gap between the closed-form/greedy methods and SMO
*grows* with the dataset. Each bench times ``fit`` at three training-set
sizes drawn from the campaign data; the shape test asserts the expected
complexity ordering at the largest size.

Expected growth (n = samples, p = features):
- linear / lasso: O(n p^2) — effectively flat here;
- trees: O(n log n * p) per level;
- LS-SVM: O(n^3) dense solve;
- epsilon-SVR: SMO iterations grow superlinearly on a rank-p
  linear-kernel Gram matrix (the paper's 417 s regime).
"""

from __future__ import annotations

import time

import pytest

from repro.core.model_zoo import make_model

SIZES = [120, 240, 480]

METHODS = [
    ("linear", {}),
    ("lasso", {"lam": 1e2}),
    ("reptree", {}),
    ("m5p", {}),
    ("svm2", {}),
    ("svm", {"max_iter": 40_000}),
]


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("name,overrides", METHODS, ids=[m[0] for m in METHODS])
def test_ml_scaling(benchmark, dataset, name, overrides, n):
    if n > dataset.n_samples:
        pytest.skip(f"campaign has only {dataset.n_samples} windows")
    X, y = dataset.X[:n], dataset.y[:n]
    benchmark.pedantic(
        lambda: make_model(name, **overrides).fit(X, y), rounds=1, iterations=1
    )


def test_ml_scaling_shape(dataset):
    """At the largest size: svm slowest by far, linear fastest."""
    n = min(SIZES[-1], dataset.n_samples)
    X, y = dataset.X[:n], dataset.y[:n]
    times = {}
    for name, overrides in METHODS:
        t0 = time.perf_counter()
        make_model(name, **overrides).fit(X, y)
        times[name] = time.perf_counter() - t0
    assert times["svm"] == max(times.values())
    assert times["linear"] == min(times.values())
    assert times["svm"] > 20.0 * times["linear"]
