"""Bench TAB2 — S-MAE per method (paper Table II).

Benchmarks the full train+validate pipeline per method on the
all-parameters training set, and asserts the table's shape: the tree
learners win, the linear family (OLS, linear-kernel SVR, LS-SVM)
clusters together, and the Lasso-as-a-predictor is worst and flat in
lambda.
"""

from __future__ import annotations

import pytest

from repro.core.evaluation import evaluate_model
from repro.core.model_zoo import make_model

#: (name, zoo id, overrides) — SMO gets an iteration cap to keep the
#: bench session bounded; quality plateaus long before it.
METHODS = [
    ("linear", "linear", {}),
    ("m5p", "m5p", {}),
    ("reptree", "reptree", {}),
    ("svm", "svm", {"max_iter": 60_000}),
    ("svm2", "svm2", {}),
    ("lasso(1e0)", "lasso", {"lam": 1.0}),
    ("lasso(1e9)", "lasso", {"lam": 1e9}),
]

_RESULTS: dict[str, float] = {}


@pytest.mark.parametrize("label,zoo,overrides", METHODS, ids=[m[0] for m in METHODS])
def test_table2_smae(benchmark, split, smae_threshold, label, zoo, overrides):
    train, val = split

    def train_and_validate():
        report, _, _ = evaluate_model(
            label,
            make_model(zoo, **overrides),
            train,
            val,
            smae_threshold=smae_threshold,
        )
        return report

    report = benchmark.pedantic(train_and_validate, rounds=1, iterations=1)
    _RESULTS[label] = report.s_mae
    assert report.s_mae >= 0.0


def test_table2_shape(split, smae_threshold):
    """Ordering assertions over the rows produced above."""
    if len(_RESULTS) < len(METHODS):  # bench ran filtered: recompute
        train, val = split
        for label, zoo, overrides in METHODS:
            if label not in _RESULTS:
                report, _, _ = evaluate_model(
                    label,
                    make_model(zoo, **overrides),
                    train,
                    val,
                    smae_threshold=smae_threshold,
                )
                _RESULTS[label] = report.s_mae

    trees = min(_RESULTS["m5p"], _RESULTS["reptree"])
    linear_family = min(_RESULTS["linear"], _RESULTS["svm"], _RESULTS["svm2"])
    # the paper's Table II ordering
    assert trees < linear_family
    assert _RESULTS["lasso(1e9)"] > trees
    assert _RESULTS["lasso(1e9)"] >= max(
        _RESULTS["linear"], _RESULTS["svm"], _RESULTS["svm2"]
    ) * 0.8
