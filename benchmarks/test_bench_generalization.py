"""Generalization-matrix bench — cold collection vs warm cache replay.

Not a paper artefact; this pins the scenario catalog's caching contract:
the full cross-scenario matrix (``repro.experiments.ext_generalization``)
simulates every campaign cell exactly once, and a warm rerun of the same
spec re-simulates *zero* runs — every cell, and the report itself, loads
from the content-addressed store. ``sim.runs_total`` is the witness: its
delta across the warm pass must be exactly zero, which is a far sharper
assertion than any wall-clock ratio. One pass records both timings into
``BENCH_generalization.json`` next to this file.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path

from repro.experiments import ext_generalization
from repro.obs import get_metrics
from repro.system import CampaignConfig

BENCH_PATH = Path(__file__).parent / "BENCH_generalization.json"

#: Minimum warm-over-cold speedup asserted by the bench. The committed
#: baseline measures ~4x; the floor leaves headroom for shared CI boxes
#: (the zero-resimulation assertion is the real contract).
WARM_SPEEDUP_FLOOR = 1.5

#: Runs per scenario. Small, but every scenario must still *crash* so
#: aggregation yields datapoints — which is why the base config keeps
#: the default horizon (lock-contention only truncates at short ones).
N_RUNS = 3


def _runs_total() -> int:
    return int(get_metrics().snapshot()["counters"].get("sim.runs_total", 0))


def test_generalization_matrix_warm_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("F2PM_CACHE_DIR", str(tmp_path))
    scenarios = ext_generalization.GENERALIZATION_SCENARIOS
    campaign = CampaignConfig(seed=3)

    before = _runs_total()
    start = time.perf_counter()
    cold = ext_generalization.run(
        campaign, verbose=False, n_runs=N_RUNS, scenarios=scenarios
    )
    cold_s = time.perf_counter() - start
    runs_cold = _runs_total() - before

    before = _runs_total()
    start = time.perf_counter()
    warm = ext_generalization.run(
        campaign, verbose=False, n_runs=N_RUNS, scenarios=scenarios
    )
    warm_s = time.perf_counter() - start
    runs_warm = _runs_total() - before

    # The matrix is complete and finite over >= 4 scenarios.
    assert len(scenarios) >= 4
    for a in scenarios:
        for b in scenarios:
            assert math.isfinite(cold.matrix[a][b])
        assert cold.matrix[a][a] > 0.0
    # The warm pass is a pure cache replay: same matrix, same report,
    # zero runs simulated.
    assert warm.matrix == cold.matrix
    assert warm.report_name == cold.report_name
    assert runs_cold == len(scenarios) * N_RUNS
    assert runs_warm == 0, f"warm rerun re-simulated {runs_warm} runs"

    speedup = cold_s / warm_s
    record = {
        "bench": "generalization_warm_cache",
        "scenarios": list(scenarios),
        "n_runs_per_scenario": N_RUNS,
        "cold": {"wall_s": round(cold_s, 3), "runs_simulated": runs_cold},
        "warm": {"wall_s": round(warm_s, 3), "runs_simulated": runs_warm},
        "warm_speedup": round(speedup, 3),
        "warm_speedup_floor": WARM_SPEEDUP_FLOOR,
        "report_artifact": cold.report_name,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    assert speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm generalization rerun only {speedup:.2f}x over cold "
        f"(floor {WARM_SPEEDUP_FLOOR}x); see {BENCH_PATH.name}"
    )
