"""Extension bench — predictive rejuvenation vs baselines.

Benchmarks one managed-system horizon per policy and asserts the
motivating claim of the paper's introduction: proactive (predictive)
rejuvenation beats both the crash-only baseline and blind periodic
restarts on availability.
"""

from __future__ import annotations

import pytest

from repro.core import AggregationConfig, F2PM, F2PMConfig
from repro.rejuvenation import (
    ManagedSystem,
    ManagedSystemConfig,
    NoRejuvenation,
    PeriodicRejuvenation,
    PredictiveRejuvenation,
    summarize,
)

HORIZON = 8_000.0

_AVAIL: dict[str, float] = {}


@pytest.fixture(scope="module")
def trained(history, bench_window):
    f2pm = F2PM(
        F2PMConfig(
            aggregation=AggregationConfig(window_seconds=bench_window),
            models=("m5p",),
            lasso_predictor_lambdas=(),
            seed=0,
        )
    ).run(history)
    return f2pm.models[("m5p", "all")], f2pm.smae_threshold


def _policies(trained, history):
    model, margin = trained
    min_ttf = min(r.fail_time for r in history)
    return {
        "none": NoRejuvenation(),
        "periodic": PeriodicRejuvenation(0.5 * min_ttf),
        "predictive": PredictiveRejuvenation(model, rttf_margin=margin, consecutive=2),
    }


@pytest.mark.parametrize("policy_name", ["none", "periodic", "predictive"])
def test_ext_rejuvenation_policy(
    benchmark, trained, history, campaign_config, bench_window, policy_name
):
    policy = _policies(trained, history)[policy_name]
    cfg = ManagedSystemConfig(
        horizon_seconds=HORIZON,
        rejuvenation_downtime=30.0,
        crash_downtime=300.0,
        window_seconds=bench_window,
    )

    log = benchmark.pedantic(
        lambda: ManagedSystem(campaign_config, cfg, policy).run(seed=55),
        rounds=1,
        iterations=1,
    )
    _AVAIL[policy_name] = summarize(log).availability


def test_ext_rejuvenation_shape(trained, history, campaign_config, bench_window):
    cfg = ManagedSystemConfig(
        horizon_seconds=HORIZON,
        rejuvenation_downtime=30.0,
        crash_downtime=300.0,
        window_seconds=bench_window,
    )
    for name, policy in _policies(trained, history).items():
        if name not in _AVAIL:
            log = ManagedSystem(campaign_config, cfg, policy).run(seed=55)
            _AVAIL[name] = summarize(log).availability
    assert _AVAIL["predictive"] > _AVAIL["none"]
    assert _AVAIL["predictive"] >= _AVAIL["periodic"] - 0.02
