"""Parallel-execution baseline: serial vs ``jobs=4`` wall-clock.

Seeds the perf trajectory for the parallel layer: one pass records the
campaign (``run_campaign``) and training (``F2PM.run``) wall-clocks at
``jobs=1`` and ``jobs=4`` into ``BENCH_parallel.json`` next to this
file, so later PRs can compare against the same shape of measurement.

The speedup assertion is meaningful only where the hardware can
actually parallelize — it is enforced when the box has >= 4 CPUs and
recorded (but not asserted) otherwise, so the baseline file still gets
seeded on small containers. Determinism, by contrast, is asserted
unconditionally: the parallel run must reproduce the serial bytes.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core import F2PM, AggregationConfig, F2PMConfig
from repro.system import TestbedSimulator

BENCH_PATH = Path(__file__).parent / "BENCH_parallel.json"
JOBS = 4
SPEEDUP_FLOOR = 1.5


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_parallel_baseline(campaign_config, bench_window):
    serial_history, campaign_serial_s = _timed(
        lambda: TestbedSimulator(campaign_config).run_campaign(jobs=1)
    )
    parallel_history, campaign_parallel_s = _timed(
        lambda: TestbedSimulator(campaign_config).run_campaign(jobs=JOBS)
    )

    # The speedup comparison is only valid if both paths did the same
    # work: bit-identical histories.
    assert len(serial_history) == len(parallel_history)
    for a, b in zip(serial_history, parallel_history):
        assert a.features.tobytes() == b.features.tobytes()
        assert a.fail_time == b.fail_time

    f2pm_config = F2PMConfig(
        aggregation=AggregationConfig(window_seconds=bench_window),
        models=("linear", "m5p", "reptree", "svm2"),
        seed=0,
    )
    serial_result, f2pm_serial_s = _timed(
        lambda: F2PM(f2pm_config).run(serial_history, jobs=1)
    )
    parallel_result, f2pm_parallel_s = _timed(
        lambda: F2PM(f2pm_config).run(serial_history, jobs=JOBS)
    )
    assert parallel_result.smae_table() == serial_result.smae_table()

    campaign_speedup = campaign_serial_s / campaign_parallel_s
    f2pm_speedup = f2pm_serial_s / f2pm_parallel_s
    cpus = os.cpu_count() or 1
    record = {
        "bench": "parallel_execution_baseline",
        "cpu_count": cpus,
        "jobs": JOBS,
        "campaign": {
            "n_runs": campaign_config.n_runs,
            "serial_s": round(campaign_serial_s, 4),
            "parallel_s": round(campaign_parallel_s, 4),
            "speedup": round(campaign_speedup, 3),
        },
        "f2pm": {
            "n_grid_cells": 2 * (len(f2pm_config.models) + 10),
            "serial_s": round(f2pm_serial_s, 4),
            "parallel_s": round(f2pm_parallel_s, 4),
            "speedup": round(f2pm_speedup, 3),
        },
        "deterministic": True,
        "speedup_floor": SPEEDUP_FLOOR,
        "speedup_asserted": cpus >= JOBS,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    if cpus >= JOBS:
        assert campaign_speedup >= SPEEDUP_FLOOR, (
            f"campaign speedup {campaign_speedup:.2f}x at jobs={JOBS} "
            f"below the {SPEEDUP_FLOOR}x floor ({cpus} CPUs)"
        )
