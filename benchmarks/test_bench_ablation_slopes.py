"""Ablation bench — slope features and the gen_time metric.

DESIGN.md calls out two added metrics as load-bearing: the Eq. (1)
slopes ("slopes play an important role to build the prediction model",
Table I) and the inter-generation time. This ablation trains the best
linear-family model with and without them and verifies that the full
feature set is never worse — and that dropping both degrades the
memory-state-only models.
"""

from __future__ import annotations

import pytest

from repro.core.datapoint import FEATURES, GEN_TIME, SLOPE_FEATURES
from repro.core.model_zoo import make_model
from repro.ml.metrics import soft_mean_absolute_error

VARIANTS = {
    "full": None,  # all 30 columns
    "no_slopes": [n for n in FEATURES] + [GEN_TIME],
    "no_gen_time": [n for n in FEATURES] + list(SLOPE_FEATURES),
    "raw_only": list(FEATURES),
}

_SMAE: dict[str, float] = {}


def _evaluate(dataset, names, smae_threshold):
    ds = dataset if names is None else dataset.select_features(names)
    train, val = ds.split(0.3, seed=0)
    model = make_model("linear").fit(train.X, train.y)
    return soft_mean_absolute_error(val.y, model.predict(val.X), smae_threshold)


@pytest.mark.parametrize("variant", list(VARIANTS), ids=list(VARIANTS))
def test_ablation_added_metrics(benchmark, dataset, smae_threshold, variant):
    names = VARIANTS[variant]
    smae = benchmark.pedantic(
        lambda: _evaluate(dataset, names, smae_threshold), rounds=1, iterations=1
    )
    _SMAE[variant] = smae


def test_ablation_added_metrics_shape(dataset, smae_threshold):
    for variant, names in VARIANTS.items():
        if variant not in _SMAE:
            _SMAE[variant] = _evaluate(dataset, names, smae_threshold)
    # the full set is at least as good as the ablated ones (small slack
    # for validation noise)
    assert _SMAE["full"] <= 1.1 * _SMAE["raw_only"]
    assert _SMAE["full"] <= 1.1 * _SMAE["no_slopes"]
