"""Compiled predict-plane benches — predictions/sec, exact vs compiled.

The serving compiler's claim (ROADMAP item 4, the Mantis budget concern
from PAPERS.md) is that a fitted kernel regressor can be served an
order of magnitude faster at a *measured, gated* accuracy cost. Two
claims are recorded into ``BENCH_predict.json``:

- a compiled LS-SVM (the worst-case server: every training row is a
  reference) serves at least ``LSSVM_SPEEDUP_FLOOR`` x more
  predictions/sec than the exact model, with the accuracy gate
  *accepted* and the S-MAE delta under the asserted ceiling;
- a compiled SVR (sparser references) still clears a modest floor.

Absolute timings belong to this hardware; the asserted floors are
conservative so shared CI boxes pass on merit, not luck.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.ml import LSSVMRegressor, SVR
from repro.ml.serving import compile_predictor

BENCH_PATH = Path(__file__).parent / "BENCH_predict.json"

#: Compiled-over-exact predictions/sec floor for LS-SVM. The committed
#: baseline measures far above this; 5x is the ISSUE's contract.
LSSVM_SPEEDUP_FLOOR = 5.0

#: SVR keeps only its support vectors, so the exact model is already
#: cheaper — the compiled floor is correspondingly modest.
SVR_SPEEDUP_FLOOR = 1.5

#: Accuracy ceiling the gate must have held: compiled S-MAE may exceed
#: exact S-MAE by at most this (in target units; the synthetic target
#: below has unit-scale noise, so this is a ~2% relative ceiling).
GATE_TOL = 0.25

N_TRAIN = 2400
N_SERVE = 4000
N_FEATURES = 30
BUDGET = 128


def _update_record(section: str, payload: dict) -> None:
    record = {"bench": "predict"}
    if BENCH_PATH.exists():
        record = json.loads(BENCH_PATH.read_text())
    record[section] = payload
    BENCH_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _dataset(seed: int = 0):
    """Smooth synthetic RTTF-like target over 30 features."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(N_TRAIN + N_SERVE + 600, N_FEATURES))
    w = rng.normal(size=N_FEATURES)
    y = X @ w + 2.0 * np.sin(X[:, 0]) + 0.1 * rng.normal(size=X.shape[0])
    return (
        X[:N_TRAIN],
        y[:N_TRAIN],
        X[N_TRAIN : N_TRAIN + N_SERVE],
        X[-600:],
        y[-600:],
    )


def _bench(model, section: str, floor: float) -> None:
    X_train, y_train, X_serve, X_val, y_val = _dataset()
    model.fit(X_train, y_train)
    compiled = compile_predictor(
        model,
        budget=BUDGET,
        tol=GATE_TOL,
        X_val=X_val,
        y_val=y_val,
    )
    rep = compiled.report
    assert rep.accepted, (
        f"accuracy gate rejected the compile "
        f"(delta {rep.gate_delta:+.3f} > tol {GATE_TOL}); a compiled "
        f"bench over a rejected (passthrough) model would time nothing"
    )
    assert rep.gate_delta <= GATE_TOL

    # warm both paths once, then best-of-3 each
    model.predict(X_serve)
    compiled.predict(X_serve)
    exact_s = min(_time(lambda: model.predict(X_serve)) for _ in range(3))
    compiled_s = min(_time(lambda: compiled.predict(X_serve)) for _ in range(3))
    exact_pps = N_SERVE / exact_s
    compiled_pps = N_SERVE / compiled_s
    speedup = compiled_pps / exact_pps

    _update_record(
        section,
        {
            "n_train": N_TRAIN,
            "n_serve": N_SERVE,
            "n_reference_rows_exact": rep.n_reference_rows_exact,
            "n_reference_rows": rep.n_reference_rows,
            "n_landmarks": rep.n_landmarks,
            "dtype": rep.dtype,
            "compile_ms": round(rep.compile_seconds * 1e3, 2),
            "exact_predictions_per_s": round(exact_pps),
            "compiled_predictions_per_s": round(compiled_pps),
            "speedup": round(speedup, 1),
            "speedup_floor": floor,
            "smae_exact": round(rep.smae_exact, 4),
            "smae_compiled": round(rep.smae_compiled, 4),
            "gate_delta": round(rep.gate_delta, 4),
            "gate_tol": GATE_TOL,
            "gate": rep.reason,
        },
    )
    assert speedup >= floor, (
        f"compiled {type(model).__name__} only {speedup:.1f}x over exact "
        f"(floor {floor}x); see {BENCH_PATH.name}"
    )


def test_compiled_lssvm_speedup():
    """LS-SVM: 2400 dense references folded to 128 float32 landmarks."""
    _bench(
        LSSVMRegressor(gam=10.0, kernel="rbf", gamma=0.01),
        "compiled_lssvm",
        LSSVM_SPEEDUP_FLOOR,
    )


def test_compiled_svr_speedup():
    """SVR: pruned/merged support set, same low-rank serving plane."""
    _bench(
        SVR(C=10.0, epsilon=0.05, kernel="rbf", gamma=0.01),
        "compiled_svr",
        SVR_SPEEDUP_FLOOR,
    )
