"""Bench FIG4 — the Lasso regularization path of the paper's Fig. 4.

Benchmarks the warm-started path over the ten-decade lambda grid and
asserts the figure's shape: the number of selected parameters is
non-increasing in lambda, starts large, and ends with a small
high-interest set.
"""

from __future__ import annotations

import numpy as np

from repro.core import LassoFeatureSelector


def test_fig4_lasso_path(benchmark, dataset):
    def fit_path():
        return LassoFeatureSelector().fit(dataset)

    selector = benchmark(fit_path)

    counts = np.array([c for _, c in selector.selection_counts()])
    lams = np.array([lam for lam, _ in selector.selection_counts()])

    # --- Fig. 4 shape assertions -------------------------------------------
    assert lams[0] == 1.0 and lams[-1] == 1e9  # the paper's grid
    assert (np.diff(counts) <= 0).all()  # monotone shrinkage
    assert counts[0] >= 10  # weak penalty keeps a large set
    assert counts[-1] <= 8  # strong penalty keeps at most a handful
    # most of the grid still selects something (the curve is a staircase,
    # not a cliff)
    assert (counts > 0).sum() >= 7
