"""Fleet controller benches — 10k nodes in real time, batched scoring.

The fleet layer's reason to exist is cost-per-prediction on the hot
path (the Mantis concern from PAPERS.md): scoring N nodes must not cost
N model calls. Two claims are recorded into ``BENCH_fleet.json``:

- a 10,000-node fleet under a predictive policy simulates (tick, ingest,
  score, arbitrate) faster than real time — comfortably, so a live
  control plane at this scale is plausible on one core;
- batched RTTF scoring — one ``model.predict`` on an ``(n, 30)`` matrix
  — beats n per-row calls by a wide margin while returning bit-identical
  predictions (the fleet equivalence battery in
  ``tests/rejuvenation/test_fleet.py`` pins the same contract end-to-end).

Absolute timings belong to this hardware; the asserted floors are
conservative so shared CI boxes pass on merit, not luck.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.rejuvenation import (
    FleetConfig,
    FleetController,
    ManagedSystemConfig,
    PredictiveRejuvenation,
    SyntheticFleetSource,
    SyntheticFleetSpec,
)

BENCH_PATH = Path(__file__).parent / "BENCH_fleet.json"

#: The fleet must simulate at least this many x real time at 10k nodes.
#: The committed baseline measures ~150x; the floor only asserts the
#: headline claim ("real-time at fleet scale") with CI slack.
REALTIME_FLOOR = 2.0

#: Batched-over-scalar scoring speedup floor. The committed baseline
#: measures two orders of magnitude; 10x keeps the assertion meaningful
#: without tying it to one machine's constant factors.
SCORING_SPEEDUP_FLOOR = 10.0

N_NODES = 10_000


def _update_record(section: str, payload: dict) -> None:
    record = {"bench": "fleet"}
    if BENCH_PATH.exists():
        record = json.loads(BENCH_PATH.read_text())
    record[section] = payload
    BENCH_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")


def test_fleet_10k_nodes_realtime():
    spec = SyntheticFleetSpec()
    horizon = 600.0
    controller = FleetController(
        SyntheticFleetSource(spec),
        ManagedSystemConfig(horizon_seconds=horizon, window_seconds=20.0),
        PredictiveRejuvenation(spec.linear_model(), rttf_margin=150.0),
        FleetConfig(n_nodes=N_NODES, engine="batched"),
    )
    start = time.perf_counter()
    log = controller.run(seed=0)
    wall = time.perf_counter() - start

    assert log.n_episodes >= N_NODES  # every node lived at least one episode
    assert log.scored_rows > 100_000  # scoring genuinely exercised
    # batching: the entire run used far fewer model calls than scored rows
    assert log.scoring_calls < log.scored_rows / 100

    realtime = horizon / wall
    _update_record(
        "fleet_10k_realtime",
        {
            "n_nodes": N_NODES,
            "sim_seconds": horizon,
            "wall_s": round(wall, 3),
            "x_realtime": round(realtime, 1),
            "scored_rows": log.scored_rows,
            "model_calls": log.scoring_calls,
            "episodes": log.n_episodes,
            "realtime_floor": REALTIME_FLOOR,
        },
    )
    assert realtime >= REALTIME_FLOOR, (
        f"10k-node fleet only {realtime:.2f}x real time "
        f"(floor {REALTIME_FLOOR}x); see {BENCH_PATH.name}"
    )


def test_batched_scoring_speedup():
    """One (n, 30) predict vs n per-row predicts: identical bits, floor.

    Best-of-3 per engine; bit-identity is asserted before timing is
    trusted — a speedup over different numbers would be meaningless.
    """
    spec = SyntheticFleetSpec()
    model = spec.linear_model()
    rng = np.random.default_rng(0)
    X = rng.normal(size=(N_NODES, 30))
    X[:, 2] = rng.uniform(2e5, 7.8e5, size=N_NODES)
    X[:, 7] = rng.uniform(0, 2.6e5, size=N_NODES)

    batched = model.predict(X)
    scalar = np.array([model.predict(X[k][None, :])[0] for k in range(N_NODES)])
    assert batched.tobytes() == scalar.tobytes()

    best_batched = min(
        _time(lambda: model.predict(X)) for _ in range(3)
    )
    scalar_rows = 500  # timing all 10k per-row calls is pointless per round
    best_scalar_sample = min(
        _time(lambda: [model.predict(X[k][None, :]) for k in range(scalar_rows)])
        for _ in range(3)
    )
    best_scalar = best_scalar_sample * (N_NODES / scalar_rows)

    speedup = best_scalar / best_batched
    _update_record(
        "batched_scoring_speedup",
        {
            "n_rows": N_NODES,
            "batched_best_s": round(best_batched, 6),
            "scalar_extrapolated_s": round(best_scalar, 4),
            "scalar_sampled_rows": scalar_rows,
            "speedup": round(speedup, 1),
            "speedup_floor": SCORING_SPEEDUP_FLOOR,
            "bit_identical": True,
        },
    )
    assert speedup >= SCORING_SPEEDUP_FLOOR, (
        f"batched scoring only {speedup:.1f}x over per-row calls "
        f"(floor {SCORING_SPEEDUP_FLOOR}x); see {BENCH_PATH.name}"
    )


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
