"""Bench TAB4 — validation time per method (paper Table IV).

Times prediction + the four error metrics on the validation set. Shape
assertions: every method validates far under a second, and validating on
the Lasso-selected features is no slower than on all parameters.
"""

from __future__ import annotations

import time

import pytest

from repro.core.model_zoo import make_model
from repro.ml.metrics import (
    max_absolute_error,
    mean_absolute_error,
    relative_absolute_error,
    soft_mean_absolute_error,
)

METHODS = [
    ("linear", {}),
    ("m5p", {}),
    ("reptree", {}),
    ("svm", {"max_iter": 30_000}),
    ("svm2", {}),
    ("lasso", {"lam": 1e4}),
]


def _validate(model, val, threshold):
    pred = model.predict(val.X)
    mean_absolute_error(val.y, pred)
    relative_absolute_error(val.y, pred)
    max_absolute_error(val.y, pred)
    soft_mean_absolute_error(val.y, pred, threshold)
    return pred


@pytest.mark.parametrize("feature_set", ["all", "selected"])
@pytest.mark.parametrize("name,overrides", METHODS, ids=[m[0] for m in METHODS])
def test_table4_validation_time(
    benchmark, split, selected_split, smae_threshold, name, overrides, feature_set
):
    train, val = split if feature_set == "all" else selected_split
    model = make_model(name, **overrides).fit(train.X, train.y)

    pred = benchmark(lambda: _validate(model, val, smae_threshold))
    assert pred.shape == (val.n_samples,)


def test_table4_shape(split, smae_threshold):
    """Validation is sub-second for every method (paper Table IV)."""
    train, val = split
    for name, overrides in METHODS:
        model = make_model(name, **overrides).fit(train.X, train.y)
        t0 = time.perf_counter()
        _validate(model, val, smae_threshold)
        assert time.perf_counter() - t0 < 1.0
