"""Observability overhead bench — the <5% guarantee, measured.

The telemetry layer's claim is that a run may leave *everything* on —
metrics, spans, the telemetry bus, the stage profiler, and a live JSONL
exporter — and pay under 5% wall-clock over a fully dark run
(``--no-obs``). This bench measures both configurations on the fused
campaign and records the result into ``BENCH_obs_overhead.json``; CI's
``obs-overhead`` job reruns it on every push.

Measurement discipline (the effect is a few percent, smaller than the
raw run-to-run jitter of shared CI hardware, so the harness has to work
for its number):

- **paired samples**: each sample times one full campaign; dark and lit
  samples alternate back-to-back, with the order flipped every pair so
  a load ramp penalizes neither arm systematically;
- **GC control**: collected before and frozen during each sample, so
  one arm never pays the other arm's garbage;
- **median of pairwise ratios**: a ratio per adjacent pair, median
  across pairs — robust to the occasional co-tenant spike that poisons
  a mean or a best-of;
- **retry**: an over-ceiling reading triggers up to two fresh
  measurements (a real regression fails all of them; a noise spike does
  not survive three).

The profiler's *self-measured* cost (``profile.overhead_seconds_total``)
is recorded alongside as a cross-check: it must claim neither less than
nothing nor more than the whole lit-run budget.
"""

from __future__ import annotations

import gc
import json
import statistics
import time
from pathlib import Path

from repro import obs
from repro.obs import get_metrics
from repro.obs.profile import OVERHEAD_COUNTER
from repro.obs.telemetry import JsonlExporter, get_telemetry
from repro.system import TestbedSimulator

BENCH_PATH = Path(__file__).parent / "BENCH_obs_overhead.json"

#: Maximum tolerated fractional wall-clock cost of the full telemetry
#: stack over a dark (``--no-obs``) run of the same campaign.
OVERHEAD_CEILING = 0.05

#: Interleaved dark/lit pairs per measurement attempt.
N_PAIRS = 16

#: Fresh measurement attempts before the assertion gives up.
N_ATTEMPTS = 3


def _timed_campaign(campaign_config) -> float:
    """One timed sample: a full campaign, GC frozen for the duration."""
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        TestbedSimulator(campaign_config).run_campaign(jobs=1)
        return time.perf_counter() - start
    finally:
        gc.enable()


def _measure_once(campaign_config, tmp_path, attempt: int) -> dict:
    """One attempt: N_PAIRS alternating-order pairs, median ratio."""
    bus = get_telemetry()
    exporter = JsonlExporter(tmp_path / f"bench_{attempt}.jsonl")

    def dark() -> float:
        obs.reset()
        obs.disable()
        try:
            return _timed_campaign(campaign_config)
        finally:
            obs.enable()

    profiler_self_s = 0.0
    points_total = 0

    def lit() -> float:
        nonlocal profiler_self_s, points_total
        obs.reset()
        bus.add_sink(exporter)
        try:
            elapsed = _timed_campaign(campaign_config)
        finally:
            bus.remove_sink(exporter)
        profiler_self_s = get_metrics().counter(OVERHEAD_COUNTER).value
        points_total = sum(bus.series(name).total for name in bus.names())
        return elapsed

    ratios = []
    try:
        for i in range(N_PAIRS):
            if i % 2:
                lit_s, dark_s = lit(), dark()
            else:
                dark_s, lit_s = dark(), lit()
            ratios.append(lit_s / dark_s)
    finally:
        exporter.close()
        obs.reset()
    return {
        "overhead_fraction": statistics.median(ratios) - 1.0,
        "pair_ratios": [round(r - 1.0, 4) for r in sorted(ratios)],
        "profiler_self_reported_s": round(profiler_self_s, 6),
        "telemetry_points": points_total,
    }


def test_full_telemetry_overhead_under_ceiling(campaign_config, tmp_path):
    # Warm both paths (imports, numpy caches, profiler calibration)
    # before anything is timed.
    from repro.obs.profile import get_profiler

    get_profiler()
    TestbedSimulator(campaign_config).run_campaign(jobs=1)

    attempts = []
    best = None
    for attempt in range(N_ATTEMPTS):
        result = _measure_once(campaign_config, tmp_path, attempt)
        attempts.append(round(result["overhead_fraction"], 4))
        if best is None or result["overhead_fraction"] < best["overhead_fraction"]:
            best = result
        if result["overhead_fraction"] < OVERHEAD_CEILING:
            break

    overhead = best["overhead_fraction"]
    record = {
        "bench": "obs_overhead",
        "campaign_runs": campaign_config.n_runs,
        "pairs_per_attempt": N_PAIRS,
        "attempt_medians": attempts,
        "overhead_fraction": round(overhead, 4),
        "overhead_ceiling": OVERHEAD_CEILING,
        "pair_ratios": best["pair_ratios"],
        "telemetry_points": best["telemetry_points"],
        "profiler_self_reported_s": best["profiler_self_reported_s"],
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2) + "\n")

    # The instrumented run actually instrumented something, and the
    # profiler's self-measurement is sane (non-negative, sub-budget).
    assert best["telemetry_points"] > 0
    assert 0.0 <= best["profiler_self_reported_s"] < 60.0

    assert overhead < OVERHEAD_CEILING, (
        f"full telemetry costs {overhead:.1%} over a dark run in every "
        f"attempt ({attempts}; ceiling {OVERHEAD_CEILING:.0%}); "
        f"see {BENCH_PATH.name}"
    )
