"""Synthetic anomaly injection (paper Sec. III-E utilities).

The paper ships standalone injectors — uniform-size memory leaks and
unterminated threads with exponential inter-arrival times whose means are
drawn uniformly at startup — to stress a system *without* a workload,
"either for testing F2PM in a synthetic environment, or to speed up the
collection of datapoints".

This example drives the injectors directly against the machine model,
collects a small injector-only campaign, and shows that F2PM still
learns a usable RTTF model from it — the substrate is workload-agnostic.

Run with::

    python examples/synthetic_injection.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.core import AggregationConfig, F2PM, F2PMConfig
from repro.system import (
    CampaignConfig,
    MachineConfig,
    MachineState,
    MemoryLeakInjector,
    TestbedSimulator,
    ThreadLeakInjector,
)


def demo_injectors_standalone() -> None:
    """Drive the two injectors against a bare machine, no workload."""
    machine = MachineConfig()
    state = MachineState(machine)
    leaker = MemoryLeakInjector(
        size_range_kb=(512.0, 8192.0), mean_interval_range=(1.0, 5.0), seed=1
    )
    threader = ThreadLeakInjector(mean_interval_range=(5.0, 30.0), seed=2)
    print("standalone injectors on a bare machine:")
    print(f"  leak inter-arrival mean: {leaker.mean_interval:.2f}s")
    print(f"  thread inter-arrival mean: {threader.mean_interval:.2f}s")
    for t in (60.0, 300.0, 900.0, 1800.0):
        leaker.advance(state, t)
        threader.advance(state, t)
        state.update_swap()
        print(
            f"  t={t:6.0f}s leaked={state.leaked_kb / 1024:7.1f}MB "
            f"threads=+{state.n_leaked_threads:4d} "
            f"swap={state.swap_pressure:5.1%} "
            f"exhausted={state.memory_exhausted}"
        )
    print()


def campaign_with_injectors() -> None:
    """Collect a campaign accelerated by the time-based injectors."""
    machine = MachineConfig(
        ram_kb=524_288.0,
        swap_kb=262_144.0,
        os_base_kb=131_072.0,
        app_working_set_kb=65_536.0,
        min_cache_kb=16_384.0,
        shared_kb=8_192.0,
        buffers_kb=4_096.0,
    )
    base = CampaignConfig(
        n_runs=6,
        seed=5,
        machine=machine,
        n_browsers=20,
        # the request-coupled path stays quiet ...
        p_leak_range=(0.0, 1e-9),
        p_thread_range=(0.0, 1e-9),
        max_run_seconds=3000.0,
        # ... and the Sec. III-E utilities do the damage
        use_time_injectors=True,
        leak_injector_interval_range=(0.5, 3.0),
        thread_injector_interval_range=(5.0, 30.0),
    )
    print("campaign driven purely by the synthetic injectors ...")
    history = TestbedSimulator(base).run_campaign()
    print(
        f"  {len(history)} runs, mean time-to-failure "
        f"{history.mean_run_length:.0f}s"
    )

    config = F2PMConfig(
        aggregation=AggregationConfig(window_seconds=20.0),
        models=("linear", "m5p", "reptree"),
        lasso_predictor_lambdas=(),
        seed=0,
    )
    result = F2PM(config).run(history)
    best = result.best_by_smae("all")
    print(
        f"  best model on injector-only data: {best.name}, "
        f"S-MAE {best.s_mae:.1f}s (threshold {result.smae_threshold:.0f}s)\n"
    )
    print(result.smae_table())


if __name__ == "__main__":
    demo_injectors_standalone()
    campaign_with_injectors()
