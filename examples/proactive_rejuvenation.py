"""Proactive rejuvenation: closing the loop with an F2PM model.

The paper's motivating use case (Sec. I): once F2PM can predict the
Remaining Time To Failure, a controller can restart the application
shortly *before* the predicted crash, trading a long unplanned outage
(crash + recovery, here 300 s) for a short planned one (30 s).

This example:

1. trains an RTTF model on an offline monitoring campaign (the F2PM
   workflow);
2. simulates the same system over a long horizon under three policies —
   crash-only, classic periodic rejuvenation, and F2PM-predictive —
   with the predictive margin set to the model's S-MAE tolerance;
3. compares availability, crash counts and downtime.

Run with::

    python examples/proactive_rejuvenation.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AggregationConfig, F2PM, F2PMConfig
from repro.rejuvenation import (
    ManagedSystem,
    ManagedSystemConfig,
    NoRejuvenation,
    PeriodicRejuvenation,
    PredictiveRejuvenation,
    summarize,
)
from repro.rejuvenation.metrics import AvailabilityReport
from repro.system import CampaignConfig, MachineConfig, TestbedSimulator
from repro.utils.tables import render_table

WINDOW_SECONDS = 20.0


def campaign() -> CampaignConfig:
    machine = MachineConfig(
        ram_kb=524_288.0,
        swap_kb=262_144.0,
        os_base_kb=131_072.0,
        app_working_set_kb=65_536.0,
        min_cache_kb=16_384.0,
        shared_kb=8_192.0,
        buffers_kb=4_096.0,
    )
    return CampaignConfig(
        n_runs=10,
        seed=33,
        machine=machine,
        n_browsers=40,
        p_leak_range=(0.3, 0.5),
        leak_kb_range=(1024.0, 4096.0),
        max_run_seconds=3000.0,
    )


def main() -> None:
    # -- 1. offline training ---------------------------------------------------
    print("collecting the offline monitoring campaign ...")
    history = TestbedSimulator(campaign()).run_campaign()
    f2pm = F2PM(
        F2PMConfig(
            aggregation=AggregationConfig(window_seconds=WINDOW_SECONDS),
            models=("m5p", "reptree", "linear"),
            lasso_predictor_lambdas=(),
            seed=0,
        )
    ).run(history)
    best = f2pm.best_by_smae("all")
    model = f2pm.models[(best.name, "all")]
    margin = f2pm.smae_threshold  # the S-MAE tolerance IS the lead margin
    print(
        f"  trained {best.name}: S-MAE {best.s_mae:.1f}s at margin "
        f"{margin:.0f}s; mean TTF {history.mean_run_length:.0f}s\n"
    )

    # -- 2. managed-system comparison -------------------------------------------
    managed_cfg = ManagedSystemConfig(
        horizon_seconds=20_000.0,
        rejuvenation_downtime=30.0,
        crash_downtime=300.0,
        window_seconds=WINDOW_SECONDS,
    )
    policies = [
        NoRejuvenation(),
        # the blind baseline must restart well before the SHORTEST run dies
        PeriodicRejuvenation(
            interval_seconds=0.5 * min(r.fail_time for r in history)
        ),
        PredictiveRejuvenation(model, rttf_margin=margin, consecutive=2),
    ]

    reports: list[AvailabilityReport] = []
    for policy in policies:
        print(f"simulating 20000s horizon under policy {policy.name!r} ...")
        log = ManagedSystem(campaign(), managed_cfg, policy).run(seed=77)
        reports.append(summarize(log))

    print()
    print(
        render_table(
            AvailabilityReport.HEADERS,
            [r.row() for r in reports],
            title="Policy comparison over a 20000s horizon",
            float_fmt=".4f",
        )
    )

    predictive = reports[-1]
    crash_only = reports[0]
    saved = crash_only.total_downtime - predictive.total_downtime
    print(
        f"\npredictive rejuvenation avoided "
        f"{crash_only.n_crashes - predictive.n_crashes} of "
        f"{crash_only.n_crashes} crashes and saved {saved:.0f}s of downtime "
        f"({100 * (predictive.availability - crash_only.availability):.2f} "
        f"percentage points of availability)."
    )


if __name__ == "__main__":
    main()
