"""Custom failure conditions: predicting *degradation*, not just crashes.

F2PM's failure definition is user-supplied (paper Sec. I): the condition
"can reveal that the system is approaching, e.g., a hang/crash point or
is working in a sub-optimal way". This example builds RTTF models for
three different definitions of "failed":

- **OOM crash** — memory demand exceeds RAM + swap (the paper's testbed);
- **SLA violation** — mean client response time above 2 s;
- **overload proxy** — datapoint inter-generation time above 6 s, the
  paper's suggested client-free alternative once the Fig. 3 correlation
  is established.

The SLA and proxy conditions fire earlier than the crash, so their mean
time-to-failure is shorter — and the models answer a different question:
"how long until users notice?" rather than "how long until the VM dies?".

Run with::

    python examples/custom_failure_condition.py
"""

from __future__ import annotations

from repro.core import AggregationConfig, F2PM, F2PMConfig, ResponseTimeCorrelator
from repro.system import (
    CampaignConfig,
    GenerationTimeLimit,
    MachineConfig,
    MemoryExhaustion,
    ResponseTimeLimit,
    TestbedSimulator,
)
from repro.system.failure import FailureCondition
from repro.utils.tables import render_table


def campaign() -> CampaignConfig:
    machine = MachineConfig(
        ram_kb=524_288.0,
        swap_kb=262_144.0,
        os_base_kb=131_072.0,
        app_working_set_kb=65_536.0,
        min_cache_kb=16_384.0,
        shared_kb=8_192.0,
        buffers_kb=4_096.0,
    )
    return CampaignConfig(
        n_runs=6,
        seed=21,
        machine=machine,
        n_browsers=40,
        p_leak_range=(0.3, 0.5),
        leak_kb_range=(1024.0, 4096.0),
        max_run_seconds=3000.0,
    )


def build_models(condition: FailureCondition) -> tuple[float, str, float]:
    """Collect a campaign under *condition* and train F2PM models.

    Returns (mean time-to-failure, best model name, best S-MAE).
    """
    history = TestbedSimulator(campaign(), failure_condition=condition).run_campaign()
    config = F2PMConfig(
        aggregation=AggregationConfig(window_seconds=20.0),
        models=("linear", "m5p", "reptree"),
        lasso_predictor_lambdas=(),
        seed=0,
    )
    result = F2PM(config).run(history)
    best = result.best_by_smae("all")
    return history.mean_run_length, best.name, best.s_mae


def main() -> None:
    # The Fig. 3 correlation justifies the generation-time proxy: check it
    # first on one instrumented run.
    history = TestbedSimulator(campaign()).run_campaign()
    series = ResponseTimeCorrelator().fit_run(history[0])
    print(
        f"gen-time ~ RT correlation on an instrumented run: "
        f"R^2 = {series.r2:.2f}\n"
    )

    conditions = [
        MemoryExhaustion(),
        ResponseTimeLimit(limit_seconds=2.0),
        GenerationTimeLimit(limit_seconds=6.0),
    ]
    rows = []
    for condition in conditions:
        mttf, best_name, best_smae = build_models(condition)
        rows.append([condition.description, mttf, best_name, best_smae])

    print(
        render_table(
            ("failure condition", "mean TTF (s)", "best model", "S-MAE (s)"),
            rows,
            title="RTTF models under different failure definitions",
            float_fmt=".1f",
        )
    )
    print(
        "\nnote: the SLA and overload conditions fire before the OOM crash,"
        "\nso their horizons (and tolerances) are shorter."
    )


if __name__ == "__main__":
    main()
