"""Model inspection: what did the RTTF model actually learn?

The paper inspects its models through Lasso weights (Table I). This
example goes further on a trained campaign:

1. print the winning REP-Tree/M5P structure (WEKA-style text dump);
2. cross-check the Lasso selection with *permutation importance* of the
   best model — do the features Lasso keeps match the features the tree
   actually relies on?
3. tune the M5P smoothing constant by cross-validated grid search.

Run with::

    python examples/model_inspection.py
"""

from __future__ import annotations

import numpy as np

from repro.core import AggregationConfig, F2PM, F2PMConfig
from repro.ml import GridSearchCV, KFold, M5PRegressor, permutation_importance
from repro.ml.tree import export_text
from repro.system import CampaignConfig, MachineConfig, TestbedSimulator


def campaign() -> CampaignConfig:
    machine = MachineConfig(
        ram_kb=524_288.0,
        swap_kb=262_144.0,
        os_base_kb=131_072.0,
        app_working_set_kb=65_536.0,
        min_cache_kb=16_384.0,
        shared_kb=8_192.0,
        buffers_kb=4_096.0,
    )
    return CampaignConfig(
        n_runs=8,
        seed=19,
        machine=machine,
        n_browsers=40,
        p_leak_range=(0.3, 0.5),
        leak_kb_range=(1024.0, 4096.0),
        max_run_seconds=3000.0,
    )


def main() -> None:
    print("collecting campaign and training models ...")
    history = TestbedSimulator(campaign()).run_campaign()
    f2pm = F2PM(
        F2PMConfig(
            aggregation=AggregationConfig(window_seconds=20.0),
            models=("m5p", "reptree"),
            lasso_predictor_lambdas=(),
            seed=0,
        )
    ).run(history)
    dataset = f2pm.dataset
    best = f2pm.best_by_smae("all")
    model = f2pm.models[(best.name, "all")]
    print(f"best model: {best.name} (S-MAE {best.s_mae:.1f}s)\n")

    # -- 1. tree structure -----------------------------------------------------
    print("=== tree structure (truncated to 25 lines) ===")
    text = export_text(model, feature_names=dataset.feature_names)
    print("\n".join(text.splitlines()[:25]))
    print("...\n")

    # -- 2. permutation importance vs Lasso selection -----------------------------
    train, val = dataset.split(0.3, seed=0)
    imp = permutation_importance(
        model, val.X, val.y, feature_names=dataset.feature_names, seed=0
    )
    print("=== permutation importance (top 8) ===")
    for name, value in imp.ranking()[:8]:
        print(f"  {name:24s} +{value:8.2f}s MAE when shuffled")
    lasso_selected = set(f2pm.selection.selected)
    top_by_permutation = set(imp.top(len(lasso_selected)))
    overlap = lasso_selected & top_by_permutation
    print(
        f"\nLasso kept {sorted(lasso_selected)};"
        f"\npermutation top-{len(lasso_selected)} is {sorted(top_by_permutation)};"
        f"\noverlap: {len(overlap)}/{len(lasso_selected)}\n"
    )

    # -- 3. grid search over M5P smoothing -----------------------------------------
    print("=== grid search: M5P smoothing constant ===")
    search = GridSearchCV(
        M5PRegressor(),
        {"smoothing_k": [0.0, 5.0, 15.0, 50.0]},
        cv=KFold(4, shuffle=True, seed=0),
    )
    result = search.fit(dataset.X, dataset.y)
    for params, cv in zip(result.params, result.results):
        print(
            f"  smoothing_k={params['smoothing_k']:5.1f}  "
            f"CV MAE {cv.mean:7.2f}s (+/- {cv.std:.2f})"
        )
    print(f"best: {result.best_params} at {result.best_score:.2f}s")


if __name__ == "__main__":
    main()
