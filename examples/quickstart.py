"""Quickstart: monitor, learn, predict.

Runs the full F2PM workflow end to end on a small simulated campaign:

1. simulate a monitoring campaign (a TPC-W server that leaks memory and
   threads until it crashes, restarted on every fail event);
2. run F2PM: aggregation + slopes, Lasso feature selection, six-method
   model generation and validation;
3. print the model-comparison tables (paper Tables II-IV);
4. use the best model to predict the Remaining Time To Failure for the
   most recent observation window.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import AggregationConfig, F2PM, F2PMConfig
from repro.system import CampaignConfig, MachineConfig, TestbedSimulator


def main() -> None:
    # -- 1. monitoring campaign (small VM so this takes ~2 s) ----------------
    machine = MachineConfig(
        ram_kb=524_288.0,  # 512 MB
        swap_kb=262_144.0,  # 256 MB
        os_base_kb=131_072.0,
        app_working_set_kb=65_536.0,
        min_cache_kb=16_384.0,
        shared_kb=8_192.0,
        buffers_kb=4_096.0,
    )
    campaign = CampaignConfig(
        n_runs=8,
        seed=42,
        machine=machine,
        n_browsers=40,
        p_leak_range=(0.3, 0.5),
        leak_kb_range=(1024.0, 4096.0),
        max_run_seconds=3000.0,
    )
    print("simulating monitoring campaign ...")
    history = TestbedSimulator(campaign).run_campaign()
    print(
        f"  {len(history)} runs, {history.n_datapoints} raw datapoints, "
        f"mean time-to-failure {history.mean_run_length:.0f}s\n"
    )

    # -- 2. F2PM -------------------------------------------------------------
    config = F2PMConfig(
        aggregation=AggregationConfig(window_seconds=20.0),
        models=("linear", "m5p", "reptree", "svm2"),  # add "svm" for the
        lasso_predictor_lambdas=(1e0, 1e4, 1e9),      # full (slow) SMO run
        smae_threshold_frac=0.10,
        seed=0,
    )
    print("running F2PM (aggregation -> selection -> models) ...\n")
    result = F2PM(config).run(history)

    # -- 3. comparison tables --------------------------------------------------
    print(f"Lasso selection (lambda = {result.selection.lam:.0e}):")
    for name, weight in result.selection.weight_table():
        print(f"  {name:24s} {weight:+.9f}")
    print()
    print(result.smae_table())
    print()
    print(result.training_time_table())
    print()

    # -- 4. predict RTTF for the latest window ---------------------------------
    best = result.best_by_smae("all")
    model = result.models[(best.name, "all")]
    latest = result.dataset.X[-1:]
    predicted = float(model.predict(latest)[0])
    actual = float(result.dataset.y[-1])
    print(
        f"best model: {best.name} (S-MAE {best.s_mae:.1f}s at threshold "
        f"{result.smae_threshold:.0f}s)"
    )
    print(
        f"latest window: predicted RTTF {predicted:.0f}s, actual {actual:.0f}s"
    )


if __name__ == "__main__":
    main()
