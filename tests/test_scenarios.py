"""The scenario catalog's smoke battery (ISSUE acceptance grid).

Every preset in :data:`repro.scenarios.SCENARIOS` must (a) resolve to a
runnable ``CampaignConfig``, (b) simulate bit-identically under both
substrates (via the fused engine or its declared loop-fallback, counted
by ``sim.fused_fallback_total``), (c) survive the ``repro.faults``
corruption battery in repair mode, and (d) ride a ``CampaignSpec``
``scenario`` axis with a stable, golden-pinned fingerprint so cached
cells never re-simulate.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import numpy as np
import pytest

from repro.campaign import CampaignManager, CampaignSpec
from repro.core import aggregate_history
from repro.core.sanitize import sanitize_history
from repro.faults import FaultProfile
from repro.scenarios import (
    SCENARIOS,
    Scenario,
    get_scenario,
    resolve_scenario,
    scenario_names,
)
from repro.store.keys import fingerprint
from repro.system import TestbedSimulator
from repro.system.tpcw import SHOPPING_MIX
from repro.obs import get_metrics

from tests.conftest import small_campaign
from tests.system.test_substrate_equivalence import _records_equal, _run_both

GOLDEN_FINGERPRINT = Path(__file__).parent / "scenario_spec_fingerprint.txt"


def _short_base():
    # Bit-identity needs no crash: a 1200 s horizon keeps the full
    # catalog sweep fast while still crossing schedule/injector events.
    return dataclasses.replace(small_campaign(), max_run_seconds=1200.0)


class TestCatalog:
    def test_catalog_floor(self):
        """The ISSUE floor: >= 8 presets, >= 3 new anomaly families."""
        assert len(SCENARIOS) >= 8
        anomalies = {s.anomaly for s in SCENARIOS.values()}
        assert {"fd/socket leak", "connection-pool depletion",
                "heap fragmentation"} <= anomalies
        profiles = {s.profile for s in SCENARIOS.values()}
        assert len(profiles) >= 3
        schedules = {s.schedule for s in SCENARIOS.values()}
        assert {"diurnal", "flash-crowd"} <= schedules

    def test_names_are_keys_and_sorted_accessor(self):
        assert all(name == s.name for name, s in SCENARIOS.items())
        assert scenario_names() == tuple(sorted(SCENARIOS))
        assert all(s.description for s in SCENARIOS.values())

    def test_get_scenario_unknown_is_one_line_error(self):
        with pytest.raises(ValueError, match="unknown scenario 'nope'"):
            get_scenario("nope")

    def test_scenario_rejects_unknown_override(self):
        with pytest.raises(ValueError, match="unknown CampaignConfig"):
            Scenario(
                name="x", description="d", workload="w", schedule="s",
                profile="p", anomaly="a", overrides={"not_a_field": 1},
            )

    @pytest.mark.parametrize("reserved", ["seed", "n_runs", "substrate"])
    def test_scenario_rejects_reserved_override(self, reserved):
        with pytest.raises(ValueError, match=reserved):
            Scenario(
                name="x", description="d", workload="w", schedule="s",
                profile="p", anomaly="a", overrides={reserved: 1},
            )

    def test_apply_keeps_caller_fields(self):
        base = small_campaign(n_runs=11, seed=99)
        for name in SCENARIOS:
            resolved = resolve_scenario(name, base)
            assert resolved.n_runs == 11
            assert resolved.seed == 99
            assert resolved.substrate == base.substrate

    def test_scenario_aliases_handwritten_config(self):
        """A scenario resolves to the *same* cache key as the equivalent
        hand-written config — old store entries stay valid."""
        base = small_campaign()
        resolved = resolve_scenario("baseline-shopping", base)
        handwritten = dataclasses.replace(base, mix=SHOPPING_MIX)
        assert fingerprint("campaign", resolved) == fingerprint(
            "campaign", handwritten
        )


class TestPresetBitIdentity:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_fused_matches_loop(self, name):
        config = resolve_scenario(name, _short_base())
        for seed in (13, 123):
            loop, fused = _run_both(config, None, seed)
            assert _records_equal(loop, fused), f"{name} diverged (seed {seed})"

    def test_fd_leak_counts_loop_fallback(self):
        """`fd` has no threshold form: the fused substrate must fall back
        to the loop and say so in ``sim.fused_fallback_total``."""
        config = dataclasses.replace(
            resolve_scenario("fd-leak", _short_base()), substrate="fused"
        )
        metrics = get_metrics()

        def fallbacks():
            return (
                metrics.snapshot()["counters"].get("sim.fused_fallback_total", 0)
            )

        before = fallbacks()
        TestbedSimulator(config).run_once(13)
        assert fallbacks() == before + 1

    def test_threshold_scenarios_stay_fused(self):
        config = dataclasses.replace(
            resolve_scenario("lock-contention", _short_base()),
            substrate="fused",
        )
        metrics = get_metrics()
        before = metrics.snapshot()["counters"].get("sim.fused_fallback_total", 0)
        TestbedSimulator(config).run_once(13)
        after = metrics.snapshot()["counters"].get("sim.fused_fallback_total", 0)
        assert after == before


class TestFaultsBattery:
    """Scenario telemetry through the corruption->repair gauntlet."""

    @pytest.fixture(scope="class")
    def history(self):
        # memory-leak-storm crashes quickly at the full horizon, so the
        # repaired set keeps positive RTTF labels.
        config = resolve_scenario(
            "memory-leak-storm", small_campaign(n_runs=3)
        )
        config = dataclasses.replace(config, max_run_seconds=20_000.0)
        return TestbedSimulator(config).run_campaign()

    def test_scenario_runs_crash(self, history):
        assert all(r.metadata["crashed"] == 1.0 for r in history)

    def test_storm_corruption_repairs_to_training_set(self, history):
        dirty = FaultProfile.preset("storm").apply_history(history, seed=7)
        fixed, report = sanitize_history(dirty, policy="repair")
        assert not report.clean
        dataset = aggregate_history(fixed)
        assert dataset.n_samples > 0
        assert np.isfinite(dataset.X).all()
        assert np.isfinite(dataset.y).all()
        assert (dataset.y > 0).all()

    def test_clean_scenario_history_passes_strict(self, history):
        clean, report = sanitize_history(history, policy="strict")
        assert report.clean
        for a, b in zip(clean, history):
            assert a is b


class TestScenarioAxis:
    """`scenario` as a CampaignSpec axis: coercion, round-trip, caching."""

    def _spec(self):
        return CampaignSpec(
            name="scenario-smoke",
            base=small_campaign(n_runs=1),
            axes={"scenario": ("lock-contention", "memory-leak-storm")},
            stages=("simulate",),
        )

    def test_cells_resolve_preset_overrides(self):
        cells = self._spec().cells()
        assert len(cells) == 2
        by_name = {dict(c.params)["scenario"]: c for c in cells}
        assert by_name["lock-contention"].config.use_lock_injector
        assert by_name["lock-contention"].config.failure == "rt>10"
        assert by_name["memory-leak-storm"].config.use_time_injectors
        assert by_name["memory-leak-storm"].config.machine.ram_kb != (
            self._spec().base.machine.ram_kb
        )

    def test_unknown_scenario_axis_value_fails_at_enumeration(self):
        spec = CampaignSpec(
            base=small_campaign(n_runs=1), axes={"scenario": ("bogus",)}
        )
        with pytest.raises(ValueError, match="unknown scenario"):
            spec.cells()

    def test_explicit_axis_wins_over_preset(self):
        spec = CampaignSpec(
            base=small_campaign(n_runs=1),
            axes={
                "scenario": ("lock-contention",),
                "failure": ("rt>20",),
            },
        )
        (cell,) = spec.cells()
        assert cell.config.failure == "rt>20"  # explicit beats preset
        assert cell.config.use_lock_injector  # preset still applied

    def test_json_round_trip_preserves_fingerprint(self, tmp_path):
        spec = self._spec()
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        loaded = CampaignSpec.from_json_file(path)
        assert loaded.fingerprint == spec.fingerprint
        assert [c.fingerprint for c in loaded.cells()] == [
            c.fingerprint for c in spec.cells()
        ]
        assert [dict(c.params)["scenario"] for c in loaded.cells()] == [
            "lock-contention",
            "memory-leak-storm",
        ]

    def test_profile_and_schedule_coercion_round_trip(self):
        doc = {
            "name": "coercion",
            "base": {
                "machine": "small-vm",
                "load_schedule": {
                    "type": "flash-crowd",
                    "base": 0.4,
                    "peak": 1.0,
                    "start": 300.0,
                    "ramp": 30.0,
                    "hold": 150.0,
                    "decay": 60.0,
                },
            },
            "stages": ["simulate"],
        }
        spec = CampaignSpec.from_dict(doc)
        assert spec.base.machine.ram_kb == 1_048_576.0
        assert spec.base.load_schedule.peak == 1.0
        again = CampaignSpec.from_dict(spec.to_dict())
        assert again.fingerprint == spec.fingerprint
        assert spec.to_dict()["base"]["machine"] == "small-vm"
        assert spec.to_dict()["base"]["load_schedule"]["type"] == "flash-crowd"

    def test_spec_fingerprint_matches_golden(self):
        """Catalog/spec stability pin: if this moves, every cached
        scenario cell re-simulates — bump the golden file only for a
        deliberate format break."""
        spec = CampaignSpec(
            name="golden",
            base=small_campaign(n_runs=2, seed=5),
            axes={"scenario": tuple(sorted(SCENARIOS))},
            stages=("simulate", "aggregate"),
            window_seconds=30.0,
        )
        assert spec.fingerprint == GOLDEN_FINGERPRINT.read_text().strip()

    def test_campaign_manager_runs_scenario_cells(self):
        spec = CampaignSpec(
            name="manager-smoke",
            base=dataclasses.replace(
                small_campaign(n_runs=1), max_run_seconds=600.0
            ),
            axes={"scenario": ("heap-fragmentation", "conn-pool-exhaustion")},
            stages=("simulate",),
        )
        result = CampaignManager(spec, None).run()
        assert result.cells_failed == 0
        assert len(result.outcomes) == 2
        for outcome in result.outcomes:
            history = outcome.results["simulate"]
            assert len(history) == 1
