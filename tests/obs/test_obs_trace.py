"""Span/Tracer: nesting, attributes, JSON round-trip, disabled mode."""

from __future__ import annotations

import json
import time

import pytest

from repro.obs.trace import NULL_SPAN, NullSpan, Span, Tracer


class TestSpan:
    def test_duration_requires_start(self):
        s = Span("s")
        with pytest.raises(RuntimeError, match="never started"):
            _ = s.duration

    def test_finish_requires_start(self):
        with pytest.raises(RuntimeError, match="never started"):
            Span("s").finish()

    def test_duration_live_then_frozen(self):
        s = Span("s").start()
        assert s.running
        time.sleep(0.003)
        live = s.duration
        assert live > 0
        s.finish()
        assert not s.running
        frozen = s.duration
        assert frozen >= live
        time.sleep(0.002)
        assert s.duration == frozen

    def test_restart_resets_clock(self):
        s = Span("s").start()
        time.sleep(0.01)
        s.finish()
        first = s.duration
        s.start()
        s.finish()
        assert s.duration < first

    def test_set_chains_and_merges(self):
        s = Span("s", {"a": 1}).set(b=2).set(a=3)
        assert s.attributes == {"a": 3, "b": 2}

    def test_child_walk_find(self):
        root = Span("root")
        a = root.child("a")
        b = root.child("b")
        leaf = a.child("leaf")
        assert [n.name for n in root.walk()] == ["root", "a", "leaf", "b"]
        assert root.find("leaf") is leaf
        assert root.find("missing") is None
        assert b.find("b") is b

    def test_json_round_trip(self):
        with Span("root", {"k": 1.5}) as root:
            with Span("inner") as inner:
                inner.set(rows=10)
            root.children.append(inner)
        data = json.loads(json.dumps(root.to_dict()))
        back = Span.from_dict(data)
        assert back.name == "root"
        assert back.attributes == {"k": 1.5}
        assert back.duration == pytest.approx(root.duration)
        assert [c.name for c in back.children] == ["inner"]
        assert back.children[0].attributes == {"rows": 10}
        assert not back.running  # rebuilt trees are frozen

    def test_from_dict_unstarted(self):
        back = Span.from_dict({"name": "s", "duration_s": None})
        with pytest.raises(RuntimeError):
            _ = back.duration

    def test_render_indents_children(self):
        with Span("root") as root:
            root.child("phase").start().finish().set(rows=7)
        text = root.render()
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  phase")
        assert "rows=7" in lines[1]


class TestTracer:
    def test_nesting_builds_tree(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner", step=1):
                with tracer.span("leaf"):
                    pass
            with tracer.span("sibling"):
                pass
        assert tracer.current() is None
        roots = tracer.roots
        assert [s.name for s in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner", "sibling"]
        assert roots[0].children[0].children[0].name == "leaf"
        assert roots[0].children[0].attributes == {"step": 1}

    def test_two_top_level_spans_two_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.roots] == ["first", "second"]

    def test_to_json_parses(self):
        tracer = Tracer()
        with tracer.span("run", n=3):
            with tracer.span("phase"):
                pass
        doc = json.loads(tracer.to_json())
        assert doc["spans"][0]["name"] == "run"
        assert doc["spans"][0]["attributes"] == {"n": 3}
        assert doc["spans"][0]["duration_s"] > 0
        assert doc["spans"][0]["children"][0]["name"] == "phase"

    def test_reset_clears_roots(self):
        tracer = Tracer()
        with tracer.span("run"):
            pass
        assert tracer.roots
        tracer.reset()
        assert tracer.roots == []

    def test_disabled_returns_null_span(self):
        tracer = Tracer(enabled=False)
        s = tracer.span("anything", k=1)
        assert s is NULL_SPAN
        with s as inner:
            inner.set(more=2).child("x")
        assert tracer.roots == []
        assert tracer.to_dict() == {"spans": []}

    def test_enable_disable_toggle(self):
        tracer = Tracer(enabled=False)
        tracer.enable()
        assert isinstance(tracer.span("s"), Span)
        tracer.disable()
        assert isinstance(tracer.span("s"), NullSpan)


class TestNullSpan:
    def test_is_falsy_and_inert(self):
        assert not NULL_SPAN
        assert NULL_SPAN.set(a=1) is NULL_SPAN
        assert NULL_SPAN.child("c") is NULL_SPAN
        assert NULL_SPAN.start().finish() is NULL_SPAN
        assert NULL_SPAN.duration == 0.0
        assert not NULL_SPAN.running
        assert list(NULL_SPAN.walk()) == []
        assert NULL_SPAN.find("x") is None
        assert NULL_SPAN.render() == ""
        assert NULL_SPAN.to_dict() == {}
