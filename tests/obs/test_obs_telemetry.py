"""The telemetry bus: bounded series, deterministic decimation, exporters."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.telemetry import (
    JSONL_SCHEMA,
    JsonlExporter,
    TelemetryBus,
    TimeSeries,
    get_telemetry,
    prometheus_text,
    read_jsonl,
)


@pytest.fixture(autouse=True)
def fresh_obs_window():
    obs.reset()
    yield
    obs.reset()


class TestTimeSeries:
    def test_records_everything_below_capacity(self):
        s = TimeSeries("x", capacity=8)
        for i in range(7):
            s.emit(float(i), float(i * 10))
        assert s.points == [(float(i), float(i * 10)) for i in range(7)]
        assert s.total == 7
        assert s.stride == 1

    def test_memory_is_bounded_for_any_emission_count(self):
        s = TimeSeries("x", capacity=16)
        for i in range(100_000):
            s.emit(float(i), float(i))
        assert len(s) <= 16
        assert s.total == 100_000

    def test_decimation_keeps_full_horizon_coverage(self):
        s = TimeSeries("x", capacity=16)
        n = 10_000
        for i in range(n):
            s.emit(float(i), float(i))
        ts = s.times
        assert ts[0] == 0.0  # oldest point survives every decimation
        assert ts[-1] >= n - s.stride  # newest retained point is recent
        assert ts == sorted(ts)

    def test_last_value_is_exact_regardless_of_stride(self):
        s = TimeSeries("x", capacity=8)
        for i in range(1000):
            s.emit(float(i), float(-i))
        assert s.last_t == 999.0
        assert s.last_value == -999.0

    def test_retention_is_a_pure_function_of_the_sequence(self):
        a = TimeSeries("x", capacity=16)
        b = TimeSeries("x", capacity=16)
        for i in range(5000):
            a.emit(float(i), float(i % 7))
        for i in range(5000):
            b.emit(float(i), float(i % 7))
        assert a.points == b.points
        assert a.stride == b.stride

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            TimeSeries("x", capacity=7)
        with pytest.raises(ValueError):
            TimeSeries("x", capacity=4)

    def test_merge_of_lossless_dump_is_exact_replay(self):
        source = TimeSeries("x", capacity=512)
        for i in range(20):
            source.emit(float(i), float(i))
        target = TimeSeries("x", capacity=512)
        target.merge_state(source.state())
        assert target.points == source.points
        assert target.total == source.total

    def test_merge_of_decimated_dump_keeps_exact_total_and_last(self):
        source = TimeSeries("x", capacity=8)
        for i in range(100):
            source.emit(float(i), float(i))
        target = TimeSeries("x", capacity=512)
        target.merge_state(source.state())
        assert target.total == 100
        assert target.last_t == 99.0
        assert target.last_value == 99.0


class TestTelemetryBus:
    def test_emit_and_snapshot(self):
        bus = TelemetryBus()
        bus.emit("a", 1.0, 10.0)
        bus.emit("a", 2.0, 20.0)
        bus.event(2.5, "crash", policy="none")
        snap = bus.snapshot()
        assert snap["series"]["a"]["points"] == [[1.0, 10.0], [2.0, 20.0]]
        assert snap["events"] == [{"t": 2.5, "event": "crash", "policy": "none"}]
        assert snap["events_total"] == 1

    def test_disabled_bus_is_a_no_op(self):
        bus = TelemetryBus(enabled=False)
        bus.emit("a", 1.0, 1.0)
        bus.event(1.0, "x")
        assert bus.snapshot() == {"series": {}, "events": [], "events_total": 0}

    def test_event_log_is_bounded_with_exact_total(self):
        bus = TelemetryBus(events_capacity=4)
        for i in range(10):
            bus.event(float(i), "e")
        assert len(bus.events) == 4
        assert bus.events_total == 10
        assert bus.events[-1]["t"] == 9.0

    def test_merge_state_replays_in_order_through_sinks(self):
        worker = TelemetryBus()
        worker.emit("a", 1.0, 1.0)
        worker.event(1.5, "crash")
        parent = TelemetryBus()
        seen: list = []

        class Probe:
            def point(self, name, t, v):
                seen.append(("point", name, t, v))

            def event(self, ev):
                seen.append(("event", ev["event"]))

        parent.add_sink(Probe())
        parent.merge_state(worker.dump_state())
        assert seen == [("point", "a", 1.0, 1.0), ("event", "crash")]

    def test_merge_order_determines_identical_final_state(self):
        dumps = []
        for base in (0, 10):
            w = TelemetryBus()
            for i in range(5):
                w.emit("s", float(base + i), float(base + i))
            dumps.append(w.dump_state())
        serial = TelemetryBus()
        for i in range(5):
            serial.emit("s", float(i), float(i))
        for i in range(5):
            serial.emit("s", float(10 + i), float(10 + i))
        merged = TelemetryBus()
        for d in dumps:
            merged.merge_state(d)
        assert merged.snapshot() == serial.snapshot()

    def test_reset_keeps_sinks(self):
        bus = TelemetryBus()

        class Probe:
            n = 0

            def point(self, name, t, v):
                Probe.n += 1

            def event(self, ev):
                pass

        bus.add_sink(Probe())
        bus.emit("a", 1.0, 1.0)
        bus.reset()
        bus.emit("a", 2.0, 2.0)
        assert Probe.n == 2
        assert bus.snapshot()["series"]["a"]["total"] == 1

    def test_default_bus_follows_the_obs_switch(self):
        bus = get_telemetry()
        obs.disable()
        try:
            assert not bus.enabled
            bus.emit("x", 1.0, 1.0)
        finally:
            obs.enable()
        assert bus.enabled
        assert "x" not in bus.names()


class TestJsonlExporter:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        bus = TelemetryBus()
        with JsonlExporter(path, meta={"command": "test"}) as exp:
            bus.add_sink(exp)
            bus.emit("a", 1.0, 2.0)
            bus.event(3.0, "crash", policy="none")
        records = read_jsonl(path)
        assert records[0] == {
            "kind": "meta",
            "schema": JSONL_SCHEMA,
            "command": "test",
        }
        assert records[1] == {
            "kind": "point",
            "series": "a",
            "t": 1.0,
            "v": 2.0,
        }
        assert records[2] == {
            "kind": "event",
            "t": 3.0,
            "event": "crash",
            "policy": "none",
        }

    def test_stream_is_tailable_line_by_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlExporter(path) as exp:
            exp.point("a", 1.0, 2.0)
            # Every record is flushed as one complete line before close.
            lines = path.read_text().splitlines()
            assert len(lines) == 2
            assert json.loads(lines[1])["series"] == "a"

    def test_reader_skips_torn_final_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlExporter(path) as exp:
            exp.point("a", 1.0, 2.0)
        with path.open("a") as fh:
            fh.write('{"kind":"point","series":"b","t":9')  # torn mid-write
        records = read_jsonl(path)
        assert [r["kind"] for r in records] == ["meta", "point"]


class TestPrometheusText:
    def test_snapshot_includes_counters_histograms_and_series(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry(enabled=True)
        registry.inc("sim.runs_total", 3)
        registry.set_gauge("controller.util", 0.5)
        for v in (0.5, 1.0, 2.0, 4.0):
            registry.observe("sim.run_seconds", v)
        bus = TelemetryBus()
        bus.emit("controller.predicted_rttf", 1.0, 120.0)
        bus.event(1.0, "crash")
        text = prometheus_text(metrics=registry, bus=bus)
        assert "# TYPE f2pm_sim_runs_total counter" in text
        assert "f2pm_sim_runs_total 3" in text
        assert "f2pm_controller_util 0.5" in text
        assert "# TYPE f2pm_sim_run_seconds histogram" in text
        assert 'f2pm_sim_run_seconds_bucket{le="+Inf"} 4' in text
        assert "f2pm_sim_run_seconds_sum 7.5" in text
        assert (
            'f2pm_telemetry_last{series="controller.predicted_rttf"} 120' in text
        )
        assert "f2pm_telemetry_events_total 1" in text

    def test_bucket_counts_are_cumulative_and_end_at_count(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry(enabled=True)
        for v in (1.0, 2.0, 4.0, 8.0, 16.0):
            registry.observe("h", v)
        text = prometheus_text(metrics=registry, bus=TelemetryBus())
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("f2pm_h_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 5

    def test_name_sanitization(self):
        from repro.obs.telemetry import _prom_name

        assert _prom_name("sim.run-seconds") == "f2pm_sim_run_seconds"
        assert _prom_name("9lives") == "f2pm__9lives"
