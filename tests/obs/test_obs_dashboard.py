"""``f2pm top``: the dashboard fold, renderer, and CLI smoke test.

The recorded fixture ``data/recorded_telemetry.jsonl`` is a real
``--telemetry-jsonl`` stream captured from a small ``f2pm rejuvenate``
run — the same artifact the CI job regenerates live.
"""

from __future__ import annotations

import io
from pathlib import Path

import pytest

from repro.obs.dashboard import DashboardState, _Tail, render_frame, run_top, sparkline
from repro.obs.telemetry import TelemetryBus

FIXTURE = Path(__file__).parent / "data" / "recorded_telemetry.jsonl"


class TestSparkline:
    def test_maps_range_onto_blocks(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert len(line) == 4
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_flat_series_renders_midblocks(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▄▄▄"

    def test_resamples_to_width(self):
        line = sparkline([float(i) for i in range(1000)], width=20)
        assert len(line) == 20
        assert line[-1] == "█"

    def test_empty(self):
        assert sparkline([]) == ""


class TestDashboardState:
    def test_folds_points_events_and_meta(self):
        state = DashboardState()
        state.feed({"kind": "meta", "schema": "f2pm.telemetry/1", "command": "x"})
        state.feed({"kind": "point", "series": "a", "t": 1.0, "v": 2.0})
        state.feed({"kind": "event", "t": 1.5, "event": "crash"})
        assert state.schema_ok is True
        assert state.points_total == 1
        assert state.events_total == 1
        assert state.last("a") == 2.0

    def test_memory_stays_bounded_on_a_long_stream(self):
        state = DashboardState(series_capacity=16, events_capacity=8)
        for i in range(50_000):
            state.feed({"kind": "point", "series": "s", "t": float(i), "v": 1.0})
            if i % 100 == 0:
                state.feed({"kind": "event", "t": float(i), "event": "e"})
        assert len(state.series["s"]) <= 16
        assert len(state.events) <= 8
        assert state.points_total == 50_000

    def test_malformed_records_are_ignored(self):
        state = DashboardState()
        state.feed({"kind": "point"})  # no series
        state.feed({"kind": "point", "series": "a", "t": "zzz", "v": None})
        state.feed({"kind": "???"})
        assert state.points_total == 0

    def test_from_bus(self):
        bus = TelemetryBus()
        bus.emit("a", 1.0, 3.0)
        bus.event(2.0, "crash")
        state = DashboardState.from_bus(bus)
        assert state.last("a") == 3.0
        assert state.events_total == 1


class TestRenderFrame:
    def test_renders_recorded_fixture(self):
        from repro.obs.telemetry import read_jsonl

        state = DashboardState()
        state.feed_all(read_jsonl(FIXTURE))
        frame = render_frame(state)
        assert "f2pm top" in frame
        assert "controller.predicted_rttf" in frame
        assert "recent events" in frame
        assert state.points_total > 100

    def test_renders_empty_state(self):
        frame = render_frame(DashboardState())
        assert "(no points yet)" in frame
        assert "(none)" in frame

    def test_flags_unknown_schema(self):
        state = DashboardState()
        state.feed({"kind": "meta", "schema": "something/else"})
        assert "unknown schema" in render_frame(state)


class TestTail:
    def test_incremental_polls_and_torn_line_carry(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind":"point","series":"a","t":1,"v":1}\n{"kind":"po')
        tail = _Tail(path)
        first = tail.poll()
        assert len(first) == 1  # torn tail held back
        with path.open("a") as fh:
            fh.write('int","series":"a","t":2,"v":2}\n')
        second = tail.poll()
        assert len(second) == 1
        assert second[0]["t"] == 2

    def test_missing_file_is_empty(self, tmp_path):
        assert _Tail(tmp_path / "nope.jsonl").poll() == []


class TestRunTop:
    def test_once_renders_one_frame(self):
        out = io.StringIO()
        rc = run_top(FIXTURE, once=True, out=out)
        assert rc == 0
        assert "f2pm top" in out.getvalue()

    def test_missing_stream_errors(self, tmp_path):
        assert run_top(tmp_path / "nope.jsonl", once=True) == 1

    def test_follow_mode_stops_after_max_frames(self):
        out = io.StringIO()
        rc = run_top(FIXTURE, follow=True, interval=0.0, max_frames=2, out=out)
        assert rc == 0
        assert out.getvalue().count("\x1b[2J") == 2


class TestCli:
    def test_f2pm_top_once_smoke(self, capsys):
        from repro.cli import main

        rc = main(["top", str(FIXTURE), "--once"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "f2pm top" in captured.out
        assert "controller" in captured.out

    def test_f2pm_top_missing_file(self, capsys):
        from repro.cli import main

        rc = main(["top", "/does/not/exist.jsonl", "--once"])
        assert rc == 1

    def test_f2pm_obs_top_ranks_spans(self, tmp_path, capsys):
        import json as _json

        from repro.cli import main

        trace = {
            "spans": [
                {
                    "name": "root",
                    "duration_s": 2.0,
                    "attributes": {},
                    "children": [
                        {
                            "name": "slow",
                            "duration_s": 1.5,
                            "attributes": {},
                            "children": [],
                        },
                        {
                            "name": "fast",
                            "duration_s": 0.1,
                            "attributes": {},
                            "children": [],
                        },
                    ],
                }
            ]
        }
        path = tmp_path / "trace.json"
        path.write_text(_json.dumps(trace))
        rc = main(["obs", str(path), "--top", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "slowest spans" in out
        lines = [line for line in out.splitlines() if "|" in line]
        # "slow" (1.5s self) outranks "root" (0.4s self); "fast" is cut.
        body = "\n".join(lines)
        assert "slow" in body
        assert "fast" not in body
        assert body.index("slow") < body.index("root")
