"""configure_logging / kv: verbosity mapping, handler hygiene, formatting."""

from __future__ import annotations

import io
import logging

from repro.obs.logs import (
    ROOT_LOGGER,
    configure_logging,
    get_logger,
    kv,
    verbosity_to_level,
)


def _obs_handlers() -> list[logging.Handler]:
    return [
        h
        for h in logging.getLogger(ROOT_LOGGER).handlers
        if getattr(h, "_f2pm_obs_handler", False)
    ]


class TestKv:
    def test_basic_pairs(self):
        assert kv(a=1, b="x") == "a=1 b=x"

    def test_float_compact(self):
        assert kv(v=0.123456789) == "v=0.123457"
        assert kv(v=1e6) == "v=1e+06"

    def test_quoting_spaces_and_empty(self):
        assert kv(msg="two words") == 'msg="two words"'
        assert kv(msg="") == 'msg=""'


class TestVerbosity:
    def test_mapping(self):
        assert verbosity_to_level(0) == logging.WARNING
        assert verbosity_to_level(-3) == logging.WARNING
        assert verbosity_to_level(1) == logging.INFO
        assert verbosity_to_level(2) == logging.DEBUG
        assert verbosity_to_level(7) == logging.DEBUG


class TestConfigureLogging:
    def test_levels_filter_events(self):
        buf = io.StringIO()
        configure_logging(0, stream=buf)
        log = get_logger("core.test")
        log.info("hidden %s", kv(a=1))
        log.warning("shown %s", kv(b=2))
        out = buf.getvalue()
        assert "hidden" not in out
        assert "WARNING repro.core.test shown b=2" in out

    def test_verbose_shows_info(self):
        buf = io.StringIO()
        configure_logging(1, stream=buf)
        get_logger("cli").info("event %s", kv(path="h.npz"))
        assert "INFO repro.cli event path=h.npz" in buf.getvalue()

    def test_reconfigure_replaces_handler(self):
        configure_logging(1, stream=io.StringIO())
        configure_logging(2, stream=io.StringIO())
        configure_logging(0, stream=io.StringIO())
        assert len(_obs_handlers()) == 1

    def test_no_double_logging_after_reconfigure(self):
        first = io.StringIO()
        second = io.StringIO()
        configure_logging(1, stream=first)
        configure_logging(1, stream=second)
        get_logger("x").info("once")
        assert first.getvalue() == ""
        assert second.getvalue().count("once") == 1

    def test_get_logger_names(self):
        assert get_logger().name == "repro"
        assert get_logger("system.simulator").name == "repro.system.simulator"
