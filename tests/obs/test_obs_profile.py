"""The stage profiler: latency histograms plus self-measured overhead."""

from __future__ import annotations

import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import (
    OVERHEAD_COUNTER,
    StageProfiler,
    _NullStage,
    get_profiler,
)


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


@pytest.fixture
def profiler(registry):
    return StageProfiler(metrics=registry, calibration_reps=16)


def test_stage_records_wall_and_cpu_histograms(profiler, registry):
    with profiler.stage("predict"):
        time.sleep(0.01)
    snap = registry.snapshot()
    wall = snap["histograms"]["profile.predict.wall_seconds"]
    assert wall["count"] == 1
    assert wall["max"] >= 0.01
    assert "profile.predict.cpu_seconds" in snap["histograms"]


def test_overhead_counter_accumulates_per_exit(profiler, registry):
    for _ in range(10):
        with profiler.stage("x"):
            pass
    overhead = registry.counter(OVERHEAD_COUNTER).value
    assert overhead > 0.0
    # Bookkeeping for 10 empty stages is microseconds, not milliseconds.
    assert overhead < 0.1


def test_calibration_estimates_a_positive_entry_cost(profiler):
    assert profiler.entry_cost_s > 0.0
    assert profiler.entry_cost_s < 1e-3  # an empty pair is sub-millisecond


def test_calibration_does_not_pollute_the_real_registry(profiler, registry):
    assert "profile.calibration.wall_seconds" not in registry.snapshot().get(
        "histograms", {}
    )


def test_record_hot_loop_api(profiler, registry):
    profiler.record("sim.tick", 0.002)
    profiler.record("sim.tick", 0.004, cpu_seconds=0.003)
    snap = registry.snapshot()
    wall = snap["histograms"]["profile.sim.tick.wall_seconds"]
    assert wall["count"] == 2
    assert wall["total"] == pytest.approx(0.006)
    cpu = snap["histograms"]["profile.sim.tick.cpu_seconds"]
    assert cpu["count"] == 1
    assert registry.counter(OVERHEAD_COUNTER).value > 0.0


def test_disabled_registry_disables_profiling(registry):
    profiler = StageProfiler(metrics=registry, calibration_reps=4)
    registry.disable()
    assert not profiler.enabled
    assert isinstance(profiler.stage("x"), _NullStage)
    profiler.record("x", 1.0)
    registry.enable()
    assert registry.snapshot()["histograms"] == {}


def test_overhead_fraction(profiler, registry):
    registry.inc(OVERHEAD_COUNTER, 0.05)
    assert profiler.overhead_fraction(1.0) == pytest.approx(
        profiler.overhead_seconds
    )
    assert profiler.overhead_fraction(0.0) == 0.0


def test_report_shape(profiler):
    with profiler.stage("predict"):
        pass
    report = profiler.report()
    assert "predict.wall_seconds" in report["stages"]
    assert report["overhead_seconds"] >= 0.0
    assert report["entry_cost_s"] == profiler.entry_cost_s


def test_default_profiler_is_a_singleton():
    assert get_profiler() is get_profiler()
