"""Manifests: jsonable sanitizer, build/write/read, F2PM.run integration."""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.core import F2PM, F2PMConfig
from repro.core.aggregation import AggregationConfig
from repro.obs import (
    MANIFEST_SCHEMA,
    Span,
    build_manifest,
    jsonable,
    manifest_path_for,
    read_manifest,
    write_manifest,
)


class TestJsonable:
    def test_plain_types_pass_through(self):
        assert jsonable({"a": [1, 2.5, "x", None, True]}) == {
            "a": [1, 2.5, "x", None, True]
        }

    def test_nan_inf_become_strings(self):
        assert jsonable(float("nan")) == "nan"
        assert jsonable(float("inf")) == "inf"
        assert jsonable(math.inf * -1) == "-inf"

    def test_numpy_scalars_and_arrays(self):
        assert jsonable(np.float64(1.5)) == 1.5
        assert jsonable(np.int32(3)) == 3
        assert jsonable(np.array([1.0, 2.0])) == [1.0, 2.0]

    def test_dataclass_and_tuple_and_path(self):
        @dataclasses.dataclass
        class Cfg:
            n: int
            names: tuple

        out = jsonable({"cfg": Cfg(3, ("a", "b")), "p": Path("/tmp/x")})
        assert out == {"cfg": {"n": 3, "names": ["a", "b"]}, "p": "/tmp/x"}

    def test_span_flattens_to_dict(self):
        with Span("s") as s:
            pass
        out = jsonable(s)
        assert out["name"] == "s"
        assert out["duration_s"] > 0

    def test_fallback_to_str(self):
        assert jsonable(object()).startswith("<object object")


class TestBuildWriteRead:
    def test_sections_and_round_trip(self, tmp_path):
        doc = build_manifest(
            "test.kind",
            config={"seed": 1},
            seeds={"f2pm": 1},
            metrics={"counters": {}},
            extra={"note": "x"},
        )
        assert doc["schema"] == MANIFEST_SCHEMA
        assert doc["kind"] == "test.kind"
        assert doc["package"]["name"] == "repro"
        assert doc["note"] == "x"
        path = write_manifest(doc, tmp_path / "sub" / "run.manifest.json")
        assert path.exists()
        assert read_manifest(path) == json.loads(json.dumps(doc))

    def test_manifest_path_for(self):
        assert manifest_path_for("out/report.md") == Path("out/report.manifest.json")
        assert manifest_path_for("model.pkl").name == "model.manifest.json"


class TestF2PMManifestIntegration:
    @pytest.fixture(scope="class")
    def result(self, history):
        cfg = F2PMConfig(
            aggregation=AggregationConfig(window_seconds=30.0),
            models=("linear", "reptree"),
            lasso_predictor_lambdas=(1e9,),
            seed=0,
        )
        return F2PM(cfg).run(history)

    def test_manifest_structure(self, result):
        doc = result.manifest()
        assert doc["schema"] == MANIFEST_SCHEMA
        assert doc["kind"] == "f2pm.run"
        assert doc["seeds"] == {"f2pm": 0}
        assert doc["config"]["models"] == ["linear", "reptree"]
        # the trained model list matches the configuration
        assert doc["model_names"] == ["lasso(1e9)", "linear", "reptree"]
        names = {r["name"] for r in doc["reports"]}
        assert names == {"linear", "reptree", "lasso(1e9)"}
        assert json.loads(json.dumps(doc))  # fully JSON-serializable

    def test_span_tree_covers_phases_with_positive_durations(self, result):
        assert result.trace is not None
        tree = result.trace
        assert tree.name == "f2pm.run"
        for phase in ("aggregate", "select", "split", "train_validate"):
            node = tree.find(phase)
            assert node is not None, phase
            assert node.duration > 0
        # per-model evaluate spans nest under train_validate
        evaluates = [n for n in tree.walk() if n.name == "evaluate"]
        assert len(evaluates) == len(result.reports)
        for ev in evaluates:
            assert ev.find("train").duration > 0
            assert ev.find("validate").duration > 0

    def test_manifest_embeds_trace_and_metrics(self, result):
        doc = result.manifest()
        assert doc["trace"]["name"] == "f2pm.run"
        assert doc["trace"]["duration_s"] > 0
        hists = doc["metrics"]["histograms"]
        assert any(k.startswith("model.fit_seconds.") for k in hists)
        assert any(k.startswith("model.predict_seconds.") for k in hists)
