"""MetricsRegistry: instruments, snapshot, reset, disabled fast path."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only increase"):
            Counter().inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_summary(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["total"] == 10.0
        assert s["mean"] == 2.5
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        assert s["p50"] == pytest.approx(3.0)
        assert s["p99"] == 4.0

    def test_histogram_empty_summary_and_quantile(self):
        h = Histogram()
        assert h.summary() == {"count": 0, "total": 0.0, "mean": 0.0}
        with pytest.raises(ValueError, match="empty"):
            h.quantile(0.5)

    def test_histogram_quantile_bounds(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError, match="q must be"):
            h.quantile(1.5)

    def test_histogram_sample_cap_keeps_summary_exact(self):
        h = Histogram(max_samples=8)
        for v in range(100):
            h.observe(float(v))
        assert h.count == 100
        assert h.total == sum(range(100))
        assert h.max == 99.0
        assert len(h._samples) == 8  # buffer bounded


class TestRegistry:
    def test_recording_and_snapshot(self):
        reg = MetricsRegistry()
        reg.inc("runs", 2)
        reg.inc("runs")
        reg.set_gauge("features", 6)
        reg.observe("fit_seconds", 0.5)
        reg.observe("fit_seconds", 1.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"runs": 3.0}
        assert snap["gauges"] == {"features": 6.0}
        assert snap["histograms"]["fit_seconds"]["count"] == 2
        assert snap["histograms"]["fit_seconds"]["mean"] == 1.0

    def test_snapshot_is_sorted_and_json_ready(self):
        reg = MetricsRegistry()
        reg.inc("z")
        reg.inc("a")
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        parsed = json.loads(reg.to_json())
        assert parsed == snap

    def test_instruments_are_lazily_cached(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.set_gauge("g", 1)
        reg.observe("h", 1)
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_disabled_mode_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("c", 10)
        reg.set_gauge("g", 5)
        reg.observe("h", 0.1)
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_enable_disable_toggle(self):
        reg = MetricsRegistry()
        assert reg.enabled
        reg.disable()
        reg.inc("off")
        reg.enable()
        reg.inc("on")
        assert reg.snapshot()["counters"] == {"on": 1.0}
