"""MetricsRegistry: instruments, snapshot, reset, disabled fast path."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestInstruments:
    def test_counter_increments(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only increase"):
            Counter().inc(-1)

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_summary(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["total"] == 10.0
        assert s["mean"] == 2.5
        assert s["min"] == 1.0
        assert s["max"] == 4.0
        # quantiles come from log buckets: bounded relative error
        assert s["p50"] == pytest.approx(3.0, rel=0.2)
        assert s["p99"] == pytest.approx(4.0, rel=0.2)

    def test_histogram_empty_summary_and_quantile(self):
        h = Histogram()
        assert h.summary() == {"count": 0, "total": 0.0, "mean": 0.0}
        with pytest.raises(ValueError, match="empty"):
            h.quantile(0.5)

    def test_histogram_quantile_bounds(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError, match="q must be"):
            h.quantile(1.5)

    def test_histogram_memory_is_bounded_by_the_bin_space(self):
        # One million observations across twelve decades may not grow the
        # histogram past the fixed log-bucket index space.
        h = Histogram()
        for i in range(100_000):
            h.observe(1e-6 * (1.0 + (i % 9999)) * (10.0 ** (i % 12)))
        assert h.count == 100_000
        assert len(h._buckets) <= 257  # fixed bin space, not O(count)

    def test_histogram_summary_stays_exact_past_any_cap(self):
        h = Histogram()
        for v in range(100):
            h.observe(float(v))
        assert h.count == 100
        assert h.total == sum(range(100))
        assert h.min == 0.0
        assert h.max == 99.0

    def test_histogram_quantile_relative_error_is_bounded(self):
        h = Histogram()
        values = [1.5**i for i in range(40)]
        for v in values:
            h.observe(v)
        for q in (0.1, 0.5, 0.9):
            exact = sorted(values)[int(round(q * (len(values) - 1)))]
            assert h.quantile(q) == pytest.approx(exact, rel=0.2)

    def test_histogram_nonpositive_values_resolve_to_min(self):
        h = Histogram()
        for v in (-2.0, 0.0, 5.0):
            h.observe(v)
        assert h.min == -2.0
        assert h.quantile(0.0) == -2.0
        assert h.count == 3

    def test_histogram_merge_is_lossless(self):
        a, b, whole = Histogram(), Histogram(), Histogram()
        for i, v in enumerate(0.001 * 3.0**i for i in range(20)):
            (a if i % 2 else b).observe(v)
            whole.observe(v)
        a.merge_state(b.state())
        assert a.state() == whole.state()
        assert a.summary() == whole.summary()

    def test_histogram_merges_legacy_sample_dumps(self):
        h = Histogram()
        h.merge_state(
            {"count": 3, "total": 6.0, "min": 1.0, "max": 3.0,
             "samples": [1.0, 2.0, 3.0]}
        )
        assert h.count == 3
        assert h.total == 6.0
        assert h.quantile(0.5) == pytest.approx(2.0, rel=0.2)


class TestRegistry:
    def test_recording_and_snapshot(self):
        reg = MetricsRegistry()
        reg.inc("runs", 2)
        reg.inc("runs")
        reg.set_gauge("features", 6)
        reg.observe("fit_seconds", 0.5)
        reg.observe("fit_seconds", 1.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"runs": 3.0}
        assert snap["gauges"] == {"features": 6.0}
        assert snap["histograms"]["fit_seconds"]["count"] == 2
        assert snap["histograms"]["fit_seconds"]["mean"] == 1.0

    def test_snapshot_is_sorted_and_json_ready(self):
        reg = MetricsRegistry()
        reg.inc("z")
        reg.inc("a")
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        parsed = json.loads(reg.to_json())
        assert parsed == snap

    def test_instruments_are_lazily_cached(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h") is reg.histogram("h")

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.set_gauge("g", 1)
        reg.observe("h", 1)
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_disabled_mode_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("c", 10)
        reg.set_gauge("g", 5)
        reg.observe("h", 0.1)
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_enable_disable_toggle(self):
        reg = MetricsRegistry()
        assert reg.enabled
        reg.disable()
        reg.inc("off")
        reg.enable()
        reg.inc("on")
        assert reg.snapshot()["counters"] == {"on": 1.0}
