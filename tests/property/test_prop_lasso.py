"""Property-based tests for the Lasso coordinate-descent solver."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.lasso import Lasso, lasso_path


def problem(draw, n_min=20, n_max=60, p_max=6):
    n = draw(st.integers(min_value=n_min, max_value=n_max))
    p = draw(st.integers(min_value=1, max_value=p_max))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, p))
    coef = rng.normal(scale=3.0, size=p)
    y = X @ coef + rng.normal(scale=0.1, size=n)
    return X, y


problems = st.composite(problem)()


class TestLassoProperties:
    @given(problems, st.floats(min_value=0.0, max_value=1e4))
    @settings(max_examples=40, deadline=None)
    def test_objective_not_worse_than_zero(self, prob, lam):
        """The paper's Eq. 2 objective at the solution never exceeds the
        objective of the all-zeros vector (which CD starts from)."""
        X, y = prob
        m = Lasso(lam=lam).fit(X, y)
        Xc = X - X.mean(axis=0)
        yc = y - y.mean()
        n = X.shape[0]

        def obj(beta):
            r = yc - Xc @ beta
            return (r @ r) / n + lam * np.abs(beta).sum()

        assert obj(m.coef_) <= obj(np.zeros(X.shape[1])) + 1e-6

    @given(problems)
    @settings(max_examples=30, deadline=None)
    def test_path_sparsity_monotone(self, prob):
        X, y = prob
        lams = np.logspace(-2, 5, 8)
        coefs = lasso_path(X, y, lams)
        nnz = (np.abs(coefs) > 0).sum(axis=1)
        assert (np.diff(nnz) <= 0).all()

    @given(problems, st.floats(min_value=1e-3, max_value=1e3))
    @settings(max_examples=30, deadline=None)
    def test_prediction_finite(self, prob, lam):
        X, y = prob
        m = Lasso(lam=lam).fit(X, y)
        assert np.isfinite(m.predict(X)).all()

    @given(problems)
    @settings(max_examples=30, deadline=None)
    def test_selected_features_match_nonzero_coef(self, prob):
        X, y = prob
        m = Lasso(lam=1.0).fit(X, y)
        assert np.array_equal(m.selected_features_, np.flatnonzero(m.coef_))

    @given(problems, st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=30, deadline=None)
    def test_kkt_conditions_hold(self, prob, lam):
        """Subgradient optimality: |2/n X_k'r| <= lam (+tol) for zero
        coefficients; equality (sign-matched) for active ones."""
        X, y = prob
        m = Lasso(lam=lam, tol=1e-12, max_iter=5000).fit(X, y)
        Xc = X - X.mean(axis=0)
        yc = y - y.mean()
        n = X.shape[0]
        r = yc - Xc @ m.coef_
        grad = 2.0 / n * (Xc.T @ r)
        tol = 1e-4 * max(1.0, np.abs(grad).max())
        for k in range(X.shape[1]):
            if m.coef_[k] == 0.0:
                assert abs(grad[k]) <= lam + tol
            else:
                assert grad[k] == np.sign(m.coef_[k]) * lam + np.clip(
                    grad[k] - np.sign(m.coef_[k]) * lam, -tol, tol
                )
