"""Property-based tests (hypothesis) for the error metrics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.ml.metrics import (
    max_absolute_error,
    mean_absolute_error,
    r2_score,
    relative_absolute_error,
    root_mean_squared_error,
    soft_mean_absolute_error,
)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def vec_pair():
    return st.integers(min_value=1, max_value=60).flatmap(
        lambda n: st.tuples(
            arrays(np.float64, n, elements=finite),
            arrays(np.float64, n, elements=finite),
        )
    )


class TestMetricProperties:
    @given(vec_pair())
    @settings(max_examples=80)
    def test_mae_nonnegative_and_identity(self, pair):
        y, pred = pair
        assert mean_absolute_error(y, pred) >= 0.0
        assert mean_absolute_error(y, y) == 0.0

    @given(vec_pair())
    @settings(max_examples=80)
    def test_mae_symmetry(self, pair):
        y, pred = pair
        assert mean_absolute_error(y, pred) == mean_absolute_error(pred, y)

    @given(vec_pair())
    @settings(max_examples=80)
    def test_ordering_mae_rmse_maxae(self, pair):
        y, pred = pair
        mae = mean_absolute_error(y, pred)
        rmse = root_mean_squared_error(y, pred)
        mx = max_absolute_error(y, pred)
        assert mae <= rmse + 1e-9 * max(1.0, mx)
        assert rmse <= mx + 1e-9 * max(1.0, mx)

    @given(vec_pair(), st.floats(min_value=0.0, max_value=1e6))
    @settings(max_examples=80)
    def test_smae_bounded_by_mae(self, pair, threshold):
        y, pred = pair
        assert soft_mean_absolute_error(y, pred, threshold) <= mean_absolute_error(
            y, pred
        )

    @given(vec_pair(), st.floats(min_value=0.0, max_value=1e5), st.floats(min_value=0.0, max_value=1e5))
    @settings(max_examples=80)
    def test_smae_monotone_in_threshold(self, pair, t1, t2):
        y, pred = pair
        lo, hi = sorted((t1, t2))
        assert soft_mean_absolute_error(y, pred, hi) <= soft_mean_absolute_error(
            y, pred, lo
        )

    @given(vec_pair(), st.floats(min_value=-1e5, max_value=1e5))
    @settings(max_examples=80)
    def test_mae_translation_invariant(self, pair, shift):
        y, pred = pair
        shifted = mean_absolute_error(y + shift, pred + shift)
        base = mean_absolute_error(y, pred)
        # floating-point cancellation tolerance scales with the shift
        assert abs(shifted - base) <= 1e-9 * (abs(shift) + base + 1.0)

    @given(vec_pair(), st.floats(min_value=1e-3, max_value=1e3))
    @settings(max_examples=80)
    def test_mae_scale_equivariant(self, pair, scale):
        y, pred = pair
        scaled = mean_absolute_error(y * scale, pred * scale)
        base = mean_absolute_error(y, pred)
        assert abs(scaled - scale * base) <= 1e-9 * scale * (base + 1.0)

    @given(vec_pair())
    @settings(max_examples=80)
    def test_rae_nonnegative(self, pair):
        y, pred = pair
        assert relative_absolute_error(y, pred) >= 0.0

    @given(st.integers(min_value=2, max_value=50).flatmap(
        lambda n: arrays(np.float64, n, elements=finite)
    ))
    @settings(max_examples=80)
    def test_r2_perfect_prediction(self, y):
        r2 = r2_score(y, y)
        assert r2 in (0.0, 1.0)  # 0.0 for constant target, else 1.0
