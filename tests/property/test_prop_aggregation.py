"""Property-based tests for datapoint aggregation (paper Sec. III-B)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import AggregationConfig, aggregate_run
from repro.core.datapoint import AGGREGATED_FEATURES, FEATURES
from repro.core.history import RunRecord

N_F = len(FEATURES)
TGEN_COL = 0


@st.composite
def random_run(draw):
    n = draw(st.integers(min_value=2, max_value=120))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    intervals = rng.uniform(0.5, 5.0, size=n)
    tgen = np.cumsum(intervals)
    feats = rng.uniform(0.0, 1e6, size=(n, N_F))
    feats[:, TGEN_COL] = tgen
    fail_time = float(tgen[-1] + rng.uniform(0.1, 100.0))
    return RunRecord(features=feats, fail_time=fail_time, metadata={"crashed": 1.0})


windows = st.floats(min_value=1.0, max_value=200.0)


class TestAggregationProperties:
    @given(random_run(), windows)
    @settings(max_examples=60, deadline=None)
    def test_shapes_consistent(self, run, window):
        X, rttf = aggregate_run(run, AggregationConfig(window_seconds=window))
        assert X.shape == (rttf.shape[0], len(AGGREGATED_FEATURES))
        assert X.shape[0] <= run.n_datapoints

    @given(random_run(), windows)
    @settings(max_examples=60, deadline=None)
    def test_rttf_positive_and_decreasing(self, run, window):
        _, rttf = aggregate_run(run, AggregationConfig(window_seconds=window))
        assert (rttf > 0).all()
        assert (np.diff(rttf) < 0).all()

    @given(random_run(), windows)
    @settings(max_examples=60, deadline=None)
    def test_means_within_raw_bounds(self, run, window):
        X, _ = aggregate_run(run, AggregationConfig(window_seconds=window))
        for col in range(N_F):
            lo, hi = run.features[:, col].min(), run.features[:, col].max()
            assert (X[:, col] >= lo - 1e-6).all()
            assert (X[:, col] <= hi + 1e-6).all()

    @given(random_run())
    @settings(max_examples=40, deadline=None)
    def test_one_window_per_point_at_tiny_window(self, run):
        # a window smaller than the minimum spacing isolates every point
        spacing = np.diff(run.column("tgen")).min()
        if spacing <= 1e-3:
            return
        X, _ = aggregate_run(run, AggregationConfig(window_seconds=spacing * 0.49))
        assert X.shape[0] == run.n_datapoints
        # single-point windows: means equal the raw rows, slopes zero
        slope_cols = slice(N_F, N_F + N_F - 1)
        assert np.allclose(X[:, slope_cols], 0.0)

    @given(random_run())
    @settings(max_examples=40, deadline=None)
    def test_giant_window_aggregates_everything(self, run):
        span = run.column("tgen")[-1] + 1.0
        X, _ = aggregate_run(run, AggregationConfig(window_seconds=span))
        assert X.shape[0] == 1
        assert np.allclose(X[0, :N_F], run.features.mean(axis=0))

    @given(random_run(), windows)
    @settings(max_examples=60, deadline=None)
    def test_gen_time_positive(self, run, window):
        X, _ = aggregate_run(run, AggregationConfig(window_seconds=window))
        gen_col = AGGREGATED_FEATURES.index("gen_time")
        assert (X[:, gen_col] > 0).all()

    @given(random_run(), windows)
    @settings(max_examples=50, deadline=None)
    def test_online_batch_parity(self, run, window):
        """The streaming aggregator equals the batch path on any run."""
        from repro.core.aggregation import OnlineAggregator

        batch_X, _ = aggregate_run(run, AggregationConfig(window_seconds=window))
        agg = OnlineAggregator(window)
        rows = []
        for raw in run.features:
            out = agg.add(raw)
            if out is not None:
                rows.append(out)
        tail = agg.flush()
        if tail is not None:
            rows.append(tail)
        online_X = np.vstack(rows)
        assert online_X.shape == batch_X.shape
        assert np.allclose(online_X, batch_X, rtol=1e-12, atol=1e-9)

    @given(random_run(), windows)
    @settings(max_examples=60, deadline=None)
    def test_eq1_slope_bounds(self, run, window):
        """|slope| <= (max-min)/n for each feature within the window."""
        cfg = AggregationConfig(window_seconds=window)
        X, _ = aggregate_run(run, cfg)
        bins = np.floor_divide(run.column("tgen"), window).astype(int)
        uniq = np.unique(bins)
        for row, b in enumerate(uniq):
            mask = bins == b
            n = mask.sum()
            block = run.features[mask]
            for j in range(1, N_F):
                slope = X[row, N_F + j - 1]
                spread = block[:, j].max() - block[:, j].min()
                assert abs(slope) <= spread / n + 1e-9
