"""Property-based tests for the tree learners and split search."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.tree import M5PRegressor, REPTreeRegressor
from repro.ml.tree._splitter import find_best_split


@st.composite
def tree_problem(draw):
    n = draw(st.integers(min_value=10, max_value=80))
    p = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, p))
    y = rng.normal(size=n)
    return X, y


class TestSplitterProperties:
    @given(tree_problem(), st.sampled_from(["sse", "sdr"]))
    @settings(max_examples=60, deadline=None)
    def test_split_has_positive_gain_and_valid_partition(self, prob, criterion):
        X, y = prob
        split = find_best_split(X, y, criterion=criterion, min_samples_leaf=2)
        if split is None:
            return
        assert split.gain > 0.0
        mask = X[:, split.feature] <= split.threshold
        assert mask.sum() >= 2
        assert (~mask).sum() >= 2

    @given(tree_problem())
    @settings(max_examples=60, deadline=None)
    def test_sse_gain_bounded_by_total_sse(self, prob):
        X, y = prob
        split = find_best_split(X, y, criterion="sse")
        if split is None:
            return
        total_sse = float(((y - y.mean()) ** 2).sum())
        assert split.gain <= total_sse + 1e-9

    @given(tree_problem())
    @settings(max_examples=60, deadline=None)
    def test_split_invariant_to_row_order(self, prob):
        X, y = prob
        perm = np.random.default_rng(0).permutation(X.shape[0])
        a = find_best_split(X, y)
        b = find_best_split(X[perm], y[perm])
        assert (a is None) == (b is None)
        if a is not None:
            assert a.feature == b.feature
            assert np.isclose(a.gain, b.gain)
            assert np.isclose(a.threshold, b.threshold)


class TestTreeProperties:
    @given(tree_problem())
    @settings(max_examples=25, deadline=None)
    def test_reptree_predictions_within_target_range(self, prob):
        X, y = prob
        m = REPTreeRegressor(seed=0).fit(X, y)
        pred = m.predict(X)
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9

    @given(tree_problem())
    @settings(max_examples=25, deadline=None)
    def test_reptree_structure_consistent(self, prob):
        X, y = prob
        m = REPTreeRegressor(seed=0).fit(X, y)
        assert m.n_leaves_ == m.root_.n_leaves()
        assert m.depth_ == m.root_.depth()
        assert m.n_leaves_ >= 1

    @given(tree_problem())
    @settings(max_examples=25, deadline=None)
    def test_m5p_finite_predictions(self, prob):
        X, y = prob
        m = M5PRegressor().fit(X, y)
        assert np.isfinite(m.predict(X)).all()

    @given(tree_problem(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=25, deadline=None)
    def test_reptree_max_depth_respected(self, prob, depth):
        X, y = prob
        m = REPTreeRegressor(max_depth=depth, seed=0).fit(X, y)
        assert m.depth_ <= depth

    @given(tree_problem())
    @settings(max_examples=25, deadline=None)
    def test_unpruned_train_error_not_worse_than_stump(self, prob):
        X, y = prob
        m = REPTreeRegressor(prune=False, seed=0).fit(X, y)
        tree_sse = float(((m.predict(X) - y) ** 2).sum())
        stump_sse = float(((y.mean() - y) ** 2).sum())
        assert tree_sse <= stump_sse + 1e-9
