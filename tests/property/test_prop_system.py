"""Property-based tests for the testbed substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.system.resources import MachineConfig, MachineState
from repro.utils.tables import render_table


def small_cfg() -> MachineConfig:
    return MachineConfig(
        ram_kb=524_288.0,
        swap_kb=262_144.0,
        os_base_kb=131_072.0,
        app_working_set_kb=65_536.0,
        min_cache_kb=16_384.0,
        shared_kb=8_192.0,
        buffers_kb=4_096.0,
    )


class TestMachineStateInvariants:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=50_000.0),
                st.integers(min_value=0, max_value=50),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_memory_invariants_under_any_anomaly_sequence(self, events):
        cfg = small_cfg()
        state = MachineState(cfg)
        prev_swap = 0.0
        for leak_kb, threads in events:
            state.leak_memory(leak_kb)
            state.spawn_threads(threads)
            state.update_swap()
            # all observable quantities stay physical
            assert state.mem_free_kb >= 0.0
            assert state.mem_cached_kb >= cfg.min_cache_kb - 1e-9
            assert 0.0 <= state.swap_used_kb <= cfg.swap_kb
            assert 0.0 <= state.swap_pressure <= 1.0
            # swap is a high-water mark: monotone
            assert state.swap_used_kb >= prev_swap - 1e-12
            prev_swap = state.swap_used_kb
            # RAM conservation
            total = (
                state.mem_used_kb
                + state.mem_cached_kb
                + state.mem_free_kb
                + cfg.buffers_kb
                + cfg.shared_kb
            )
            assert total <= cfg.ram_kb + 1e-6

    @given(
        st.floats(min_value=0.0, max_value=2.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=2.0),
        st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=100, deadline=None)
    def test_cpu_always_sums_to_100(self, busy, sys_share, iowait, steal):
        state = MachineState(small_cfg())
        state.account_cpu(
            busy_frac=busy, sys_share=sys_share, iowait_frac=iowait, steal_frac=steal
        )
        parts = state.cpu.as_tuple()
        assert all(p >= 0.0 for p in parts)
        assert sum(parts) == np.float64(100.0) or abs(sum(parts) - 100.0) < 1e-9


class TestTableRendering:
    @given(
        st.lists(
            st.lists(
                st.one_of(
                    st.integers(min_value=-10**6, max_value=10**6),
                    st.floats(
                        min_value=-1e6, max_value=1e6, allow_nan=False
                    ),
                    st.text(
                        alphabet=st.characters(whitelist_categories=("L", "N")),
                        max_size=12,
                    ),
                ),
                min_size=2,
                max_size=2,
            ),
            max_size=8,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_any_content_renders_aligned(self, rows):
        out = render_table(("col_a", "col_b"), rows)
        framed = [l for l in out.splitlines() if l.startswith(("|", "+"))]
        assert len({len(l) for l in framed}) == 1
