"""Property-based tests for the SVM-family learners and ScaledModel."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.lssvm import LSSVMRegressor
from repro.ml.pipeline import ScaledModel
from repro.ml.svr import SVR


@st.composite
def svm_problem(draw):
    n = draw(st.integers(min_value=12, max_value=50))
    p = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, p))
    y = rng.normal(size=n)
    return X, y


class TestSVRProperties:
    @given(svm_problem(), st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=25, deadline=None)
    def test_dual_constraints_always_hold(self, prob, C):
        X, y = prob
        m = SVR(C=C, epsilon=0.1, kernel="rbf", max_iter=20_000).fit(X, y)
        if m.dual_coef_ is not None and m.dual_coef_.size:
            assert (np.abs(m.dual_coef_) <= C + 1e-8).all()
            assert abs(m.dual_coef_.sum()) < 1e-6 * max(1.0, C)

    @given(svm_problem())
    @settings(max_examples=25, deadline=None)
    def test_predictions_finite(self, prob):
        X, y = prob
        m = SVR(C=1.0, epsilon=0.1, kernel="rbf", max_iter=20_000).fit(X, y)
        assert np.isfinite(m.predict(X)).all()

    @given(svm_problem())
    @settings(max_examples=20, deadline=None)
    def test_wide_tube_gives_constant_model(self, prob):
        X, y = prob
        # a tube wider than the target spread needs no support vectors
        wide = 2.0 * (y.max() - y.min() + 1.0)
        m = SVR(C=1.0, epsilon=wide, kernel="rbf").fit(X, y)
        assert m.support_.size == 0
        assert np.allclose(m.predict(X), m.intercept_)


class TestLSSVMProperties:
    @given(svm_problem(), st.floats(min_value=0.5, max_value=100.0))
    @settings(max_examples=25, deadline=None)
    def test_equality_constraint(self, prob, gam):
        X, y = prob
        m = LSSVMRegressor(gam=gam, kernel="rbf").fit(X, y)
        assert abs(m.alpha_.sum()) < 1e-5 * max(1.0, np.abs(m.alpha_).max())

    @given(svm_problem())
    @settings(max_examples=25, deadline=None)
    def test_train_error_decreases_with_gam(self, prob):
        X, y = prob
        if np.allclose(y, y[0]):
            return
        loose = LSSVMRegressor(gam=0.1, kernel="rbf").fit(X, y)
        tight = LSSVMRegressor(gam=1e4, kernel="rbf").fit(X, y)
        err_loose = np.abs(loose.predict(X) - y).mean()
        err_tight = np.abs(tight.predict(X) - y).mean()
        assert err_tight <= err_loose + 1e-9


class TestScaledModelProperties:
    @given(
        svm_problem(),
        st.floats(min_value=1e-3, max_value=1e3),
        st.floats(min_value=-1e3, max_value=1e3),
    )
    @settings(max_examples=25, deadline=None)
    def test_prediction_invariant_to_feature_affine_transform(
        self, prob, scale, shift
    ):
        """Standardization inside ScaledModel makes the pipeline invariant
        to per-feature affine rescaling of the inputs."""
        X, y = prob
        m1 = ScaledModel(LSSVMRegressor(gam=10.0, kernel="rbf")).fit(X, y)
        m2 = ScaledModel(LSSVMRegressor(gam=10.0, kernel="rbf")).fit(
            X * scale + shift, y
        )
        assert np.allclose(
            m1.predict(X), m2.predict(X * scale + shift), atol=1e-6 * (1 + np.abs(y).max())
        )
