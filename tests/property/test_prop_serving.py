"""Property-based tests for the compiled predict plane.

The serving contract, over arbitrary kernel machines and compile
settings: a compile either (a) is *accepted*, in which case the S-MAE
delta it was gated on is real — recomputing it independently stays
within the tolerance — or (b) falls back to the exact model with
bit-identical predictions. There is no third state where a compiled
model silently serves unvetted predictions.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.kernels import KernelExpansion
from repro.ml.metrics import soft_mean_absolute_error
from repro.ml.serving import compile_predictor


class _ExpansionModel:
    def __init__(self, exp):
        self._exp = exp

    def kernel_expansion(self):
        return self._exp

    def predict(self, X):
        return self._exp.predict(X)


@st.composite
def machine(draw):
    n = draw(st.integers(min_value=0, max_value=40))
    d = draw(st.integers(min_value=1, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    kernel = draw(st.sampled_from(["rbf", "linear", "poly"]))
    gamma = draw(st.floats(min_value=0.01, max_value=1.0))
    rng = np.random.default_rng(seed)
    exp = KernelExpansion(
        ref=rng.normal(size=(n, d)),
        coef=rng.normal(size=n),
        intercept=float(rng.normal()),
        kernel=kernel,
        gamma=gamma,
        degree=draw(st.integers(min_value=1, max_value=3)),
    )
    X_val = rng.normal(size=(25, d))
    y_val = rng.normal(size=25)
    return _ExpansionModel(exp), X_val, y_val


class TestCompileContract:
    @given(
        machine(),
        st.integers(min_value=1, max_value=50),
        st.floats(min_value=0.0, max_value=1.0),
        st.sampled_from(["float32", "float64"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_accepted_within_gate_or_exact_bits(self, prob, budget, tol, dtype):
        model, X_val, y_val = prob
        cp = compile_predictor(
            model, budget=budget, tol=tol, X_val=X_val, y_val=y_val, dtype=dtype
        )
        if cp.compiled:
            assert cp.report.reason == "gated-accept"
            # the gate's delta must be reproducible from the outside
            smae_exact = soft_mean_absolute_error(
                y_val, model.predict(X_val), 0.0
            )
            smae_compiled = soft_mean_absolute_error(
                y_val, cp.predict(X_val), 0.0
            )
            assert smae_compiled - smae_exact <= tol + 1e-12
        else:
            assert cp.report.reason == "gate-rejected"
            assert np.array_equal(cp.predict(X_val), model.predict(X_val))

    @given(machine())
    @settings(max_examples=40, deadline=None)
    def test_identity_compile_is_exact(self, prob):
        # float64, unlimited budget, no pruning: predictions must be
        # bit-identical whenever no duplicate rows were merged.
        model, X_val, _ = prob
        cp = compile_predictor(
            model, budget=10_000, prune_tol=0.0, dtype="float64"
        )
        if cp.report.n_merged == 0:
            assert np.array_equal(cp.predict(X_val), model.predict(X_val))

    @given(machine(), st.integers(min_value=1, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_budget_always_respected(self, prob, budget):
        model, _, _ = prob
        cp = compile_predictor(model, budget=budget)
        assert cp.report.n_reference_rows <= max(
            budget, cp.report.n_reference_rows_exact
        )
        if cp.report.n_landmarks:
            assert cp.report.n_reference_rows <= budget
