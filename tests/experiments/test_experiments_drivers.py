"""Tests for the experiment drivers (repro.experiments.*).

Each driver runs on the fast session campaign (not the big default one)
by passing ``history`` explicitly — the default cached campaign is only
exercised by the benchmark harness.
"""

import numpy as np
import pytest

from repro.experiments import (
    fig3_rt_correlation,
    fig4_lasso_path,
    fig5_fitted_models,
    table1_weights,
    table2_smae,
    table3_training_time,
    table4_validation_time,
)
from repro.experiments import common


@pytest.fixture(autouse=True)
def small_f2pm_config(monkeypatch):
    """Make the shared F2PM execution cheap for driver tests."""
    from repro.core import AggregationConfig, F2PMConfig

    def cheap():
        return F2PMConfig(
            aggregation=AggregationConfig(window_seconds=30.0),
            models=("linear", "m5p", "reptree"),
            lasso_predictor_lambdas=(1.0, 1e9),
            seed=0,
        )

    monkeypatch.setattr(common, "default_f2pm_config", cheap)
    common._F2PM_MEMO.clear()
    yield
    common._F2PM_MEMO.clear()


class TestFig3Driver:
    def test_run(self, history, capsys):
        result = fig3_rt_correlation.run(history, verbose=True)
        out = capsys.readouterr().out
        assert "Response Time Correlation" in out
        assert result.r2 > 0.3
        assert np.isfinite(result.slope)

    def test_table_rows(self, history):
        result = fig3_rt_correlation.run(history, verbose=False)
        table = result.table(n_rows=5)
        assert table.count("\n") >= 8  # 5 rows + frame


class TestFig4Driver:
    def test_run(self, history, capsys):
        result = fig4_lasso_path.run(history, verbose=True)
        out = capsys.readouterr().out
        assert "Parameters selected by Lasso" in out
        assert result.lambdas.shape == (10,)
        assert (np.diff(result.counts) <= 0).all()


class TestTable1Driver:
    def test_run(self, history, capsys):
        result = table1_weights.run(history, verbose=True)
        out = capsys.readouterr().out
        assert "Table I" in out
        assert result.selection.n_selected >= 1
        assert isinstance(result.memory_dominated, bool)

    def test_min_features_honored(self, history):
        result = table1_weights.run(history, verbose=False, min_features=3)
        assert result.selection.n_selected >= 3


class TestTable2Driver:
    def test_run(self, history, capsys):
        result = table2_smae.run(history, verbose=True)
        out = capsys.readouterr().out
        assert "Soft Mean Absolute Error" in out
        assert result.smae("linear") > 0.0
        assert isinstance(result.tree_models_best, bool)


class TestTable3Driver:
    def test_run(self, history, capsys):
        result = table3_training_time.run(history, verbose=True)
        assert "Training time" in capsys.readouterr().out
        assert result.train_time("m5p") > 0.0


class TestTable4Driver:
    def test_run(self, history, capsys):
        result = table4_validation_time.run(history, verbose=True)
        assert "Validation time" in capsys.readouterr().out
        assert result.all_sub_second


class TestFig5Driver:
    def test_run(self, history, capsys):
        result = fig5_fitted_models.run(history, verbose=True)
        out = capsys.readouterr().out
        assert "prediction error vs distance" in out
        assert "m5p" in result.bins
        bins = result.bins["m5p"]
        assert bins.mae_near >= 0.0


class TestRejuvenationSweepDriver:
    def test_run(self, history, campaign, capsys):
        from repro.experiments import ext_rejuvenation_sweep

        result = ext_rejuvenation_sweep.run(
            history, verbose=True, horizon_seconds=4000.0, campaign=campaign
        )
        out = capsys.readouterr().out
        assert "availability vs RTTF margin" in out
        assert 0.0 < result.baseline.availability <= 1.0
        assert set(result.by_margin) == set(ext_rejuvenation_sweep.MARGIN_FACTORS)
        assert result.best_factor in result.by_margin


class TestIncrementalCurveDriver:
    def test_run(self, campaign, capsys):
        from repro.experiments import ext_incremental_curve

        result = ext_incremental_curve.run(
            campaign, verbose=True, batch_runs=2, max_runs=4, target_smae_frac=0.001
        )
        out = capsys.readouterr().out
        assert "Learning curve" in out
        assert len(result.result.trace) == 2


class TestMixComparisonDriver:
    def test_run(self, campaign, capsys):
        from repro.experiments import ext_mix_comparison

        result = ext_mix_comparison.run(campaign, verbose=True, n_runs=3)
        out = capsys.readouterr().out
        assert "workload mixes" in out
        assert set(result.outcomes) == {"browsing", "shopping", "ordering"}
        for outcome in result.outcomes.values():
            assert outcome.mean_ttf > 0
        # the anomaly coupling claim: more Home hits -> earlier crashes
        assert result.home_rate_orders_ttf


class TestSharedExecution:
    def test_f2pm_memoized_across_drivers(self, history):
        r2 = table2_smae.run(history, verbose=False)
        r3 = table3_training_time.run(history, verbose=False)
        assert r2.result is r3.result  # one F2PM execution shared


class TestCommon:
    def test_campaign_key_stable(self):
        from repro.experiments.common import DEFAULT_CAMPAIGN, _campaign_key

        assert _campaign_key(DEFAULT_CAMPAIGN) == _campaign_key(DEFAULT_CAMPAIGN)

    def test_history_disk_cache_roundtrip(self, tmp_path, monkeypatch, campaign):
        monkeypatch.setenv("F2PM_CACHE_DIR", str(tmp_path))
        common._HISTORY_MEMO.clear()
        h1 = common.default_history(campaign)
        files = list(tmp_path.glob("*.npz"))
        assert len(files) == 1
        common._HISTORY_MEMO.clear()
        h2 = common.default_history(campaign)  # now loaded from disk
        assert len(h2) == len(h1)
        assert np.array_equal(h2[0].features, h1[0].features)
        common._HISTORY_MEMO.clear()

    def test_in_process_memo_returns_same_object(self, tmp_path, monkeypatch, campaign):
        monkeypatch.setenv("F2PM_CACHE_DIR", str(tmp_path))
        common._HISTORY_MEMO.clear()
        h1 = common.default_history(campaign)
        h2 = common.default_history(campaign)
        assert h1 is h2
        common._HISTORY_MEMO.clear()


class TestF2PMMemoKeying:
    """Regression for the ``id(history)`` memo key: CPython reuses the
    address of a collected object, so a dead campaign could alias a new
    one and serve its stale F2PM result. The memo now keys by content."""

    def test_id_aliasing_cannot_poison_the_memo(self, history):
        import gc

        from repro.core import DataHistory
        from repro.experiments.common import run_f2pm_cached

        h1 = DataHistory(runs=list(history.runs)[:2])
        r1 = run_f2pm_cached(h1)
        stale_id = id(h1)
        del h1

        # Force the aliasing: allocate fresh same-type objects until one
        # lands on the dead history's address (CPython reuses it almost
        # immediately; the loop is belt and braces).
        h2 = None
        for _ in range(512):
            gc.collect()
            candidate = DataHistory(runs=list(history.runs)[2:])
            if id(candidate) == stale_id:
                h2 = candidate
                break
            del candidate
        if h2 is None:  # pragma: no cover - allocator refused to cooperate
            h2 = DataHistory(runs=list(history.runs)[2:])

        # Different content => different F2PM execution, aliased id or not.
        r2 = run_f2pm_cached(h2)
        assert r2 is not r1
        assert r2.dataset.n_samples != r1.dataset.n_samples

    def test_equal_content_shares_one_execution(self, history):
        from repro.core import DataHistory
        from repro.experiments.common import run_f2pm_cached

        h1 = DataHistory(runs=list(history.runs))
        h2 = DataHistory(runs=list(history.runs))
        assert h1 is not h2
        assert run_f2pm_cached(h1) is run_f2pm_cached(h2)

    def test_no_identity_or_repr_cache_keys_in_source(self):
        from pathlib import Path

        import repro

        src = Path(repro.__file__).parent
        for py in sorted(src.rglob("*.py")):
            text = py.read_text()
            assert "id(history)" not in text, py
            assert "repr(config)" not in text, py
