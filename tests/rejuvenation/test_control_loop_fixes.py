"""Regressions for the control-loop bug sweep.

Four defects surfaced while generalizing the single-node loop to the
fleet controller; each gets a pinned regression here:

1. predictions made while holding a stale window were never recorded in
   ``pending_predictions``, so the truth series (``controller.actual_rttf``
   / ``controller.rttf_error``) silently skipped exactly the stretches
   where the controller flew on held data;
2. purely time-based policies were only consulted on window completion,
   so total monitor dropout starved ``PeriodicRejuvenation`` forever;
3. ``sanitize.dropped_total`` was emitted only on window completion —
   the dashboard flat-lined precisely when the sanitizer dropped
   everything;
4. with ``lower_bound_quantile`` set, ``last_prediction`` was
   overwritten with the conservative lower bound, conflating the bound
   with the mean RTTF in telemetry and episode logs.
"""

import numpy as np
import pytest

from repro import obs
from repro.faults import FaultProfile
from repro.ml.linear import LinearRegression
from repro.obs import get_metrics, get_telemetry
from repro.rejuvenation import (
    ManagedSystem,
    ManagedSystemConfig,
    NoRejuvenation,
    PeriodicRejuvenation,
    PredictiveRejuvenation,
    RejuvenationPolicy,
)
from tests.conftest import small_campaign


def managed_config(**kwargs):
    defaults = dict(horizon_seconds=2000.0, window_seconds=20.0)
    defaults.update(kwargs)
    return ManagedSystemConfig(**defaults)


def constant_model(value: float) -> LinearRegression:
    model = LinearRegression()
    model.coef_ = np.zeros(30)
    model.intercept_ = float(value)
    return model


def series_points(snap, name):
    s = snap["series"].get(name)
    if s is None:
        return []
    assert s["stride"] == 1, "test scenario overflowed the series ring"
    return s["points"]


class TestStaleHoldPredictionsRecorded:
    def test_truth_series_covers_held_predictions(self):
        # nan=0.25 drops ~98% of rows: after the first window completes,
        # the policy keeps being consulted via the stale-hold path. The
        # model never triggers (prediction far above margin), so every
        # episode ends in crash or at the horizon — and for the crash
        # episodes, EVERY prediction must get a matching truth point.
        obs.reset()
        log = ManagedSystem(
            small_campaign(n_runs=2),
            managed_config(),
            PredictiveRejuvenation(
                constant_model(1e6), rttf_margin=1.0, consecutive=2
            ),
            fault_profile=FaultProfile.from_spec("nan=0.25"),
        ).run(seed=1)
        holds = get_metrics().snapshot()["counters"].get(
            "sanitize.stale_policy_holds_total", 0
        )
        assert holds >= 1  # the stale path actually ran
        snap = get_telemetry().snapshot()
        predicted_ts = [t for t, _ in series_points(snap, "controller.predicted_rttf")]
        error_ts = [t for t, _ in series_points(snap, "controller.rttf_error")]
        crash_spans = [
            (e.start, e.end) for e in log.episodes if e.outcome == "crash"
        ]
        assert crash_spans
        expected = sorted(
            t for t in predicted_ts if any(s < t <= e for s, e in crash_spans)
        )
        # Pre-fix, held consults emitted a prediction but no truth: the
        # error series missed most of these timestamps.
        assert sorted(error_ts) == expected
        assert len(expected) >= holds  # held consults are the bulk here


class TestTimeTriggerIndependentOfStream:
    def test_periodic_fires_under_total_dropout(self):
        # nan=1.0 corrupts every row, the sanitizer drops everything, no
        # window ever completes. Pre-fix the periodic policy was never
        # consulted and every episode ran to the crash.
        log = ManagedSystem(
            small_campaign(n_runs=2),
            managed_config(),
            PeriodicRejuvenation(400.0),
            fault_profile=FaultProfile.from_spec("nan=1.0"),
        ).run(seed=1)
        body = log.episodes[:-1]
        assert body
        assert all(e.outcome == "rejuvenation" for e in body)
        assert all(e.end - e.start == pytest.approx(400.0) for e in body)

    def test_base_policy_time_trigger_is_inert(self):
        assert NoRejuvenation().time_trigger(1e9) is False
        model = constant_model(100.0)
        pol = PredictiveRejuvenation(model, rttf_margin=50.0)
        assert pol.time_trigger(1e9) is False

    def test_periodic_time_trigger(self):
        pol = PeriodicRejuvenation(300.0)
        assert not pol.time_trigger(299.9)
        assert pol.time_trigger(300.0)


class TestDroppedTotalEmittedPerSample:
    def test_series_present_with_zero_windows(self):
        obs.reset()
        ManagedSystem(
            small_campaign(n_runs=2),
            managed_config(horizon_seconds=600.0),
            NoRejuvenation(),
            fault_profile=FaultProfile.from_spec("nan=1.0"),
        ).run(seed=1)
        snap = get_telemetry().snapshot()
        s = snap["series"].get("sanitize.dropped_total")
        # Pre-fix this series had zero points: it was only emitted when a
        # window completed, and no window ever does under total dropout.
        assert s is not None and s["total"] >= 1
        assert s["last"][1] >= 1.0


class _IntervalStub:
    """Regressor stub with a fixed (lower, mean, upper) interval."""

    def __init__(self, lower, mean, upper):
        self._triple = (lower, mean, upper)

    def predict(self, X):
        return np.full(len(X), self._triple[1])

    def predict_interval(self, X, quantile):
        lo, mid, hi = self._triple
        n = len(X)
        return np.full(n, lo), np.full(n, mid), np.full(n, hi)


class TestLowerBoundExposedSeparately:
    def test_mean_and_bound_are_distinct(self):
        pol = PredictiveRejuvenation(
            _IntervalStub(80.0, 200.0, 320.0),
            rttf_margin=100.0,
            consecutive=1,
            lower_bound_quantile=0.1,
        )
        # the conservative bound (80 < 100) triggers...
        assert pol.should_rejuvenate(np.zeros(30), run_age=10.0)
        # ...but telemetry must report the mean, not the bound
        assert pol.last_prediction == 200.0
        assert pol.last_lower_bound == 80.0

    def test_mean_path_leaves_bound_unset(self):
        pol = PredictiveRejuvenation(constant_model(200.0), rttf_margin=100.0)
        pol.should_rejuvenate(np.zeros(30), run_age=10.0)
        assert pol.last_prediction == 200.0
        assert pol.last_lower_bound is None

    def test_reset_clears_both(self):
        pol = PredictiveRejuvenation(
            _IntervalStub(80.0, 200.0, 320.0),
            rttf_margin=100.0,
            lower_bound_quantile=0.1,
        )
        pol.should_rejuvenate(np.zeros(30), run_age=10.0)
        pol.reset()
        assert pol.last_prediction is None
        assert pol.last_lower_bound is None


class TestPolicyClone:
    def test_clone_shares_model_but_resets_state(self):
        model = constant_model(10.0)
        pol = PredictiveRejuvenation(model, rttf_margin=100.0, consecutive=3)
        pol.should_rejuvenate(np.zeros(30), run_age=5.0)
        assert pol._streak == 1
        twin = pol.clone()
        assert twin.model is model  # heavyweight collaborator shared
        assert twin._streak == 0 and twin.last_prediction is None
        assert pol._streak == 1  # prototype untouched
        assert isinstance(twin, RejuvenationPolicy)

    def test_clones_decide_independently(self):
        pol = PredictiveRejuvenation(
            constant_model(10.0), rttf_margin=100.0, consecutive=2
        )
        a, b = pol.clone(), pol.clone()
        a.should_rejuvenate(np.zeros(30), run_age=1.0)
        assert a._streak == 1 and b._streak == 0
