"""Tests for rejuvenation policies (repro.rejuvenation.policy)."""

import numpy as np
import pytest

from repro.core.datapoint import AGGREGATED_FEATURES
from repro.ml.base import Regressor
from repro.rejuvenation.policy import (
    NoRejuvenation,
    PeriodicRejuvenation,
    PredictiveRejuvenation,
)

N = len(AGGREGATED_FEATURES)


class _ConstModel(Regressor):
    """Predicts a fixed RTTF (test stub)."""

    def __init__(self, value: float = 100.0) -> None:
        self.value = value

    def fit(self, X, y):
        return self

    def predict(self, X):
        return np.full(np.asarray(X).shape[0], self.value)


class _SequenceModel(Regressor):
    """Predicts a scripted sequence of RTTF values."""

    def __init__(self, values=()) -> None:
        self.values = list(values)
        self._i = 0

    def fit(self, X, y):
        return self

    def predict(self, X):
        v = self.values[min(self._i, len(self.values) - 1)]
        self._i += 1
        return np.full(np.asarray(X).shape[0], v)


class TestNoRejuvenation:
    def test_never_fires(self):
        p = NoRejuvenation()
        for age in (0.0, 1e3, 1e6):
            assert not p.should_rejuvenate(np.zeros(N), age)

    def test_name(self):
        assert NoRejuvenation().name == "none"


class TestPeriodicRejuvenation:
    def test_fires_at_interval(self):
        p = PeriodicRejuvenation(600.0)
        assert not p.should_rejuvenate(np.zeros(N), 599.0)
        assert p.should_rejuvenate(np.zeros(N), 600.0)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            PeriodicRejuvenation(0.0)

    def test_name_contains_interval(self):
        assert "600" in PeriodicRejuvenation(600.0).name


class TestPredictiveRejuvenation:
    def test_fires_after_consecutive_low_predictions(self):
        p = PredictiveRejuvenation(_ConstModel(10.0), rttf_margin=50.0, consecutive=3)
        row = np.zeros(N)
        assert not p.should_rejuvenate(row, 1.0)
        assert not p.should_rejuvenate(row, 2.0)
        assert p.should_rejuvenate(row, 3.0)

    def test_streak_broken_by_high_prediction(self):
        model = _SequenceModel([10.0, 200.0, 10.0, 10.0])
        p = PredictiveRejuvenation(model, rttf_margin=50.0, consecutive=2)
        row = np.zeros(N)
        assert not p.should_rejuvenate(row, 1.0)  # low: streak 1
        assert not p.should_rejuvenate(row, 2.0)  # high: streak reset
        assert not p.should_rejuvenate(row, 3.0)  # low: streak 1
        assert p.should_rejuvenate(row, 4.0)  # low: streak 2 -> fire

    def test_never_fires_when_rttf_high(self):
        p = PredictiveRejuvenation(_ConstModel(1e6), rttf_margin=50.0)
        for age in range(10):
            assert not p.should_rejuvenate(np.zeros(N), float(age))

    def test_reset_clears_streak(self):
        p = PredictiveRejuvenation(_ConstModel(1.0), rttf_margin=50.0, consecutive=2)
        p.should_rejuvenate(np.zeros(N), 1.0)
        p.reset()
        assert not p.should_rejuvenate(np.zeros(N), 2.0)  # streak restarted

    def test_last_prediction_recorded(self):
        p = PredictiveRejuvenation(_ConstModel(42.0), rttf_margin=50.0)
        p.should_rejuvenate(np.zeros(N), 1.0)
        assert p.last_prediction == pytest.approx(42.0)

    def test_feature_indices_projection(self):
        class _WidthSensitive(Regressor):
            def __init__(self) -> None:
                self.seen = None

            def fit(self, X, y):
                return self

            def predict(self, X):
                self.seen = np.asarray(X).shape[1]
                return np.zeros(np.asarray(X).shape[0])

        model = _WidthSensitive()
        p = PredictiveRejuvenation(
            model, rttf_margin=1.0, feature_indices=np.array([0, 5, 7])
        )
        p.should_rejuvenate(np.arange(float(N)), 1.0)
        assert model.seen == 3

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PredictiveRejuvenation(_ConstModel(), rttf_margin=0.0)
        with pytest.raises(ValueError):
            PredictiveRejuvenation(_ConstModel(), rttf_margin=1.0, consecutive=0)


class TestLowerBoundMode:
    class _IntervalModel(_ConstModel):
        """Mean 100, lower bound 10: conservative mode changes the verdict."""

        def predict_interval(self, X, quantile=0.1):
            n = np.asarray(X).shape[0]
            return np.full(n, 10.0), np.full(n, 100.0), np.full(n, 190.0)

    def test_lower_bound_fires_earlier_than_mean(self):
        model = self._IntervalModel(100.0)
        mean_policy = PredictiveRejuvenation(model, rttf_margin=50.0, consecutive=1)
        lcb_policy = PredictiveRejuvenation(
            model, rttf_margin=50.0, consecutive=1, lower_bound_quantile=0.1
        )
        row = np.zeros(N)
        assert not mean_policy.should_rejuvenate(row, 1.0)  # mean 100 > 50
        assert lcb_policy.should_rejuvenate(row, 1.0)  # lower 10 < 50

    def test_requires_interval_capable_model(self):
        with pytest.raises(ValueError, match="predict_interval"):
            PredictiveRejuvenation(
                _ConstModel(), rttf_margin=1.0, lower_bound_quantile=0.1
            )

    def test_invalid_quantile(self):
        with pytest.raises(ValueError, match="quantile"):
            PredictiveRejuvenation(
                self._IntervalModel(), rttf_margin=1.0, lower_bound_quantile=0.9
            )

    def test_works_with_real_bagging_model(self, nonlinear_data):
        from repro.ml.ensemble import BaggingRegressor

        X, y = nonlinear_data
        y_pos = np.abs(y) + 100.0  # RTTF-like positive target
        model = BaggingRegressor(n_estimators=5, seed=0).fit(X, y_pos)
        policy = PredictiveRejuvenation(
            model, rttf_margin=1e6, consecutive=1, lower_bound_quantile=0.2
        )
        # margin is astronomically high: the lower bound is always below it
        assert policy.should_rejuvenate(X[0], 1.0)
        assert policy.last_prediction is not None
        assert policy.last_prediction < 1e6
