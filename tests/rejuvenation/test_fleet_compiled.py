"""Fleet compiled-scoring contracts (FleetConfig.scoring="compiled").

Three guarantees layered on the PR-8 equivalence battery:

1. the default stays exact — ``scoring="exact"`` serves the policy
   model object itself, so the existing batched==scalar bit-identity
   contract is untouched;
2. a passthrough compile (non-kernel model, or an identity-compiled
   kernel model) under ``scoring="compiled"`` reproduces the exact run
   bit-for-bit;
3. a genuinely approximate compile stays within its accuracy gate on
   held-out data while the fleet still runs to completion.
"""

import numpy as np
import pytest

from repro.ml import LSSVMRegressor
from repro.ml.metrics import soft_mean_absolute_error
from repro.ml.serving import compile_predictor
from repro.rejuvenation import (
    FleetConfig,
    FleetController,
    ManagedSystemConfig,
    PredictiveRejuvenation,
    SyntheticFleetSource,
    SyntheticFleetSpec,
)
from repro.rejuvenation.fleet import _N_RAW

SPEC = SyntheticFleetSpec()


def episode_key(node_log):
    return [
        (e.start, e.end, e.outcome, e.predicted_rttf) for e in node_log.episodes
    ]


def fleet_key(log):
    return [episode_key(nl) for nl in log.node_logs]


def run_fleet(policy, scoring, seed=3, n_nodes=8, horizon=1500.0):
    controller = FleetController(
        SyntheticFleetSource(SPEC),
        ManagedSystemConfig(horizon_seconds=horizon, window_seconds=20.0),
        policy,
        FleetConfig(n_nodes=n_nodes, engine="batched", scoring=scoring),
    )
    return controller.run(seed=seed)


@pytest.fixture(scope="module")
def rttf_model():
    """An LS-SVM fitted to window-shaped features with an RTTF target."""
    from repro.core.datapoint import FEATURE_INDEX

    rng = np.random.default_rng(0)
    n = 400
    X = rng.uniform(0.0, 1.0, size=(n, 2 * _N_RAW))
    X[:, FEATURE_INDEX["mem_used"]] = rng.uniform(2e5, 7.8e5, size=n)
    X[:, FEATURE_INDEX["swap_used"]] = rng.uniform(0.0, 2.6e5, size=n)
    y = SPEC.linear_model().predict(X) + rng.normal(scale=5.0, size=n)
    model = LSSVMRegressor(gam=10.0, kernel="rbf", gamma="scale").fit(X, y)
    return model, X, y


class TestConfigValidation:
    def test_default_is_exact(self):
        assert FleetConfig().scoring == "exact"

    def test_unknown_scoring_rejected(self):
        with pytest.raises(ValueError, match="scoring"):
            FleetConfig(scoring="fast")

    def test_compiled_requires_batched_engine(self):
        with pytest.raises(ValueError, match="batched"):
            FleetConfig(scoring="compiled", engine="scalar")


class TestPassthroughParity:
    def test_unsupported_model_is_bit_identical(self):
        # The synthetic linear model has no kernel expansion: compiled
        # scoring degrades to a passthrough wrapper around the exact
        # model, so the whole fleet run must be bit-identical.
        exact = run_fleet(
            PredictiveRejuvenation(SPEC.linear_model(), rttf_margin=150.0),
            "exact",
        )
        compiled = run_fleet(
            PredictiveRejuvenation(SPEC.linear_model(), rttf_margin=150.0),
            "compiled",
        )
        assert fleet_key(exact) == fleet_key(compiled)

    def test_identity_compiled_model_is_bit_identical(self, rttf_model):
        model, _, _ = rttf_model
        exact = run_fleet(
            PredictiveRejuvenation(model, rttf_margin=150.0), "exact"
        )
        identity = compile_predictor(
            model, budget=10_000, prune_tol=0.0, dtype="float64"
        )
        assert identity.compiled
        compiled = run_fleet(
            PredictiveRejuvenation(identity, rttf_margin=150.0), "compiled"
        )
        assert fleet_key(exact) == fleet_key(compiled)


class TestCompiledScoring:
    def test_gated_compile_parity_within_gate(self, rttf_model):
        # Parity-within-gate: the compiled plane's predictions may
        # drift from exact only as far as the accuracy gate allowed.
        model, X, y = rttf_model
        tol = 10.0
        cp = compile_predictor(
            model, budget=96, tol=tol, X_val=X[:150], y_val=y[:150]
        )
        assert cp.compiled and cp.report.reason == "gated-accept"
        held_out = slice(150, 300)
        smae_exact = soft_mean_absolute_error(
            y[held_out], model.predict(X[held_out]), 0.0
        )
        smae_compiled = soft_mean_absolute_error(
            y[held_out], cp.predict(X[held_out]), 0.0
        )
        # held-out drift stays the same order as the gate tolerance
        assert smae_compiled - smae_exact <= 2.0 * tol

        log = run_fleet(
            PredictiveRejuvenation(cp, rttf_margin=150.0), "compiled"
        )
        assert log.n_episodes >= 8
        assert log.scoring_calls > 0

    def test_plain_model_compiled_in_plane(self, rttf_model):
        # Handing the plane an uncompiled kernel model compiles it
        # (ungated) at construction; the run must still complete.
        model, _, _ = rttf_model
        log = run_fleet(
            PredictiveRejuvenation(model, rttf_margin=150.0),
            "compiled",
            horizon=800.0,
        )
        assert log.n_episodes >= 8
        assert log.scored_rows > 0
