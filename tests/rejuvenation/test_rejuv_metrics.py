"""Tests for analytic availability formulas (repro.rejuvenation.metrics)."""

import numpy as np
import pytest

from repro.rejuvenation import (
    ManagedSystem,
    ManagedSystemConfig,
    NoRejuvenation,
    PeriodicRejuvenation,
)
from repro.rejuvenation.metrics import (
    crash_only_availability,
    optimal_periodic_interval,
    periodic_availability,
)


class TestCrashOnlyAvailability:
    def test_known_value(self):
        # MTTF 900, repair 100 -> A = 0.9
        assert crash_only_availability(np.array([900.0, 900.0]), 100.0) == pytest.approx(0.9)

    def test_zero_downtime_perfect(self):
        assert crash_only_availability(np.array([100.0]), 0.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            crash_only_availability(np.array([]), 10.0)
        with pytest.raises(ValueError):
            crash_only_availability(np.array([-5.0]), 10.0)
        with pytest.raises(ValueError):
            crash_only_availability(np.array([100.0]), -1.0)


class TestPeriodicAvailability:
    def test_interval_beyond_support_equals_crash_only(self):
        ttf = np.array([500.0, 700.0, 900.0])
        a_per = periodic_availability(ttf, 10_000.0, 30.0, 300.0)
        a_crash = crash_only_availability(ttf, 300.0)
        assert a_per == pytest.approx(a_crash)

    def test_tiny_interval_pays_only_rejuvenation(self):
        ttf = np.array([500.0, 700.0])
        a = periodic_availability(ttf, 1.0, 30.0, 300.0)
        assert a == pytest.approx(1.0 / 31.0)

    def test_cheap_restarts_make_rejuvenation_win(self):
        rng = np.random.default_rng(0)
        ttf = rng.uniform(400.0, 1200.0, size=500)
        tau, a_best = optimal_periodic_interval(ttf, 10.0, 600.0)
        assert a_best > crash_only_availability(ttf, 600.0)
        assert tau < ttf.max()

    def test_expensive_restarts_make_crash_only_optimal(self):
        # when a planned restart costs as much as a crash, never restart
        ttf = np.full(50, 1000.0)
        tau, a_best = optimal_periodic_interval(ttf, 300.0, 300.0)
        assert a_best == pytest.approx(crash_only_availability(ttf, 300.0), rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            periodic_availability(np.array([100.0]), 0.0, 10.0, 100.0)


class TestAnalyticMatchesSimulation:
    def test_crash_only_agrees(self, campaign, history):
        cfg = ManagedSystemConfig(
            horizon_seconds=8000.0,
            rejuvenation_downtime=30.0,
            crash_downtime=300.0,
            window_seconds=20.0,
        )
        log = ManagedSystem(campaign, cfg, NoRejuvenation()).run(seed=21)
        ttf = np.array([r.fail_time for r in history])
        analytic = crash_only_availability(ttf, 300.0)
        # small-sample agreement: within 6 percentage points
        assert log.availability == pytest.approx(analytic, abs=0.06)

    def test_periodic_agrees(self, campaign, history):
        ttf = np.array([r.fail_time for r in history])
        tau = 0.4 * float(ttf.min())
        cfg = ManagedSystemConfig(
            horizon_seconds=8000.0,
            rejuvenation_downtime=30.0,
            crash_downtime=300.0,
            window_seconds=20.0,
        )
        log = ManagedSystem(campaign, cfg, PeriodicRejuvenation(tau)).run(seed=22)
        analytic = periodic_availability(ttf, tau, 30.0, 300.0)
        assert log.availability == pytest.approx(analytic, abs=0.06)
