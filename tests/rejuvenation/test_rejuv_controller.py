"""Tests for the managed-system controller (repro.rejuvenation.controller)."""

import numpy as np
import pytest

from repro.rejuvenation import (
    ManagedSystem,
    ManagedSystemConfig,
    NoRejuvenation,
    PeriodicRejuvenation,
    summarize,
)
from repro.rejuvenation.controller import Episode, ManagedRunLog


@pytest.fixture
def managed_cfg():
    return ManagedSystemConfig(
        horizon_seconds=3000.0,
        rejuvenation_downtime=30.0,
        crash_downtime=300.0,
        window_seconds=20.0,
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ManagedSystemConfig(horizon_seconds=0.0)
        with pytest.raises(ValueError):
            ManagedSystemConfig(rejuvenation_downtime=-1.0)
        with pytest.raises(ValueError):
            ManagedSystemConfig(window_seconds=0.0)


class TestEpisodeAndLog:
    def test_episode_uptime(self):
        e = Episode(start=10.0, end=60.0, outcome="crash")
        assert e.uptime == 50.0

    def test_log_counters(self):
        log = ManagedRunLog(policy_name="x")
        log.episodes = [
            Episode(0.0, 10.0, "crash"),
            Episode(10.0, 30.0, "rejuvenation"),
            Episode(30.0, 40.0, "crash"),
            Episode(40.0, 50.0, "horizon"),
        ]
        assert log.n_crashes == 2
        assert log.n_rejuvenations == 1

    def test_availability(self):
        log = ManagedRunLog(policy_name="x", total_uptime=900.0, total_downtime=100.0)
        assert log.availability == pytest.approx(0.9)

    def test_availability_empty(self):
        assert ManagedRunLog(policy_name="x").availability == 1.0


class TestManagedSystem:
    def test_crash_only_baseline(self, campaign, managed_cfg):
        log = ManagedSystem(campaign, managed_cfg, NoRejuvenation()).run(seed=7)
        assert log.n_rejuvenations == 0
        assert log.n_crashes >= 1  # the horizon covers multiple crash cycles
        assert log.total_downtime == pytest.approx(
            log.n_crashes * managed_cfg.crash_downtime, abs=managed_cfg.crash_downtime
        )

    def test_time_accounting_sums_to_horizon(self, campaign, managed_cfg):
        log = ManagedSystem(campaign, managed_cfg, NoRejuvenation()).run(seed=7)
        assert log.total_uptime + log.total_downtime == pytest.approx(
            managed_cfg.horizon_seconds, abs=1.0
        )

    def test_periodic_prevents_crashes(self, campaign, managed_cfg):
        # restart every 120s: far below the minimum ~500s time-to-failure
        policy = PeriodicRejuvenation(120.0)
        log = ManagedSystem(campaign, managed_cfg, policy).run(seed=7)
        assert log.n_crashes == 0
        assert log.n_rejuvenations >= 5

    def test_periodic_beats_crash_only_availability(self, campaign, managed_cfg):
        crash_log = ManagedSystem(campaign, managed_cfg, NoRejuvenation()).run(seed=7)
        peri_log = ManagedSystem(
            campaign, managed_cfg, PeriodicRejuvenation(200.0)
        ).run(seed=7)
        assert peri_log.availability > crash_log.availability

    def test_deterministic(self, campaign, managed_cfg):
        a = ManagedSystem(campaign, managed_cfg, NoRejuvenation()).run(seed=3)
        b = ManagedSystem(campaign, managed_cfg, NoRejuvenation()).run(seed=3)
        assert a.n_crashes == b.n_crashes
        assert a.total_uptime == pytest.approx(b.total_uptime)

    def test_episodes_tile_the_horizon(self, campaign, managed_cfg):
        log = ManagedSystem(campaign, managed_cfg, PeriodicRejuvenation(150.0)).run(
            seed=5
        )
        for earlier, later in zip(log.episodes, log.episodes[1:]):
            assert later.start >= earlier.end - 1e-9

    def test_summarize(self, campaign, managed_cfg):
        log = ManagedSystem(campaign, managed_cfg, NoRejuvenation()).run(seed=7)
        report = summarize(log)
        assert report.policy == "none"
        assert 0.0 < report.availability <= 1.0
        assert report.n_crashes == log.n_crashes
        assert len(report.row()) == len(report.HEADERS)


class TestPredictiveEndToEnd:
    def test_predictive_policy_improves_availability(self, campaign, managed_cfg):
        """The paper's headline story, end to end on the small testbed."""
        from repro.core import AggregationConfig, F2PM, F2PMConfig
        from repro.rejuvenation import PredictiveRejuvenation
        from repro.system import TestbedSimulator

        history = TestbedSimulator(campaign).run_campaign()
        f2pm = F2PM(
            F2PMConfig(
                aggregation=AggregationConfig(window_seconds=20.0),
                models=("m5p",),
                lasso_predictor_lambdas=(),
                seed=0,
            )
        ).run(history)
        model = f2pm.models[("m5p", "all")]
        policy = PredictiveRejuvenation(
            model, rttf_margin=f2pm.smae_threshold, consecutive=2
        )
        predictive = ManagedSystem(campaign, managed_cfg, policy).run(seed=9)
        crash_only = ManagedSystem(campaign, managed_cfg, NoRejuvenation()).run(seed=9)
        assert predictive.availability > crash_only.availability
        assert predictive.n_crashes < max(crash_only.n_crashes, 1)
