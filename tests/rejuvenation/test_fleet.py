"""Fleet controller equivalence battery.

Two contracts anchor the fleet layer, both bit-exact (the same standard
the ``fused`` substrate holds against the legacy ``loop``):

1. a fleet of one node with no floor and no drain reproduces
   ``ManagedSystem.run`` episode-for-episode, and
2. the batched struct-of-arrays engine is indistinguishable from the
   per-node scalar oracle — same episodes, same predictions — across
   seeds, policies, and faulted monitor streams.

On top: the capacity floor, drain, telemetry and the FleetStream SoA
sanitize+aggregate plane.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.aggregation import OnlineAggregator
from repro.core.sanitize import StreamSanitizer
from repro.faults import FaultProfile
from repro.obs import get_telemetry
from repro.rejuvenation import (
    FleetConfig,
    FleetController,
    FleetStream,
    ManagedSystem,
    ManagedSystemConfig,
    NoRejuvenation,
    PeriodicRejuvenation,
    PredictiveRejuvenation,
    SimulatedFleetSource,
    SyntheticFleetSource,
    SyntheticFleetSpec,
    summarize_fleet,
)
from repro.utils.rng import as_rng
from tests.conftest import small_campaign

SPEC = SyntheticFleetSpec()


def managed_config(**kwargs):
    defaults = dict(horizon_seconds=3000.0, window_seconds=20.0)
    defaults.update(kwargs)
    return ManagedSystemConfig(**defaults)


def episode_key(node_log):
    return [
        (e.start, e.end, e.outcome, e.predicted_rttf) for e in node_log.episodes
    ]


def fleet_key(log):
    return [episode_key(nl) for nl in log.node_logs]


def predictive():
    return PredictiveRejuvenation(SPEC.linear_model(), rttf_margin=150.0)


class TestFleetOfOne:
    """Fleet-of-1 ≡ ManagedSystem, the anchor to the single-node loop."""

    @pytest.mark.parametrize("engine", ["scalar", "batched"])
    @pytest.mark.parametrize("seed", [1, 7])
    def test_matches_managed_system(self, engine, seed):
        campaign = small_campaign(n_runs=2)
        mcfg = managed_config(horizon_seconds=4000.0)
        # The fleet spawns one child stream off the root seed; hand the
        # same child to ManagedSystem so both runs draw identical bits.
        ms = ManagedSystem(campaign, mcfg, PeriodicRejuvenation(400.0)).run(
            seed=as_rng(seed).spawn(1)[0]
        )
        fl = FleetController(
            SimulatedFleetSource(campaign),
            mcfg,
            PeriodicRejuvenation(400.0),
            FleetConfig(n_nodes=1, engine=engine),
        ).run(seed=seed)
        assert episode_key(fl.node_logs[0]) == episode_key(ms)
        assert fl.node_logs[0].total_uptime == ms.total_uptime
        assert fl.node_logs[0].total_downtime == ms.total_downtime

    def test_matches_managed_system_under_faults(self):
        campaign = small_campaign(n_runs=2)
        mcfg = managed_config(horizon_seconds=4000.0)
        profile = FaultProfile.from_spec("nan=0.1,ooo=0.1,dup=0.05")
        ms = ManagedSystem(
            campaign, mcfg, PeriodicRejuvenation(400.0), fault_profile=profile
        ).run(seed=as_rng(9).spawn(1)[0])
        fl = FleetController(
            SimulatedFleetSource(campaign, fault_profile=profile),
            mcfg,
            PeriodicRejuvenation(400.0),
            FleetConfig(n_nodes=1, engine="batched"),
        ).run(seed=9)
        assert episode_key(fl.node_logs[0]) == episode_key(ms)


class TestBatchedVsScalar:
    """The batched SoA engine against the per-node scalar oracle."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_synthetic_predictive(self, seed):
        logs = {}
        for engine in ("scalar", "batched"):
            logs[engine] = FleetController(
                SyntheticFleetSource(SPEC),
                managed_config(),
                predictive(),
                FleetConfig(n_nodes=25, engine=engine),
            ).run(seed=seed)
        assert fleet_key(logs["scalar"]) == fleet_key(logs["batched"])
        assert logs["batched"].n_episodes > 25  # nodes actually cycled

    def test_synthetic_crash_only(self):
        logs = {}
        for engine in ("scalar", "batched"):
            logs[engine] = FleetController(
                SyntheticFleetSource(SPEC),
                managed_config(),
                NoRejuvenation(),
                FleetConfig(n_nodes=10, engine=engine),
            ).run(seed=5)
        assert fleet_key(logs["scalar"]) == fleet_key(logs["batched"])
        assert logs["batched"].n_crashes > 0

    def test_simulated_faulted_stream(self):
        campaign = small_campaign(n_runs=2)
        profile = FaultProfile.from_spec("nan=0.1,ooo=0.1,dup=0.05")
        logs = {}
        for engine in ("scalar", "batched"):
            logs[engine] = FleetController(
                SimulatedFleetSource(campaign, fault_profile=profile),
                managed_config(horizon_seconds=4000.0),
                PeriodicRejuvenation(400.0),
                FleetConfig(n_nodes=4, engine=engine),
            ).run(seed=11)
        assert fleet_key(logs["scalar"]) == fleet_key(logs["batched"])

    def test_lower_bound_quantile(self):
        from repro.ml.ensemble import BaggingRegressor

        rng = np.random.default_rng(0)
        n = 400
        X = rng.normal(size=(n, 30))
        X[:, 2] = rng.uniform(2e5, 7.8e5, size=n)
        X[:, 7] = rng.uniform(0, 2.6e5, size=n)
        y = (SPEC.capacity_kb - X[:, 2] - X[:, 7]) / 600.0
        y += rng.normal(0, 30.0, size=n)
        bag = BaggingRegressor(n_estimators=8, seed=0).fit(X, y)
        logs = {}
        for engine in ("scalar", "batched"):
            pol = PredictiveRejuvenation(
                bag, rttf_margin=150.0, lower_bound_quantile=0.1
            )
            logs[engine] = FleetController(
                SyntheticFleetSource(SPEC),
                managed_config(),
                pol,
                FleetConfig(n_nodes=12, engine=engine),
            ).run(seed=6)
        assert fleet_key(logs["scalar"]) == fleet_key(logs["batched"])
        assert logs["batched"].n_rejuvenations > 0

    def test_batched_rejects_unknown_policy(self):
        from repro.rejuvenation import RejuvenationPolicy

        class Custom(RejuvenationPolicy):
            def should_rejuvenate(self, window_row, run_age):
                return False

        with pytest.raises(ValueError, match="scalar"):
            FleetController(
                SyntheticFleetSource(SPEC),
                managed_config(),
                Custom(),
                FleetConfig(n_nodes=2, engine="batched"),
            ).run(seed=0)


class TestCapacityFloor:
    def test_floor_holds_for_planned_restarts(self):
        # Interval chosen so deferred nodes restart long before their
        # earliest possible crash — the floor then fully explains the
        # live-fraction trajectory.
        fl = FleetController(
            SyntheticFleetSource(SPEC),
            managed_config(),
            PeriodicRejuvenation(300.0),
            FleetConfig(n_nodes=10, capacity_floor=0.8),
        ).run(seed=4)
        assert fl.n_crashes == 0
        assert fl.floor_violations == 0
        assert fl.min_live_fraction >= 0.8
        assert fl.restarts_deferred > 0  # the floor actually bit
        assert fl.n_rejuvenations > 10  # and everyone still cycled

    def test_no_floor_lets_capacity_collapse(self):
        # All nodes boot together and share one interval: with no floor
        # they all restart at once.
        fl = FleetController(
            SyntheticFleetSource(SPEC),
            managed_config(),
            PeriodicRejuvenation(300.0),
            FleetConfig(n_nodes=10, capacity_floor=0.0),
        ).run(seed=4)
        assert fl.min_live_fraction == 0.0
        assert fl.restarts_deferred == 0

    def test_crashes_bypass_floor_and_are_counted(self):
        fl = FleetController(
            SyntheticFleetSource(SPEC),
            managed_config(),
            NoRejuvenation(),
            FleetConfig(n_nodes=10, capacity_floor=0.9),
        ).run(seed=5)
        assert fl.n_crashes > 0
        assert fl.floor_violations > 0
        assert fl.min_live_fraction < 0.9


class TestDrain:
    def test_drain_extends_uptime_and_stays_planned(self):
        fl = FleetController(
            SyntheticFleetSource(SPEC),
            managed_config(),
            PeriodicRejuvenation(600.0),
            FleetConfig(n_nodes=4, drain_seconds=30.0),
        ).run(seed=4)
        ups = {
            round(e.end - e.start, 1)
            for nl in fl.node_logs
            for e in nl.episodes
            if e.outcome == "rejuvenation"
        }
        # trigger at 600s + 30s drain = 630s of serving time
        assert ups == {630.0}

    def test_zero_drain_kills_at_trigger(self):
        fl = FleetController(
            SyntheticFleetSource(SPEC),
            managed_config(),
            PeriodicRejuvenation(600.0),
            FleetConfig(n_nodes=4, drain_seconds=0.0),
        ).run(seed=4)
        ups = {
            round(e.end - e.start, 1)
            for nl in fl.node_logs
            for e in nl.episodes
            if e.outcome == "rejuvenation"
        }
        assert ups == {600.0}


class TestFleetTelemetry:
    def test_series_and_events(self):
        obs.reset()
        fl = FleetController(
            SyntheticFleetSource(SPEC),
            managed_config(),
            predictive(),
            FleetConfig(n_nodes=6),
        ).run(seed=2)
        snap = get_telemetry().snapshot()
        assert {
            "fleet.live_fraction",
            "fleet.capacity_headroom",
            "fleet.predicted_failures_per_hour",
        } <= set(snap["series"])
        kinds = {e["event"] for e in snap["events"]}
        assert "rejuvenation" in kinds
        nodes = {e["node"] for e in snap["events"] if "node" in e}
        assert nodes == set(range(6))  # per-node episode events
        assert fl.scoring_calls > 0
        # batching: strictly fewer model calls than rows scored
        assert fl.scored_rows > fl.scoring_calls

    def test_summarize_fleet_row(self):
        fl = FleetController(
            SyntheticFleetSource(SPEC),
            managed_config(),
            NoRejuvenation(),
            FleetConfig(n_nodes=3),
        ).run(seed=1)
        report = summarize_fleet(fl)
        assert len(report.row()) == len(report.HEADERS)
        assert report.n_nodes == 3
        assert 0.0 < report.availability <= 1.0


class TestFleetStream:
    """The SoA sanitize+aggregate plane against its scalar references."""

    def _scalar_pipeline(self, n, window):
        sans = [StreamSanitizer() for _ in range(n)]
        aggs = [OnlineAggregator(window, policy="repair") for _ in range(n)]
        return sans, aggs

    def test_matches_scalar_pipeline_on_mixed_stream(self):
        n, window = 5, 10.0
        rng = np.random.default_rng(0)
        stream = FleetStream(n, window)
        sans, aggs = self._scalar_pipeline(n, window)
        got, want = [], []
        t = np.zeros(n)
        for _ in range(400):
            ids = np.flatnonzero(rng.uniform(size=n) < 0.7)
            if ids.size == 0:
                continue
            t[ids] += rng.uniform(0.5, 2.0, size=ids.size)
            rows = rng.normal(10.0, 1.0, size=(ids.size, 15))
            rows[:, 0] = t[ids]
            # sprinkle faults: NaN rows, backwards clocks, duplicates
            u = rng.uniform(size=ids.size)
            rows[u < 0.05, 3] = np.nan
            back = u > 0.93
            rows[back, 0] = np.maximum(t[ids][back] - 3.0, 0.0)
            for i, win in stream.ingest(ids, rows.copy()).items():
                got.append((i, win))
            for i, raw in zip(ids, rows):
                d = sans[int(i)].process(raw.copy())
                if d.row is None:
                    continue
                win = aggs[int(i)].add(d.row)
                if win is not None:
                    want.append((int(i), win))
        assert len(got) == len(want) > 0
        for (gi, gw), (wi, ww) in zip(got, want):
            assert gi == wi
            assert gw.tobytes() == ww.tobytes()
        assert stream.dropped_total == sum(s.dropped_total for s in sans)
        assert stream.late_dropped == sum(a.late_dropped for a in aggs)

    def test_duplicate_ids_in_one_batch(self):
        # Duplication faults can put several rows for one node in one
        # tick; they must apply in order, exactly like sequential adds.
        window = 10.0
        stream = FleetStream(1, window)
        san = StreamSanitizer()
        agg = OnlineAggregator(window, policy="repair")
        ids = np.zeros(6, dtype=np.int64)
        rows = np.tile(np.arange(15, dtype=float), (6, 1))
        rows[:, 0] = [1.0, 4.0, 4.0, 8.0, 12.0, 13.0]
        got = stream.ingest(ids, rows.copy())
        want = None
        for raw in rows:
            d = san.process(raw.copy())
            w = agg.add(d.row)
            if w is not None:
                want = w
        assert want is not None and 0 in got
        assert got[0].tobytes() == want.tobytes()

    def test_clock_reset_rebase_matches_scalar(self):
        window = 50.0
        stream = FleetStream(1, window)
        san = StreamSanitizer()
        agg = OnlineAggregator(window, policy="repair")
        times = list(np.arange(1.0, 40.0, 1.0)) + [2.0, 3.0, 4.0]
        got = {}
        for t in times:
            row = np.full(15, 5.0)
            row[0] = t
            got.update(stream.ingest(np.zeros(1, dtype=np.int64), row[None, :].copy()))
            d = san.process(row.copy())
            if d.row is not None:
                agg.add(d.row)
        assert stream.resets_total == san.resets_total == 1
        assert stream.dropped_total == san.dropped_total

    def test_reset_node_preserves_quality_counters(self):
        stream = FleetStream(2, 10.0)
        bad = np.full((1, 15), np.nan)
        stream.ingest(np.zeros(1, dtype=np.int64), bad)
        assert stream.dropped_total == 1
        stream.reset_node(0)
        assert stream.dropped_total == 1  # cumulative, like the scalar layer

    def test_misshaped_rows_dropped(self):
        stream = FleetStream(1, 10.0)
        out = stream.ingest(np.zeros(1, dtype=np.int64), [np.zeros(7)])
        assert out == {}
        assert stream.dropped_total == 1

    def test_window_buffer_growth(self):
        # More rows per window than the initial capacity: the SoA buffer
        # must grow, not truncate.
        window = 1000.0
        stream = FleetStream(1, window)
        san = StreamSanitizer()
        agg = OnlineAggregator(window, policy="repair")
        want = None
        for t in list(np.arange(1.0, 150.0)) + [1001.0]:
            row = np.full(15, 2.0)
            row[0] = t
            got = stream.ingest(np.zeros(1, dtype=np.int64), row[None, :].copy())
            d = san.process(row.copy())
            w = agg.add(d.row)
            if w is not None:
                want = w
        assert want is not None and got[0].tobytes() == want.tobytes()


class TestValidation:
    def test_fleet_config_validation(self):
        with pytest.raises(ValueError, match="n_nodes"):
            FleetConfig(n_nodes=0)
        with pytest.raises(ValueError, match="capacity_floor"):
            FleetConfig(capacity_floor=1.0)
        with pytest.raises(ValueError, match="drain_seconds"):
            FleetConfig(drain_seconds=-1.0)
        with pytest.raises(ValueError, match="engine"):
            FleetConfig(engine="gpu")

    def test_determinism(self):
        a = FleetController(
            SyntheticFleetSource(SPEC),
            managed_config(),
            predictive(),
            FleetConfig(n_nodes=8),
        ).run(seed=3)
        b = FleetController(
            SyntheticFleetSource(SPEC),
            managed_config(),
            predictive(),
            FleetConfig(n_nodes=8),
        ).run(seed=3)
        assert fleet_key(a) == fleet_key(b)
