"""Property suite: batch↔online parity and strict no-op bit-identity.

The two pipelines (``aggregate_run`` over a stored history, and
``OnlineAggregator`` fed one datapoint at a time) must produce the same
windows — on clean streams, after sanitation of dirty streams, and for
every ``min_points`` setting. Strict sanitation of clean data must be a
no-op down to object identity.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import AggregationConfig, OnlineAggregator, aggregate_run
from repro.core.datapoint import FEATURES
from repro.core.history import RunRecord
from repro.core.sanitize import sanitize_run
from repro.faults import CORRUPTION_MODELS, DirtyRun, FaultProfile

N_F = len(FEATURES)


@st.composite
def clean_run(draw):
    n = draw(st.integers(min_value=4, max_value=120))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    tgen = np.cumsum(rng.uniform(0.5, 5.0, size=n))
    # Telemetry-like values: a bounded band so white noise cannot mimic a
    # genuine defect (a 64x scale dip, a 50x sampling gap, a 25x fail
    # gap). The strict no-op guarantee is calibrated for plausible
    # monitor output, not for adversarial noise.
    feats = rng.uniform(2e5, 8e5, size=(n, N_F))
    feats[:, 0] = tgen
    fail = float(tgen[-1] + rng.uniform(0.1, 2.0))
    return RunRecord(features=feats, fail_time=fail, metadata={"crashed": 1.0})


windows = st.floats(min_value=2.0, max_value=100.0)
min_points = st.integers(min_value=1, max_value=5)
model_names = st.sampled_from(sorted(CORRUPTION_MODELS))
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def stream_windows(run, window, *, min_pts=1, policy="strict"):
    agg = OnlineAggregator(window, min_points=min_pts, policy=policy)
    rows = []
    for raw in run.features:
        out = agg.add(raw)
        if out is not None:
            rows.append(out)
    final = agg.flush()
    if final is not None:
        rows.append(final)
    return np.vstack(rows) if rows else np.empty((0, 0))


class TestCleanParity:
    @given(clean_run(), windows, min_points)
    @settings(max_examples=60, deadline=None)
    def test_online_equals_batch_for_any_min_points(self, run, window, min_pts):
        config = AggregationConfig(window_seconds=window, min_points=min_pts)
        batch_X, _ = aggregate_run(run, config)
        online_X = stream_windows(run, window, min_pts=min_pts)
        assert online_X.shape[0] == batch_X.shape[0]
        if batch_X.shape[0]:
            np.testing.assert_array_equal(online_X, batch_X)

    @given(clean_run(), windows)
    @settings(max_examples=40, deadline=None)
    def test_repair_mode_is_identical_on_clean_streams(self, run, window):
        strict_X = stream_windows(run, window, policy="strict")
        repair_X = stream_windows(run, window, policy="repair")
        np.testing.assert_array_equal(strict_X, repair_X)


class TestStrictNoOp:
    @given(clean_run())
    @settings(max_examples=60, deadline=None)
    def test_strict_returns_the_same_object(self, run):
        out, report = sanitize_run(run, policy="strict")
        assert report.clean
        assert out is run

    @given(clean_run())
    @settings(max_examples=60, deadline=None)
    def test_repair_on_clean_changes_nothing(self, run):
        out, report = sanitize_run(run, policy="repair")
        assert report.clean
        np.testing.assert_array_equal(out.features, run.features)
        assert out.fail_time == run.fail_time


class TestDirtyParity:
    @given(clean_run(), model_names, seeds, windows)
    @settings(max_examples=60, deadline=None)
    def test_sanitized_stream_matches_sanitized_batch(
        self, run, model, seed, window
    ):
        """repair(dirty) then stream == repair(dirty) then batch.

        Whatever a corruption model did, once the sanitize layer has
        produced a valid RunRecord the two aggregation paths must agree
        exactly — the batch↔online parity guarantee under *every*
        corruption model.
        """
        profile = FaultProfile.from_spec(
            f"{model}=1" if model in ("reset", "truncate", "failskew") else f"{model}=0.1"
        )
        dirty = profile.apply_run(DirtyRun.from_run(run), seed=seed)
        fixed, _ = sanitize_run(dirty, policy="repair")
        if fixed is None or fixed.n_datapoints == 0:
            return  # quarantined outright: nothing to compare
        batch_X, _ = aggregate_run(fixed, AggregationConfig(window_seconds=window))
        online_X = stream_windows(fixed, window)
        assert online_X.shape[0] == batch_X.shape[0]
        if batch_X.shape[0]:
            np.testing.assert_array_equal(online_X, batch_X)

    @given(clean_run(), seeds, windows)
    @settings(max_examples=40, deadline=None)
    def test_online_repair_absorbs_in_window_reordering(self, run, seed, window):
        """A late arrival still inside its window leaves parity intact."""
        rng = np.random.default_rng(seed)
        feats = run.features.copy()
        # Swap one adjacent pair that stays within a single window.
        bins = (feats[:, 0] // window).astype(np.int64)
        candidates = np.flatnonzero(
            (bins[1:] == bins[:-1]) & (np.diff(feats[:, 0]) > 0)
        )
        if candidates.size == 0:
            return
        i = int(rng.choice(candidates))
        feats[[i, i + 1]] = feats[[i + 1, i]]
        batch_X, _ = aggregate_run(run, AggregationConfig(window_seconds=window))
        agg = OnlineAggregator(window, policy="repair")
        rows = []
        for raw in feats:
            out = agg.add(raw)
            if out is not None:
                rows.append(out)
        final = agg.flush()
        if final is not None:
            rows.append(final)
        online_X = np.vstack(rows)
        np.testing.assert_array_equal(online_X, batch_X)
        assert agg.late_dropped == 0
