"""The rejuvenation control loop under telemetry faults.

The live loop must (a) behave bit-identically on clean streams whether
or not the robustness harness is plugged in, (b) survive every fault
preset without crashing, and (c) fall back to hold-last-prediction when
the monitor stream goes stale instead of going blind.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.sanitize import SanitizeConfig, StreamSanitizer
from repro.faults import FaultProfile
from repro.obs import get_metrics
from repro.rejuvenation import (
    ManagedSystem,
    ManagedSystemConfig,
    PeriodicRejuvenation,
)
from tests.conftest import small_campaign


def managed_config(**kwargs):
    defaults = dict(horizon_seconds=4000.0, window_seconds=20.0)
    defaults.update(kwargs)
    return ManagedSystemConfig(**defaults)


def episodes_key(log):
    return [(e.start, e.end, e.outcome) for e in log.episodes]


class TestCleanIdentity:
    def test_harness_args_do_not_change_clean_runs(self):
        campaign = small_campaign(n_runs=2)
        mcfg = managed_config()
        plain = ManagedSystem(campaign, mcfg, PeriodicRejuvenation(400.0)).run(seed=1)
        armed = ManagedSystem(
            campaign,
            mcfg,
            PeriodicRejuvenation(400.0),
            fault_profile=None,
            sanitize_config=SanitizeConfig(),
        ).run(seed=1)
        assert episodes_key(plain) == episodes_key(armed)
        assert plain.availability == armed.availability

    def test_staleness_timeout_validation(self):
        with pytest.raises(ValueError, match="staleness"):
            ManagedSystemConfig(staleness_timeout=0.0)
        assert managed_config().resolved_staleness_timeout == 100.0
        assert managed_config(staleness_timeout=7.0).resolved_staleness_timeout == 7.0


class TestFaultedRuns:
    @pytest.mark.parametrize(
        "spec", ["nan=0.1", "ooo=0.1", "dup=0.05", "scale=0.02", "nan=0.1,ooo=0.1,dup=0.05"]
    )
    def test_controller_survives_faulted_stream(self, spec):
        campaign = small_campaign(n_runs=2)
        log = ManagedSystem(
            campaign,
            managed_config(),
            PeriodicRejuvenation(400.0),
            fault_profile=FaultProfile.from_spec(spec),
        ).run(seed=1)
        assert log.episodes
        assert 0.0 < log.availability <= 1.0
        total = log.total_uptime + log.total_downtime
        assert total == pytest.approx(4000.0, abs=1e-6)

    def test_faulted_run_is_deterministic(self):
        campaign = small_campaign(n_runs=2)
        profile = FaultProfile.from_spec("nan=0.1,ooo=0.1")
        a = ManagedSystem(
            campaign, managed_config(), PeriodicRejuvenation(400.0), fault_profile=profile
        ).run(seed=5)
        b = ManagedSystem(
            campaign, managed_config(), PeriodicRejuvenation(400.0), fault_profile=profile
        ).run(seed=5)
        assert episodes_key(a) == episodes_key(b)

    def test_heavy_dropout_triggers_hold_last_prediction(self):
        # nan=0.25 per cell drops ~98% of rows: after the first window
        # completes, completions starve for far longer than the 100s
        # staleness timeout while samples keep arriving — the hold-last-
        # window fallback must kick in. The long periodic interval keeps
        # the (now tick-evaluated) time trigger from ending episodes
        # before a window ever completes.
        obs.reset()
        campaign = small_campaign(n_runs=2)
        log = ManagedSystem(
            campaign,
            managed_config(),
            PeriodicRejuvenation(1500.0),
            fault_profile=FaultProfile.from_spec("nan=0.25"),
        ).run(seed=1)
        assert log.episodes
        holds = get_metrics().snapshot()["counters"].get(
            "sanitize.stale_policy_holds_total", 0
        )
        assert holds >= 1


class TestStreamSanitizer:
    def _row(self, tgen, fill=1.0):
        row = np.full(15, fill)
        row[0] = tgen
        return row

    def test_drops_non_finite_rows(self):
        s = StreamSanitizer()
        bad = self._row(1.0)
        bad[3] = np.nan
        decision = s.process(bad)
        assert decision.dropped and decision.row is None
        assert s.dropped_total == 1

    def test_passes_clean_rows_unchanged(self):
        s = StreamSanitizer()
        row = self._row(2.5)
        decision = s.process(row)
        assert not decision.dropped
        np.testing.assert_array_equal(decision.row, row)

    def test_rebases_clock_reset(self):
        s = StreamSanitizer()
        for t in np.arange(1.0, 50.0, 1.0):
            s.process(self._row(t))
        decision = s.process(self._row(2.0))  # clock jumped back
        assert decision.reset
        assert decision.row[0] > 49.0  # re-based onto the monotone clock
        assert s.resets_total == 1
        follow = s.process(self._row(3.0))
        assert follow.row[0] > decision.row[0]

    def test_reset_clears_state(self):
        s = StreamSanitizer()
        for t in (1.0, 2.0, 3.0):
            s.process(self._row(t))
        s.reset()
        decision = s.process(self._row(1.0))
        assert not decision.reset
        np.testing.assert_array_equal(decision.row, self._row(1.0))
