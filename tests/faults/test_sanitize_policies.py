"""The sanitize layer versus every corruption model (ISSUE acceptance grid).

For each corruption model: ``strict`` must reject the dirty history with
a *located* diagnostic, ``repair`` must produce a finite, ordered, fully
labelled training set plus an accurate QualityReport, and clean input
under ``strict`` must be bit-identical to no sanitation at all.
"""

import numpy as np
import pytest

from repro.core import aggregate_history
from repro.core.sanitize import (
    DataQualityError,
    QualityReport,
    SanitizeConfig,
    sanitize_history,
    sanitize_run,
)
from repro.faults import FaultProfile

# model -> (spec, defect kinds strict may report for it)
MODEL_GRID = {
    "nan": ("nan=0.05", {"non_finite", "bad_timestamp"}),
    "dup": ("dup=0.05", {"duplicate_row"}),
    "ooo": ("ooo=0.05", {"out_of_order"}),
    "reset": ("reset=1", {"clock_reset", "out_of_order"}),
    "truncate": ("truncate=1", {"truncated_run"}),
    "scale": ("scale=0.05", {"unit_scale"}),
    "failskew": ("failskew=1", {"fail_time"}),
}
# DroppedSamples leaves gaps whose size depends on the burst length; the
# default gap threshold deliberately tolerates load-induced slow sampling,
# so the grid entry for "drop" pins a tight threshold instead.
DROP_CONFIG = SanitizeConfig(max_gap_factor=3.0)


def dirty_history(history, spec, seed=7):
    return FaultProfile.from_spec(spec).apply_history(history, seed=seed)


class TestStrictRejects:
    @pytest.mark.parametrize("model", sorted(MODEL_GRID))
    def test_strict_raises_located_diagnostic(self, history, model):
        spec, kinds = MODEL_GRID[model]
        dirty = dirty_history(history, spec)
        with pytest.raises(DataQualityError) as exc:
            sanitize_history(dirty, policy="strict")
        issues = exc.value.issues
        assert issues, "strict raised without diagnostics"
        assert {i.kind for i in issues} <= kinds
        first = issues[0]
        assert "run" in first.location
        assert first.kind in str(exc.value)

    def test_strict_rejects_gaps_under_tight_threshold(self, history):
        dirty = dirty_history(history, "drop=0.05")
        with pytest.raises(DataQualityError) as exc:
            sanitize_history(dirty, policy="strict", config=DROP_CONFIG)
        assert {i.kind for i in exc.value.issues} == {"gap"}


class TestRepairProducesTrainingSet:
    @pytest.mark.parametrize("model", sorted(MODEL_GRID) + ["drop"])
    def test_repair_yields_finite_ordered_labelled(self, history, model):
        spec = MODEL_GRID[model][0] if model in MODEL_GRID else "drop=0.05"
        dirty = dirty_history(history, spec)
        quality = QualityReport(policy="repair")
        fixed, report = sanitize_history(dirty, policy="repair", quality=quality)
        assert report is quality
        for run in fixed:
            assert np.isfinite(run.features).all()
            assert (np.diff(run.features[:, 0]) >= 0).all()
            assert np.isfinite(run.fail_time)
        # truncation repair demotes every run to non-crashed (their RTTF
        # would be a lower bound only), so aggregation must be told to
        # keep them; every other model keeps labels positive.
        if model == "truncate":
            from repro.core import AggregationConfig

            dataset = aggregate_history(
                fixed, AggregationConfig(include_non_crashed=True)
            )
        else:
            dataset = aggregate_history(fixed)
            assert (dataset.y > 0).all()
        assert dataset.n_samples > 0
        assert np.isfinite(dataset.X).all()
        assert np.isfinite(dataset.y).all()

    @pytest.mark.parametrize("model", sorted(MODEL_GRID))
    def test_repair_report_is_accurate(self, history, model):
        spec, kinds = MODEL_GRID[model]
        dirty = dirty_history(history, spec)
        _, report = sanitize_history(dirty, policy="repair")
        assert not report.clean
        counts = report.counts_by_kind()
        assert set(counts) <= kinds | {"duplicate_row"}  # repair may re-sweep dups
        assert sum(counts.values()) == len(report.issues)
        assert report.to_dict()["schema"] == "f2pm-quality-report-v1"

    @pytest.mark.parametrize("model", sorted(MODEL_GRID))
    def test_repair_output_is_strict_clean(self, history, model):
        """Repair must be idempotent: its output passes strict untouched."""
        spec, _ = MODEL_GRID[model]
        dirty = dirty_history(history, spec)
        fixed, _ = sanitize_history(dirty, policy="repair")
        _, recheck = sanitize_history(fixed, policy="strict")
        assert recheck.clean

    def test_failskew_repair_restores_positive_labels(self, history):
        dirty = dirty_history(history, "failskew=1")
        assert any(r.fail_time < r.features[-1, 0] for r in dirty)
        fixed, report = sanitize_history(dirty, policy="repair")
        assert all(r.fail_time >= r.features[-1, 0] for r in fixed)
        assert report.counts_by_kind().get("fail_time", 0) >= 1
        dataset = aggregate_history(fixed)
        assert (dataset.y >= 0).all()


class TestQuarantine:
    def test_quarantine_drops_nan_rows(self, history):
        dirty = dirty_history(history, "nan=0.05")
        fixed, report = sanitize_history(dirty, policy="quarantine")
        for run in fixed:
            assert np.isfinite(run.features).all()
        assert any(r.n_rows_out < r.n_rows_in for r in report.runs)

    def test_quarantine_drops_failskew_runs(self, history):
        dirty = dirty_history(history, "failskew=1")
        with pytest.raises(DataQualityError, match="quarantin"):
            # Every run has a skewed fail event -> the whole history dies.
            sanitize_history(dirty, policy="quarantine")

    def test_repair_refuses_to_shred_a_run(self, history):
        """max_quarantine_fraction stops repair from silently losing a run."""
        from repro.core.sanitize import sanitize_arrays

        feats = history[0].features.copy()
        # Unusable timestamps cannot be repaired, only dropped; poisoning
        # most of them trips the repair-mode loss guard.
        feats[::2, 0] = np.nan
        _, _, _, _, report = sanitize_arrays(
            feats,
            None,
            float(history[0].fail_time),
            crashed=True,
            policy="repair",
            config=SanitizeConfig(max_quarantine_fraction=0.25),
        )
        assert report.quarantined


class TestCleanNoOp:
    def test_strict_on_clean_is_bit_identical(self, history):
        clean, report = sanitize_history(history, policy="strict")
        assert report.clean
        assert clean.content_fingerprint() == history.content_fingerprint()
        for a, b in zip(clean, history):
            assert a is b  # the very same objects: a true no-op

    def test_repair_on_clean_is_bit_identical(self, history):
        clean, report = sanitize_history(history, policy="repair")
        assert report.clean
        assert clean.content_fingerprint() == history.content_fingerprint()

    def test_sanitize_run_clean_returns_same_object(self, history):
        run, report = sanitize_run(history[0], policy="strict")
        assert run is history[0]
        assert report.clean

    def test_aggregate_history_strict_matches_unsanitized(self, history):
        base = aggregate_history(history)
        checked = aggregate_history(history, sanitize="strict")
        np.testing.assert_array_equal(base.X, checked.X)
        np.testing.assert_array_equal(base.y, checked.y)
