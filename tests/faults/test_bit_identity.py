"""Strict-mode no-op guarantee, pinned against a committed fingerprint.

``clean_fingerprint.txt`` holds the content fingerprint of the standard
test campaign (4 runs, seed 3) at the time the sanitize layer shipped.
Strict sanitation of that campaign must reproduce the *exact same*
fingerprint: if this test fails, either the simulator's output drifted
(update the file deliberately) or the sanitize layer stopped being a
no-op on clean data (a bug — the bit-identity guarantee is broken).
"""

from pathlib import Path

from repro.core.sanitize import sanitize_history

FINGERPRINT_FILE = Path(__file__).with_name("clean_fingerprint.txt")


def test_clean_campaign_matches_committed_fingerprint(history):
    expected = FINGERPRINT_FILE.read_text().strip()
    assert history.content_fingerprint() == expected


def test_strict_sanitize_preserves_committed_fingerprint(history):
    expected = FINGERPRINT_FILE.read_text().strip()
    for policy in ("strict", "repair", "quarantine"):
        sanitized, report = sanitize_history(history, policy=policy)
        assert report.clean, f"{policy} found issues in clean data"
        assert sanitized.content_fingerprint() == expected, (
            f"{policy} mutated clean data (bit-identity guarantee broken)"
        )
