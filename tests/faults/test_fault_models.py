"""The fault-injection harness itself: determinism and corruption shapes."""

import numpy as np
import pytest

from repro.faults import (
    CORRUPTION_MODELS,
    ClockReset,
    DirtyRun,
    DroppedSamples,
    DuplicatedRows,
    FailTimeSkew,
    FaultProfile,
    NaNCells,
    OutOfOrder,
    TruncatedRun,
    UnitScaleGlitch,
)


class TestDeterminism:
    def test_same_seed_same_corruption(self, history):
        profile = FaultProfile.preset("storm")
        a = profile.apply_history(history, seed=42)
        b = profile.apply_history(history, seed=42)
        assert len(a) == len(b)
        for ra, rb in zip(a, b):
            np.testing.assert_array_equal(ra.features, rb.features)
            assert ra.fail_time == rb.fail_time

    def test_different_seed_different_corruption(self, history):
        profile = FaultProfile.from_spec("nan=0.05")
        a = profile.apply_history(history, seed=1)
        b = profile.apply_history(history, seed=2)
        assert any(
            ra.features.shape != rb.features.shape
            or not np.array_equal(ra.features, rb.features)
            for ra, rb in zip(a, b)
        )

    def test_per_run_independence(self, history):
        """Corrupting run k alone matches run k of the whole-history pass."""
        profile = FaultProfile.from_spec("nan=0.05,dup=0.02")
        whole = profile.apply_history(history, seed=9)
        assert len(whole) == len(history)
        # Same run corrupted twice with the history-level seed derivation
        # must agree with itself (regression guard for seed spawning).
        again = profile.apply_history(history, seed=9)
        np.testing.assert_array_equal(whole[2].features, again[2].features)


class TestModelShapes:
    """apply() corrupts in place, so originals are snapshotted up front."""

    def test_nan_cells_injects_non_finite(self, history):
        dirty = NaNCells(rate=0.05).apply(DirtyRun.from_run(history[0]), np.random.default_rng(0))
        assert not np.isfinite(dirty.features).all()

    def test_dropped_samples_removes_rows(self, history):
        run = DirtyRun.from_run(history[0])
        n0 = run.n_datapoints
        dirty = DroppedSamples(rate=0.05).apply(run, np.random.default_rng(0))
        assert dirty.n_datapoints < n0

    def test_duplicated_rows_adds_exact_copies(self, history):
        run = DirtyRun.from_run(history[0])
        n0 = run.n_datapoints
        dirty = DuplicatedRows(rate=0.05).apply(run, np.random.default_rng(0))
        assert dirty.n_datapoints > n0
        t = dirty.features[:, 0]
        assert (np.diff(t) == 0).any()

    def test_out_of_order_creates_inversions(self, history):
        run = DirtyRun.from_run(history[0])
        dirty = OutOfOrder(rate=0.2).apply(run, np.random.default_rng(0))
        assert (np.diff(dirty.features[:, 0]) < 0).any()

    def test_clock_reset_drops_tail_timestamps(self, history):
        run = DirtyRun.from_run(history[0])
        dirty = ClockReset(probability=1.0).apply(run, np.random.default_rng(0))
        assert (np.diff(dirty.features[:, 0]) < 0).any()

    def test_truncated_run_keeps_fail_time(self, history):
        run = DirtyRun.from_run(history[0])
        n0, fail0 = run.n_datapoints, run.fail_time
        dirty = TruncatedRun(probability=1.0).apply(run, np.random.default_rng(0))
        assert dirty.n_datapoints < n0
        assert dirty.fail_time == fail0  # the lie being injected

    def test_unit_scale_glitch_multiplies_cells(self, history):
        run = DirtyRun.from_run(history[0])
        orig = run.features.copy()
        dirty = UnitScaleGlitch(rate=0.05).apply(run, np.random.default_rng(0))
        assert not np.array_equal(dirty.features, orig)

    def test_fail_time_skew_moves_fail_before_last_sample(self, history):
        run = DirtyRun.from_run(history[0])
        dirty = FailTimeSkew(probability=1.0).apply(run, np.random.default_rng(0))
        assert dirty.fail_time < dirty.features[-1, 0]


class TestProfileParsing:
    def test_from_spec_roundtrip(self):
        profile = FaultProfile.from_spec("nan=0.1,dup=0.02,reset=1")
        names = [m.name for m in profile.models]
        assert names == ["nan", "dup", "reset"]

    def test_from_spec_rejects_unknown_model(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultProfile.from_spec("bogus=0.1")

    def test_presets_cover_every_model(self):
        assert set(CORRUPTION_MODELS) <= {
            m.name
            for name in ("default", "storm", "nan", "gaps", "dup", "ooo",
                         "reset", "truncate", "scale", "failskew")
            for m in FaultProfile.preset(name).models
        }

    def test_preset_unknown_raises(self):
        with pytest.raises(ValueError, match="preset"):
            FaultProfile.preset("nope")
