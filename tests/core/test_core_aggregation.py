"""Tests for datapoint aggregation (repro.core.aggregation, paper Sec. III-B)."""

import numpy as np
import pytest

from repro.core.aggregation import AggregationConfig, aggregate_history, aggregate_run
from repro.core.datapoint import AGGREGATED_FEATURES, FEATURES
from repro.core.history import DataHistory, RunRecord


def run_with(tgen, fail_time=1000.0, meta=None, **columns):
    """Build a run with explicit tgen and optional named feature columns."""
    tgen = np.asarray(tgen, dtype=np.float64)
    feats = np.zeros((tgen.size, len(FEATURES)))
    feats[:, 0] = tgen
    for name, vals in columns.items():
        feats[:, FEATURES.index(name)] = vals
    return RunRecord(
        features=feats, fail_time=fail_time, metadata=meta or {"crashed": 1.0}
    )


class TestAggregateRun:
    def test_output_schema(self):
        run = run_with(np.arange(1.0, 100.0))
        X, rttf = aggregate_run(run, AggregationConfig(window_seconds=10.0))
        assert X.shape[1] == len(AGGREGATED_FEATURES)
        assert X.shape[0] == rttf.shape[0] == 10

    def test_window_means(self):
        # two datapoints in one window: the mean must land in the X row
        run = run_with([1.0, 2.0], mem_used=[100.0, 300.0])
        X, _ = aggregate_run(run, AggregationConfig(window_seconds=10.0))
        col = AGGREGATED_FEATURES.index("mem_used")
        assert X[0, col] == pytest.approx(200.0)

    def test_eq1_slope_divides_by_count(self):
        # Eq. (1): slope = (x_end - x_start) / n, n = raw points in window
        run = run_with([1.0, 2.0, 3.0, 4.0], mem_used=[0.0, 5.0, 7.0, 12.0])
        X, _ = aggregate_run(run, AggregationConfig(window_seconds=10.0))
        col = AGGREGATED_FEATURES.index("mem_used_slope")
        assert X[0, col] == pytest.approx((12.0 - 0.0) / 4.0)

    def test_slope_zero_for_single_point_window(self):
        run = run_with([1.0], mem_used=[42.0], fail_time=100.0)
        X, _ = aggregate_run(run, AggregationConfig(window_seconds=10.0))
        col = AGGREGATED_FEATURES.index("mem_used_slope")
        assert X[0, col] == 0.0

    def test_gen_time_is_mean_interval(self):
        # intervals: first point carries its own tgen (2.0), then 3.0, 4.0
        run = run_with([2.0, 5.0, 9.0])
        X, _ = aggregate_run(run, AggregationConfig(window_seconds=20.0))
        col = AGGREGATED_FEATURES.index("gen_time")
        assert X[0, col] == pytest.approx((2.0 + 3.0 + 4.0) / 3.0)

    def test_gen_time_spans_window_boundary(self):
        # the interval preceding a point counts even across windows
        run = run_with([9.0, 11.0])
        X, _ = aggregate_run(run, AggregationConfig(window_seconds=10.0))
        col = AGGREGATED_FEATURES.index("gen_time")
        assert X.shape[0] == 2
        assert X[1, col] == pytest.approx(2.0)

    def test_rttf_label(self):
        run = run_with([5.0, 15.0, 25.0], fail_time=100.0)
        _, rttf = aggregate_run(run, AggregationConfig(window_seconds=10.0))
        assert np.allclose(rttf, [95.0, 85.0, 75.0])

    def test_rttf_decreases_within_run(self, history):
        for run in history:
            _, rttf = aggregate_run(run, AggregationConfig(window_seconds=30.0))
            assert (np.diff(rttf) < 0).all()
            assert (rttf > 0).all()

    def test_min_points_filter(self):
        run = run_with([1.0, 2.0, 3.0, 15.0], fail_time=100.0)
        cfg = AggregationConfig(window_seconds=10.0, min_points=2)
        X, _ = aggregate_run(run, cfg)
        assert X.shape[0] == 1  # the single-point window [10, 20) dropped

    def test_empty_result_when_all_filtered(self):
        run = run_with([1.0, 15.0], fail_time=100.0)
        cfg = AggregationConfig(window_seconds=10.0, min_points=5)
        X, rttf = aggregate_run(run, cfg)
        assert X.shape == (0, len(AGGREGATED_FEATURES))
        assert rttf.shape == (0,)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            AggregationConfig(window_seconds=0.0)
        with pytest.raises(ValueError):
            AggregationConfig(min_points=0)

    def test_mean_tgen_is_first_column(self):
        run = run_with([2.0, 4.0], fail_time=50.0)
        X, rttf = aggregate_run(run, AggregationConfig(window_seconds=10.0))
        assert X[0, 0] == pytest.approx(3.0)
        assert rttf[0] == pytest.approx(47.0)


class TestAggregateHistory:
    def test_stacks_runs_with_ids(self, history):
        ts = aggregate_history(history, AggregationConfig(window_seconds=30.0))
        assert ts.feature_names == AGGREGATED_FEATURES
        assert set(np.unique(ts.run_ids)) == set(range(len(history)))
        assert ts.n_samples == ts.y.shape[0]

    def test_non_crashed_excluded_by_default(self):
        crashed = run_with(np.arange(1.0, 50.0), fail_time=50.0)
        truncated = run_with(
            np.arange(1.0, 50.0), fail_time=50.0, meta={"crashed": 0.0}
        )
        h = DataHistory([crashed, truncated])
        ts = aggregate_history(h, AggregationConfig(window_seconds=10.0))
        assert set(np.unique(ts.run_ids)) == {0}

    def test_non_crashed_included_on_request(self):
        truncated = run_with(
            np.arange(1.0, 50.0), fail_time=50.0, meta={"crashed": 0.0}
        )
        h = DataHistory([truncated])
        cfg = AggregationConfig(window_seconds=10.0, include_non_crashed=True)
        ts = aggregate_history(h, cfg)
        assert ts.n_samples > 0

    def test_all_filtered_raises(self):
        truncated = run_with([1.0], fail_time=10.0, meta={"crashed": 0.0})
        with pytest.raises(ValueError, match="no datapoints"):
            aggregate_history(DataHistory([truncated]))

    def test_smaller_window_more_rows(self, history):
        small = aggregate_history(history, AggregationConfig(window_seconds=15.0))
        large = aggregate_history(history, AggregationConfig(window_seconds=60.0))
        assert small.n_samples > large.n_samples

    def test_no_nans(self, dataset):
        assert np.isfinite(dataset.X).all()
        assert np.isfinite(dataset.y).all()


class TestSingleUniqueRegression:
    """The segment boundaries are now computed by ONE ``np.unique`` call
    and shared across every reduction; the output must stay bit-identical
    to the original formulation that re-derived them three times."""

    @staticmethod
    def reference_aggregate_run(run, config):
        # The pre-optimization implementation, kept verbatim as an oracle.
        feats = run.features
        tgen = feats[:, 0]
        n_raw = feats.shape[0]
        intervals = np.empty(n_raw)
        intervals[0] = tgen[0]
        np.subtract(tgen[1:], tgen[:-1], out=intervals[1:])

        bins = np.floor_divide(tgen, config.window_seconds).astype(np.int64)
        _, starts0, counts0 = np.unique(bins, return_index=True, return_counts=True)
        keep = counts0 >= config.min_points
        starts, counts = starts0[keep], counts0[keep]
        if starts.size == 0:
            return np.empty((0, len(AGGREGATED_FEATURES))), np.empty(0)
        ends = starts + counts - 1

        _, starts1 = np.unique(bins, return_index=True)
        sums = np.add.reduceat(feats, starts1, axis=0)[keep]
        means = sums / counts[:, None]
        slopes = (feats[ends, 1:] - feats[starts, 1:]) / counts[:, None]
        _, starts2 = np.unique(bins, return_index=True)
        gen_sums = np.add.reduceat(intervals, starts2)
        gen_time = (gen_sums[keep] / counts)[:, None]

        X = np.hstack([means, slopes, gen_time])
        rttf = run.fail_time - means[:, 0]
        return X, rttf

    @pytest.mark.parametrize("window,min_points", [(30.0, 1), (60.0, 2), (7.5, 3)])
    def test_bit_identical_to_reference(self, history, window, min_points):
        config = AggregationConfig(window_seconds=window, min_points=min_points)
        for run in history:
            X, rttf = aggregate_run(run, config)
            X_ref, rttf_ref = self.reference_aggregate_run(run, config)
            # Bit-identical, not merely allclose: same reduction order.
            assert np.array_equal(X, X_ref)
            assert np.array_equal(rttf, rttf_ref)

    def test_bit_identical_on_irregular_spacing(self):
        rng = np.random.default_rng(0)
        tgen = np.sort(rng.uniform(0.0, 500.0, size=200))
        run = run_with(tgen, fail_time=600.0)
        config = AggregationConfig(window_seconds=20.0, min_points=2)
        X, rttf = aggregate_run(run, config)
        X_ref, rttf_ref = self.reference_aggregate_run(run, config)
        assert np.array_equal(X, X_ref)
        assert np.array_equal(rttf, rttf_ref)
