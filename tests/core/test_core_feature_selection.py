"""Tests for Lasso feature selection (repro.core.feature_selection)."""

import numpy as np
import pytest

from repro.core.dataset import TrainingSet
from repro.core.feature_selection import (
    LassoFeatureSelector,
    SelectionResult,
    default_lambda_grid,
)


@pytest.fixture
def synthetic_ts():
    """Only features f0 and f2 matter; f1/f3 are noise."""
    rng = np.random.default_rng(0)
    X = rng.normal(size=(300, 4))
    y = 50.0 * X[:, 0] + 20.0 * X[:, 2] + rng.normal(scale=0.1, size=300)
    return TrainingSet(X=X, y=y, feature_names=("f0", "f1", "f2", "f3"))


class TestDefaultGrid:
    def test_paper_grid(self):
        grid = default_lambda_grid()
        assert grid.shape == (10,)
        assert grid[0] == 1.0
        assert grid[-1] == 1e9


class TestSelector:
    def test_counts_non_increasing(self, dataset):
        sel = LassoFeatureSelector().fit(dataset)
        counts = [c for _, c in sel.selection_counts()]
        assert (np.diff(counts) <= 0).all()

    def test_relevant_features_survive(self, synthetic_ts):
        sel = LassoFeatureSelector(np.logspace(-2, 2, 5)).fit(synthetic_ts)
        strongest = sel.strongest_nonempty()
        assert "f0" in strongest.selected

    def test_noise_features_dropped_first(self, synthetic_ts):
        sel = LassoFeatureSelector(np.logspace(-2, 3, 6)).fit(synthetic_ts)
        for result in sel.results_:
            if 0 < result.n_selected < 4:
                assert "f1" not in result.selected
                assert "f3" not in result.selected

    def test_result_at_closest_lambda(self, synthetic_ts):
        sel = LassoFeatureSelector(np.array([1.0, 100.0])).fit(synthetic_ts)
        assert sel.result_at(2.0).lam == 1.0
        assert sel.result_at(50.0).lam == 100.0

    def test_strongest_with_at_least(self, synthetic_ts):
        sel = LassoFeatureSelector(np.logspace(-2, 6, 9)).fit(synthetic_ts)
        result = sel.strongest_with_at_least(2)
        assert result.n_selected >= 2
        # it must be the largest such lambda
        larger = [r for r in sel.results_ if r.lam > result.lam]
        assert all(r.n_selected < 2 for r in larger)

    def test_strongest_with_at_least_fallback(self, synthetic_ts):
        sel = LassoFeatureSelector(np.array([1e9, 1e12])).fit(synthetic_ts)
        # nothing survives these lambdas at all -> ValueError
        if all(r.n_selected == 0 for r in sel.results_):
            with pytest.raises(ValueError):
                sel.strongest_with_at_least(1)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LassoFeatureSelector().selection_counts()

    def test_invalid_grid(self):
        with pytest.raises(ValueError):
            LassoFeatureSelector(np.empty(0))
        with pytest.raises(ValueError):
            LassoFeatureSelector(np.zeros((2, 2)))

    def test_min_features_validation(self, synthetic_ts):
        sel = LassoFeatureSelector(np.array([1.0])).fit(synthetic_ts)
        with pytest.raises(ValueError):
            sel.strongest_with_at_least(0)


class TestSelectionResult:
    def test_selected_names(self):
        r = SelectionResult(
            lam=1.0,
            feature_names=("a", "b", "c"),
            weights=np.array([0.5, 0.0, -0.1]),
        )
        assert r.selected == ("a", "c")
        assert r.n_selected == 2

    def test_weight_table_sorted_by_magnitude(self):
        r = SelectionResult(
            lam=1.0,
            feature_names=("a", "b", "c"),
            weights=np.array([0.1, -5.0, 2.0]),
        )
        names = [name for name, _ in r.weight_table()]
        assert names == ["b", "c", "a"]

    def test_selection_feeds_training_set(self, synthetic_ts):
        sel = LassoFeatureSelector(np.array([1.0])).fit(synthetic_ts)
        result = sel.results_[0]
        reduced = synthetic_ts.select_features(result.selected)
        assert reduced.n_features == result.n_selected
