"""Tests for the TrainingSet container (repro.core.dataset)."""

import numpy as np
import pytest

from repro.core.dataset import TrainingSet


@pytest.fixture
def ts():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(30, 3))
    y = rng.normal(size=30)
    run_ids = np.repeat([0, 1, 2], 10)
    return TrainingSet(X=X, y=y, feature_names=("a", "b", "c"), run_ids=run_ids)


class TestConstruction:
    def test_basic(self, ts):
        assert ts.n_samples == 30
        assert ts.n_features == 3

    def test_names_width_mismatch(self):
        with pytest.raises(ValueError, match="names"):
            TrainingSet(np.zeros((5, 2)), np.zeros(5), ("a",))

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            TrainingSet(np.zeros((5, 2)), np.zeros(4), ("a", "b"))

    def test_default_run_ids(self):
        ts = TrainingSet(np.zeros((4, 1)), np.zeros(4), ("a",))
        assert np.array_equal(ts.run_ids, np.zeros(4, dtype=np.int64))


class TestColumnAndSelect:
    def test_column(self, ts):
        assert np.array_equal(ts.column("b"), ts.X[:, 1])

    def test_unknown_column(self, ts):
        with pytest.raises(KeyError):
            ts.column("zzz")

    def test_select_features(self, ts):
        sub = ts.select_features(["c", "a"])
        assert sub.feature_names == ("c", "a")
        assert np.array_equal(sub.X[:, 0], ts.X[:, 2])
        assert np.array_equal(sub.y, ts.y)

    def test_select_unknown_raises(self, ts):
        with pytest.raises(KeyError):
            ts.select_features(["a", "nope"])

    def test_select_empty_raises(self, ts):
        with pytest.raises(ValueError):
            ts.select_features([])


class TestSubsetAndSplit:
    def test_subset_by_mask(self, ts):
        mask = ts.run_ids == 1
        sub = ts.subset(mask)
        assert sub.n_samples == 10
        assert (sub.run_ids == 1).all()

    def test_row_split_sizes(self, ts):
        train, val = ts.split(0.3, seed=0)
        assert val.n_samples == 9
        assert train.n_samples == 21

    def test_row_split_partition(self, ts):
        train, val = ts.split(0.3, seed=1)
        all_y = np.sort(np.concatenate([train.y, val.y]))
        assert np.array_equal(all_y, np.sort(ts.y))

    def test_row_split_deterministic(self, ts):
        t1, v1 = ts.split(0.3, seed=5)
        t2, v2 = ts.split(0.3, seed=5)
        assert np.array_equal(v1.X, v2.X)

    def test_run_split_keeps_runs_whole(self, ts):
        train, val = ts.split(0.34, by_run=True, seed=0)
        assert not set(np.unique(train.run_ids)) & set(np.unique(val.run_ids))
        assert train.n_samples + val.n_samples == 30

    def test_run_split_needs_two_runs(self):
        ts = TrainingSet(np.zeros((5, 1)), np.zeros(5), ("a",))
        with pytest.raises(ValueError, match="2 runs"):
            ts.split(0.5, by_run=True)

    def test_invalid_fraction(self, ts):
        for bad in (0.0, 1.0, -0.1):
            with pytest.raises(ValueError):
                ts.split(bad)

    def test_rows_stay_aligned(self, ts):
        # y and run_ids must be permuted together with X
        marked = TrainingSet(
            X=np.arange(30.0)[:, None],
            y=np.arange(30.0) * 10.0,
            feature_names=("idx",),
            run_ids=np.arange(30),
        )
        train, val = marked.split(0.3, seed=2)
        for part in (train, val):
            assert np.allclose(part.y, part.X[:, 0] * 10.0)
            assert np.array_equal(part.run_ids, part.X[:, 0].astype(int))
