"""Tests for the streaming aggregator (repro.core.aggregation.OnlineAggregator)."""

import numpy as np
import pytest

from repro.core.aggregation import AggregationConfig, OnlineAggregator, aggregate_run
from repro.core.datapoint import AGGREGATED_FEATURES, FEATURES


class TestOnlineAggregator:
    def test_window_completion_emits_row(self):
        agg = OnlineAggregator(10.0)
        row = np.zeros(len(FEATURES))
        row[0] = 1.0
        assert agg.add(row) is None
        row2 = row.copy()
        row2[0] = 11.0  # next window
        out = agg.add(row2)
        assert out is not None
        assert out.shape == (len(AGGREGATED_FEATURES),)

    def test_batch_parity(self, history):
        """Streaming windows must equal the batch aggregation rows."""
        run = history[0]
        batch_X, _ = aggregate_run(run, AggregationConfig(window_seconds=30.0))
        agg = OnlineAggregator(30.0)
        online_rows = []
        for raw in run.features:
            out = agg.add(raw)
            if out is not None:
                online_rows.append(out)
        final = agg.flush()
        if final is not None:
            online_rows.append(final)
        online_X = np.vstack(online_rows)
        assert online_X.shape == batch_X.shape
        assert np.allclose(online_X, batch_X)

    def test_flush_partial_window(self):
        agg = OnlineAggregator(100.0)
        row = np.arange(float(len(FEATURES)))
        row[0] = 5.0
        agg.add(row)
        out = agg.flush()
        assert out is not None
        assert out[0] == 5.0  # mean tgen of the single point

    def test_flush_empty_returns_none(self):
        assert OnlineAggregator(10.0).flush() is None

    def test_reset_clears_state(self):
        agg = OnlineAggregator(10.0)
        row = np.zeros(len(FEATURES))
        row[0] = 3.0
        agg.add(row)
        agg.reset()
        assert agg.flush() is None
        # after reset the first point's interval is its own tgen again
        row2 = np.zeros(len(FEATURES))
        row2[0] = 4.0
        agg.add(row2)
        out = agg.flush()
        gen_col = AGGREGATED_FEATURES.index("gen_time")
        assert out[gen_col] == pytest.approx(4.0)

    def test_out_of_order_rejected(self):
        agg = OnlineAggregator(10.0)
        row = np.zeros(len(FEATURES))
        row[0] = 5.0
        agg.add(row)
        earlier = row.copy()
        earlier[0] = 2.0
        with pytest.raises(ValueError, match="order"):
            agg.add(earlier)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            OnlineAggregator(10.0).add(np.zeros(3))

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            OnlineAggregator(0.0)

    def test_slope_semantics(self):
        agg = OnlineAggregator(10.0)
        r1 = np.zeros(len(FEATURES))
        r1[0], r1[2] = 1.0, 100.0  # tgen, mem_used
        r2 = np.zeros(len(FEATURES))
        r2[0], r2[2] = 2.0, 300.0
        agg.add(r1)
        agg.add(r2)
        out = agg.flush()
        slope_col = AGGREGATED_FEATURES.index("mem_used_slope")
        assert out[slope_col] == pytest.approx((300.0 - 100.0) / 2.0)


class TestMinPointsParity:
    """Satellite regression: OnlineAggregator must honour min_points."""

    def _rows(self, tgens):
        rows = []
        for t in tgens:
            row = np.arange(len(FEATURES), dtype=np.float64)
            row[0] = t
            rows.append(row)
        return rows

    def test_short_windows_suppressed_like_batch(self, history):
        run = history[0]
        config = AggregationConfig(window_seconds=30.0, min_points=3)
        batch_X, _ = aggregate_run(run, config)
        agg = OnlineAggregator(30.0, min_points=3)
        rows = [out for raw in run.features if (out := agg.add(raw)) is not None]
        final = agg.flush()
        if final is not None:
            rows.append(final)
        online_X = np.vstack(rows)
        assert online_X.shape == batch_X.shape
        assert np.allclose(online_X, batch_X)

    def test_suppressed_window_still_advances_interval_chain(self):
        # Windows: [1,2] then [11] (suppressed, min_points=2) then [21,22].
        # The batch path's interval chain runs THROUGH dropped windows:
        # the 21.0 point carries interval 10.0 (21-11), not 19.0 (21-2).
        agg = OnlineAggregator(10.0, min_points=2)
        outputs = [agg.add(r) for r in self._rows([1.0, 2.0, 11.0, 21.0, 22.0])]
        emitted = [o for o in outputs if o is not None]
        assert len(emitted) == 1  # the [11] window was suppressed
        final = agg.flush()
        assert final is not None
        # gen_time of the last window: mean(21-11, 22-21) = 5.5
        assert final[-1] == pytest.approx(5.5)

    def test_min_points_validation(self):
        with pytest.raises(ValueError, match="min_points"):
            OnlineAggregator(10.0, min_points=0)


class TestRepairPolicy:
    """Satellite regression: bounded reordering tolerance in repair mode."""

    def _row(self, t):
        row = np.ones(len(FEATURES))
        row[0] = t
        return row

    def test_strict_still_raises_on_out_of_order(self):
        agg = OnlineAggregator(10.0)
        agg.add(self._row(5.0))
        with pytest.raises(ValueError, match="order"):
            agg.add(self._row(4.0))

    def test_repair_reinserts_late_point_in_open_window(self):
        agg = OnlineAggregator(10.0, policy="repair")
        for t in (1.0, 3.0, 2.0):  # 2.0 arrives late but window 0 is open
            assert agg.add(self._row(t)) is None
        out = agg.add(self._row(11.0))  # closes window 0
        assert out is not None
        assert agg.late_dropped == 0
        # window mean of tgen over {1,2,3} = 2.0 regardless of arrival order
        assert out[0] == pytest.approx(2.0)

    def test_repair_drops_point_for_closed_window(self):
        agg = OnlineAggregator(10.0, policy="repair")
        agg.add(self._row(5.0))
        agg.add(self._row(15.0))  # closes window 0
        assert agg.add(self._row(4.0)) is None  # window 0 is gone
        assert agg.late_dropped == 1

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            OnlineAggregator(10.0, policy="lenient")
