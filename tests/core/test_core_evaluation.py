"""Tests for model evaluation (repro.core.evaluation)."""

import numpy as np
import pytest

from repro.core.dataset import TrainingSet
from repro.core.evaluation import (
    ModelReport,
    evaluate_model,
    resolve_smae_threshold,
)
from repro.ml.linear import LinearRegression


@pytest.fixture
def train_val():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(120, 3))
    y = 10.0 * X[:, 0] + rng.normal(scale=0.5, size=120)
    names = ("a", "b", "c")
    return (
        TrainingSet(X[:90], y[:90], names),
        TrainingSet(X[90:], y[90:], names),
    )


class TestResolveThreshold:
    def test_absolute_wins(self):
        assert resolve_smae_threshold(25.0, 0.1, 1000.0) == 25.0

    def test_fractional(self):
        assert resolve_smae_threshold(None, 0.1, 2000.0) == 200.0

    def test_neither_raises(self):
        with pytest.raises(ValueError):
            resolve_smae_threshold(None, None, 1000.0)

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            resolve_smae_threshold(-1.0, None, 1000.0)
        with pytest.raises(ValueError):
            resolve_smae_threshold(None, 1.5, 1000.0)


class TestEvaluateModel:
    def test_report_contents(self, train_val):
        train, val = train_val
        report, fitted, pred = evaluate_model(
            "linear", LinearRegression(), train, val, smae_threshold=1.0
        )
        assert report.name == "linear"
        assert report.n_features == 3
        assert report.mae < 1.0  # near-noiseless linear fit
        assert report.s_mae <= report.mae
        assert report.max_ae >= report.mae
        assert report.rae < 0.2
        assert report.train_time >= 0.0
        assert report.validation_time >= 0.0
        assert pred.shape == (val.n_samples,)

    def test_fitted_model_returned(self, train_val):
        train, val = train_val
        model = LinearRegression()
        _, fitted, _ = evaluate_model(
            "linear", model, train, val, smae_threshold=1.0
        )
        assert fitted is model
        assert fitted.coef_ is not None

    def test_feature_set_label(self, train_val):
        train, val = train_val
        report, _, _ = evaluate_model(
            "linear",
            LinearRegression(),
            train,
            val,
            smae_threshold=1.0,
            feature_set="selected",
        )
        assert report.feature_set == "selected"

    def test_mismatched_feature_sets_rejected(self, train_val):
        train, val = train_val
        bad_val = TrainingSet(val.X[:, :2], val.y, ("a", "b"))
        with pytest.raises(ValueError, match="differ"):
            evaluate_model(
                "linear", LinearRegression(), train, bad_val, smae_threshold=1.0
            )

    def test_report_row_matches_headers(self, train_val):
        train, val = train_val
        report, _, _ = evaluate_model(
            "linear", LinearRegression(), train, val, smae_threshold=1.0
        )
        assert len(report.row()) == len(ModelReport.HEADERS)
