"""Tests for model-staleness detection (repro.core.drift)."""

import numpy as np
import pytest

from repro.core.drift import (
    DriftStatus,
    ResidualDriftDetector,
    TrajectoryConsistencyMonitor,
)


class TestTrajectoryConsistencyMonitor:
    def feed(self, monitor, times, preds):
        status = None
        for t, p in zip(times, preds):
            status = monitor.add(t, p)
        return status

    def test_healthy_trajectory_not_drifting(self):
        monitor = TrajectoryConsistencyMonitor(window=8, tolerance=0.3)
        times = np.arange(0.0, 200.0, 20.0)
        preds = 1000.0 - times  # perfect -1 slope
        status = self.feed(monitor, times, preds)
        assert status.slope == pytest.approx(-1.0)
        assert not status.drifting

    def test_flat_predictions_flagged(self):
        # a stale model predicting a constant RTTF has slope 0
        monitor = TrajectoryConsistencyMonitor(window=8, tolerance=0.3)
        times = np.arange(0.0, 200.0, 20.0)
        status = self.feed(monitor, times, np.full(times.size, 800.0))
        assert status.slope == pytest.approx(0.0)
        assert status.drifting

    def test_noise_within_tolerance_ok(self):
        rng = np.random.default_rng(0)
        monitor = TrajectoryConsistencyMonitor(window=10, tolerance=0.5)
        times = np.arange(0.0, 300.0, 30.0)
        preds = 2000.0 - times + rng.normal(scale=10.0, size=times.size)
        status = self.feed(monitor, times, preds)
        assert not status.drifting

    def test_warmup_not_drifting(self):
        monitor = TrajectoryConsistencyMonitor(window=10, min_points=4)
        status = monitor.add(0.0, 500.0)
        assert not status.drifting
        assert status.n_points == 1
        assert np.isnan(status.slope)

    def test_sliding_window_forgets(self):
        # stale early, healthy late: after the window slides, no drift
        monitor = TrajectoryConsistencyMonitor(window=5, tolerance=0.3)
        t = 0.0
        for _ in range(5):  # flat segment
            monitor.add(t, 900.0)
            t += 10.0
        for _ in range(5):  # perfect segment replaces it entirely
            status = monitor.add(t, 900.0 - t)
            t += 10.0
        assert status.slope == pytest.approx(-1.0, abs=0.05)
        assert not status.drifting

    def test_reset(self):
        monitor = TrajectoryConsistencyMonitor(window=5)
        monitor.add(0.0, 100.0)
        monitor.reset()
        status = monitor.add(0.0, 100.0)  # same time ok after reset
        assert status.n_points == 1

    def test_out_of_order_rejected(self):
        monitor = TrajectoryConsistencyMonitor()
        monitor.add(10.0, 100.0)
        with pytest.raises(ValueError, match="increasing"):
            monitor.add(10.0, 90.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrajectoryConsistencyMonitor(window=1)
        with pytest.raises(ValueError):
            TrajectoryConsistencyMonitor(tolerance=0.0)
        with pytest.raises(ValueError):
            TrajectoryConsistencyMonitor(window=5, min_points=6)

    def test_on_real_model_trajectory(self, history, dataset):
        """A model applied to its own training campaign tracks -1 near
        the failure region."""
        from repro.core import AggregationConfig, aggregate_run
        from repro.core.model_zoo import make_model

        model = make_model("m5p").fit(dataset.X, dataset.y)
        run = history[0]
        X, rttf = aggregate_run(run, AggregationConfig(window_seconds=30.0))
        preds = model.predict(X)
        monitor = TrajectoryConsistencyMonitor(window=6, tolerance=0.6)
        status = None
        for t, p in zip(X[:, 0], preds):  # X[:,0] is mean tgen
            status = monitor.add(float(t), float(p))
        assert status is not None
        assert not status.drifting  # in-distribution model is healthy


class TestResidualDriftDetector:
    def test_healthy_errors_pass(self):
        det = ResidualDriftDetector(baseline_smae=50.0, smae_threshold=30.0)
        true = np.linspace(1000.0, 10.0, 40)
        pred = true + np.random.default_rng(0).normal(scale=20.0, size=40)
        realized, stale = det.evaluate_run(pred, true)
        assert not stale
        assert realized < 100.0

    def test_inflated_errors_flagged(self):
        det = ResidualDriftDetector(baseline_smae=50.0, smae_threshold=30.0)
        true = np.linspace(1000.0, 10.0, 40)
        pred = true + 500.0  # systematically wrong
        realized, stale = det.evaluate_run(pred, true)
        assert stale
        assert realized > 100.0

    def test_factor_controls_sensitivity(self):
        true = np.linspace(1000.0, 10.0, 40)
        pred = true + 120.0
        loose = ResidualDriftDetector(50.0, 30.0, inflation_factor=5.0)
        tight = ResidualDriftDetector(50.0, 30.0, inflation_factor=1.5)
        assert not loose.evaluate_run(pred, true)[1]
        assert tight.evaluate_run(pred, true)[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            ResidualDriftDetector(-1.0, 30.0)
        with pytest.raises(ValueError):
            ResidualDriftDetector(50.0, -1.0)
        with pytest.raises(ValueError):
            ResidualDriftDetector(50.0, 30.0, inflation_factor=1.0)
