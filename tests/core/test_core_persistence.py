"""Tests for model persistence (repro.core.persistence)."""

import numpy as np
import pytest

from repro.core.persistence import FORMAT_VERSION, ModelEnvelope, load_model, save_model
from repro.ml.linear import LinearRegression
from repro.ml.tree import REPTreeRegressor


@pytest.fixture
def fitted(linear_data):
    X, y = linear_data
    return LinearRegression().fit(X, y), X, y


class TestSaveLoadRoundtrip:
    def test_predictions_identical(self, fitted, tmp_path):
        model, X, _ = fitted
        path = save_model(model, tmp_path / "m.pkl")
        loaded = load_model(path)
        assert np.array_equal(loaded.predict(X), model.predict(X))

    def test_metadata_preserved(self, fitted, tmp_path):
        model, _, _ = fitted
        save_model(
            model,
            tmp_path / "m.pkl",
            feature_names=["a", "b", "c", "d", "e"],
            metadata={"s_mae": 12.5},
        )
        env = load_model(tmp_path / "m.pkl")
        assert env.feature_names == ("a", "b", "c", "d", "e")
        assert env.metadata == {"s_mae": 12.5}
        assert env.format_version == FORMAT_VERSION
        assert env.package_version

    def test_tree_model_roundtrip(self, nonlinear_data, tmp_path):
        X, y = nonlinear_data
        model = REPTreeRegressor(seed=0).fit(X, y)
        path = save_model(model, tmp_path / "tree.pkl")
        loaded = load_model(path)
        assert np.array_equal(loaded.predict(X), model.predict(X))


class TestSchemaChecks:
    def test_matching_schema_passes(self, fitted, tmp_path):
        model, _, _ = fitted
        save_model(model, tmp_path / "m.pkl", feature_names=["a", "b"])
        load_model(tmp_path / "m.pkl").check_features(["a", "b"])

    def test_mismatched_schema_raises(self, fitted, tmp_path):
        model, _, _ = fitted
        save_model(model, tmp_path / "m.pkl", feature_names=["a", "b"])
        env = load_model(tmp_path / "m.pkl")
        with pytest.raises(ValueError, match="schema mismatch"):
            env.check_features(["a", "c"])

    def test_no_schema_skips_check(self, fitted, tmp_path):
        model, _, _ = fitted
        save_model(model, tmp_path / "m.pkl")
        load_model(tmp_path / "m.pkl").check_features(["anything"])


class TestCorruptInputs:
    def test_non_envelope_rejected(self, tmp_path):
        import pickle

        path = tmp_path / "junk.pkl"
        path.write_bytes(pickle.dumps({"not": "an envelope"}))
        with pytest.raises(ValueError, match="envelope"):
            load_model(path)

    def test_future_format_rejected(self, fitted, tmp_path):
        import pickle

        model, _, _ = fitted
        env = ModelEnvelope(
            model=model,
            feature_names=None,
            package_version="99.0",
            format_version=FORMAT_VERSION + 1,
            metadata={},
        )
        path = tmp_path / "future.pkl"
        path.write_bytes(pickle.dumps(env))
        with pytest.raises(ValueError, match="format"):
            load_model(path)


class TestCliSaveModel:
    def test_train_save_model(self, history, tmp_path, capsys):
        from repro.cli import main
        from repro.core import DataHistory

        hist_file = tmp_path / "h.npz"
        history.save(hist_file)
        model_file = tmp_path / "model.pkl"
        rc = main(
            [
                "train",
                str(hist_file),
                "--window",
                "30",
                "--models",
                "linear",
                "--save-model",
                str(model_file),
            ]
        )
        assert rc == 0
        env = load_model(model_file)
        assert env.metadata["model"] == "linear"
        assert len(env.feature_names) == 30
