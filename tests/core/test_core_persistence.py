"""Tests for model persistence (repro.core.persistence)."""

import numpy as np
import pytest

from repro.core.persistence import FORMAT_VERSION, ModelEnvelope, load_model, save_model
from repro.ml.linear import LinearRegression
from repro.ml.tree import REPTreeRegressor


@pytest.fixture
def fitted(linear_data):
    X, y = linear_data
    return LinearRegression().fit(X, y), X, y


class TestSaveLoadRoundtrip:
    def test_predictions_identical(self, fitted, tmp_path):
        model, X, _ = fitted
        path = save_model(model, tmp_path / "m.pkl")
        loaded = load_model(path)
        assert np.array_equal(loaded.predict(X), model.predict(X))

    def test_metadata_preserved(self, fitted, tmp_path):
        model, _, _ = fitted
        save_model(
            model,
            tmp_path / "m.pkl",
            feature_names=["a", "b", "c", "d", "e"],
            metadata={"s_mae": 12.5},
        )
        env = load_model(tmp_path / "m.pkl")
        assert env.feature_names == ("a", "b", "c", "d", "e")
        assert env.metadata == {"s_mae": 12.5}
        assert env.format_version == FORMAT_VERSION
        assert env.package_version

    def test_tree_model_roundtrip(self, nonlinear_data, tmp_path):
        X, y = nonlinear_data
        model = REPTreeRegressor(seed=0).fit(X, y)
        path = save_model(model, tmp_path / "tree.pkl")
        loaded = load_model(path)
        assert np.array_equal(loaded.predict(X), model.predict(X))


class TestSchemaChecks:
    def test_matching_schema_passes(self, fitted, tmp_path):
        model, _, _ = fitted
        save_model(model, tmp_path / "m.pkl", feature_names=["a", "b"])
        load_model(tmp_path / "m.pkl").check_features(["a", "b"])

    def test_mismatched_schema_raises(self, fitted, tmp_path):
        model, _, _ = fitted
        save_model(model, tmp_path / "m.pkl", feature_names=["a", "b"])
        env = load_model(tmp_path / "m.pkl")
        with pytest.raises(ValueError, match="schema mismatch"):
            env.check_features(["a", "c"])

    def test_no_schema_skips_check(self, fitted, tmp_path):
        model, _, _ = fitted
        save_model(model, tmp_path / "m.pkl")
        load_model(tmp_path / "m.pkl").check_features(["anything"])


class TestCorruptInputs:
    def test_non_envelope_rejected(self, tmp_path):
        import pickle

        path = tmp_path / "junk.pkl"
        path.write_bytes(pickle.dumps({"not": "an envelope"}))
        with pytest.raises(ValueError, match="envelope"):
            load_model(path)

    def test_future_format_rejected(self, fitted, tmp_path):
        import pickle

        model, _, _ = fitted
        env = ModelEnvelope(
            model=model,
            feature_names=None,
            package_version="99.0",
            format_version=FORMAT_VERSION + 1,
            metadata={},
        )
        path = tmp_path / "future.pkl"
        path.write_bytes(pickle.dumps(env))
        with pytest.raises(ValueError, match="format"):
            load_model(path)


class TestCliSaveModel:
    def test_train_save_model(self, history, tmp_path, capsys):
        from repro.cli import main
        from repro.core import DataHistory

        hist_file = tmp_path / "h.npz"
        history.save(hist_file)
        model_file = tmp_path / "model.pkl"
        rc = main(
            [
                "train",
                str(hist_file),
                "--window",
                "30",
                "--models",
                "linear",
                "--save-model",
                str(model_file),
            ]
        )
        assert rc == 0
        env = load_model(model_file)
        assert env.metadata["model"] == "linear"
        assert len(env.feature_names) == 30


class TestCompiledArtifact:
    @pytest.fixture
    def kernel_fitted(self):
        from repro.ml.lssvm import LSSVMRegressor

        rng = np.random.default_rng(3)
        X = rng.normal(size=(120, 4))
        y = X @ rng.normal(size=4) + 0.05 * rng.normal(size=120)
        return LSSVMRegressor(gam=10.0, kernel="rbf", gamma=0.2).fit(X, y), X, y

    def test_compiled_roundtrip(self, kernel_fitted, tmp_path):
        from repro.ml.serving import CompiledPredictor, compile_predictor

        model, X, _ = kernel_fitted
        compiled = compile_predictor(model, budget=32)
        path = save_model(model, tmp_path / "m.pkl", compiled=compiled)
        loaded = load_model(path)
        assert isinstance(loaded.compiled, CompiledPredictor)
        assert loaded.compiled.report.reason == "ungated"
        assert np.array_equal(loaded.compiled.predict(X), compiled.predict(X))
        # exact predictions untouched by the artifact
        assert np.array_equal(loaded.predict(X), model.predict(X))

    def test_serving_model_prefers_compiled(self, kernel_fitted, tmp_path):
        from repro.ml.serving import compile_predictor

        model, X, _ = kernel_fitted
        compiled = compile_predictor(model, budget=32)
        loaded = load_model(
            save_model(model, tmp_path / "m.pkl", compiled=compiled)
        )
        assert loaded.serving_model is loaded.compiled
        plain = load_model(save_model(model, tmp_path / "p.pkl"))
        assert plain.compiled is None
        assert plain.serving_model is plain.model

    def test_exact_model_stored_once(self, kernel_fitted, tmp_path):
        # The artifact wraps the same model object, so pickle's
        # reference sharing must restore one shared instance, not two.
        from repro.ml.serving import compile_predictor

        model, _, _ = kernel_fitted
        compiled = compile_predictor(model, budget=32)
        assert compiled.exact is model
        loaded = load_model(
            save_model(model, tmp_path / "m.pkl", compiled=compiled)
        )
        assert loaded.compiled.exact is loaded.model

    def test_legacy_envelope_without_compiled_field(self, fitted, tmp_path):
        # An envelope pickled before the serving layer existed has no
        # ``compiled`` attribute at all; load_model must normalize it
        # to None and serve exact predictions unchanged.
        import hashlib
        import pickle

        from repro.core.persistence import MAGIC

        model, X, _ = fitted
        env = ModelEnvelope(
            model=model,
            feature_names=None,
            package_version="0.9",
            format_version=FORMAT_VERSION,
            metadata={},
        )
        object.__delattr__(env, "compiled")
        payload = pickle.dumps(env)
        path = tmp_path / "legacy.pkl"
        path.write_bytes(MAGIC + hashlib.sha256(payload).digest() + payload)
        loaded = load_model(path)
        assert loaded.compiled is None
        assert loaded.serving_model is loaded.model
        assert np.array_equal(loaded.predict(X), model.predict(X))
