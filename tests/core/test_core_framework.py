"""Tests for the F2PM orchestrator (repro.core.framework)."""

import numpy as np
import pytest

from repro.core import F2PM, F2PMConfig
from repro.core.aggregation import AggregationConfig


@pytest.fixture(scope="module")
def history_module(request):
    # reuse the session-scoped campaign fixture under a module-local name
    return request.getfixturevalue("history")


@pytest.fixture(scope="module")
def result(history_module):
    cfg = F2PMConfig(
        aggregation=AggregationConfig(window_seconds=30.0),
        models=("linear", "m5p", "reptree"),  # skip slow SVMs in unit tests
        lasso_predictor_lambdas=(1.0, 1e9),
        seed=0,
    )
    return F2PM(cfg).run(history_module)


class TestF2PMRun:
    def test_reports_for_all_jobs_and_sets(self, result):
        names = {r.name for r in result.reports}
        assert {"linear", "m5p", "reptree", "lasso(1e0)", "lasso(1e9)"} == names
        for name in names:
            assert result.report(name, "all") is not None
            assert result.report(name, "selected") is not None

    def test_selected_set_smaller(self, result):
        all_d = result.report("linear", "all").n_features
        sel_d = result.report("linear", "selected").n_features
        assert sel_d < all_d
        assert sel_d == result.selection.n_selected

    def test_smae_threshold_is_10pct_of_mean_run(self, result, history_module):
        assert result.smae_threshold == pytest.approx(
            0.1 * history_module.mean_run_length
        )

    def test_predictions_align_with_validation(self, result):
        n_val = result.y_validation.shape[0]
        for key, pred in result.predictions.items():
            assert pred.shape == (n_val,)

    def test_best_by_smae_is_minimum(self, result):
        best = result.best_by_smae("all")
        others = [r.s_mae for r in result.reports if r.feature_set == "all"]
        assert best.s_mae == min(others)

    def test_unknown_report_raises(self, result):
        with pytest.raises(KeyError):
            result.report("nope")

    def test_tables_render(self, result):
        assert "Soft Mean Absolute Error" in result.smae_table()
        assert "Training time" in result.training_time_table()
        assert "Validation time" in result.validation_time_table()
        assert "F2PM model comparison" in result.comparison_table()
        # every model appears in the two-column tables
        assert "reptree" in result.smae_table()

    def test_lasso_predictor_same_both_feature_sets(self, result):
        # the Lasso-as-predictor is feature-selection-invariant in the
        # paper's Table II (identical columns); ours trains on each set,
        # but the high-lambda model degenerates to the target mean either
        # way, so S-MAE matches
        a = result.report("lasso(1e9)", "all").s_mae
        b = result.report("lasso(1e9)", "selected").s_mae
        assert a == pytest.approx(b, rel=0.01)

    def test_explicit_selection_lambda(self, history_module):
        cfg = F2PMConfig(
            aggregation=AggregationConfig(window_seconds=30.0),
            models=("linear",),
            lasso_predictor_lambdas=(),
            selection_lambda=1.0,
        )
        res = F2PM(cfg).run(history_module)
        assert res.selection.lam == pytest.approx(1.0)

    def test_trees_competitive_with_linear(self, result):
        """On the tiny unit-test campaign the trees must at least be in
        the same league as OLS; the strict paper ordering (trees win) is
        asserted on the full campaign by the integration tests."""
        trees = min(
            result.report("reptree", "all").s_mae,
            result.report("m5p", "all").s_mae,
        )
        assert trees < 1.5 * result.report("linear", "all").s_mae

    def test_lasso_predictor_worst(self, result):
        lasso = result.report("lasso(1e9)", "all").s_mae
        for name in ("linear", "m5p", "reptree"):
            assert lasso > result.report(name, "all").s_mae

    def test_split_by_run_keeps_runs_whole(self, history_module):
        cfg = F2PMConfig(
            aggregation=AggregationConfig(window_seconds=30.0),
            models=("linear",),
            lasso_predictor_lambdas=(),
            split_by_run=True,
            seed=0,
        )
        res = F2PM(cfg).run(history_module)
        # run-wise validation: the leakage-free protocol typically shows
        # a higher error than row-wise shuffling, but must stay usable
        assert res.report("linear").mae > 0.0
        assert res.y_validation.size > 0

    def test_deterministic_errors(self, history_module):
        cfg = F2PMConfig(
            aggregation=AggregationConfig(window_seconds=30.0),
            models=("linear",),
            lasso_predictor_lambdas=(),
            seed=3,
        )
        r1 = F2PM(cfg).run(history_module)
        r2 = F2PM(cfg).run(history_module)
        assert r1.report("linear").mae == r2.report("linear").mae
