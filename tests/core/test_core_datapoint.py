"""Tests for the datapoint schema (repro.core.datapoint)."""

import numpy as np
import pytest

from repro.core.datapoint import (
    AGGREGATED_FEATURES,
    BASE_FEATURES,
    FEATURES,
    FEATURE_INDEX,
    GEN_TIME,
    SLOPE_FEATURES,
    TGEN,
    Datapoint,
)


class TestSchema:
    def test_fifteen_raw_features(self):
        assert len(FEATURES) == 15
        assert FEATURES[0] == TGEN

    def test_paper_features_present(self):
        for expected in (
            "n_threads",
            "mem_used",
            "mem_free",
            "mem_shared",
            "mem_buffers",
            "mem_cached",
            "swap_used",
            "swap_free",
            "cpu_user",
            "cpu_nice",
            "cpu_sys",
            "cpu_iowait",
            "cpu_steal",
            "cpu_idle",
        ):
            assert expected in FEATURES

    def test_slope_per_non_time_feature(self):
        assert len(SLOPE_FEATURES) == 14
        assert len(BASE_FEATURES) == 14
        assert TGEN not in BASE_FEATURES
        assert all(name.endswith("_slope") for name in SLOPE_FEATURES)

    def test_aggregated_schema_size(self):
        # 15 means + 14 slopes + gen_time = 30 (Fig. 4's parameter count)
        assert len(AGGREGATED_FEATURES) == 30
        assert GEN_TIME in AGGREGATED_FEATURES

    def test_index_mapping(self):
        for i, name in enumerate(FEATURES):
            assert FEATURE_INDEX[name] == i

    def test_no_duplicate_names(self):
        assert len(set(AGGREGATED_FEATURES)) == len(AGGREGATED_FEATURES)


class TestDatapoint:
    def make(self, **over):
        values = {name: float(i) for i, name in enumerate(FEATURES)}
        values.update(over)
        return Datapoint(**values)

    def test_roundtrip(self):
        dp = self.make()
        arr = dp.to_array()
        assert Datapoint.from_array(arr) == dp

    def test_array_order_matches_schema(self):
        dp = self.make(tgen=99.0, cpu_idle=42.0)
        arr = dp.to_array()
        assert arr[FEATURE_INDEX["tgen"]] == 99.0
        assert arr[FEATURE_INDEX["cpu_idle"]] == 42.0

    def test_from_array_wrong_shape(self):
        with pytest.raises(ValueError):
            Datapoint.from_array(np.zeros(5))

    def test_frozen(self):
        dp = self.make()
        with pytest.raises(AttributeError):
            dp.tgen = 1.0
