"""Tests for incremental data collection (repro.core.incremental)."""

import pytest

from repro.core import AggregationConfig, F2PMConfig
from repro.core.incremental import (
    IncrementalCollector,
    IncrementalConfig,
    IncrementalResult,
)
from repro.system import TestbedSimulator


@pytest.fixture
def fast_f2pm_config():
    return F2PMConfig(
        aggregation=AggregationConfig(window_seconds=30.0),
        models=("linear", "reptree"),
        lasso_predictor_lambdas=(),
        seed=0,
    )


class TestIncrementalConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            IncrementalConfig(batch_runs=0)
        with pytest.raises(ValueError):
            IncrementalConfig(batch_runs=5, max_runs=4)
        with pytest.raises(ValueError):
            IncrementalConfig(target_smae=-1.0)
        with pytest.raises(ValueError):
            IncrementalConfig(target_smae_frac=1.5)


class TestCollector:
    def test_stops_at_budget_when_target_unreachable(self, campaign, fast_f2pm_config):
        collector = IncrementalCollector(
            TestbedSimulator(campaign),
            fast_f2pm_config,
            IncrementalConfig(batch_runs=2, max_runs=4, target_smae=0.001),
        )
        result = collector.collect()
        assert isinstance(result, IncrementalResult)
        assert not result.target_met
        assert result.n_runs == 4
        assert len(result.trace) == 2  # two batches

    def test_stops_early_when_target_met(self, campaign, fast_f2pm_config):
        collector = IncrementalCollector(
            TestbedSimulator(campaign),
            fast_f2pm_config,
            IncrementalConfig(batch_runs=2, max_runs=20, target_smae=1e9),
        )
        result = collector.collect()
        assert result.target_met
        assert result.n_runs == 2  # first batch already satisfies

    def test_trace_records_growth(self, campaign, fast_f2pm_config):
        collector = IncrementalCollector(
            TestbedSimulator(campaign),
            fast_f2pm_config,
            IncrementalConfig(batch_runs=2, max_runs=6, target_smae=0.001),
        )
        result = collector.collect()
        n_runs = [p.n_runs for p in result.trace]
        assert n_runs == [2, 4, 6]
        windows = [p.n_windows for p in result.trace]
        assert windows == sorted(windows)  # dataset grows monotonically

    def test_learning_curve_shape(self, campaign, fast_f2pm_config):
        collector = IncrementalCollector(
            TestbedSimulator(campaign),
            fast_f2pm_config,
            IncrementalConfig(batch_runs=2, max_runs=4, target_smae=0.001),
        )
        curve = collector.collect().learning_curve()
        assert curve.shape == (2, 2)
        assert (curve[:, 1] > 0).all()

    def test_fractional_target_resolution(self, campaign, fast_f2pm_config):
        collector = IncrementalCollector(
            TestbedSimulator(campaign),
            fast_f2pm_config,
            IncrementalConfig(
                batch_runs=2, max_runs=4, target_smae=None, target_smae_frac=0.5
            ),
        )
        result = collector.collect()
        for point in result.trace:
            assert point.target > 0.0

    def test_final_result_usable(self, campaign, fast_f2pm_config):
        collector = IncrementalCollector(
            TestbedSimulator(campaign),
            fast_f2pm_config,
            IncrementalConfig(batch_runs=2, max_runs=2, target_smae=0.001),
        )
        result = collector.collect()
        best = result.final.best_by_smae("all")
        model = result.final.models[(best.name, "all")]
        pred = model.predict(result.final.dataset.X[:3])
        assert pred.shape == (3,)
