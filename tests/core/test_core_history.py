"""Tests for RunRecord / DataHistory (repro.core.history)."""

import numpy as np
import pytest

from repro.core.datapoint import FEATURES
from repro.core.history import DataHistory, RunRecord


def make_run(n=10, fail_time=100.0, with_rt=True, meta=None):
    feats = np.zeros((n, len(FEATURES)))
    feats[:, 0] = np.linspace(1.0, fail_time - 1.0, n)  # tgen
    feats[:, 2] = np.linspace(1e5, 5e5, n)  # mem_used grows
    rt = np.linspace(0.1, 2.0, n) if with_rt else None
    return RunRecord(
        features=feats,
        fail_time=fail_time,
        response_times=rt,
        metadata=meta or {"crashed": 1.0},
    )


class TestRunRecord:
    def test_basic_properties(self):
        run = make_run(n=7, fail_time=50.0)
        assert run.n_datapoints == 7
        assert run.duration == 50.0

    def test_column_access(self):
        run = make_run()
        assert np.array_equal(run.column("tgen"), run.features[:, 0])
        assert np.array_equal(run.column("mem_used"), run.features[:, 2])

    def test_unknown_column(self):
        with pytest.raises(KeyError):
            make_run().column("bogus")

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            RunRecord(features=np.zeros((5, 3)), fail_time=10.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RunRecord(features=np.zeros((0, len(FEATURES))), fail_time=10.0)

    def test_unsorted_tgen_rejected(self):
        feats = np.zeros((3, len(FEATURES)))
        feats[:, 0] = [1.0, 3.0, 2.0]
        with pytest.raises(ValueError, match="sorted"):
            RunRecord(features=feats, fail_time=10.0)

    def test_fail_before_last_datapoint_rejected(self):
        feats = np.zeros((3, len(FEATURES)))
        feats[:, 0] = [1.0, 2.0, 30.0]
        with pytest.raises(ValueError, match="precedes"):
            RunRecord(features=feats, fail_time=10.0)

    def test_misaligned_rt_rejected(self):
        feats = np.zeros((3, len(FEATURES)))
        feats[:, 0] = [1.0, 2.0, 3.0]
        with pytest.raises(ValueError, match="align"):
            RunRecord(features=feats, fail_time=10.0, response_times=np.zeros(5))


class TestDataHistory:
    def test_container_protocol(self):
        h = DataHistory()
        h.add_run(make_run(fail_time=100.0))
        h.add_run(make_run(fail_time=200.0))
        assert len(h) == 2
        assert h[1].fail_time == 200.0
        assert [r.fail_time for r in h] == [100.0, 200.0]

    def test_n_datapoints(self):
        h = DataHistory([make_run(n=5), make_run(n=7)])
        assert h.n_datapoints == 12

    def test_mean_run_length(self):
        h = DataHistory([make_run(fail_time=100.0), make_run(fail_time=300.0)])
        assert h.mean_run_length == 200.0

    def test_mean_of_empty_raises(self):
        with pytest.raises(ValueError):
            DataHistory().mean_run_length

    def test_extend_merges(self):
        a = DataHistory([make_run()])
        b = DataHistory([make_run(), make_run()])
        a.extend(b)
        assert len(a) == 3


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        h = DataHistory(
            [
                make_run(n=5, fail_time=80.0, meta={"crashed": 1.0, "p_leak": 0.2}),
                make_run(n=9, fail_time=120.0, with_rt=False),
            ]
        )
        path = tmp_path / "hist.npz"
        h.save(path)
        loaded = DataHistory.load(path)
        assert len(loaded) == 2
        assert np.array_equal(loaded[0].features, h[0].features)
        assert np.array_equal(loaded[0].response_times, h[0].response_times)
        assert loaded[1].response_times is None
        assert loaded[0].metadata["p_leak"] == 0.2
        assert loaded[1].fail_time == 120.0

    def test_roundtrip_on_simulated(self, history, tmp_path):
        path = tmp_path / "sim.npz"
        history.save(path)
        loaded = DataHistory.load(path)
        assert len(loaded) == len(history)
        for a, b in zip(loaded, history):
            assert np.array_equal(a.features, b.features)
            assert a.fail_time == b.fail_time
