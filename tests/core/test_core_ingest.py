"""Tests for CSV trace ingestion (repro.core.ingest)."""

import numpy as np
import pytest

from repro.core.datapoint import FEATURES
from repro.core.ingest import (
    CSVTraceSpec,
    read_campaign_csv,
    read_run_csv,
    write_run_csv,
)


class TestCSVTraceSpec:
    def test_identity_covers_schema(self):
        spec = CSVTraceSpec.identity()
        assert set(spec.columns) == set(FEATURES)

    def test_missing_feature_rejected(self):
        cols = {name: name for name in FEATURES if name != "swap_used"}
        with pytest.raises(ValueError, match="missing features"):
            CSVTraceSpec(columns=cols)

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown features"):
            CSVTraceSpec.identity(scale={"bogus": 2.0})


class TestRoundTrip:
    def test_simulated_run_roundtrips(self, history, tmp_path):
        run = history[0]
        path = write_run_csv(run, tmp_path / "run0.csv")
        loaded = read_run_csv(
            path,
            CSVTraceSpec.identity(response_time_column="response_time"),
            fail_time=run.fail_time,
        )
        assert np.allclose(loaded.features, run.features)
        assert np.allclose(loaded.response_times, run.response_times)
        assert loaded.fail_time == run.fail_time

    def test_roundtrip_without_rt(self, history, tmp_path):
        run = history[0]
        path = write_run_csv(run, tmp_path / "r.csv", include_response_time=False)
        loaded = read_run_csv(path, CSVTraceSpec.identity())
        assert loaded.response_times is None


class TestReadRunCSV:
    def _write(self, path, headers, rows):
        path.write_text(
            "\n".join([",".join(headers)] + [",".join(map(str, r)) for r in rows])
            + "\n"
        )

    def test_custom_column_names_and_scaling(self, tmp_path):
        headers = [f"col_{name}" for name in FEATURES]
        rows = [[float(i * 100 + j) for j in range(len(FEATURES))] for i in range(1, 4)]
        path = tmp_path / "trace.csv"
        self._write(path, headers, rows)
        spec = CSVTraceSpec(
            columns={name: f"col_{name}" for name in FEATURES},
            scale={"mem_used": 1024.0},  # trace in MB -> schema KB
        )
        run = read_run_csv(path, spec)
        mem_col = FEATURES.index("mem_used")
        assert run.features[0, mem_col] == pytest.approx(rows[0][mem_col] * 1024.0)
        assert run.features[0, 0] == rows[0][0]  # tgen unscaled

    def test_rows_sorted_by_time(self, tmp_path):
        headers = list(FEATURES)
        rows = [
            [30.0] + [0.0] * 14,
            [10.0] + [0.0] * 14,
            [20.0] + [0.0] * 14,
        ]
        path = tmp_path / "unsorted.csv"
        self._write(path, headers, rows)
        run = read_run_csv(path, CSVTraceSpec.identity())
        assert run.column("tgen").tolist() == [10.0, 20.0, 30.0]

    def test_default_fail_time_is_last_sample(self, tmp_path):
        headers = list(FEATURES)
        rows = [[5.0] + [0.0] * 14, [25.0] + [0.0] * 14]
        path = tmp_path / "t.csv"
        self._write(path, headers, rows)
        run = read_run_csv(path, CSVTraceSpec.identity())
        assert run.fail_time == 25.0

    def test_truncated_flag(self, tmp_path):
        headers = list(FEATURES)
        rows = [[5.0] + [0.0] * 14]
        path = tmp_path / "t.csv"
        self._write(path, headers, rows)
        run = read_run_csv(path, CSVTraceSpec.identity(), crashed=False)
        assert run.metadata["crashed"] == 0.0

    def test_missing_column_errors(self, tmp_path):
        headers = list(FEATURES)[:-1]
        path = tmp_path / "m.csv"
        self._write(path, headers, [[0.0] * len(headers)])
        with pytest.raises(ValueError, match="missing columns"):
            read_run_csv(path, CSVTraceSpec.identity())

    def test_non_numeric_errors_with_line(self, tmp_path):
        headers = list(FEATURES)
        path = tmp_path / "bad.csv"
        rows = [[1.0] + [0.0] * 14]
        self._write(path, headers, rows)
        text = path.read_text().replace("0.0", "oops", 1)
        path.write_text(text)
        with pytest.raises(ValueError, match="bad.csv:2"):
            read_run_csv(path, CSVTraceSpec.identity())

    def test_empty_file_errors(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            read_run_csv(path, CSVTraceSpec.identity())


class TestReadCampaign:
    def test_directory_of_runs(self, history, tmp_path):
        for i, run in enumerate(history):
            write_run_csv(run, tmp_path / f"run{i}.csv")
        loaded = read_campaign_csv(
            tmp_path, CSVTraceSpec.identity(response_time_column="response_time")
        )
        assert len(loaded) == len(history)
        # and the ingested history feeds the pipeline end to end
        from repro.core import AggregationConfig, aggregate_history

        ds = aggregate_history(loaded, AggregationConfig(window_seconds=30.0))
        assert ds.n_samples > 0

    def test_empty_directory_errors(self, tmp_path):
        with pytest.raises(ValueError, match="no files"):
            read_campaign_csv(tmp_path, CSVTraceSpec.identity())


class TestDirtyTraces:
    """Satellite regressions: nan/inf strings, early fail_time, policies."""

    def _write_canonical(self, path, features):
        import csv

        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(FEATURES)
            for row in features:
                writer.writerow(format(float(v), ".17g") for v in row)

    def _clean_features(self, n=6):
        feats = np.arange(n, dtype=np.float64)[:, None] * np.ones((n, len(FEATURES)))
        feats[:, 0] = np.arange(1.0, n + 1.0)
        return feats

    def test_nan_string_rejected_in_strict(self, tmp_path):
        from repro.core.sanitize import DataQualityError

        feats = self._clean_features()
        feats[2, 5] = np.nan  # float("nan") parses happily -> must be caught
        path = tmp_path / "nan.csv"
        self._write_canonical(path, feats)
        with pytest.raises(DataQualityError, match="non_finite") as exc:
            read_run_csv(path, CSVTraceSpec.identity(), policy="strict")
        issue = exc.value.issues[0]
        assert issue.label == str(path)
        assert "nan.csv:4" in issue.location  # header is line 1
        assert issue.column == FEATURES[5]

    def test_inf_string_repaired_by_interpolation(self, tmp_path):
        feats = self._clean_features()
        feats[2, 5] = np.inf
        path = tmp_path / "inf.csv"
        self._write_canonical(path, feats)
        run = read_run_csv(path, CSVTraceSpec.identity(), policy="repair")
        assert np.isfinite(run.features).all()
        # linear interpolation between the neighbours (values 1.0 and 3.0)
        assert run.features[2, 5] == pytest.approx(2.0)

    def test_nan_csv_quarantine_drops_row(self, tmp_path):
        feats = self._clean_features()
        feats[2, 5] = np.nan
        path = tmp_path / "q.csv"
        self._write_canonical(path, feats)
        run = read_run_csv(path, CSVTraceSpec.identity(), policy="quarantine")
        assert run.n_datapoints == feats.shape[0] - 1
        assert np.isfinite(run.features).all()

    def test_early_fail_time_rejected_in_strict(self, tmp_path):
        from repro.core.sanitize import DataQualityError

        feats = self._clean_features()
        path = tmp_path / "early.csv"
        self._write_canonical(path, feats)
        with pytest.raises(DataQualityError, match="fail_time"):
            read_run_csv(
                path, CSVTraceSpec.identity(), fail_time=2.0, policy="strict"
            )

    def test_early_fail_time_clamped_in_repair(self, tmp_path):
        from repro.core.sanitize import QualityReport

        feats = self._clean_features()
        path = tmp_path / "early.csv"
        self._write_canonical(path, feats)
        quality = QualityReport(policy="repair")
        run = read_run_csv(
            path,
            CSVTraceSpec.identity(),
            fail_time=2.0,
            policy="repair",
            quality=quality,
        )
        assert run.fail_time == feats[-1, 0]
        assert quality.counts_by_kind().get("fail_time") == 1

    def test_unsorted_rows_flagged_in_strict(self, tmp_path):
        from repro.core.sanitize import DataQualityError

        feats = self._clean_features()
        feats[[1, 2]] = feats[[2, 1]]
        path = tmp_path / "unsorted.csv"
        self._write_canonical(path, feats)
        with pytest.raises(DataQualityError, match="out_of_order"):
            read_run_csv(path, CSVTraceSpec.identity(), policy="strict")
        # the default (repair) silently re-sorts, as it always did
        run = read_run_csv(path, CSVTraceSpec.identity())
        assert (np.diff(run.features[:, 0]) >= 0).all()

    def test_negative_rttf_guard_in_runrecord(self):
        """RunRecord itself refuses fail events before the last datapoint."""
        from repro.core.history import RunRecord

        feats = self._clean_features()
        with pytest.raises(ValueError, match="negative"):
            RunRecord(features=feats, fail_time=2.0)

    def test_runrecord_rejects_nan_timestamp(self):
        from repro.core.history import RunRecord

        feats = self._clean_features()
        feats[3, 0] = np.nan
        with pytest.raises(ValueError, match="finite"):
            RunRecord(features=feats, fail_time=100.0)
