"""Tests for CSV trace ingestion (repro.core.ingest)."""

import numpy as np
import pytest

from repro.core.datapoint import FEATURES
from repro.core.ingest import (
    CSVTraceSpec,
    read_campaign_csv,
    read_run_csv,
    write_run_csv,
)


class TestCSVTraceSpec:
    def test_identity_covers_schema(self):
        spec = CSVTraceSpec.identity()
        assert set(spec.columns) == set(FEATURES)

    def test_missing_feature_rejected(self):
        cols = {name: name for name in FEATURES if name != "swap_used"}
        with pytest.raises(ValueError, match="missing features"):
            CSVTraceSpec(columns=cols)

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="unknown features"):
            CSVTraceSpec.identity(scale={"bogus": 2.0})


class TestRoundTrip:
    def test_simulated_run_roundtrips(self, history, tmp_path):
        run = history[0]
        path = write_run_csv(run, tmp_path / "run0.csv")
        loaded = read_run_csv(
            path,
            CSVTraceSpec.identity(response_time_column="response_time"),
            fail_time=run.fail_time,
        )
        assert np.allclose(loaded.features, run.features)
        assert np.allclose(loaded.response_times, run.response_times)
        assert loaded.fail_time == run.fail_time

    def test_roundtrip_without_rt(self, history, tmp_path):
        run = history[0]
        path = write_run_csv(run, tmp_path / "r.csv", include_response_time=False)
        loaded = read_run_csv(path, CSVTraceSpec.identity())
        assert loaded.response_times is None


class TestReadRunCSV:
    def _write(self, path, headers, rows):
        path.write_text(
            "\n".join([",".join(headers)] + [",".join(map(str, r)) for r in rows])
            + "\n"
        )

    def test_custom_column_names_and_scaling(self, tmp_path):
        headers = [f"col_{name}" for name in FEATURES]
        rows = [[float(i * 100 + j) for j in range(len(FEATURES))] for i in range(1, 4)]
        path = tmp_path / "trace.csv"
        self._write(path, headers, rows)
        spec = CSVTraceSpec(
            columns={name: f"col_{name}" for name in FEATURES},
            scale={"mem_used": 1024.0},  # trace in MB -> schema KB
        )
        run = read_run_csv(path, spec)
        mem_col = FEATURES.index("mem_used")
        assert run.features[0, mem_col] == pytest.approx(rows[0][mem_col] * 1024.0)
        assert run.features[0, 0] == rows[0][0]  # tgen unscaled

    def test_rows_sorted_by_time(self, tmp_path):
        headers = list(FEATURES)
        rows = [
            [30.0] + [0.0] * 14,
            [10.0] + [0.0] * 14,
            [20.0] + [0.0] * 14,
        ]
        path = tmp_path / "unsorted.csv"
        self._write(path, headers, rows)
        run = read_run_csv(path, CSVTraceSpec.identity())
        assert run.column("tgen").tolist() == [10.0, 20.0, 30.0]

    def test_default_fail_time_is_last_sample(self, tmp_path):
        headers = list(FEATURES)
        rows = [[5.0] + [0.0] * 14, [25.0] + [0.0] * 14]
        path = tmp_path / "t.csv"
        self._write(path, headers, rows)
        run = read_run_csv(path, CSVTraceSpec.identity())
        assert run.fail_time == 25.0

    def test_truncated_flag(self, tmp_path):
        headers = list(FEATURES)
        rows = [[5.0] + [0.0] * 14]
        path = tmp_path / "t.csv"
        self._write(path, headers, rows)
        run = read_run_csv(path, CSVTraceSpec.identity(), crashed=False)
        assert run.metadata["crashed"] == 0.0

    def test_missing_column_errors(self, tmp_path):
        headers = list(FEATURES)[:-1]
        path = tmp_path / "m.csv"
        self._write(path, headers, [[0.0] * len(headers)])
        with pytest.raises(ValueError, match="missing columns"):
            read_run_csv(path, CSVTraceSpec.identity())

    def test_non_numeric_errors_with_line(self, tmp_path):
        headers = list(FEATURES)
        path = tmp_path / "bad.csv"
        rows = [[1.0] + [0.0] * 14]
        self._write(path, headers, rows)
        text = path.read_text().replace("0.0", "oops", 1)
        path.write_text(text)
        with pytest.raises(ValueError, match="bad.csv:2"):
            read_run_csv(path, CSVTraceSpec.identity())

    def test_empty_file_errors(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            read_run_csv(path, CSVTraceSpec.identity())


class TestReadCampaign:
    def test_directory_of_runs(self, history, tmp_path):
        for i, run in enumerate(history):
            write_run_csv(run, tmp_path / f"run{i}.csv")
        loaded = read_campaign_csv(
            tmp_path, CSVTraceSpec.identity(response_time_column="response_time")
        )
        assert len(loaded) == len(history)
        # and the ingested history feeds the pipeline end to end
        from repro.core import AggregationConfig, aggregate_history

        ds = aggregate_history(loaded, AggregationConfig(window_seconds=30.0))
        assert ds.n_samples > 0

    def test_empty_directory_errors(self, tmp_path):
        with pytest.raises(ValueError, match="no files"):
            read_campaign_csv(tmp_path, CSVTraceSpec.identity())
