"""Tests for the model registry (repro.core.model_zoo)."""

import numpy as np
import pytest

from repro.core.model_zoo import (
    PAPER_MODELS,
    available_models,
    make_model,
    register,
)
from repro.ml.base import Regressor, clone
from repro.ml.pipeline import ScaledModel


class TestRegistry:
    def test_paper_models_all_registered(self):
        for name in PAPER_MODELS:
            assert name in available_models()

    def test_make_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown model"):
            make_model("gradient_boosting")

    def test_register_custom(self):
        from repro.ml.linear import RidgeRegression

        register("my_ridge", lambda **kw: RidgeRegression(**kw))
        try:
            m = make_model("my_ridge", alpha=3.0)
            assert m.alpha == 3.0
        finally:
            # keep the registry clean for other tests
            from repro.core import model_zoo

            del model_zoo._REGISTRY["my_ridge"]

    def test_register_empty_name(self):
        with pytest.raises(ValueError):
            register("", lambda: None)

    def test_every_model_is_regressor(self):
        for name in PAPER_MODELS:
            assert isinstance(make_model(name), Regressor)

    def test_overrides_forwarded(self):
        m = make_model("reptree", max_depth=3)
        assert m.max_depth == 3

    def test_lasso_parameterized(self):
        m = make_model("lasso", lam=123.0)
        assert isinstance(m, ScaledModel)
        assert m.inner.lam == 123.0

    def test_svm_models_scaled(self):
        # SVR / LS-SVM are scale-sensitive: the zoo must wrap them
        assert isinstance(make_model("svm"), ScaledModel)
        assert isinstance(make_model("svm2"), ScaledModel)

    def test_svm_defaults_linear_kernel(self):
        # WEKA SMOreg's default is a degree-1 (linear) kernel — the reason
        # the paper's SVM errors match its Linear Regression errors
        assert make_model("svm").inner.kernel == "linear"
        assert make_model("svm2").inner.kernel == "linear"

    def test_models_cloneable(self):
        for name in PAPER_MODELS:
            proto = make_model(name)
            assert clone(proto) is not proto


class TestModelsFitOnCampaignData(object):
    @pytest.mark.parametrize("name", ["linear", "m5p", "reptree", "svm2"])
    def test_fit_predict(self, name, dataset):
        model = make_model(name)
        model.fit(dataset.X, dataset.y)
        pred = model.predict(dataset.X)
        assert pred.shape == dataset.y.shape
        assert np.isfinite(pred).all()

    def test_svm_fits_small_subset(self, dataset):
        # full SMO on campaign data is exercised by the integration tests;
        # keep the unit test snappy with a subsample and an iteration cap
        model = make_model("svm", max_iter=20_000)
        X, y = dataset.X[:80], dataset.y[:80]
        model.fit(X, y)
        assert np.isfinite(model.predict(X)).all()

    def test_lasso_predictor_high_lambda_is_mean(self, dataset):
        model = make_model("lasso", lam=1e9)
        model.fit(dataset.X, dataset.y)
        pred = model.predict(dataset.X)
        assert np.allclose(pred, dataset.y.mean(), rtol=0.01)
