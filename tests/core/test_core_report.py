"""Tests for the Markdown report generator (repro.core.report)."""

import pytest

from repro.core import AggregationConfig, F2PM, F2PMConfig
from repro.core.report import render_markdown_report, write_markdown_report


@pytest.fixture(scope="module")
def result(request):
    history = request.getfixturevalue("history")
    cfg = F2PMConfig(
        aggregation=AggregationConfig(window_seconds=30.0),
        models=("linear", "reptree"),
        lasso_predictor_lambdas=(1e9,),
        seed=0,
    )
    return F2PM(cfg).run(history)


class TestRenderMarkdownReport:
    def test_contains_all_sections(self, result):
        md = render_markdown_report(result)
        for heading in (
            "# F2PM report",
            "## Campaign",
            "## Feature selection",
            "## S-MAE",
            "## Training time",
            "## Validation time",
            "## Recommendation",
            "## Error profile",
        ):
            assert heading in md

    def test_custom_title(self, result):
        md = render_markdown_report(result, title="Production RTTF study")
        assert md.startswith("# Production RTTF study")

    def test_every_model_listed(self, result):
        md = render_markdown_report(result)
        for name in ("linear", "reptree", "lasso(1e9)"):
            assert name in md

    def test_recommendation_names_best(self, result):
        md = render_markdown_report(result)
        best = result.best_by_smae("all")
        assert f"**{best.name}**" in md

    def test_tables_are_valid_markdown(self, result):
        md = render_markdown_report(result)
        header_seps = [l for l in md.splitlines() if set(l) <= {"|", "-"} and l]
        assert len(header_seps) >= 5  # one per table

    def test_selection_weights_present(self, result):
        md = render_markdown_report(result)
        for name in result.selection.selected:
            assert name in md


class TestWriteMarkdownReport:
    def test_writes_file(self, result, tmp_path):
        path = write_markdown_report(result, tmp_path / "report.md")
        assert path.exists()
        assert "## Recommendation" in path.read_text()


class TestCliReportFlag:
    def test_train_report(self, history, tmp_path, capsys):
        from repro.cli import main

        hist_file = tmp_path / "h.npz"
        history.save(hist_file)
        report_file = tmp_path / "out.md"
        rc = main(
            [
                "train",
                str(hist_file),
                "--window",
                "30",
                "--models",
                "linear",
                "--report",
                str(report_file),
            ]
        )
        assert rc == 0
        assert report_file.exists()
        assert "wrote report" in capsys.readouterr().out
