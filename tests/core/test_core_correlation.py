"""Tests for the RT correlation utility (repro.core.correlation, Fig. 3)."""

import numpy as np
import pytest

from repro.core.correlation import (
    CorrelationSeries,
    ResponseTimeCorrelator,
    generation_intervals,
)
from repro.core.datapoint import FEATURES
from repro.core.history import RunRecord


def run_with_rt(tgen, rt, fail_time=1000.0):
    feats = np.zeros((len(tgen), len(FEATURES)))
    feats[:, 0] = tgen
    return RunRecord(
        features=feats,
        fail_time=fail_time,
        response_times=np.asarray(rt, dtype=np.float64),
    )


class TestGenerationIntervals:
    def test_first_point_carries_own_tgen(self):
        run = run_with_rt([2.0, 5.0, 9.0], [0.1, 0.2, 0.3])
        assert generation_intervals(run).tolist() == [2.0, 3.0, 4.0]


class TestCorrelator:
    def test_recovers_linear_relation(self):
        rng = np.random.default_rng(0)
        gen = rng.uniform(1.0, 10.0, size=200)
        rt = 0.8 * gen - 0.5 + rng.normal(scale=0.01, size=200)
        corr = ResponseTimeCorrelator().fit(gen, rt)
        assert corr.slope == pytest.approx(0.8, abs=0.01)
        assert corr.intercept == pytest.approx(-0.5, abs=0.02)

    def test_predict_applies_model(self):
        corr = ResponseTimeCorrelator().fit(
            np.array([1.0, 2.0, 3.0]), np.array([2.0, 4.0, 6.0])
        )
        pred = corr.predict(np.array([5.0]))
        assert pred[0] == pytest.approx(10.0)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            ResponseTimeCorrelator().predict(np.array([1.0]))
        with pytest.raises(RuntimeError):
            ResponseTimeCorrelator().slope

    def test_fit_run_series(self):
        tgen = np.cumsum(np.linspace(1.0, 5.0, 50))
        gen = np.empty(50)
        gen[0] = tgen[0]
        gen[1:] = np.diff(tgen)
        rt = 0.5 * gen + 0.1
        run = run_with_rt(tgen, rt, fail_time=float(tgen[-1] + 1))
        series = ResponseTimeCorrelator().fit_run(run)
        assert isinstance(series, CorrelationSeries)
        assert series.r2 > 0.999
        assert series.mae < 1e-9
        assert np.array_equal(series.time, tgen)

    def test_fit_run_without_rt_raises(self):
        feats = np.zeros((5, len(FEATURES)))
        feats[:, 0] = np.arange(5.0)
        run = RunRecord(features=feats, fail_time=10.0)
        with pytest.raises(ValueError, match="ground truth"):
            ResponseTimeCorrelator().fit_run(run)

    def test_on_simulated_run_paper_shape(self, history):
        """The paper's Fig. 3 claims, on our simulated testbed."""
        series = ResponseTimeCorrelator().fit_run(history[0])
        # both curves grow toward the failure point
        third = series.time.size // 3
        assert series.generation_time[-third:].mean() > series.generation_time[:third].mean()
        assert series.response_time[-third:].mean() > series.response_time[:third].mean()
        # and the linear correlation explains most of the RT variance
        assert series.r2 > 0.5
