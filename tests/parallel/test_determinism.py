"""Determinism guarantees of the parallel execution layer.

The contract (docs/PARALLELISM.md): for a fixed seed, the campaign's
``DataHistory`` and the F2PM metric tables are **identical for any
worker count** — serial legacy path, ``jobs=1`` and any ``jobs=N``
produce the same bytes. Only wall-clock measurements may differ.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import F2PM, AggregationConfig, F2PMConfig
from repro.system import TestbedSimulator

#: Worker counts exercised against the serial reference. 4 > cpu_count
#: on small CI boxes, which is deliberate: oversubscription must not
#: change results either.
WORKER_COUNTS = (1, 2, 4)


def assert_histories_bit_identical(reference, other) -> None:
    """Byte-level equality of two DataHistory objects."""
    assert len(reference) == len(other)
    for a, b in zip(reference, other):
        assert a.features.dtype == b.features.dtype
        assert a.features.shape == b.features.shape
        assert a.features.tobytes() == b.features.tobytes()
        assert a.fail_time == b.fail_time
        if a.response_times is None:
            assert b.response_times is None
        else:
            assert a.response_times.tobytes() == b.response_times.tobytes()
        assert dict(a.metadata) == dict(b.metadata)


@pytest.mark.parametrize("jobs", WORKER_COUNTS)
def test_campaign_bit_identical_for_any_worker_count(
    campaign_config, serial_history, jobs
):
    history = TestbedSimulator(campaign_config).run_campaign(jobs=jobs)
    assert_histories_bit_identical(serial_history, history)


def test_run_many_matches_campaign_partitioning(campaign_config, serial_history):
    """run_many on pre-spawned generators reproduces the campaign runs."""
    from repro.utils.rng import as_rng

    rngs = as_rng(campaign_config.seed).spawn(campaign_config.n_runs)
    records = TestbedSimulator(campaign_config).run_many(rngs, jobs=2)
    assert len(records) == len(serial_history)
    for a, b in zip(serial_history, records):
        assert a.features.tobytes() == b.features.tobytes()
        assert a.fail_time == b.fail_time


def _f2pm_config() -> F2PMConfig:
    return F2PMConfig(
        aggregation=AggregationConfig(window_seconds=30.0),
        models=("linear", "m5p", "reptree"),
        lasso_predictor_lambdas=(1e0, 1e4),
        seed=0,
    )


@pytest.fixture(scope="module")
def serial_result(serial_history):
    return F2PM(_f2pm_config()).run(serial_history)


def _metric_key(report):
    """Everything in a ModelReport except the wall-clock columns."""
    return (
        report.name,
        report.feature_set,
        report.n_features,
        report.mae,
        report.rae,
        report.max_ae,
        report.s_mae,
        report.s_mae_threshold,
    )


@pytest.mark.parametrize("jobs", WORKER_COUNTS)
def test_f2pm_metric_tables_identical_for_any_worker_count(
    serial_history, serial_result, jobs
):
    result = F2PM(_f2pm_config()).run(serial_history, jobs=jobs)

    # Same grid, same order, bit-equal error metrics.
    assert [_metric_key(r) for r in result.reports] == [
        _metric_key(r) for r in serial_result.reports
    ]
    # The rendered paper tables that carry no wall clocks match byte
    # for byte (training/validation-time tables are wall-clock by
    # definition and are exempt from the guarantee).
    assert result.smae_table() == serial_result.smae_table()

    # Predictions and ground truth are bit-equal per grid cell.
    assert set(result.predictions) == set(serial_result.predictions)
    for key, pred in serial_result.predictions.items():
        assert result.predictions[key].tobytes() == pred.tobytes()
    assert result.y_validation.tobytes() == serial_result.y_validation.tobytes()

    # Feature selection (computed in-process) is untouched by jobs.
    assert result.selection.lam == serial_result.selection.lam
    assert result.selection.selected == serial_result.selection.selected
    assert result.smae_threshold == serial_result.smae_threshold


def test_fitted_models_predict_identically(serial_history, serial_result):
    """Models fitted in workers ship back and predict like serial ones."""
    parallel_result = F2PM(_f2pm_config()).run(serial_history, jobs=2)
    X = serial_result.dataset.X
    for key, serial_model in serial_result.models.items():
        if key[1] != "all":
            continue
        a = serial_model.predict(X)
        b = parallel_result.models[key].predict(X)
        assert np.array_equal(a, b)


def test_incremental_collection_identical(campaign_config):
    """The batched collection loop honors the same guarantee."""
    from repro.core.incremental import IncrementalCollector, IncrementalConfig

    def collect(jobs):
        return IncrementalCollector(
            TestbedSimulator(campaign_config),
            F2PMConfig(
                aggregation=AggregationConfig(window_seconds=30.0),
                models=("linear",),
                lasso_predictor_lambdas=(),
                seed=0,
            ),
            IncrementalConfig(batch_runs=2, max_runs=4, target_smae=1e-9, seed=5),
        ).collect(jobs=jobs)

    serial = collect(jobs=1)
    parallel = collect(jobs=2)
    assert_histories_bit_identical(serial.history, parallel.history)
    assert [p.best_smae for p in serial.trace] == [
        p.best_smae for p in parallel.trace
    ]
