"""Shared campaign construction for the parallel/determinism suite."""

from __future__ import annotations

from repro.system import CampaignConfig, MachineConfig


def parallel_campaign(n_runs: int = 5, seed: int = 3) -> CampaignConfig:
    """The fast test VM campaign (512 MB RAM / 256 MB swap)."""
    machine = MachineConfig(
        ram_kb=524_288.0,
        swap_kb=262_144.0,
        os_base_kb=131_072.0,
        app_working_set_kb=65_536.0,
        min_cache_kb=16_384.0,
        shared_kb=8_192.0,
        buffers_kb=4_096.0,
    )
    return CampaignConfig(
        n_runs=n_runs,
        seed=seed,
        machine=machine,
        n_browsers=40,
        p_leak_range=(0.3, 0.5),
        leak_kb_range=(1024.0, 4096.0),
        max_run_seconds=3000.0,
    )
