"""Fixtures for the parallel/determinism suite.

The campaign mirrors the fast test VM of the top-level conftest but is
rebuilt here (``campaign_util``) so this suite stays runnable in
isolation — the CI job runs ``pytest tests/parallel`` alone, with a
deadlock timeout.
"""

from __future__ import annotations

import pytest

from campaign_util import parallel_campaign
from repro.system import TestbedSimulator


@pytest.fixture(scope="session")
def campaign_config():
    return parallel_campaign()


@pytest.fixture(scope="session")
def serial_history(campaign_config):
    """The reference: the legacy single-process campaign path."""
    return TestbedSimulator(campaign_config).run_campaign()
