"""Property-based tests (hypothesis) for the core aggregation math.

Three invariants of paper Sec. III-B, checked over generated inputs:

1. **Eq. (1) slopes on linear series.** For a feature that grows
   linearly per datapoint (``x_k = a*k + b``), the window slope
   ``(x_end - x_start) / n`` equals ``a * (n-1) / n`` exactly — the
   paper's discrete derivative recovers the per-sample coefficient
   ``a`` up to the endpoint factor ``(n-1)/n``, for **any** window
   size, sampling interval and window population.
2. **Window means are permutation-invariant.** Shuffling the non-time
   feature values among the datapoints of one window leaves every
   window mean (and the gen-time metric and RTTF labels) unchanged —
   means depend on the window's population, not its internal order.
3. **RTTF labels decrease monotonically to the fail event.** Within a
   run, later windows are strictly closer to the failure, and every
   label is positive (the fail event postdates all datapoints).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import AggregationConfig, aggregate_run
from repro.core.datapoint import FEATURES
from repro.core.history import RunRecord

N_F = len(FEATURES)
TGEN_COL = 0


def _linear_run(a: float, b: float, dt: float, n: int) -> RunRecord:
    """A run whose every non-time feature is ``x_k = a*k + b``."""
    k = np.arange(n, dtype=np.float64)
    feats = np.tile(a * k + b, (N_F, 1)).T
    feats[:, TGEN_COL] = (k + 1) * dt
    return RunRecord(
        features=feats,
        fail_time=float(feats[-1, TGEN_COL] + 1.0),
        metadata={"crashed": 1.0},
    )


@settings(deadline=None, max_examples=60)
@given(
    a=st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
    b=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    dt=st.floats(min_value=0.25, max_value=10.0),
    n=st.integers(min_value=2, max_value=200),
    window=st.floats(min_value=0.5, max_value=500.0),
)
def test_eq1_slope_of_linear_series_matches_coefficient(a, b, dt, n, window):
    run = _linear_run(a, b, dt, n)
    X, _ = aggregate_run(run, AggregationConfig(window_seconds=window))

    # Recover each window's datapoint count exactly as the aggregator
    # bins them, to compute Eq. (1)'s closed form per window.
    bins = np.floor_divide(run.features[:, TGEN_COL], window).astype(np.int64)
    _, counts = np.unique(bins, return_counts=True)
    expected = a * (counts - 1) / counts

    # Slope columns sit after the 15 window means; every non-time
    # feature is the same linear series, so every slope column agrees.
    slopes = X[:, N_F : 2 * N_F - 1]
    assert slopes.shape == (counts.size, N_F - 1)
    np.testing.assert_allclose(
        slopes, np.tile(expected, (N_F - 1, 1)).T, rtol=1e-9, atol=1e-9
    )


@st.composite
def random_run(draw):
    n = draw(st.integers(min_value=2, max_value=120))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    tgen = np.cumsum(rng.uniform(0.5, 5.0, size=n))
    feats = rng.uniform(0.0, 1e6, size=(n, N_F))
    feats[:, TGEN_COL] = tgen
    fail_time = float(tgen[-1] + rng.uniform(0.1, 100.0))
    return RunRecord(features=feats, fail_time=fail_time, metadata={"crashed": 1.0})


@settings(deadline=None, max_examples=60)
@given(
    run=random_run(),
    window=st.floats(min_value=1.0, max_value=200.0),
    perm_seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_window_means_are_permutation_invariant(run, window, perm_seed):
    config = AggregationConfig(window_seconds=window)
    X, rttf = aggregate_run(run, config)

    # Permute the non-time features among the datapoints of one window
    # (tgen must stay sorted, so the time column stays put).
    bins = np.floor_divide(run.features[:, TGEN_COL], window).astype(np.int64)
    rng = np.random.default_rng(perm_seed)
    target = rng.choice(np.unique(bins))
    rows = np.flatnonzero(bins == target)
    perm = rng.permutation(rows)
    shuffled = run.features.copy()
    shuffled[rows, 1:] = shuffled[perm, 1:]
    shuffled_run = RunRecord(
        features=shuffled, fail_time=run.fail_time, metadata=dict(run.metadata)
    )
    X2, rttf2 = aggregate_run(shuffled_run, config)

    means, means2 = X[:, :N_F], X2[:, :N_F]
    np.testing.assert_allclose(means2, means, rtol=1e-9)
    # gen-time (last column) depends only on tgen spacing: bit-equal.
    assert np.array_equal(X2[:, -1], X[:, -1])
    # RTTF labels depend only on window-mean tgen: bit-equal.
    assert np.array_equal(rttf2, rttf)


@settings(deadline=None, max_examples=60)
@given(run=random_run(), window=st.floats(min_value=1.0, max_value=200.0))
def test_rttf_labels_decrease_monotonically_to_fail_event(run, window):
    _, rttf = aggregate_run(run, AggregationConfig(window_seconds=window))
    assert rttf.size >= 1
    assert np.all(rttf > 0.0)
    assert np.all(np.diff(rttf) < 0.0)
