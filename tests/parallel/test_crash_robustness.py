"""Failure semantics of the parallel layer: clean errors, no orphans.

A worker dying mid-campaign must surface as **one** clear exception in
the parent — naming the failing task and carrying the original error —
with the pool fully shut down afterwards (no hang, no orphaned worker
processes). The ``jobs=1`` path must keep the legacy behavior: the
original exception propagates untouched, with no pool involvement.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro.core import F2PM
from repro.parallel import WorkerError, resolve_jobs, run_tasks
from repro.system import TestbedSimulator
from repro.system.failure import FailureCondition

from campaign_util import parallel_campaign


class ExplodingCondition(FailureCondition):
    """Failure condition that blows up on its first evaluation.

    Module-level so it pickles into worker processes.
    """

    def is_failed(self, view) -> bool:
        raise RuntimeError("boom: injected mid-campaign fault")


def _assert_no_orphaned_workers(deadline_s: float = 10.0) -> None:
    """All pool workers must be joined shortly after the error."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if not multiprocessing.active_children():
            return
        time.sleep(0.05)
    raise AssertionError(
        f"orphaned worker processes: {multiprocessing.active_children()}"
    )


def test_worker_crash_surfaces_one_clear_error():
    simulator = TestbedSimulator(
        parallel_campaign(n_runs=4), failure_condition=ExplodingCondition()
    )
    with pytest.raises(WorkerError, match=r"campaign run \d+ failed"):
        simulator.run_campaign(jobs=2)
    _assert_no_orphaned_workers()


def test_worker_crash_preserves_original_cause():
    simulator = TestbedSimulator(
        parallel_campaign(n_runs=2), failure_condition=ExplodingCondition()
    )
    with pytest.raises(WorkerError) as excinfo:
        simulator.run_campaign(jobs=2)
    assert "boom: injected mid-campaign fault" in str(excinfo.value)
    assert isinstance(excinfo.value.cause, RuntimeError)
    assert isinstance(excinfo.value.__cause__, RuntimeError)


def test_jobs_1_fallback_raises_directly():
    """The serial path surfaces the raw exception — no pool, no wrapper."""
    simulator = TestbedSimulator(
        parallel_campaign(n_runs=2), failure_condition=ExplodingCondition()
    )
    with pytest.raises(RuntimeError, match="boom") as excinfo:
        simulator.run_campaign(jobs=1)
    assert not isinstance(excinfo.value, WorkerError)
    _assert_no_orphaned_workers()


def _half_fail(index: int) -> int:
    if index % 2:
        raise ValueError(f"task {index} exploded")
    return index * 10


def test_run_tasks_reports_lowest_failing_index_seen():
    with pytest.raises(WorkerError, match=r"task \d+ failed"):
        run_tasks(_half_fail, list(range(6)), jobs=2)


def test_run_tasks_orders_results_by_payload_index():
    results = run_tasks(_identity, list(range(7)), jobs=3)
    assert results == list(range(7))


def _identity(x: int) -> int:
    return x


def test_jobs_validation():
    simulator = TestbedSimulator(parallel_campaign(n_runs=2))
    with pytest.raises(ValueError, match="jobs"):
        simulator.run_campaign(jobs=0)
    with pytest.raises(ValueError, match="jobs"):
        F2PM().run(None, jobs=0)  # validated before the history is touched
    with pytest.raises(ValueError, match="jobs"):
        resolve_jobs(-1)
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(3) == 3
