"""Telemetry-bus completeness under parallel execution.

Worker bus buffers ship back with the task results and replay through
the parent bus in task-index order. Because each campaign task emits a
small, fixed number of points per series (far below the ring capacity),
worker dumps are lossless — so the merged stream is **bit-identical**
to the serial one for any worker count, the same guarantee the metrics
and spans already carry.
"""

from __future__ import annotations

import multiprocessing
import time

import pytest

from repro import obs
from repro.obs import get_telemetry
from repro.parallel import WorkerError
from repro.parallel.telemetry import WorkerTelemetry, merge
from repro.system import TestbedSimulator
from repro.system.failure import FailureCondition

from campaign_util import parallel_campaign


@pytest.fixture(autouse=True)
def fresh_obs_window():
    obs.reset()
    yield
    obs.reset()


def _campaign_bus_snapshot(jobs: int):
    obs.reset()
    TestbedSimulator(parallel_campaign()).run_campaign(jobs=jobs)
    return get_telemetry().snapshot()


@pytest.mark.parametrize("jobs", [2, 3])
def test_parallel_bus_is_bit_identical_to_serial(jobs):
    serial = _campaign_bus_snapshot(jobs=1)
    parallel = _campaign_bus_snapshot(jobs=jobs)
    assert parallel == serial
    # And the campaign actually emitted: one point per run per series.
    n_runs = parallel_campaign().n_runs
    assert serial["series"]["sim.run_seconds"]["total"] == n_runs
    assert serial["series"]["sim.run_crashed"]["total"] == n_runs


def test_run_series_points_are_indexed_by_task_order():
    snap = _campaign_bus_snapshot(jobs=2)
    ts = snap["series"]["sim.run_seconds"]["points"]
    assert [t for t, _ in ts] == [float(i) for i in range(parallel_campaign().n_runs)]


def test_empty_worker_buffer_merges_as_a_no_op():
    bus = get_telemetry()
    bus.emit("a", 1.0, 1.0)
    before = bus.snapshot()
    merge(WorkerTelemetry())  # a task that emitted nothing
    merge(WorkerTelemetry(series={"series": {}, "events": [], "events_total": 0}))
    assert bus.snapshot() == before


def test_merge_of_none_telemetry_is_a_no_op():
    bus = get_telemetry()
    bus.emit("a", 1.0, 1.0)
    before = bus.snapshot()
    merge(None)
    assert bus.snapshot() == before


def test_disabled_bus_stays_empty_across_workers():
    obs.disable()
    try:
        TestbedSimulator(parallel_campaign()).run_campaign(jobs=2)
        assert get_telemetry().snapshot()["series"] == {}
    finally:
        obs.enable()


class ExplodingCondition(FailureCondition):
    """Blows up on first evaluation (module-level: pickles into workers)."""

    def is_failed(self, view) -> bool:
        raise RuntimeError("boom: injected mid-campaign fault")


def test_worker_crash_mid_buffer_leaves_parent_bus_clean():
    """A crashing task ships no buffer; the parent bus has no partial points."""
    simulator = TestbedSimulator(
        parallel_campaign(n_runs=4), failure_condition=ExplodingCondition()
    )
    with pytest.raises(WorkerError):
        simulator.run_campaign(jobs=2)
    snap = get_telemetry().snapshot()
    # No completed run ever merged, so the per-run series never appear.
    assert "sim.run_seconds" not in snap["series"]
    # The pool is down — no orphaned workers holding buffers.
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline and multiprocessing.active_children():
        time.sleep(0.05)
    assert not multiprocessing.active_children()


def test_merged_stream_feeds_parent_sinks_in_task_order():
    seen: list[tuple[str, float]] = []

    class Probe:
        def point(self, name, t, v):
            if name == "sim.run_seconds":
                seen.append((name, t))

        def event(self, ev):
            pass

    bus = get_telemetry()
    probe = Probe()
    bus.add_sink(probe)
    try:
        TestbedSimulator(parallel_campaign()).run_campaign(jobs=2)
    finally:
        bus.remove_sink(probe)
    assert [t for _, t in seen] == [
        float(i) for i in range(parallel_campaign().n_runs)
    ]
