"""Per-worker context shipping (``run_tasks(..., context=...)``).

The training grid fans ~12 cells out per feature set, and every cell in
a feature set fits the same train/validation split — the split must
ship once per *worker*, not once per *task*. These tests pin the pool
mechanics and the grid builder's payload dedup.
"""

from __future__ import annotations

import numpy as np

from repro.parallel import run_tasks, worker_context


def _read_context(key: str):
    return worker_context()[key]


def _context_is_none(_payload) -> bool:
    return worker_context() is None


def test_context_visible_in_every_worker():
    context = {"a": 1, "b": 2}
    results = run_tasks(_read_context, ["a", "b", "a", "b"], jobs=2, context=context)
    assert results == [1, 2, 1, 2]


def test_no_context_reads_none():
    assert run_tasks(_context_is_none, [0, 1, 2], jobs=2) == [True] * 3


def test_parent_process_context_is_none():
    # the accessor is only meaningful inside a worker
    assert worker_context() is None


class TestGridPayloadDedup:
    def _grid(self, n_models: int = 3):
        from repro.core.dataset import TrainingSet
        from repro.ml.linear import LinearRegression

        rng = np.random.default_rng(0)
        mk = lambda n: TrainingSet(  # noqa: E731
            X=rng.normal(size=(n, 2)), y=rng.normal(size=n), feature_names=("a", "b")
        )
        train, val = mk(40), mk(10)
        return [
            ("all", f"lr{i}", LinearRegression(), train, val)
            for i in range(n_models)
        ], (train, val)

    def test_shared_split_ships_via_context_not_payload(self):
        """Grid cells sharing a split must not re-pickle it per task."""
        from repro.parallel import training

        grid, (train, val) = self._grid()
        captured = {}
        original = training.run_tasks

        def spy(worker, payloads, **kwargs):
            captured["payloads"] = list(payloads)
            captured["context"] = kwargs.get("context")
            return original(worker, payloads, **kwargs)

        training.run_tasks = spy
        try:
            results = training.evaluate_grid_parallel(
                grid, smae_threshold=10.0, jobs=2
            )
        finally:
            training.run_tasks = original

        assert len(results) == 3
        # every payload leans on the context; none carries the split inline
        for payload in captured["payloads"]:
            assert "train" not in payload
        assert captured["context"]["all"] == (train, val)

    def test_divergent_split_ships_inline_and_is_used(self):
        from repro.core.dataset import TrainingSet
        from repro.ml.linear import LinearRegression
        from repro.parallel import training

        grid, (train, val) = self._grid(2)
        rng = np.random.default_rng(9)
        odd_train = TrainingSet(
            X=rng.normal(size=(30, 2)),
            y=np.full(30, 777.0),  # recognizably different target
            feature_names=("a", "b"),
        )
        grid.append(("all", "odd", LinearRegression(), odd_train, val))

        results = training.evaluate_grid_parallel(grid, smae_threshold=10.0, jobs=2)
        # the divergent cell really fit its own split: a constant-777
        # target makes the intercept-only prediction unmistakable
        _, odd_model, odd_pred = results[2]
        assert np.allclose(odd_pred, 777.0, atol=1.0)

    def test_grid_results_match_serial(self):
        from repro.parallel import training

        grid, _ = self._grid()
        parallel = training.evaluate_grid_parallel(grid, smae_threshold=10.0, jobs=2)
        serial = training.evaluate_grid_parallel(grid, smae_threshold=10.0, jobs=1)
        for (rp, _, pp), (rs, _, ps) in zip(parallel, serial):
            assert rp.mae == rs.mae
            assert np.array_equal(pp, ps)
