"""Observability completeness under parallel execution.

Worker metrics/spans are captured in the child, shipped back with the
results, and merged into the parent registry in run order — so traces,
metric snapshots and manifests from a parallel execution are as
complete as serial ones (tentpole claim 3).
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core import F2PM, AggregationConfig, F2PMConfig
from repro.obs import get_metrics, get_tracer
from repro.system import TestbedSimulator


@pytest.fixture(autouse=True)
def fresh_obs_window():
    """Isolate each test's spans/metrics; leave obs enabled as found."""
    obs.reset()
    yield
    obs.reset()


def _campaign_counters(campaign_config, jobs):
    obs.reset()
    history = TestbedSimulator(campaign_config).run_campaign(jobs=jobs)
    return history, get_metrics().snapshot()


def test_parallel_campaign_metrics_match_serial(campaign_config):
    h_serial, serial = _campaign_counters(campaign_config, jobs=1)
    h_parallel, parallel = _campaign_counters(campaign_config, jobs=2)
    assert serial["counters"] == parallel["counters"]
    assert serial["counters"]["sim.runs_total"] == campaign_config.n_runs
    assert (
        parallel["counters"]["sim.datapoints_total"] == h_parallel.n_datapoints
    )
    # Histograms merge too: one observation per run either way.
    assert (
        parallel["histograms"]["sim.run_seconds"]["count"]
        == serial["histograms"]["sim.run_seconds"]["count"]
        == campaign_config.n_runs
    )


def test_parallel_campaign_spans_merge_in_run_order(campaign_config):
    TestbedSimulator(campaign_config).run_campaign(jobs=2)
    roots = get_tracer().roots
    campaign_spans = [s for s in roots if s.name == "simulate.campaign"]
    assert len(campaign_spans) == 1
    runs = [c for c in campaign_spans[0].children if c.name == "simulate.run"]
    assert [r.attributes["index"] for r in runs] == list(
        range(campaign_config.n_runs)
    )
    for run_span in runs:
        assert run_span.attributes["datapoints"] > 0
        assert run_span.duration > 0.0


def test_parallel_f2pm_manifest_is_complete(serial_history):
    config = F2PMConfig(
        aggregation=AggregationConfig(window_seconds=30.0),
        models=("linear", "reptree"),
        lasso_predictor_lambdas=(),
        seed=0,
    )
    result = F2PM(config).run(serial_history, jobs=2)
    manifest = result.manifest()

    grid_size = 2 * len(config.models)  # two feature sets, no lasso predictors
    assert len(manifest["reports"]) == grid_size
    # Every report carries a real (in-worker) wall-clock measurement.
    assert all(r["train_time"] > 0.0 for r in manifest["reports"])

    # The span tree contains one evaluate span per grid cell, grafted
    # under train_validate in grid order.
    trace = result.trace
    assert trace is not None
    train_validate = trace.find("train_validate")
    assert train_validate is not None
    evaluates = [c for c in train_validate.children if c.name == "evaluate"]
    assert len(evaluates) == grid_size
    assert [e.attributes["model"] for e in evaluates] == list(
        config.models
    ) * 2


def test_disabled_obs_stays_disabled_across_workers(campaign_config):
    obs.disable()
    try:
        history = TestbedSimulator(campaign_config).run_campaign(jobs=2)
        assert len(history) == campaign_config.n_runs
        assert get_metrics().snapshot()["counters"] == {}
        assert get_tracer().roots == []
    finally:
        obs.enable()
