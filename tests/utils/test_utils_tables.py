"""Tests for repro.utils.tables."""

import pytest

from repro.utils.tables import render_table


class TestRenderTable:
    def test_basic_structure(self):
        out = render_table(("a", "b"), [[1, 2], [3, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("+")
        assert "| a" in lines[1]
        assert len(lines) == 6  # sep, header, sep, 2 rows, sep

    def test_title_prepended(self):
        out = render_table(("a",), [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = render_table(("x",), [[3.14159]], float_fmt=".2f")
        assert "3.14" in out
        assert "3.142" not in out

    def test_ints_not_float_formatted(self):
        out = render_table(("x",), [[7]])
        assert "| 7" in out

    def test_column_count_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(("a", "b"), [[1]])

    def test_empty_rows_ok(self):
        out = render_table(("alpha", "beta"), [])
        assert "alpha" in out

    def test_column_alignment(self):
        out = render_table(("name", "v"), [["x", 1], ["longer", 2]])
        lines = [l for l in out.splitlines() if l.startswith("|")]
        assert len({len(l) for l in lines}) == 1  # all rows equal width

    def test_strings_pass_through(self):
        out = render_table(("s",), [["hello"]])
        assert "hello" in out
