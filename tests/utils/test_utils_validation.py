"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array,
    check_consistent_length,
    check_is_fitted,
    check_X_y,
)


class TestCheckArray:
    def test_coerces_lists(self):
        arr = check_array([[1, 2], [3, 4]])
        assert arr.dtype == np.float64
        assert arr.shape == (2, 2)

    def test_contiguous(self):
        base = np.arange(12.0).reshape(3, 4)
        arr = check_array(base[:, ::2])
        assert arr.flags["C_CONTIGUOUS"]

    def test_wrong_ndim_rejected(self):
        with pytest.raises(ValueError, match="must be 2-D"):
            check_array([1.0, 2.0])

    def test_1d_mode(self):
        arr = check_array([1.0, 2.0], ndim=1)
        assert arr.shape == (2,)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="no samples"):
            check_array(np.empty((0, 3)))

    def test_empty_allowed_when_opted_in(self):
        arr = check_array(np.empty((0, 3)), allow_empty=True)
        assert arr.shape == (0, 3)

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_array([[np.nan, 1.0]])

    def test_inf_rejected(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_array([[np.inf, 1.0]])

    def test_name_in_error(self):
        with pytest.raises(ValueError, match="zork"):
            check_array(np.empty((0,)), ndim=1, name="zork")


class TestCheckConsistentLength:
    def test_accepts_equal(self):
        check_consistent_length(np.zeros((3, 2)), np.zeros(3))

    def test_rejects_unequal(self):
        with pytest.raises(ValueError, match="inconsistent"):
            check_consistent_length(np.zeros((3, 2)), np.zeros(4))


class TestCheckXy:
    def test_valid_pair(self):
        X, y = check_X_y([[1.0, 2.0], [3.0, 4.0]], [1.0, 2.0])
        assert X.shape == (2, 2)
        assert y.shape == (2,)

    def test_mismatched_rejected(self):
        with pytest.raises(ValueError):
            check_X_y([[1.0, 2.0]], [1.0, 2.0])

    def test_min_samples(self):
        with pytest.raises(ValueError, match="at least 5"):
            check_X_y([[1.0], [2.0]], [1.0, 2.0], min_samples=5)

    def test_y_must_be_1d(self):
        with pytest.raises(ValueError):
            check_X_y([[1.0], [2.0]], [[1.0], [2.0]])


class TestCheckIsFitted:
    def test_missing_attribute_raises(self):
        class Foo:
            coef_ = None

        with pytest.raises(RuntimeError, match="not fitted"):
            check_is_fitted(Foo(), "coef_")

    def test_present_attribute_passes(self):
        class Foo:
            coef_ = np.ones(2)

        check_is_fitted(Foo(), "coef_")


class TestNoCopyPassThrough:
    """Clean inputs cross the hot predict path without a copy.

    Kernel predictors validate X on every call; for the common case —
    a C-contiguous float64 2-D array, exactly what the fleet control
    plane hands in every tick — validation must be a pass-through that
    returns the same buffer, not a per-call O(n d) copy.
    """

    def test_check_array_returns_same_object(self):
        X = np.ascontiguousarray(np.random.default_rng(0).normal(size=(40, 6)))
        assert check_array(X) is X

    def test_check_array_copies_wrong_dtype(self):
        X = np.ones((4, 3), dtype=np.float32)
        out = check_array(X)
        assert out is not X and out.dtype == np.float64

    def test_check_array_copies_non_contiguous(self):
        X = np.ones((8, 6))[:, ::2]
        out = check_array(X)
        assert out is not X and out.flags["C_CONTIGUOUS"]

    def test_kernel_as_2d_returns_same_object(self):
        from repro.ml.kernels import _as_2d

        X = np.ascontiguousarray(np.random.default_rng(1).normal(size=(10, 4)))
        assert _as_2d(X) is X

    def test_kernel_as_2d_casts_on_dtype_request(self):
        from repro.ml.kernels import _as_2d

        X = np.ones((5, 2))
        out = _as_2d(X, dtype=np.float32)
        assert out is not X and out.dtype == np.float32
