"""Tests for repro.utils.timing."""

import time

import pytest

from repro.utils.timing import Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.01

    def test_elapsed_frozen_after_exit(self):
        with Timer() as t:
            pass
        first = t.elapsed
        time.sleep(0.005)
        assert t.elapsed == first

    def test_elapsed_live_while_running(self):
        t = Timer()
        with t:
            first = t.elapsed
            time.sleep(0.005)
            second = t.elapsed
        assert second > first

    def test_running_flag(self):
        t = Timer()
        with t:
            assert t.running
        assert not t.running

    def test_unstarted_raises(self):
        with pytest.raises(RuntimeError):
            Timer().elapsed

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        e1 = t.elapsed
        with t:
            time.sleep(0.005)
        assert t.elapsed >= 0.005
        assert t.elapsed != e1

    def test_exception_still_records(self):
        t = Timer()
        with pytest.raises(ValueError):
            with t:
                raise ValueError("boom")
        assert t.elapsed >= 0.0
        assert not t.running
