"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, spawn_rng


class TestAsRng:
    def test_int_seed_gives_generator(self):
        assert isinstance(as_rng(0), np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_same_seed_same_stream(self):
        assert as_rng(5).random() == as_rng(5).random()

    def test_different_seeds_differ(self):
        assert as_rng(1).random() != as_rng(2).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen


class TestSpawnRng:
    def test_count(self):
        assert len(spawn_rng(0, 5)) == 5

    def test_zero_children(self):
        assert spawn_rng(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rng(0, -1)

    def test_children_independent(self):
        a, b = spawn_rng(0, 2)
        draws_a = a.random(100)
        draws_b = b.random(100)
        assert not np.allclose(draws_a, draws_b)

    def test_deterministic_given_seed(self):
        a1, = spawn_rng(3, 1)
        a2, = spawn_rng(3, 1)
        assert a1.random() == a2.random()

    def test_spawning_from_generator(self):
        children = spawn_rng(np.random.default_rng(0), 3)
        assert len(children) == 3
