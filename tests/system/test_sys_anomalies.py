"""Tests for anomaly injection (repro.system.anomalies)."""

import numpy as np
import pytest

from repro.system.anomalies import (
    AnomalyProfile,
    MemoryLeakInjector,
    ThreadLeakInjector,
)
from repro.system.resources import MachineState


class TestAnomalyProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            AnomalyProfile(p_leak=1.5, leak_min_kb=1, leak_max_kb=2, p_thread=0.1)
        with pytest.raises(ValueError):
            AnomalyProfile(p_leak=0.1, leak_min_kb=5, leak_max_kb=2, p_thread=0.1)
        with pytest.raises(ValueError):
            AnomalyProfile(p_leak=0.1, leak_min_kb=1, leak_max_kb=2, p_thread=-0.1)

    def test_draw_within_ranges(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            p = AnomalyProfile.draw(
                rng,
                p_leak_range=(0.1, 0.2),
                leak_kb_range=(100.0, 500.0),
                p_thread_range=(0.01, 0.05),
            )
            assert 0.1 <= p.p_leak <= 0.2
            assert 100.0 <= p.leak_min_kb <= p.leak_max_kb <= 500.0
            assert 0.01 <= p.p_thread <= 0.05

    def test_draw_deterministic(self):
        a = AnomalyProfile.draw(np.random.default_rng(9))
        b = AnomalyProfile.draw(np.random.default_rng(9))
        assert a == b

    def test_apply_home_visits_injects(self, machine):
        state = MachineState(machine)
        profile = AnomalyProfile(
            p_leak=1.0, leak_min_kb=100.0, leak_max_kb=100.0, p_thread=1.0
        )
        leaked, threads = profile.apply_home_visits(
            state, 10, np.random.default_rng(0)
        )
        assert leaked == pytest.approx(1000.0)
        assert threads == 10
        assert state.leaked_kb == pytest.approx(1000.0)
        assert state.n_leaked_threads == 10

    def test_apply_zero_visits_noop(self, machine):
        state = MachineState(machine)
        profile = AnomalyProfile(1.0, 10.0, 10.0, 1.0)
        assert profile.apply_home_visits(state, 0, np.random.default_rng(0)) == (0.0, 0)

    def test_zero_probability_never_injects(self, machine):
        state = MachineState(machine)
        profile = AnomalyProfile(0.0, 10.0, 10.0, 0.0)
        leaked, threads = profile.apply_home_visits(
            state, 1000, np.random.default_rng(0)
        )
        assert leaked == 0.0 and threads == 0

    def test_expected_leak_rate(self, machine):
        # law of large numbers: leaked ~ n * p * mean_size
        state = MachineState(machine)
        profile = AnomalyProfile(0.5, 100.0, 300.0, 0.0)
        leaked, _ = profile.apply_home_visits(state, 20_000, np.random.default_rng(1))
        assert leaked == pytest.approx(20_000 * 0.5 * 200.0, rel=0.05)


class TestMemoryLeakInjector:
    def test_fires_events_by_time(self, machine):
        state = MachineState(machine)
        inj = MemoryLeakInjector(
            size_range_kb=(10.0, 10.0), mean_interval_range=(1.0, 1.0), seed=0
        )
        leaked = inj.advance(state, now=100.0)
        assert leaked > 0.0
        # ~100 events expected at mean interval 1s
        assert 50 <= leaked / 10.0 <= 200

    def test_no_events_before_first_arrival(self, machine):
        state = MachineState(machine)
        inj = MemoryLeakInjector(mean_interval_range=(1000.0, 1000.0), seed=0)
        assert inj.advance(state, now=0.001) == 0.0

    def test_clock_advances_monotonically(self, machine):
        state = MachineState(machine)
        inj = MemoryLeakInjector(
            size_range_kb=(1.0, 1.0), mean_interval_range=(1.0, 2.0), seed=1
        )
        first = inj.advance(state, now=50.0)
        again = inj.advance(state, now=50.0)  # same instant: nothing new
        assert first > 0.0
        assert again == 0.0

    def test_mean_interval_drawn_from_range(self):
        lows, highs = 5.0, 9.0
        intervals = [
            MemoryLeakInjector(mean_interval_range=(lows, highs), seed=s).mean_interval
            for s in range(30)
        ]
        assert all(lows <= m <= highs for m in intervals)
        assert len(set(intervals)) > 1  # actually random

    def test_totals_accumulate(self, machine):
        state = MachineState(machine)
        inj = MemoryLeakInjector(
            size_range_kb=(5.0, 5.0), mean_interval_range=(1.0, 1.0), seed=2
        )
        inj.advance(state, 10.0)
        inj.advance(state, 20.0)
        assert inj.total_leaked_kb == pytest.approx(state.leaked_kb)

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            MemoryLeakInjector(size_range_kb=(10.0, 5.0))
        with pytest.raises(ValueError):
            MemoryLeakInjector(mean_interval_range=(0.0, 5.0))


class TestThreadLeakInjector:
    def test_spawns_threads(self, machine):
        state = MachineState(machine)
        inj = ThreadLeakInjector(mean_interval_range=(1.0, 1.0), seed=0)
        n = inj.advance(state, now=200.0)
        assert n > 0
        assert state.n_leaked_threads == n
        assert inj.total_threads == n

    def test_rate_matches_mean_interval(self, machine):
        state = MachineState(machine)
        inj = ThreadLeakInjector(mean_interval_range=(2.0, 2.0), seed=3)
        n = inj.advance(state, now=10_000.0)
        assert n == pytest.approx(5000, rel=0.1)

    def test_independent_streams_differ(self, machine):
        s1, s2 = MachineState(machine), MachineState(machine)
        n1 = ThreadLeakInjector(mean_interval_range=(1.0, 5.0), seed=1).advance(s1, 100.0)
        n2 = ThreadLeakInjector(mean_interval_range=(1.0, 5.0), seed=2).advance(s2, 100.0)
        assert n1 != n2
