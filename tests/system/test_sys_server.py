"""Tests for the application-server model (repro.system.server)."""

import numpy as np
import pytest

from repro.system.anomalies import AnomalyProfile
from repro.system.resources import MachineState
from repro.system.server import AppServer, ServerConfig
from repro.system.tpcw import SHOPPING_MIX, EmulatedBrowserPool


def make_server(machine, *, p_leak=0.0, p_thread=0.0, n_eb=20, seed=0):
    state = MachineState(machine)
    pool = EmulatedBrowserPool(n_eb, SHOPPING_MIX, seed=seed)
    profile = AnomalyProfile(
        p_leak=p_leak, leak_min_kb=500.0, leak_max_kb=1500.0, p_thread=p_thread
    )
    server = AppServer(ServerConfig(), state, pool, profile, seed=seed)
    return server, state, pool


class TestServiceMultiplier:
    def test_healthy_is_one(self, machine):
        server, _, _ = make_server(machine)
        assert server.service_multiplier() == pytest.approx(1.0)

    def test_threads_inflate(self, machine):
        server, state, _ = make_server(machine)
        state.spawn_threads(2000)
        assert server.service_multiplier() > 1.5

    def test_swap_pressure_inflates_superlinearly(self, machine):
        server, state, _ = make_server(machine)
        # push to ~50% then ~95% swap pressure
        state.leak_memory(machine.ram_kb * 0.9)
        state.update_swap()
        mid = server.service_multiplier()
        state.leak_memory(machine.swap_kb * 0.6)
        state.update_swap()
        high = server.service_multiplier()
        assert 1.0 < mid < high
        # super-linear growth: the second half of the pressure range costs
        # far more than the first
        assert (high - mid) > (mid - 1.0)

    def test_full_pressure_finite(self, machine):
        server, state, _ = make_server(machine)
        state.leak_memory(machine.ram_kb + machine.swap_kb + 1e6)
        state.update_swap()
        assert np.isfinite(server.service_multiplier())


class TestTick:
    def test_invalid_dt(self, machine):
        server, _, _ = make_server(machine)
        with pytest.raises(ValueError):
            server.tick(0.0, 0.0)

    def test_requests_complete(self, machine):
        server, _, _ = make_server(machine)
        total = 0
        now = 0.0
        for _ in range(200):
            stats = server.tick(now, 0.5)
            total += stats.n_completed
            now += 0.5
        assert total > 50
        assert server.total_completed == total

    def test_response_times_positive(self, machine):
        server, _, _ = make_server(machine)
        now = 0.0
        for _ in range(100):
            stats = server.tick(now, 0.5)
            if stats.n_completed:
                assert stats.mean_response_time > 0.0
            now += 0.5

    def test_utilization_bounded(self, machine):
        server, _, _ = make_server(machine)
        now = 0.0
        for _ in range(50):
            stats = server.tick(now, 0.5)
            assert 0.0 <= stats.utilization <= 1.0
            now += 0.5

    def test_anomalies_injected_on_home(self, machine):
        server, state, _ = make_server(machine, p_leak=1.0, p_thread=1.0)
        now = 0.0
        for _ in range(400):
            server.tick(now, 0.5)
            now += 0.5
        assert state.leaked_kb > 0.0
        assert state.n_leaked_threads > 0
        assert server.total_leaked_kb == pytest.approx(state.leaked_kb)
        assert server.total_threads_spawned == state.n_leaked_threads

    def test_no_anomalies_when_disabled(self, machine):
        server, state, _ = make_server(machine, p_leak=0.0, p_thread=0.0)
        now = 0.0
        for _ in range(200):
            server.tick(now, 0.5)
            now += 0.5
        assert state.leaked_kb == 0.0
        assert state.n_leaked_threads == 0

    def test_degradation_raises_response_time(self, machine):
        server, state, _ = make_server(machine)
        now = 0.0
        healthy_rts = []
        for _ in range(300):
            stats = server.tick(now, 0.5)
            if stats.n_completed:
                healthy_rts.append(stats.mean_response_time)
            now += 0.5
        # cripple the machine: deep swap pressure
        state.leak_memory(machine.ram_kb + machine.swap_kb * 0.9)
        state.update_swap()
        sick_rts = []
        for _ in range(300):
            stats = server.tick(now, 0.5)
            if stats.n_completed:
                sick_rts.append(stats.mean_response_time)
            now += 0.5
        assert np.mean(sick_rts) > 3.0 * np.mean(healthy_rts)

    def test_iowait_appears_under_thrashing(self, machine):
        server, state, _ = make_server(machine)
        now = 0.0
        for _ in range(50):
            server.tick(now, 0.5)
            now += 0.5
        assert state.cpu.iowait < 5.0
        state.leak_memory(machine.ram_kb + machine.swap_kb * 0.9)
        state.update_swap()
        for _ in range(50):
            server.tick(now, 0.5)
            now += 0.5
        assert state.cpu.iowait > 5.0

    def test_cpu_accounting_valid_every_tick(self, machine):
        server, state, _ = make_server(machine)
        now = 0.0
        for _ in range(100):
            server.tick(now, 0.5)
            assert sum(state.cpu.as_tuple()) == pytest.approx(100.0)
            now += 0.5

    def test_deterministic_given_seed(self, machine):
        a, _, _ = make_server(machine, p_leak=0.3, seed=5)
        b, _, _ = make_server(machine, p_leak=0.3, seed=5)
        now = 0.0
        for _ in range(100):
            sa = a.tick(now, 0.5)
            sb = b.tick(now, 0.5)
            assert sa.n_completed == sb.n_completed
            assert sa.sum_response_time == pytest.approx(sb.sum_response_time)
            now += 0.5
