"""Tests for the TPC-W session Markov chain (repro.system.tpcw)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.system.tpcw import (
    Interaction,
    SHOPPING_MIX,
    BROWSING_MIX,
    EmulatedBrowserPool,
    SessionChain,
    build_transition_matrix,
)


class TestBuildTransitionMatrix:
    @pytest.mark.parametrize("mix", [SHOPPING_MIX, BROWSING_MIX])
    def test_row_stochastic(self, mix):
        M = build_transition_matrix(mix)
        assert M.shape == (14, 14)
        assert (M >= 0).all()
        assert np.allclose(M.sum(axis=1), 1.0)

    def test_structural_flows_dominate_their_rows(self):
        M = build_transition_matrix(SHOPPING_MIX, structure_weight=0.5)
        # search form -> results is the modal transition
        row = M[Interaction.SEARCH_REQUEST]
        assert int(np.argmax(row)) == Interaction.SEARCH_RESULTS
        assert row[Interaction.SEARCH_RESULTS] >= 0.45
        # buy request -> buy confirm likewise
        assert (
            int(np.argmax(M[Interaction.BUY_REQUEST])) == Interaction.BUY_CONFIRM
        )

    def test_zero_structure_weight_is_iid(self):
        M = build_transition_matrix(SHOPPING_MIX, structure_weight=0.0)
        for row in M:
            assert np.allclose(row, SHOPPING_MIX.probabilities)

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            build_transition_matrix(SHOPPING_MIX, structure_weight=1.5)

    def test_stationary_stays_near_mix(self):
        """Blending keeps long-run frequencies in the mix's ballpark."""
        M = build_transition_matrix(SHOPPING_MIX, structure_weight=0.5)
        # power-iterate to the stationary distribution
        pi = np.full(14, 1.0 / 14.0)
        for _ in range(500):
            pi = pi @ M
        target = SHOPPING_MIX.probabilities
        # Home frequency within a factor 2 of the target; heavyweight
        # categories preserved in ordering
        assert 0.5 * target[Interaction.HOME] <= pi[Interaction.HOME] <= 2.0 * target[Interaction.HOME]
        assert pi[Interaction.SEARCH_RESULTS] > pi[Interaction.ADMIN_CONFIRM]


class TestSessionChain:
    def test_next_states_shape_and_range(self):
        chain = SessionChain(build_transition_matrix(SHOPPING_MIX))
        states = np.zeros(50, dtype=np.int64)
        nxt = chain.next_states(states, np.random.default_rng(0))
        assert nxt.shape == (50,)
        assert ((0 <= nxt) & (nxt < 14)).all()

    def test_deterministic_transition_followed(self):
        M = np.zeros((14, 14))
        M[:, Interaction.BEST_SELLERS] = 1.0  # everything goes to one state
        chain = SessionChain(M)
        nxt = chain.next_states(np.arange(14), np.random.default_rng(0))
        assert (nxt == Interaction.BEST_SELLERS).all()

    def test_invalid_matrix_rejected(self):
        with pytest.raises(ValueError):
            SessionChain(np.zeros((14, 14)))
        with pytest.raises(ValueError):
            SessionChain(np.zeros((3, 3)))


class TestPoolSessionMode:
    def run_pool(self, use_sessions, n_steps=3000):
        pool = EmulatedBrowserPool(
            30, SHOPPING_MIX, seed=5, use_sessions=use_sessions
        )
        counts = np.zeros(14)
        now = 0.0
        for _ in range(n_steps):
            now += 0.5
            idx, kinds = pool.due_requests(now)
            for k in kinds:
                counts[k] += 1
            if idx.size:
                pool.complete(idx, np.full(idx.size, now + 0.05))
        return counts

    def test_session_frequencies_near_mix(self):
        counts = self.run_pool(use_sessions=True)
        freq = counts / counts.sum()
        target = SHOPPING_MIX.probabilities
        # coarse agreement on the major interactions
        for i in (Interaction.HOME, Interaction.SEARCH_RESULTS, Interaction.PRODUCT_DETAIL):
            assert 0.4 * target[i] <= freq[i] <= 2.5 * target[i]

    def test_session_mode_changes_sequences_not_totals(self):
        iid = self.run_pool(use_sessions=False)
        chained = self.run_pool(use_sessions=True)
        # total throughput is think-time-bound, so it barely moves
        assert chained.sum() == pytest.approx(iid.sum(), rel=0.05)

    def test_reset_returns_sessions_to_home(self):
        pool = EmulatedBrowserPool(5, SHOPPING_MIX, seed=0, use_sessions=True)
        idx, _ = pool.due_requests(100.0)
        pool.complete(idx, np.full(idx.size, 100.1))
        pool.reset(200.0)
        assert (pool._states == int(Interaction.HOME)).all()

    def test_campaign_with_session_chain(self, campaign):
        from repro.system import TestbedSimulator

        cfg = replace(campaign, use_session_chain=True)
        run = TestbedSimulator(cfg).run_once(seed=2)
        assert run.metadata["crashed"] == 1.0

    def test_default_mode_unchanged(self, campaign):
        """use_session_chain=False reproduces the original streams."""
        from repro.system import TestbedSimulator

        a = TestbedSimulator(campaign).run_once(seed=8)
        b = TestbedSimulator(replace(campaign, use_session_chain=False)).run_once(seed=8)
        assert np.array_equal(a.features, b.features)
