"""Tests for the FMC/FMS monitoring pair (repro.system.monitor)."""

import numpy as np
import pytest

from repro.core.datapoint import FEATURES
from repro.system.monitor import (
    FeatureMonitorClient,
    FeatureMonitorServer,
    MonitorConfig,
)
from repro.system.resources import MachineState


class TestMonitorConfig:
    def test_defaults(self):
        cfg = MonitorConfig()
        assert cfg.nominal_interval == pytest.approx(1.5)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            MonitorConfig(nominal_interval=0.0)


class TestFMCInterval:
    def test_idle_interval_near_nominal(self):
        fmc = FeatureMonitorClient(MonitorConfig(noise_sigma=0.0), seed=0)
        assert fmc.interval(0.0, 0.0) == pytest.approx(1.5)

    def test_saturation_stretches(self):
        fmc = FeatureMonitorClient(MonitorConfig(noise_sigma=0.0), seed=0)
        assert fmc.interval(1.0, 0.0) > fmc.interval(0.5, 0.0)

    def test_below_knee_no_effect(self):
        cfg = MonitorConfig(noise_sigma=0.0, saturation_knee=0.7)
        fmc = FeatureMonitorClient(cfg, seed=0)
        assert fmc.interval(0.6, 0.0) == pytest.approx(fmc.interval(0.0, 0.0))

    def test_thrash_stretches(self):
        fmc = FeatureMonitorClient(MonitorConfig(noise_sigma=0.0), seed=0)
        assert fmc.interval(0.0, 0.9) > 2.0 * fmc.interval(0.0, 0.0)

    def test_queue_delay_stretches(self):
        fmc = FeatureMonitorClient(MonitorConfig(noise_sigma=0.0), seed=0)
        base = fmc.interval(0.0, 0.0, queue_delay=0.0)
        delayed = fmc.interval(0.0, 0.0, queue_delay=10.0)
        assert delayed == pytest.approx(base + 0.6 * 10.0)

    def test_noise_multiplicative(self):
        fmc = FeatureMonitorClient(MonitorConfig(noise_sigma=0.2), seed=0)
        draws = {fmc.interval(0.0, 0.0) for _ in range(20)}
        assert len(draws) == 20  # all distinct
        assert all(d > 0 for d in draws)


class TestFMCSampling:
    def test_sample_schema(self, machine):
        state = MachineState(machine)
        state.update_swap()
        fmc = FeatureMonitorClient(MonitorConfig(), seed=0)
        fmc.reset(0.0)
        dp = fmc.sample(10.0, state, utilization=0.3)
        arr = dp.to_array()
        assert arr.shape == (len(FEATURES),)
        assert dp.tgen == 10.0
        assert dp.swap_used == 0.0
        assert dp.mem_used > 0.0

    def test_due_schedule(self, machine):
        state = MachineState(machine)
        fmc = FeatureMonitorClient(MonitorConfig(noise_sigma=0.0), seed=0)
        fmc.reset(0.0)
        assert not fmc.due(1.0)
        assert fmc.due(1.6)
        fmc.sample(1.6, state, 0.0)
        assert not fmc.due(2.0)
        assert fmc.due(1.6 + 1.5)

    def test_last_interval_tracked(self, machine):
        state = MachineState(machine)
        fmc = FeatureMonitorClient(MonitorConfig(noise_sigma=0.0), seed=0)
        fmc.reset(0.0)
        fmc.sample(1.5, state, 0.0, queue_delay=5.0)
        assert fmc.last_interval > 1.5


class TestFMS:
    def test_collects_datapoints(self, machine):
        state = MachineState(machine)
        fmc = FeatureMonitorClient(MonitorConfig(), seed=0)
        fmc.reset(0.0)
        fms = FeatureMonitorServer()
        for t in (1.5, 3.0, 4.5):
            fms.receive(fmc.sample(t, state, 0.0), response_time=0.1 * t)
        feats, rts = fms.as_arrays()
        assert feats.shape == (3, len(FEATURES))
        assert np.allclose(feats[:, 0], [1.5, 3.0, 4.5])
        assert np.allclose(rts, [0.15, 0.30, 0.45])
        assert fms.n_datapoints == 3

    def test_empty(self):
        feats, rts = FeatureMonitorServer().as_arrays()
        assert feats.shape == (0, len(FEATURES))
        assert rts.shape == (0,)

    def test_clear(self, machine):
        state = MachineState(machine)
        fmc = FeatureMonitorClient(MonitorConfig(), seed=0)
        fmc.reset(0.0)
        fms = FeatureMonitorServer()
        fms.receive(fmc.sample(1.5, state, 0.0), 0.1)
        fms.clear()
        assert fms.n_datapoints == 0
