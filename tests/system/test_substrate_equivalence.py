"""The fused substrate's bit-identity oracle battery.

The fused engine (:mod:`repro.system.fused`) promises *bit-identical*
``RunRecord`` output to the legacy per-tick loop — not "statistically
equivalent", equal to the last ULP. Every test here compares the two
substrates with ``np.array_equal`` (exact), across the configuration
matrix the engine special-cases: session chains, time/lock injectors,
non-constant load schedules, non-representable ``dt`` accumulation,
truncated runs, compiled failure conditions, and multi-process fan-out.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store.keys import fingerprint
from repro.system import (
    AnyOf,
    CampaignConfig,
    ConstantLoad,
    DiurnalLoad,
    GenerationTimeLimit,
    MemoryExhaustion,
    ResponseTimeLimit,
    StepLoad,
    TestbedSimulator,
)
from repro.system.failure import FailureCondition

from tests.conftest import small_campaign, small_machine


def _records_equal(a, b) -> bool:
    return (
        np.array_equal(a.features, b.features)
        and np.array_equal(a.response_times, b.response_times)
        and a.fail_time == b.fail_time
        and a.metadata == b.metadata
    )


def _run_both(config: CampaignConfig, condition, seed: int):
    out = {}
    for substrate in ("loop", "fused"):
        sim = TestbedSimulator(
            dataclasses.replace(config, substrate=substrate), condition
        )
        out[substrate] = sim.run_once(np.random.default_rng(seed))
    return out["loop"], out["fused"]


def _base() -> CampaignConfig:
    # Shorter horizon than the shared fixture: every case still crashes
    # or truncates, and the whole matrix stays fast.
    return dataclasses.replace(small_campaign(), max_run_seconds=1500.0)


MATRIX = {
    "default": (_base(), MemoryExhaustion()),
    "session-chain": (
        dataclasses.replace(_base(), use_session_chain=True),
        MemoryExhaustion(),
    ),
    "time-injectors": (
        dataclasses.replace(_base(), use_time_injectors=True),
        MemoryExhaustion(),
    ),
    "lock-injector-rt-limit": (
        dataclasses.replace(_base(), use_lock_injector=True),
        ResponseTimeLimit(30.0),
    ),
    "fd-injector": (
        dataclasses.replace(
            _base(),
            machine=dataclasses.replace(small_machine(), fd_limit=4096),
            use_fd_injector=True,
        ),
        MemoryExhaustion(),
    ),
    "conn-injector-rt-limit": (
        dataclasses.replace(_base(), use_conn_injector=True),
        ResponseTimeLimit(30.0),
    ),
    "frag-injector": (
        dataclasses.replace(_base(), use_frag_injector=True),
        MemoryExhaustion(),
    ),
    "everything-on": (
        dataclasses.replace(
            _base(),
            use_session_chain=True,
            use_time_injectors=True,
            use_lock_injector=True,
            use_fd_injector=True,
            use_conn_injector=True,
            use_frag_injector=True,
        ),
        AnyOf(MemoryExhaustion(), ResponseTimeLimit(40.0)),
    ),
    "step-load": (
        dataclasses.replace(
            _base(),
            load_schedule=StepLoad(
                breakpoints=(300.0, 700.0), fractions=(1.0, 0.25, 0.75)
            ),
        ),
        MemoryExhaustion(),
    ),
    "zero-load-burst": (
        dataclasses.replace(
            _base(),
            load_schedule=StepLoad(
                breakpoints=(200.0, 400.0), fractions=(0.0, 1.0, 0.4)
            ),
        ),
        MemoryExhaustion(),
    ),
    "diurnal-load": (
        dataclasses.replace(
            _base(), load_schedule=DiurnalLoad(period=600.0)
        ),
        MemoryExhaustion(),
    ),
    "half-load": (
        dataclasses.replace(_base(), load_schedule=ConstantLoad(0.5)),
        MemoryExhaustion(),
    ),
    "dt-0.25": (dataclasses.replace(_base(), dt=0.25), MemoryExhaustion()),
    "dt-1.0": (dataclasses.replace(_base(), dt=1.0), MemoryExhaustion()),
    # 0.3 is not representable in binary: exercises the sequential
    # float-time accumulation contract.
    "dt-0.3": (dataclasses.replace(_base(), dt=0.3), MemoryExhaustion()),
    "generation-limit": (_base(), GenerationTimeLimit(8.0)),
    "headroom": (_base(), MemoryExhaustion(headroom_frac=0.05)),
    "anyof": (
        _base(),
        AnyOf(
            MemoryExhaustion(),
            ResponseTimeLimit(45.0),
            GenerationTimeLimit(10.0),
        ),
    ),
    "truncated": (
        dataclasses.replace(_base(), max_run_seconds=120.0),
        MemoryExhaustion(),
    ),
}


class TestBitIdentityMatrix:
    @pytest.mark.parametrize("case", sorted(MATRIX))
    def test_fused_matches_loop(self, case):
        config, condition = MATRIX[case]
        for seed in (13, 123):
            loop, fused = _run_both(config, condition, seed)
            assert _records_equal(loop, fused), f"{case} diverged (seed {seed})"

    def test_truncated_run_is_flagged_identically(self):
        config, condition = MATRIX["truncated"]
        loop, fused = _run_both(config, condition, 13)
        assert loop.metadata["crashed"] == 0.0
        assert fused.metadata["crashed"] == 0.0
        assert fused.fail_time == config.max_run_seconds


class TestRandomConfigs:
    """Hypothesis sweep: no hand-picked matrix blind spots."""

    @given(
        n_browsers=st.integers(min_value=4, max_value=48),
        dt=st.sampled_from([0.25, 0.5, 1.0]),
        sessions=st.booleans(),
        time_inj=st.booleans(),
        lock_inj=st.booleans(),
        sched=st.sampled_from(["full", "half", "step"]),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=12, deadline=None)
    def test_random_campaign_config(
        self, n_browsers, dt, sessions, time_inj, lock_inj, sched, seed
    ):
        schedule = {
            "full": ConstantLoad(),
            "half": ConstantLoad(0.5),
            "step": StepLoad(breakpoints=(250.0,), fractions=(1.0, 0.3)),
        }[sched]
        config = dataclasses.replace(
            _base(),
            n_browsers=n_browsers,
            dt=dt,
            use_session_chain=sessions,
            use_time_injectors=time_inj,
            use_lock_injector=lock_inj,
            load_schedule=schedule,
            max_run_seconds=900.0,
        )
        loop, fused = _run_both(config, MemoryExhaustion(), seed)
        assert _records_equal(loop, fused)


class TestParallelFanout:
    def test_jobs2_fused_matches_serial_loop(self):
        """The full cross-product guarantee: fused x jobs=2 == loop x serial."""
        base = dataclasses.replace(
            small_campaign(n_runs=4), max_run_seconds=1500.0
        )
        serial_loop = TestbedSimulator(
            dataclasses.replace(base, substrate="loop")
        ).run_campaign(jobs=1)
        parallel_fused = TestbedSimulator(
            dataclasses.replace(base, substrate="fused")
        ).run_campaign(jobs=2)
        assert len(serial_loop) == len(parallel_fused)
        for a, b in zip(serial_loop.runs, parallel_fused.runs):
            assert _records_equal(a, b)


class TestFallback:
    def test_uncompilable_condition_falls_back_to_loop(self):
        class Custom(FailureCondition):
            def is_failed(self, view):
                return view.state.overflow_kb > 0.5 * view.state.config.swap_kb

        config = _base()
        assert Custom().fused_limits(config.machine) is None
        # fused-config simulator with an uncompilable condition must
        # produce exactly what the loop substrate does
        loop, fused = _run_both(config, Custom(), 13)
        assert _records_equal(loop, fused)

    def test_subclass_does_not_inherit_compilation(self):
        class Stricter(MemoryExhaustion):
            def is_failed(self, view):  # overridden predicate
                return view.state.overflow_kb > 0.0

        config = _base()
        # compiling the subclass from the parent's thresholds would
        # miscompile the overridden predicate: it must refuse
        assert Stricter().fused_limits(config.machine) is None
        loop, fused = _run_both(config, Stricter(), 13)
        assert _records_equal(loop, fused)

    def test_anyof_compiles_to_per_channel_min(self):
        config = _base()
        limits = AnyOf(
            MemoryExhaustion(headroom_frac=0.5),
            MemoryExhaustion(headroom_frac=0.1),
            ResponseTimeLimit(20.0),
        ).fused_limits(config.machine)
        assert limits is not None
        assert limits[0] == config.machine.swap_kb * 0.5  # tighter wins
        assert limits[1] == 20.0
        assert limits[2] == float("inf")

    def test_anyof_with_uncompilable_member_refuses(self):
        class Custom(FailureCondition):
            def is_failed(self, view):
                return False

        config = _base()
        assert (
            AnyOf(MemoryExhaustion(), Custom()).fused_limits(config.machine)
            is None
        )


class TestSubstrateConfig:
    def test_substrate_validated(self):
        with pytest.raises(ValueError, match="substrate"):
            CampaignConfig(substrate="warp")

    def test_substrate_excluded_from_fingerprint(self):
        """fused/loop configs share cache keys: artifacts interchange."""
        base = small_campaign()
        fused = dataclasses.replace(base, substrate="fused")
        loop = dataclasses.replace(base, substrate="loop")
        assert fingerprint("campaign", fused) == fingerprint("campaign", loop)
        # ...but content fields still change the key
        other = dataclasses.replace(base, n_browsers=base.n_browsers + 1)
        assert fingerprint("campaign", base) != fingerprint("campaign", other)


class TestDrawPrimitiveIdentities:
    """Micro-checks of the RNG identities the fused engine relies on."""

    def test_cdf_searchsorted_equals_choice(self):
        from repro.system.tpcw import SHOPPING_MIX

        cdf = SHOPPING_MIX.sampling_cdf
        a = np.random.default_rng(5)
        b = np.random.default_rng(5)
        chosen = a.choice(
            len(SHOPPING_MIX.frequencies), size=64, p=SHOPPING_MIX.probabilities
        )
        manual = cdf.searchsorted(b.random(64), side="right")
        assert np.array_equal(chosen, manual)
        # both consumed the stream identically
        assert a.random() == b.random()

    def test_batched_normal_equals_scalar_sequence(self):
        loc = np.tile(np.array([0.004, 0.001]), 16)
        scale = np.tile(np.array([0.002, 0.001]), 16)
        a = np.random.default_rng(9)
        b = np.random.default_rng(9)
        batched = a.normal(loc, scale)
        scalars = np.array(
            [b.normal(loc[i], scale[i]) for i in range(loc.size)]
        )
        assert np.array_equal(batched, scalars)

    def test_small_sum_is_sequential_fold(self):
        # np.sum switches to pairwise summation at 8 elements; the fused
        # scalar path is gated on k < 8 for exactly this reason.
        rng = np.random.default_rng(3)
        for k in range(1, 8):
            x = rng.lognormal(size=k)
            acc = 0.0
            for v in x.tolist():
                acc = acc + v
            assert acc == float(x.sum())
