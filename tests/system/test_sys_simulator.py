"""Tests for the campaign simulator (repro.system.simulator)."""

import numpy as np
import pytest

from repro.core.history import DataHistory
from repro.system.failure import ResponseTimeLimit
from repro.system.simulator import CampaignConfig, TestbedSimulator

from repro.core.datapoint import FEATURE_INDEX


class TestCampaignConfig:
    def test_validation(self, machine):
        with pytest.raises(ValueError):
            CampaignConfig(n_runs=0)
        with pytest.raises(ValueError):
            CampaignConfig(dt=0.0)
        with pytest.raises(ValueError):
            CampaignConfig(max_run_seconds=0.0)


class TestRunOnce:
    def test_run_crashes_and_records(self, campaign):
        run = TestbedSimulator(campaign).run_once(seed=0)
        assert run.metadata["crashed"] == 1.0
        assert run.n_datapoints > 50
        assert run.fail_time <= campaign.max_run_seconds

    def test_deterministic(self, campaign):
        a = TestbedSimulator(campaign).run_once(seed=11)
        b = TestbedSimulator(campaign).run_once(seed=11)
        assert a.fail_time == b.fail_time
        assert np.array_equal(a.features, b.features)

    def test_different_seeds_differ(self, campaign):
        a = TestbedSimulator(campaign).run_once(seed=1)
        b = TestbedSimulator(campaign).run_once(seed=2)
        assert a.fail_time != b.fail_time

    def test_metadata_records_profile(self, campaign):
        run = TestbedSimulator(campaign).run_once(seed=0)
        assert (
            campaign.p_leak_range[0]
            <= run.metadata["p_leak"]
            <= campaign.p_leak_range[1]
        )
        assert run.metadata["total_requests"] > 0

    def test_truncation_flagged(self, campaign):
        from dataclasses import replace

        # anomaly-free config cannot crash: run truncates at max_run_seconds
        quiet = replace(
            campaign,
            p_leak_range=(0.0, 1e-12),
            p_thread_range=(0.0, 1e-12),
            max_run_seconds=60.0,
        )
        run = TestbedSimulator(quiet).run_once(seed=0)
        assert run.metadata["crashed"] == 0.0
        assert run.fail_time == 60.0

    def test_custom_failure_condition(self, campaign):
        sim = TestbedSimulator(campaign, failure_condition=ResponseTimeLimit(0.5))
        run = sim.run_once(seed=0)
        # RT-based failure fires before memory exhaustion would
        mem_run = TestbedSimulator(campaign).run_once(seed=0)
        assert run.fail_time <= mem_run.fail_time

    def test_time_injectors_accelerate_crash(self, campaign):
        from dataclasses import replace

        with_inj = replace(
            campaign,
            use_time_injectors=True,
            leak_injector_interval_range=(0.2, 0.5),
        )
        fast = TestbedSimulator(with_inj).run_once(seed=4)
        slow = TestbedSimulator(campaign).run_once(seed=4)
        assert fast.fail_time < slow.fail_time


class TestRunTrajectories:
    def test_memory_monotone_toward_crash(self, history):
        for run in history:
            swap = run.column("swap_used")
            # monotone non-decreasing swap (the high-water-mark design)
            assert (np.diff(swap) >= -1e-9).all()

    def test_mem_free_decreases_overall(self, history):
        for run in history:
            free = run.column("mem_free")
            assert free[-1] < free[0]

    def test_generation_interval_stretches(self, history):
        for run in history:
            tgen = run.column("tgen")
            d = np.diff(tgen)
            assert d[-5:].mean() > d[:5].mean()

    def test_response_time_grows(self, history):
        for run in history:
            rt = run.response_times
            assert rt[-5:].mean() > rt[:5].mean()

    def test_cpu_features_are_percentages(self, history):
        for run in history:
            for name in ("cpu_user", "cpu_sys", "cpu_iowait", "cpu_idle"):
                col = run.column(name)
                assert (col >= 0.0).all() and (col <= 100.0).all()

    def test_datapoints_sorted_by_tgen(self, history):
        for run in history:
            tgen = run.column("tgen")
            assert (np.diff(tgen) > 0).all()

    def test_swap_exhausted_at_crash(self, history):
        for run in history:
            idx = FEATURE_INDEX["swap_free"]
            assert run.features[-1, idx] < 0.05 * run.features[0, idx] + 1e4


class TestRunCampaign:
    def test_n_runs(self, history):
        assert len(history) == 4
        assert isinstance(history, DataHistory)

    def test_runs_differ(self, history):
        lengths = [run.fail_time for run in history]
        assert len(set(lengths)) == len(lengths)

    def test_campaign_deterministic(self, campaign):
        h1 = TestbedSimulator(campaign).run_campaign()
        h2 = TestbedSimulator(campaign).run_campaign()
        assert [r.fail_time for r in h1] == [r.fail_time for r in h2]
