"""Pinned exact-boundary regressions for the fused substrate.

The quiet-gap batching in :mod:`repro.system.fused` turns on strict
comparisons against event times: a monitor sample due *exactly* at a
tick end (``t_end == next_sample``), an injector firing or a schedule
breakpoint landing *exactly* on a sample tick, or a horizon expiring on
one. An off-by-one in any of those guards (``<`` vs ``<=``) would skip
or double-fire the event only when the times collide — invisible to the
randomized equivalence battery, where collisions have measure zero.

This battery *forces* the collisions: a zero-noise monitor whose
interval is an exact binary multiple of ``dt`` puts every sample on a
tick boundary, and schedules are built with breakpoints on those exact
sample times. Each case is compared loop-vs-fused to the last ULP.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.system import (
    AnyOf,
    FlashCrowdLoad,
    MemoryExhaustion,
    MonitorConfig,
    ResponseTimeLimit,
    StepLoad,
    TestbedSimulator,
)
from repro.system.anomalies import MemoryLeakInjector

from tests.conftest import small_campaign
from tests.system.test_substrate_equivalence import _records_equal, _run_both


def _exact_monitor() -> MonitorConfig:
    """A monitor whose samples land exactly on tick boundaries.

    With every load-coupling coefficient zeroed and zero noise the
    effective interval is exactly ``nominal_interval``; 1.5 s is an
    exact binary float and an exact multiple of dt=0.5, so every
    ``next_sample`` is hit with ``now == next_sample`` — the equality
    edge of both the loop's ``due()`` and the fused gap guard.
    """
    return MonitorConfig(
        nominal_interval=1.5,
        saturation_coef=0.0,
        thrash_coef=0.0,
        queue_coef=0.0,
        noise_sigma=0.0,
    )


def _exact_base():
    return dataclasses.replace(
        small_campaign(),
        monitor=_exact_monitor(),
        max_run_seconds=1200.0,
    )


# Every schedule edge below is a multiple of 1.5 (the sample interval)
# and of 0.5 (dt): the change lands on a tick that is *also* a sample.
BOUNDARY_MATRIX = {
    "samples-on-ticks": (_exact_base(), MemoryExhaustion()),
    "step-on-sample-tick": (
        dataclasses.replace(
            _exact_base(),
            load_schedule=StepLoad(
                breakpoints=(300.0, 600.0), fractions=(1.0, 0.2, 0.8)
            ),
        ),
        MemoryExhaustion(),
    ),
    "flash-crowd-on-sample-ticks": (
        dataclasses.replace(
            _exact_base(),
            load_schedule=FlashCrowdLoad(
                base=0.4, peak=1.0, start=300.0, ramp=30.0, hold=150.0, decay=60.0
            ),
        ),
        MemoryExhaustion(),
    ),
    "zero-ramp-flash-crowd": (
        # Degenerate ramp/decay: the fraction *jumps* exactly at start
        # and at the hold end — both on sample ticks.
        dataclasses.replace(
            _exact_base(),
            load_schedule=FlashCrowdLoad(
                base=0.3, peak=1.0, start=300.0, ramp=0.0, hold=150.0, decay=0.0
            ),
        ),
        MemoryExhaustion(),
    ),
    "injectors-with-exact-sampling": (
        dataclasses.replace(
            _exact_base(), use_time_injectors=True, use_lock_injector=True
        ),
        AnyOf(MemoryExhaustion(), ResponseTimeLimit(40.0)),
    ),
    "new-families-with-exact-sampling": (
        dataclasses.replace(
            _exact_base(),
            use_fd_injector=True,
            use_conn_injector=True,
            use_frag_injector=True,
        ),
        AnyOf(MemoryExhaustion(), ResponseTimeLimit(40.0)),
    ),
    "horizon-on-sample-tick": (
        # max_run_seconds is itself a sample time: the run must truncate
        # identically (no trailing sample, no extra tick).
        dataclasses.replace(_exact_base(), max_run_seconds=450.0),
        MemoryExhaustion(),
    ),
}


class TestExactBoundaryBitIdentity:
    @pytest.mark.parametrize("case", sorted(BOUNDARY_MATRIX))
    def test_fused_matches_loop_on_boundary(self, case):
        config, condition = BOUNDARY_MATRIX[case]
        for seed in (13, 123):
            loop, fused = _run_both(config, condition, seed)
            assert _records_equal(loop, fused), f"{case} diverged (seed {seed})"

    def test_zero_noise_monitor_samples_every_nominal(self):
        """Sanity: the exact monitor really does sample on the equality
        edge — datapoint times are exact multiples of the interval."""
        config, condition = BOUNDARY_MATRIX["samples-on-ticks"]
        sim = TestbedSimulator(
            dataclasses.replace(config, substrate="loop"), condition
        )
        record = sim.run_once(np.random.default_rng(13))
        tgen = record.features[:, 0]
        assert np.array_equal(tgen, 1.5 * np.arange(1, tgen.size + 1))


class TestEventTimeSemantics:
    """Unit pins for the comparisons both substrates must share."""

    def test_injector_fires_at_exact_now(self):
        # events_until uses <=: an event scheduled at exactly `now`
        # fires *this* tick (the fused gate `x_next <= now` matches).
        inj = MemoryLeakInjector(
            mean_interval_range=(10.0, 10.0), seed=np.random.default_rng(0)
        )
        t = inj.next_fire_time
        assert inj._timing.events_until(t - 1e-9) == 0
        assert inj.next_fire_time == t  # no draw consumed by a no-op call
        assert inj._timing.events_until(t) == 1

    def test_step_load_switches_at_exact_breakpoint(self):
        sched = StepLoad(breakpoints=(300.0,), fractions=(1.0, 0.25))
        assert sched.active_fraction(300.0) == 0.25  # switched *at* b
        # next_change_after at the breakpoint is the following one (or
        # inf) — never the breakpoint itself, else the fused engine
        # would re-evaluate forever without advancing.
        assert sched.next_change_after(300.0) == float("inf")
        assert sched.next_change_after(299.9) == 300.0

    def test_flash_crowd_edges(self):
        sched = FlashCrowdLoad(
            base=0.4, peak=1.0, start=300.0, ramp=30.0, hold=150.0, decay=60.0
        )
        assert sched.active_fraction(300.0) == 0.4  # ramp starts at base
        assert sched.active_fraction(330.0) == 1.0  # peak reached
        assert sched.active_fraction(480.0) == 1.0  # decay starts at peak
        assert sched.active_fraction(540.0) == 0.4  # back to base
        assert sched.next_change_after(0.0) == 300.0
        assert sched.next_change_after(310.0) == 310.0  # ramping: per-tick
        assert sched.next_change_after(400.0) == 480.0  # holding: skip ahead
        assert sched.next_change_after(500.0) == 500.0  # decaying: per-tick
        assert sched.next_change_after(600.0) == float("inf")

    def test_flash_crowd_zero_segments(self):
        sched = FlashCrowdLoad(
            base=0.3, peak=1.0, start=300.0, ramp=0.0, hold=150.0, decay=0.0
        )
        assert sched.active_fraction(299.9) == 0.3
        assert sched.active_fraction(300.0) == 1.0  # instant jump, no 0/0
        assert sched.active_fraction(450.0) == 0.3  # instant drop
