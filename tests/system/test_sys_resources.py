"""Tests for the machine resource model (repro.system.resources)."""

import numpy as np
import pytest

from repro.system.resources import CpuSample, MachineConfig, MachineState


def _SMALL():
    from repro.system.resources import MachineConfig
    return MachineConfig(
        ram_kb=524_288.0,
        swap_kb=262_144.0,
        os_base_kb=131_072.0,
        app_working_set_kb=65_536.0,
        min_cache_kb=16_384.0,
        shared_kb=8_192.0,
        buffers_kb=4_096.0,
    )



class TestMachineConfig:
    def test_defaults_valid(self):
        MachineConfig()

    def test_base_demand_must_fit_ram(self):
        with pytest.raises(ValueError, match="exceeds RAM"):
            MachineConfig(ram_kb=1000.0, os_base_kb=900.0, app_working_set_kb=200.0)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            MachineConfig(ram_kb=0.0)
        with pytest.raises(ValueError):
            MachineConfig(n_cpus=0)

    def test_frozen(self):
        cfg = MachineConfig()
        with pytest.raises(AttributeError):
            cfg.ram_kb = 1.0


class TestMemoryAccounting:
    def test_fresh_state_no_swap(self):
        state = MachineState(_SMALL())
        state.update_swap()
        assert state.swap_used_kb == 0.0
        assert state.swap_pressure == 0.0
        assert not state.memory_exhausted

    def test_leak_increases_used(self):
        state = MachineState(_SMALL())
        before = state.mem_used_kb
        state.leak_memory(10_000.0)
        assert state.mem_used_kb == pytest.approx(before + 10_000.0)

    def test_cache_yields_before_swap(self):
        state = MachineState(_SMALL())
        cache_before = state.mem_cached_kb
        state.leak_memory(50_000.0)
        state.update_swap()
        assert state.mem_cached_kb < cache_before
        assert state.swap_used_kb == 0.0  # cache absorbed it

    def test_cache_floor_defended(self):
        state = MachineState(_SMALL())
        state.leak_memory(1e9)
        assert state.mem_cached_kb >= state.config.min_cache_kb

    def test_overflow_spills_to_swap(self):
        cfg = _SMALL()
        state = MachineState(cfg)
        state.leak_memory(cfg.ram_kb)  # definitely past RAM
        state.update_swap()
        assert state.swap_used_kb > 0.0
        assert state.swap_free_kb == cfg.swap_kb - state.swap_used_kb

    def test_swap_monotone_within_run(self):
        state = MachineState(_SMALL())
        state.leak_memory(state.config.ram_kb)
        state.update_swap()
        high = state.swap_used_kb
        # demand never decreases in the model, but even if it did the
        # high-water mark must hold
        state.update_swap()
        assert state.swap_used_kb == high

    def test_exhaustion_detected(self):
        cfg = _SMALL()
        state = MachineState(cfg)
        state.leak_memory(cfg.ram_kb + cfg.swap_kb + 100_000.0)
        state.update_swap()
        assert state.memory_exhausted
        assert state.swap_pressure == 1.0

    def test_threads_consume_stack_memory(self):
        cfg = _SMALL()
        state = MachineState(cfg)
        before = state.app_demand_kb
        state.spawn_threads(100)
        assert state.app_demand_kb == pytest.approx(
            before + 100 * cfg.thread_stack_kb
        )
        assert state.n_threads == state.base_threads + 100

    def test_negative_inputs_rejected(self):
        state = MachineState(_SMALL())
        with pytest.raises(ValueError):
            state.leak_memory(-1.0)
        with pytest.raises(ValueError):
            state.spawn_threads(-1)

    def test_memory_identity(self):
        # used + cached + free + buffers + shared <= ram (equality until swap)
        cfg = _SMALL()
        state = MachineState(cfg)
        for leak in (0.0, 20_000.0, 100_000.0):
            state.leak_memory(leak)
            total = (
                state.mem_used_kb
                + state.mem_cached_kb
                + state.mem_free_kb
                + cfg.buffers_kb
                + cfg.shared_kb
            )
            assert total <= cfg.ram_kb + 1e-6


class TestCpuAccounting:
    def test_sums_to_100(self):
        state = MachineState(_SMALL())
        state.account_cpu(
            busy_frac=0.5, sys_share=0.2, iowait_frac=0.1, steal_frac=0.01
        )
        assert sum(state.cpu.as_tuple()) == pytest.approx(100.0)

    def test_overcommit_normalized(self):
        state = MachineState(_SMALL())
        state.account_cpu(
            busy_frac=1.0, sys_share=0.2, iowait_frac=0.9, steal_frac=0.2
        )
        parts = state.cpu.as_tuple()
        assert sum(parts) == pytest.approx(100.0)
        assert state.cpu.idle == pytest.approx(0.0)

    def test_idle_when_quiet(self):
        state = MachineState(_SMALL())
        state.account_cpu(busy_frac=0.0, sys_share=0.0, iowait_frac=0.0, steal_frac=0.0)
        assert state.cpu.idle == pytest.approx(100.0)

    def test_busy_split_user_sys(self):
        state = MachineState(_SMALL())
        state.account_cpu(busy_frac=0.8, sys_share=0.25, iowait_frac=0.0, steal_frac=0.0)
        assert state.cpu.user == pytest.approx(60.0)
        assert state.cpu.sys == pytest.approx(20.0)

    def test_clamps_out_of_range(self):
        state = MachineState(_SMALL())
        state.account_cpu(busy_frac=2.0, sys_share=0.0, iowait_frac=0.0, steal_frac=0.0)
        assert state.cpu.user <= 100.0

    def test_default_sample_idle(self):
        assert CpuSample().idle == 100.0
