"""Tests for the stuck-lock anomaly (extension)."""

from dataclasses import replace

import numpy as np
import pytest

from repro.system import (
    AnomalyProfile,
    LockContentionInjector,
    ResponseTimeLimit,
    TestbedSimulator,
)
from repro.system.resources import MachineState
from repro.system.server import AppServer, ServerConfig
from repro.system.tpcw import SHOPPING_MIX, EmulatedBrowserPool


def make_server(machine, seed=0):
    state = MachineState(machine)
    pool = EmulatedBrowserPool(20, SHOPPING_MIX, seed=seed)
    profile = AnomalyProfile(0.0, 1.0, 1.0, 0.0)
    return AppServer(ServerConfig(), state, pool, profile, seed=seed)


class TestAddStuckLocks:
    def test_locks_inflate_service(self, machine):
        server = make_server(machine)
        base = server.service_multiplier()
        server.add_stuck_locks(10)
        assert server.service_multiplier() == pytest.approx(base * 1.5)

    def test_negative_rejected(self, machine):
        with pytest.raises(ValueError):
            make_server(machine).add_stuck_locks(-1)

    def test_no_memory_footprint(self, machine):
        server = make_server(machine)
        before = server.state.app_demand_kb
        server.add_stuck_locks(100)
        assert server.state.app_demand_kb == before


class TestLockContentionInjector:
    def test_fires_over_time(self, machine):
        server = make_server(machine)
        inj = LockContentionInjector(mean_interval_range=(1.0, 1.0), seed=0)
        n = inj.advance(server, now=200.0)
        assert n > 0
        assert server.n_stuck_locks == n
        assert inj.total_locks == n

    def test_rate_matches_interval(self, machine):
        server = make_server(machine)
        inj = LockContentionInjector(mean_interval_range=(2.0, 2.0), seed=1)
        n = inj.advance(server, now=10_000.0)
        assert n == pytest.approx(5000, rel=0.1)


class TestLockDrivenFailure:
    def test_rt_failure_without_memory_pressure(self, campaign):
        """Locks alone can violate an RT SLA while memory stays healthy."""
        cfg = replace(
            campaign,
            p_leak_range=(0.0, 1e-12),
            p_thread_range=(0.0, 1e-12),
            use_lock_injector=True,
            lock_injector_interval_range=(2.0, 5.0),
            max_run_seconds=4000.0,
        )
        sim = TestbedSimulator(cfg, failure_condition=ResponseTimeLimit(2.0))
        run = sim.run_once(seed=4)
        assert run.metadata["crashed"] == 1.0
        # the memory signature is absent: swap untouched at the end
        assert run.column("swap_used")[-1] == 0.0

    def test_opt_in_preserves_default_traces(self, campaign):
        """Enabling the lock flag off (default) must not change streams."""
        a = TestbedSimulator(campaign).run_once(seed=6)
        b = TestbedSimulator(replace(campaign, use_lock_injector=False)).run_once(seed=6)
        assert np.array_equal(a.features, b.features)
