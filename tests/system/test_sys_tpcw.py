"""Tests for the TPC-W workload model (repro.system.tpcw)."""

import numpy as np
import pytest

from repro.system.tpcw import (
    BROWSING_MIX,
    MIXES,
    ORDERING_MIX,
    SERVICE_DEMANDS,
    SHOPPING_MIX,
    EmulatedBrowserPool,
    Interaction,
    TPCWMix,
)


class TestMixes:
    def test_fourteen_interactions(self):
        assert len(Interaction) == 14
        assert len(SERVICE_DEMANDS) == 14

    @pytest.mark.parametrize("mix", [BROWSING_MIX, SHOPPING_MIX, ORDERING_MIX])
    def test_frequencies_normalized(self, mix):
        assert mix.probabilities.sum() == pytest.approx(1.0)

    def test_registry(self):
        assert set(MIXES) == {"browsing", "shopping", "ordering"}

    def test_browsing_browses_more(self):
        # browse-category share is higher in the browsing mix
        browse = [
            Interaction.HOME,
            Interaction.NEW_PRODUCTS,
            Interaction.BEST_SELLERS,
            Interaction.PRODUCT_DETAIL,
            Interaction.SEARCH_REQUEST,
            Interaction.SEARCH_RESULTS,
        ]
        b = BROWSING_MIX.probabilities[browse].sum()
        o = ORDERING_MIX.probabilities[browse].sum()
        assert b > 0.9 > o

    def test_ordering_orders_more(self):
        buy = [Interaction.BUY_REQUEST, Interaction.BUY_CONFIRM]
        assert (
            ORDERING_MIX.probabilities[buy].sum()
            > SHOPPING_MIX.probabilities[buy].sum()
            > BROWSING_MIX.probabilities[buy].sum()
        )

    def test_home_fraction(self):
        assert SHOPPING_MIX.home_fraction == pytest.approx(0.16, abs=0.01)

    def test_mean_service_demand_positive(self):
        for mix in MIXES.values():
            assert 0.0 < mix.mean_service_demand < 1.0

    def test_sampling_respects_frequencies(self):
        rng = np.random.default_rng(0)
        draws = SHOPPING_MIX.sample(100_000, rng)
        home_frac = (draws == Interaction.HOME).mean()
        assert home_frac == pytest.approx(SHOPPING_MIX.home_fraction, abs=0.01)

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError):
            TPCWMix("bad", (0.5, 0.5))  # wrong count
        bad = [1.0 / 14.0] * 14
        bad[0] = 0.9  # not normalized
        with pytest.raises(ValueError):
            TPCWMix("bad", tuple(bad))


class TestEmulatedBrowserPool:
    def test_staggered_start(self):
        pool = EmulatedBrowserPool(20, SHOPPING_MIX, seed=0)
        idx, kinds = pool.due_requests(now=1000.0)
        assert idx.size == 20  # all due well past the stagger window
        assert kinds.shape == (20,)

    def test_in_flight_not_reissued(self):
        pool = EmulatedBrowserPool(10, SHOPPING_MIX, seed=0)
        first, _ = pool.due_requests(now=100.0)
        second, _ = pool.due_requests(now=200.0)
        assert second.size == 0  # everyone awaiting a response

    def test_complete_rearms_after_think(self):
        pool = EmulatedBrowserPool(5, SHOPPING_MIX, seed=0)
        idx, _ = pool.due_requests(now=100.0)
        pool.complete(idx, np.full(idx.size, 100.5))
        # due again only after think time elapses
        immediately, _ = pool.due_requests(now=100.6)
        later, _ = pool.due_requests(now=100.5 + 71.0)  # beyond think cap
        assert immediately.size + later.size == 5
        assert later.size > 0 or immediately.size == 5

    def test_completing_unissued_raises(self):
        pool = EmulatedBrowserPool(3, SHOPPING_MIX, seed=0)
        with pytest.raises(ValueError):
            pool.complete(np.array([0]), np.array([1.0]))

    def test_think_times_capped(self):
        pool = EmulatedBrowserPool(1, SHOPPING_MIX, seed=0)
        draws = pool._think_times(10_000)
        assert draws.max() <= pool.THINK_CAP
        assert draws.mean() == pytest.approx(pool.THINK_MEAN, rel=0.1)

    def test_reset_restores_fresh_sessions(self):
        pool = EmulatedBrowserPool(8, SHOPPING_MIX, seed=0)
        idx, _ = pool.due_requests(now=50.0)
        pool.reset(now=1000.0)
        idx2, _ = pool.due_requests(now=1000.0 + pool.THINK_MEAN + 1.0)
        assert idx2.size == 8

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            EmulatedBrowserPool(0, SHOPPING_MIX)

    def test_closed_loop_rate_scales_with_browsers(self):
        # twice the EBs -> roughly twice the requests over a long horizon
        def total_requests(n_eb):
            pool = EmulatedBrowserPool(n_eb, SHOPPING_MIX, seed=1)
            count = 0
            now = 0.0
            for _ in range(2000):
                now += 0.5
                idx, _ = pool.due_requests(now)
                count += idx.size
                if idx.size:
                    pool.complete(idx, np.full(idx.size, now + 0.1))
            return count

        r20, r40 = total_requests(20), total_requests(40)
        assert r40 == pytest.approx(2 * r20, rel=0.15)
