"""Tests for workload schedules (repro.system.schedule)."""

import numpy as np
import pytest

from repro.system.schedule import ConstantLoad, DiurnalLoad, StepLoad
from repro.system.tpcw import SHOPPING_MIX, EmulatedBrowserPool


class TestConstantLoad:
    def test_constant(self):
        sched = ConstantLoad(0.5)
        assert sched.active_fraction(0.0) == 0.5
        assert sched.active_fraction(1e6) == 0.5

    def test_default_full(self):
        assert ConstantLoad().active_fraction(10.0) == 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            ConstantLoad(1.5)


class TestDiurnalLoad:
    def test_oscillates_within_bounds(self):
        sched = DiurnalLoad(period=100.0, base=0.6, amplitude=0.3)
        values = [sched.active_fraction(t) for t in np.linspace(0, 300, 301)]
        assert min(values) >= 0.05
        assert max(values) <= 1.0
        assert max(values) - min(values) > 0.4  # actually oscillates

    def test_periodicity(self):
        sched = DiurnalLoad(period=50.0)
        assert sched.active_fraction(10.0) == pytest.approx(
            sched.active_fraction(60.0)
        )

    def test_floor_clipping(self):
        sched = DiurnalLoad(period=100.0, base=0.1, amplitude=0.5, floor=0.2)
        values = [sched.active_fraction(t) for t in np.linspace(0, 100, 101)]
        assert min(values) >= 0.2

    def test_validate_over(self):
        DiurnalLoad(period=100.0).validate_over(1000.0)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            DiurnalLoad(period=0.0)


class TestStepLoad:
    def test_levels(self):
        sched = StepLoad(breakpoints=(10.0, 20.0), fractions=(0.2, 1.0, 0.5))
        assert sched.active_fraction(5.0) == 0.2
        assert sched.active_fraction(15.0) == 1.0
        assert sched.active_fraction(25.0) == 0.5

    def test_boundary_belongs_to_next_level(self):
        sched = StepLoad(breakpoints=(10.0,), fractions=(0.2, 0.8))
        assert sched.active_fraction(10.0) == 0.8

    def test_validation(self):
        with pytest.raises(ValueError):
            StepLoad(breakpoints=(10.0,), fractions=(0.5,))
        with pytest.raises(ValueError):
            StepLoad(breakpoints=(10.0, 5.0), fractions=(0.1, 0.2, 0.3))
        with pytest.raises(ValueError):
            StepLoad(breakpoints=(10.0,), fractions=(0.5, 1.5))


class TestPoolGating:
    def test_full_fraction_unchanged(self):
        pool = EmulatedBrowserPool(10, SHOPPING_MIX, seed=0)
        idx, _ = pool.due_requests(100.0, active_fraction=1.0)
        assert idx.size == 10

    def test_half_fraction_gates_prefix(self):
        pool = EmulatedBrowserPool(10, SHOPPING_MIX, seed=0)
        idx, _ = pool.due_requests(100.0, active_fraction=0.5)
        assert idx.size == 5
        assert idx.max() < 5  # only the deterministic prefix

    def test_zero_fraction_blocks_everyone(self):
        pool = EmulatedBrowserPool(10, SHOPPING_MIX, seed=0)
        idx, _ = pool.due_requests(100.0, active_fraction=0.0)
        assert idx.size == 0

    def test_invalid_fraction(self):
        pool = EmulatedBrowserPool(5, SHOPPING_MIX, seed=0)
        with pytest.raises(ValueError):
            pool.due_requests(1.0, active_fraction=1.5)


class TestScheduledCampaign:
    def test_low_load_extends_time_to_failure(self, campaign):
        from dataclasses import replace

        from repro.system import TestbedSimulator

        full = TestbedSimulator(campaign).run_once(seed=3)
        quiet_cfg = replace(campaign, load_schedule=ConstantLoad(0.3))
        quiet = TestbedSimulator(quiet_cfg).run_once(seed=3)
        # fewer requests -> slower anomaly accumulation -> later crash
        assert quiet.fail_time > full.fail_time

    def test_diurnal_campaign_runs(self, campaign):
        from dataclasses import replace

        from repro.system import TestbedSimulator

        cfg = replace(
            campaign,
            load_schedule=DiurnalLoad(period=400.0, base=0.7, amplitude=0.3),
        )
        run = TestbedSimulator(cfg).run_once(seed=1)
        assert run.metadata["crashed"] == 1.0

    def test_default_schedule_backward_compatible(self, campaign):
        # CampaignConfig defaults to ConstantLoad(1.0): identical traces
        # to the pre-schedule behaviour
        from repro.system import TestbedSimulator

        a = TestbedSimulator(campaign).run_once(seed=9)
        b = TestbedSimulator(campaign).run_once(seed=9)
        assert np.array_equal(a.features, b.features)
