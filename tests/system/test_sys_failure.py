"""Tests for failure conditions (repro.system.failure)."""

import pytest

from repro.system.failure import (
    AnyOf,
    GenerationTimeLimit,
    MemoryExhaustion,
    ResponseTimeLimit,
    SystemView,
)
from repro.system.resources import MachineState


def view(machine, *, leak=0.0, rt=0.1, gen=1.5):
    state = MachineState(machine)
    if leak:
        state.leak_memory(leak)
        state.update_swap()
    return SystemView(
        state=state, mean_response_time=rt, last_generation_interval=gen
    )


class TestMemoryExhaustion:
    def test_healthy_not_failed(self, machine):
        assert not MemoryExhaustion().is_failed(view(machine))

    def test_exhausted_fails(self, machine):
        v = view(machine, leak=machine.ram_kb + machine.swap_kb + 1e5)
        assert MemoryExhaustion().is_failed(v)

    def test_headroom_fires_early(self, machine):
        # overflow at ~95% of swap: plain condition no, 10%-headroom yes
        state = MachineState(machine)
        state.leak_memory(machine.ram_kb)  # deep into swap
        state.update_swap()
        overflow = state.overflow_kb
        assert overflow > 0
        frac = overflow / machine.swap_kb
        v = SystemView(state=state, mean_response_time=0.0, last_generation_interval=0.0)
        assert MemoryExhaustion(headroom_frac=0.0).is_failed(v) == (frac > 1.0)
        assert MemoryExhaustion(headroom_frac=1.0 - frac * 0.5).is_failed(v)

    def test_invalid_headroom(self):
        with pytest.raises(ValueError):
            MemoryExhaustion(headroom_frac=1.0)

    def test_description(self):
        assert "memory" in MemoryExhaustion().description


class TestResponseTimeLimit:
    def test_below_limit(self, machine):
        assert not ResponseTimeLimit(2.0).is_failed(view(machine, rt=1.0))

    def test_above_limit(self, machine):
        assert ResponseTimeLimit(2.0).is_failed(view(machine, rt=3.0))

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            ResponseTimeLimit(0.0)


class TestGenerationTimeLimit:
    def test_below_limit(self, machine):
        assert not GenerationTimeLimit(5.0).is_failed(view(machine, gen=2.0))

    def test_above_limit(self, machine):
        assert GenerationTimeLimit(5.0).is_failed(view(machine, gen=6.0))


class TestAnyOf:
    def test_any_fires(self, machine):
        cond = AnyOf(ResponseTimeLimit(2.0), GenerationTimeLimit(10.0))
        assert cond.is_failed(view(machine, rt=3.0, gen=1.0))
        assert cond.is_failed(view(machine, rt=0.1, gen=11.0))
        assert not cond.is_failed(view(machine, rt=0.1, gen=1.0))

    def test_or_operator(self, machine):
        cond = ResponseTimeLimit(2.0) | GenerationTimeLimit(10.0)
        assert isinstance(cond, AnyOf)
        assert cond.is_failed(view(machine, gen=20.0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AnyOf()

    def test_description_joins(self):
        cond = ResponseTimeLimit(2.0) | GenerationTimeLimit(10.0)
        assert " OR " in cond.description
