"""End-to-end integration tests: paper shapes on a mid-size campaign.

These run the whole stack — simulator -> aggregation -> selection ->
model zoo -> evaluation — and assert the qualitative findings of the
paper's Sec. IV (the quantities our reproduction is expected to
preserve; see DESIGN.md "shape expectations").
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AggregationConfig,
    F2PM,
    F2PMConfig,
    LassoFeatureSelector,
    ResponseTimeCorrelator,
    aggregate_history,
)
from repro.system import CampaignConfig, MachineConfig, TestbedSimulator


@pytest.fixture(scope="module")
def campaign_history():
    machine = MachineConfig(
        ram_kb=524_288.0,
        swap_kb=262_144.0,
        os_base_kb=131_072.0,
        app_working_set_kb=65_536.0,
        min_cache_kb=16_384.0,
        shared_kb=8_192.0,
        buffers_kb=4_096.0,
    )
    cfg = CampaignConfig(
        n_runs=10,
        seed=3,
        machine=machine,
        n_browsers=40,
        p_leak_range=(0.3, 0.5),
        leak_kb_range=(1024.0, 4096.0),
        max_run_seconds=3000.0,
    )
    return TestbedSimulator(cfg).run_campaign()


@pytest.fixture(scope="module")
def f2pm_result(campaign_history):
    cfg = F2PMConfig(
        aggregation=AggregationConfig(window_seconds=20.0),
        models=("linear", "m5p", "reptree", "svm2"),
        lasso_predictor_lambdas=(1e0, 1e9),
        seed=0,
    )
    return F2PM(cfg).run(campaign_history)


class TestCampaignRealism:
    def test_all_runs_crash(self, campaign_history):
        assert all(r.metadata["crashed"] == 1.0 for r in campaign_history)

    def test_run_lengths_vary(self, campaign_history):
        lengths = np.array([r.fail_time for r in campaign_history])
        assert lengths.std() / lengths.mean() > 0.1


class TestFig3Shape:
    def test_correlation_holds_on_every_run(self, campaign_history):
        for run in campaign_history:
            series = ResponseTimeCorrelator().fit_run(run)
            assert series.r2 > 0.4, "gen-time/RT correlation collapsed"

    def test_both_series_grow_toward_failure(self, campaign_history):
        series = ResponseTimeCorrelator().fit_run(campaign_history[0])
        k = series.time.size // 4
        assert series.generation_time[-k:].mean() > 1.5 * series.generation_time[:k].mean()
        assert series.response_time[-k:].mean() > 1.5 * series.response_time[:k].mean()


class TestFig4Shape:
    def test_selection_count_non_increasing(self, campaign_history):
        ds = aggregate_history(campaign_history, AggregationConfig(window_seconds=20.0))
        sel = LassoFeatureSelector().fit(ds)
        counts = np.array([c for _, c in sel.selection_counts()])
        assert (np.diff(counts) <= 0).all()
        assert counts[0] > counts[-1]
        assert counts[0] >= 10  # weak penalty keeps a large set

    def test_strongest_selection_memory_dominated(self, campaign_history):
        """Table I shape: memory/swap features and slopes survive."""
        ds = aggregate_history(campaign_history, AggregationConfig(window_seconds=20.0))
        sel = LassoFeatureSelector().fit(ds)
        strongest = sel.strongest_with_at_least(6)
        memoryish = [
            n for n in strongest.selected if "mem_" in n or "swap_" in n
        ]
        assert len(memoryish) * 2 >= len(strongest.selected)
        assert any(n.endswith("_slope") for n in strongest.selected)


class TestTable2Shape:
    def test_trees_beat_linear_family(self, f2pm_result):
        trees = min(
            f2pm_result.report("m5p", "all").s_mae,
            f2pm_result.report("reptree", "all").s_mae,
        )
        linear_family = min(
            f2pm_result.report("linear", "all").s_mae,
            f2pm_result.report("svm2", "all").s_mae,
        )
        assert trees < linear_family

    def test_lssvm_clusters_with_linear(self, f2pm_result):
        """WEKA's linear-kernel default makes SVM ~ Linear Regression."""
        lin = f2pm_result.report("linear", "all").s_mae
        svm2 = f2pm_result.report("svm2", "all").s_mae
        assert svm2 == pytest.approx(lin, rel=0.35)

    def test_lasso_predictor_worst_and_flat(self, f2pm_result):
        worst = f2pm_result.report("lasso(1e9)", "all").s_mae
        for name in ("linear", "m5p", "reptree", "svm2"):
            assert worst > f2pm_result.report(name, "all").s_mae
        # flat: the high-lambda entries barely move with lambda
        low = f2pm_result.report("lasso(1e0)", "all").s_mae
        assert low <= worst


class TestTable3Shape:
    def test_selection_never_slows_training_much(self, f2pm_result):
        for name in ("linear", "m5p", "reptree"):
            t_all = f2pm_result.report(name, "all").train_time
            t_sel = f2pm_result.report(name, "selected").train_time
            assert t_sel <= t_all * 1.5  # wall-clock noise tolerance

    def test_tree_training_slower_than_linear(self, f2pm_result):
        assert (
            f2pm_result.report("m5p", "all").train_time
            > f2pm_result.report("linear", "all").train_time
        )


class TestTable4Shape:
    def test_validation_subsecond(self, f2pm_result):
        for r in f2pm_result.reports:
            assert r.validation_time < 1.0


class TestFig5Shape:
    @pytest.mark.parametrize("name", ["linear", "m5p", "reptree", "svm2"])
    def test_error_smaller_near_failure(self, f2pm_result, name):
        y = f2pm_result.y_validation
        pred = f2pm_result.predictions[(name, "all")]
        edges = np.quantile(y, [1 / 3, 2 / 3])
        near = np.abs(pred - y)[y <= edges[0]].mean()
        far = np.abs(pred - y)[y > edges[1]].mean()
        assert near < far

    def test_models_underpredict_far_from_failure(self, f2pm_result):
        """Throughput collapse delays the crash: signed error far from
        failure is negative for the linear-family models (paper Sec. IV-B)."""
        y = f2pm_result.y_validation
        edges = np.quantile(y, 2 / 3)
        signed = []
        for name in ("linear", "svm2"):
            pred = f2pm_result.predictions[(name, "all")]
            signed.append((pred - y)[y > edges].mean())
        assert min(signed) < 0


class TestSVMIntegration:
    def test_svm_trains_and_clusters_with_linear(self, campaign_history):
        """One full SMO run on campaign data (subsampled for speed)."""
        cfg = F2PMConfig(
            aggregation=AggregationConfig(window_seconds=60.0),
            models=("linear", "svm"),
            lasso_predictor_lambdas=(),
            seed=0,
        )
        res = F2PM(cfg).run(campaign_history)
        lin = res.report("linear", "all").s_mae
        svm = res.report("svm", "all").s_mae
        assert svm == pytest.approx(lin, rel=0.5)
        # and the SMO training cost dwarfs the closed-form solve
        assert (
            res.report("svm", "all").train_time
            > 10.0 * res.report("linear", "all").train_time
        )
