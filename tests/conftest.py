"""Shared fixtures: a fast simulated campaign and derived datasets.

The campaign uses a deliberately small VM (512 MB RAM / 256 MB swap) and
aggressive anomaly rates so four runs simulate in ~0.5 s while exercising
the full crash dynamics (cache eviction, swap fill, thrashing, failure).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AggregationConfig, aggregate_history
from repro.system import CampaignConfig, MachineConfig, TestbedSimulator


def small_machine() -> MachineConfig:
    return MachineConfig(
        ram_kb=524_288.0,
        swap_kb=262_144.0,
        os_base_kb=131_072.0,
        app_working_set_kb=65_536.0,
        min_cache_kb=16_384.0,
        shared_kb=8_192.0,
        buffers_kb=4_096.0,
    )


def small_campaign(n_runs: int = 4, seed: int = 3) -> CampaignConfig:
    return CampaignConfig(
        n_runs=n_runs,
        seed=seed,
        machine=small_machine(),
        n_browsers=40,
        p_leak_range=(0.3, 0.5),
        leak_kb_range=(1024.0, 4096.0),
        max_run_seconds=3000.0,
    )


@pytest.fixture
def machine():
    """The small test VM config (512 MB RAM / 256 MB swap)."""
    return small_machine()


@pytest.fixture
def campaign():
    """The small, fast campaign config."""
    return small_campaign()


@pytest.fixture(scope="session")
def history():
    """Four crashed runs on the small test VM (session-cached)."""
    return TestbedSimulator(small_campaign()).run_campaign()


@pytest.fixture(scope="session")
def dataset(history):
    """Aggregated 30-column training set from the session campaign."""
    return aggregate_history(history, AggregationConfig(window_seconds=30.0))


@pytest.fixture(scope="session")
def linear_data():
    """Noisy linear regression problem: y = 3 x0 - 2 x1 + 1 + noise."""
    rng = np.random.default_rng(42)
    X = rng.normal(size=(300, 5))
    y = 3.0 * X[:, 0] - 2.0 * X[:, 1] + 1.0 + rng.normal(scale=0.05, size=300)
    return X, y


@pytest.fixture(scope="session")
def nonlinear_data():
    """Problem with a genuine nonlinearity (trees/kernels should win)."""
    rng = np.random.default_rng(7)
    X = rng.uniform(-2.0, 2.0, size=(400, 3))
    y = np.where(X[:, 0] > 0.0, 5.0 + X[:, 1], -5.0 - X[:, 1]) + rng.normal(
        scale=0.1, size=400
    )
    return X, y
