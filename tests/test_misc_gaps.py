"""Assorted edge-case coverage across modules.

Small behaviours that the per-module suites don't pin down: less-common
constructor flags, report lookups, experiment result helpers.
"""

import numpy as np
import pytest

from repro.ml.pipeline import ScaledModel
from repro.ml.linear import LinearRegression


class TestScaledModelFlags:
    def test_scale_x_off(self, linear_data):
        X, y = linear_data
        m = ScaledModel(LinearRegression(), scale_X=False).fit(X, y)
        plain = LinearRegression().fit(X, y)
        assert np.allclose(m.predict(X), plain.predict(X), rtol=1e-8)

    def test_repr_mentions_inner(self):
        m = ScaledModel(LinearRegression(), scale_X=False)
        assert "LinearRegression" in repr(m)
        assert "scale_X=False" in repr(m)


class TestEvaluationLookups:
    def test_model_report_headers_stable(self):
        from repro.core.evaluation import ModelReport

        assert ModelReport.HEADERS[0] == "model"
        assert "S-MAE (s)" in ModelReport.HEADERS


class TestFig5Bins:
    def test_bin_errors_partitions_all_samples(self):
        from repro.experiments.fig5_fitted_models import _bin_errors

        rng = np.random.default_rng(0)
        y = rng.uniform(0.0, 100.0, size=90)
        pred = y + rng.normal(size=90)
        bins = _bin_errors("x", y, pred)
        # each bin MAE is finite and the overall MAE is a convex
        # combination of the three
        overall = np.abs(pred - y).mean()
        lo = min(bins.mae_near, bins.mae_mid, bins.mae_far)
        hi = max(bins.mae_near, bins.mae_mid, bins.mae_far)
        assert lo - 1e-9 <= overall <= hi + 1e-9

    def test_error_grows_property(self):
        from repro.experiments.fig5_fitted_models import ModelBins

        good = ModelBins("m", mae_near=10.0, mae_mid=20.0, mae_far=30.0, bias_far=0.0)
        bad = ModelBins("m", mae_near=30.0, mae_mid=20.0, mae_far=10.0, bias_far=0.0)
        assert good.error_grows_with_rttf
        assert not bad.error_grows_with_rttf


class TestSelectionResultEdge:
    def test_all_zero_weights(self):
        from repro.core.feature_selection import SelectionResult

        r = SelectionResult(
            lam=1e9, feature_names=("a", "b"), weights=np.zeros(2)
        )
        assert r.selected == ()
        assert r.n_selected == 0
        assert r.weight_table() == []


class TestCLISelectFlags:
    def test_min_features_flag(self, history, tmp_path, capsys):
        from repro.cli import main

        hist_file = tmp_path / "h.npz"
        history.save(hist_file)
        rc = main(
            ["select", str(hist_file), "--window", "30", "--min-features", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        # at least 3 weight lines under "strongest selection"
        tail = out.split("strongest selection")[1]
        assert sum(1 for line in tail.splitlines() if "+" in line or "-" in line) >= 3


class TestRunRecordColumnView:
    def test_column_is_view_not_copy_semantics(self, history):
        run = history[0]
        col = run.column("mem_used")
        assert col.shape == (run.n_datapoints,)
        # views share memory with the features matrix
        assert np.shares_memory(col, run.features)


class TestDatasetColumnOrderPreserved:
    def test_select_features_reorders(self, dataset):
        sub = dataset.select_features(["gen_time", "tgen"])
        assert sub.feature_names == ("gen_time", "tgen")
        assert np.array_equal(sub.X[:, 1], dataset.column("tgen"))
