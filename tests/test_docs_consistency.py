"""Documentation consistency checks.

Docs rot silently; these tests pin the load-bearing references:
every example the README advertises exists and compiles, every module
DESIGN.md inventories exists, and the experiment drivers the DESIGN
experiment index names are importable.
"""

import importlib
import py_compile
import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


class TestExamples:
    def test_all_examples_compile(self):
        examples = sorted((REPO / "examples").glob("*.py"))
        assert len(examples) >= 3  # the deliverable floor
        for path in examples:
            py_compile.compile(str(path), doraise=True)

    def test_readme_example_table_matches_disk(self):
        readme = (REPO / "README.md").read_text()
        for name in re.findall(r"`(\w+\.py)`", readme):
            assert (REPO / "examples" / name).exists(), f"README references missing {name}"


class TestDesignInventory:
    def test_design_modules_exist(self):
        design = (REPO / "DESIGN.md").read_text()
        # every `module.py` mentioned under the inventory must exist somewhere
        for name in set(re.findall(r"`(\w+)\.py`", design)):
            hits = list((REPO / "src").rglob(f"{name}.py"))
            assert hits, f"DESIGN.md inventories missing module {name}.py"

    def test_experiment_drivers_importable(self):
        for module in (
            "repro.experiments.fig3_rt_correlation",
            "repro.experiments.fig4_lasso_path",
            "repro.experiments.table1_weights",
            "repro.experiments.table2_smae",
            "repro.experiments.table3_training_time",
            "repro.experiments.table4_validation_time",
            "repro.experiments.fig5_fitted_models",
            "repro.experiments.ext_rejuvenation_sweep",
            "repro.experiments.ext_incremental_curve",
            "repro.experiments.ext_mix_comparison",
            "repro.experiments.ext_generalization",
            "repro.experiments.runall",
        ):
            importlib.import_module(module)

    def test_benchmark_per_artefact(self):
        benches = {p.name for p in (REPO / "benchmarks").glob("test_bench_*.py")}
        for artefact in ("fig3", "fig4", "fig5", "table1", "table2", "table3", "table4"):
            assert any(artefact in b for b in benches), f"no bench for {artefact}"


class TestPublicAPI:
    @pytest.mark.parametrize(
        "module,names",
        [
            ("repro.core", ["F2PM", "F2PMConfig", "DataHistory", "aggregate_history"]),
            ("repro.ml", ["LinearRegression", "Lasso", "SVR", "LSSVMRegressor",
                          "REPTreeRegressor", "M5PRegressor"]),
            ("repro.system", ["TestbedSimulator", "CampaignConfig", "MachineConfig"]),
            ("repro.rejuvenation", ["ManagedSystem", "PredictiveRejuvenation"]),
        ],
    )
    def test_documented_entry_points_exported(self, module, names):
        mod = importlib.import_module(module)
        for name in names:
            assert hasattr(mod, name), f"{module} lacks {name}"
            assert name in mod.__all__
