"""Tests for the bagging ensemble (repro.ml.ensemble)."""

import numpy as np
import pytest

from repro.ml.base import clone
from repro.ml.ensemble import BaggingRegressor
from repro.ml.linear import LinearRegression
from repro.ml.metrics import mean_absolute_error
from repro.ml.tree import REPTreeRegressor


class TestBaggingRegressor:
    def test_default_base_is_unpruned_reptree(self):
        m = BaggingRegressor()
        assert isinstance(m.base, REPTreeRegressor)
        assert m.base.prune is False

    def test_fits_ensemble(self, nonlinear_data):
        X, y = nonlinear_data
        m = BaggingRegressor(n_estimators=5, seed=0).fit(X, y)
        assert len(m.estimators_) == 5
        assert np.isfinite(m.predict(X)).all()

    def test_prediction_is_member_mean(self, nonlinear_data):
        X, y = nonlinear_data
        m = BaggingRegressor(n_estimators=3, seed=0).fit(X, y)
        manual = np.mean([e.predict(X) for e in m.estimators_], axis=0)
        assert np.allclose(m.predict(X), manual)

    def test_reduces_variance_on_noisy_data(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(-2, 2, size=(400, 2))
        f = np.where(X[:, 0] > 0, 3.0, -3.0)
        y = f + rng.normal(scale=2.0, size=400)
        X_test = rng.uniform(-2, 2, size=(300, 2))
        f_test = np.where(X_test[:, 0] > 0, 3.0, -3.0)
        single = REPTreeRegressor(prune=False, seed=0).fit(X, y)
        bagged = BaggingRegressor(n_estimators=15, seed=0).fit(X, y)
        assert mean_absolute_error(f_test, bagged.predict(X_test)) < mean_absolute_error(
            f_test, single.predict(X_test)
        )

    def test_custom_base(self, linear_data):
        X, y = linear_data
        m = BaggingRegressor(base=LinearRegression(), n_estimators=4, seed=0)
        m.fit(X, y)
        assert all(isinstance(e, LinearRegression) for e in m.estimators_)
        assert mean_absolute_error(y, m.predict(X)) < 0.2

    def test_deterministic_given_seed(self, nonlinear_data):
        X, y = nonlinear_data
        p1 = BaggingRegressor(n_estimators=3, seed=7).fit(X, y).predict(X)
        p2 = BaggingRegressor(n_estimators=3, seed=7).fit(X, y).predict(X)
        assert np.array_equal(p1, p2)

    def test_sample_fraction(self, nonlinear_data):
        X, y = nonlinear_data
        m = BaggingRegressor(n_estimators=2, sample_fraction=0.25, seed=0).fit(X, y)
        assert np.isfinite(m.predict(X)).all()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BaggingRegressor(n_estimators=0)
        with pytest.raises(ValueError):
            BaggingRegressor(sample_fraction=0.0)
        with pytest.raises(ValueError):
            BaggingRegressor(sample_fraction=1.5)

    def test_cloneable(self):
        proto = BaggingRegressor(n_estimators=7)
        copy = clone(proto)
        assert copy.n_estimators == 7
        assert copy.estimators_ is None

    def test_registered_in_zoo(self, nonlinear_data):
        from repro.core.model_zoo import make_model

        X, y = nonlinear_data
        m = make_model("bagging", n_estimators=3)
        m.fit(X, y)
        assert np.isfinite(m.predict(X)).all()

    def test_predict_before_fit(self, nonlinear_data):
        X, _ = nonlinear_data
        with pytest.raises(RuntimeError):
            BaggingRegressor().predict(X)


class TestPredictInterval:
    def test_interval_brackets_mean(self, nonlinear_data):
        X, y = nonlinear_data
        m = BaggingRegressor(n_estimators=10, seed=0).fit(X, y)
        lower, mean, upper = m.predict_interval(X, quantile=0.1)
        assert (lower <= mean + 1e-9).all()
        assert (mean <= upper + 1e-9).all()
        assert np.allclose(mean, m.predict(X))

    def test_wider_quantile_narrower_band(self, nonlinear_data):
        X, y = nonlinear_data
        m = BaggingRegressor(n_estimators=15, seed=0).fit(X, y)
        lo_wide, _, hi_wide = m.predict_interval(X, quantile=0.05)
        lo_narrow, _, hi_narrow = m.predict_interval(X, quantile=0.4)
        assert ((hi_wide - lo_wide) >= (hi_narrow - lo_narrow) - 1e-9).all()

    def test_invalid_quantile(self, nonlinear_data):
        X, y = nonlinear_data
        m = BaggingRegressor(n_estimators=3, seed=0).fit(X, y)
        for bad in (0.0, 0.5, 0.9):
            with pytest.raises(ValueError):
                m.predict_interval(X, quantile=bad)

    def test_uncertainty_larger_off_manifold(self):
        # ensemble spread should grow away from the training data
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, size=(300, 1))
        y = np.sin(3 * X[:, 0]) + rng.normal(scale=0.05, size=300)
        m = BaggingRegressor(n_estimators=20, seed=0).fit(X, y)
        lo_in, _, hi_in = m.predict_interval(np.array([[0.0]]), quantile=0.1)
        lo_out, _, hi_out = m.predict_interval(np.array([[5.0]]), quantile=0.1)
        # (trees extrapolate as constants, so the off-manifold band comes
        # from bootstrap variation of the edge leaves)
        assert (hi_out - lo_out) >= 0.0  # well-defined either way


class TestIntervalReductionContracts:
    """Regression pins for the fused-quantile predict_interval."""

    def test_single_quantile_call_matches_two_calls(self, nonlinear_data):
        # predict_interval computes both bounds in one np.quantile pass;
        # pin bit-identity against the two-call formulation it replaced.
        X, y = nonlinear_data
        m = BaggingRegressor(n_estimators=12, seed=0).fit(X, y)
        members = m._member_predictions(X)
        lower, mean, upper = m.predict_interval(X, quantile=0.1)
        assert np.array_equal(lower, np.quantile(members, 0.1, axis=0))
        assert np.array_equal(upper, np.quantile(members, 0.9, axis=0))
        assert np.array_equal(mean, m._member_mean(members))

    def test_interval_mean_is_predict_bits(self, nonlinear_data):
        # The interval's mean is _member_mean over the same member
        # matrix predict reduces, so a policy consulting the interval
        # never needs a second member pass: the mean IS predict's
        # output, bit for bit (the fleet control plane relies on this).
        X, y = nonlinear_data
        m = BaggingRegressor(n_estimators=10, seed=1).fit(X, y)
        _, mean, _ = m.predict_interval(X, quantile=0.2)
        assert np.array_equal(mean, m.predict(X))

    def test_interval_mean_is_predict_bits_single_row(self, nonlinear_data):
        # (k, 1) member columns are the layout where a naive
        # mean(axis=0) could disagree with the batched reduction.
        X, y = nonlinear_data
        m = BaggingRegressor(n_estimators=10, seed=1).fit(X, y)
        for row in (X[:1], X[7:8]):
            _, mean, _ = m.predict_interval(row, quantile=0.1)
            assert np.array_equal(mean, m.predict(row))
