"""Tests for the compiled predict plane (repro.ml.serving)."""

import numpy as np
import pytest

from repro.ml import (
    BaggingRegressor,
    LSSVMRegressor,
    REPTreeRegressor,
    SVR,
    compile_predictor,
)
from repro.ml.kernels import KernelExpansion
from repro.ml.pipeline import ScaledModel
from repro.ml.serving import CompiledPredictor


@pytest.fixture(scope="module")
def kernel_problem():
    """Smooth regression problem a low-rank RBF machine serves well."""
    rng = np.random.default_rng(11)
    X = rng.normal(size=(500, 6))
    y = X @ rng.normal(size=6) + np.sin(X[:, 0]) + 0.05 * rng.normal(size=500)
    return X[:350], y[:350], X[350:], y[350:]


class _ExpansionModel:
    """Minimal model exposing a hand-built kernel expansion."""

    def __init__(self, ref, coef, intercept=0.5, kernel="rbf", gamma=0.3):
        self._exp = KernelExpansion(
            ref=np.asarray(ref, dtype=np.float64),
            coef=np.asarray(coef, dtype=np.float64),
            intercept=intercept,
            kernel=kernel,
            gamma=gamma,
        )

    def kernel_expansion(self):
        return self._exp

    def predict(self, X):
        return self._exp.predict(X)


class TestKernelExpansionHooks:
    def test_svr_expansion_matches_predict(self, kernel_problem):
        X, y, Xq, _ = kernel_problem
        m = SVR(C=5.0, kernel="rbf", gamma=0.2).fit(X, y)
        assert np.array_equal(m.kernel_expansion().predict(Xq), m.predict(Xq))

    def test_lssvm_expansion_matches_predict(self, kernel_problem):
        X, y, Xq, _ = kernel_problem
        m = LSSVMRegressor(gam=10.0, kernel="rbf", gamma=0.2).fit(X, y)
        assert np.array_equal(m.kernel_expansion().predict(Xq), m.predict(Xq))

    def test_expansion_resolves_scale_gamma(self, kernel_problem):
        X, y, _, _ = kernel_problem
        m = LSSVMRegressor(gam=10.0, kernel="rbf", gamma="scale").fit(X, y)
        assert isinstance(m.kernel_expansion().gamma, float)

    def test_expansion_requires_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            SVR().kernel_expansion()
        with pytest.raises(RuntimeError, match="not fitted"):
            LSSVMRegressor().kernel_expansion()


class TestIdentityCompile:
    """float64, no prune/merge/Nystrom effect => bit-identical serving."""

    def test_lssvm_identity_bits(self, kernel_problem):
        X, y, Xq, _ = kernel_problem
        m = LSSVMRegressor(gam=10.0, kernel="rbf", gamma=0.2).fit(X, y)
        cp = compile_predictor(m, budget=10_000, prune_tol=0.0, dtype="float64")
        assert cp.compiled and cp.report.reason == "ungated"
        assert np.array_equal(cp.predict(Xq), m.predict(Xq))

    def test_svr_identity_bits_all_kernels(self, kernel_problem):
        X, y, Xq, _ = kernel_problem
        for kernel in ("rbf", "linear", "poly"):
            m = SVR(C=5.0, kernel=kernel, gamma=0.2).fit(X, y)
            cp = compile_predictor(
                m, budget=10_000, prune_tol=0.0, dtype="float64"
            )
            assert np.array_equal(cp.predict(Xq), m.predict(Xq)), kernel

    def test_scaled_model_identity_bits(self, kernel_problem):
        X, y, Xq, _ = kernel_problem
        m = ScaledModel(LSSVMRegressor(gam=10.0, kernel="rbf")).fit(X, y)
        cp = compile_predictor(m, budget=10_000, prune_tol=0.0, dtype="float64")
        assert cp.compiled
        assert np.array_equal(cp.predict(Xq), m.predict(Xq))


class TestNystromAndPrecision:
    def test_budget_caps_reference_rows(self, kernel_problem):
        X, y, Xq, yq = kernel_problem
        m = LSSVMRegressor(gam=10.0, kernel="rbf", gamma=0.05).fit(X, y)
        cp = compile_predictor(m, budget=64, tol=1.0, X_val=Xq, y_val=yq)
        assert cp.report.n_reference_rows_exact == 350
        assert cp.report.n_reference_rows == 64
        assert cp.report.n_landmarks == 64
        assert cp.report.dtype == "float32"

    def test_output_dtype_is_float64(self, kernel_problem):
        X, y, Xq, _ = kernel_problem
        m = LSSVMRegressor(gam=10.0, kernel="rbf", gamma=0.05).fit(X, y)
        cp = compile_predictor(m, budget=64)
        assert cp.predict(Xq).dtype == np.float64

    def test_landmarks_cover_refs_is_near_exact(self):
        # When the landmark set contains every reference row the
        # factorization recovers the exact expansion (pinv cutoff aside).
        rng = np.random.default_rng(0)
        ref = rng.normal(size=(40, 4))
        coef = rng.normal(size=40)
        m = _ExpansionModel(ref, coef)
        cp = compile_predictor(m, budget=40, dtype="float64", prune_tol=0.0)
        Xq = rng.normal(size=(30, 4))
        assert np.allclose(cp.predict(Xq), m.predict(Xq), atol=1e-8)


class TestPruneAndMerge:
    def test_near_zero_duals_dropped(self):
        rng = np.random.default_rng(1)
        ref = rng.normal(size=(20, 3))
        coef = rng.normal(size=20)
        coef[5:9] = 1e-15  # negligible vs O(1) duals
        cp = compile_predictor(
            _ExpansionModel(ref, coef), budget=100, dtype="float64"
        )
        assert cp.report.n_pruned == 4
        assert cp.report.n_reference_rows == 16

    def test_duplicate_rows_merged_with_coef_sum(self):
        rng = np.random.default_rng(2)
        base = rng.normal(size=(10, 3))
        ref = np.vstack([base, base[:4]])  # 4 exact duplicates
        coef = rng.normal(size=14)
        m = _ExpansionModel(ref, coef)
        cp = compile_predictor(m, budget=100, dtype="float64", prune_tol=0.0)
        assert cp.report.n_merged == 4
        assert cp.report.n_reference_rows == 10
        Xq = rng.normal(size=(25, 3))
        # summation order differs after the merge, so allclose not equal
        assert np.allclose(cp.predict(Xq), m.predict(Xq), atol=1e-10)

    def test_all_zero_coefficients_prune_to_intercept(self):
        ref = np.ones((5, 2))
        m = _ExpansionModel(ref, np.zeros(5), intercept=3.25)
        cp = compile_predictor(m, budget=100, dtype="float64")
        assert np.array_equal(cp.predict(np.zeros((4, 2))), np.full(4, 3.25))


class TestAccuracyGate:
    def test_rejected_compile_serves_exact_bits(self, kernel_problem):
        X, y, Xq, yq = kernel_problem
        m = LSSVMRegressor(gam=10.0, kernel="rbf", gamma=0.5).fit(X, y)
        # budget=2 butchers a gamma=0.5 machine; a zero-tolerance gate
        # must reject and fall back to exact serving.
        cp = compile_predictor(m, budget=2, tol=0.0, X_val=Xq, y_val=yq)
        assert not cp.compiled
        assert cp.report.reason == "gate-rejected"
        assert cp.report.gate_delta > 0.0
        assert np.array_equal(cp.predict(Xq), m.predict(Xq))

    def test_identity_compile_passes_zero_tolerance(self, kernel_problem):
        X, y, Xq, yq = kernel_problem
        m = LSSVMRegressor(gam=10.0, kernel="rbf", gamma=0.2).fit(X, y)
        cp = compile_predictor(
            m,
            budget=10_000,
            prune_tol=0.0,
            dtype="float64",
            tol=0.0,
            X_val=Xq,
            y_val=yq,
        )
        assert cp.compiled and cp.report.reason == "gated-accept"
        assert cp.report.gate_delta == 0.0

    def test_gate_needs_targets(self, kernel_problem):
        X, y, Xq, _ = kernel_problem
        m = LSSVMRegressor(gam=10.0).fit(X, y)
        with pytest.raises(ValueError, match="y_val"):
            compile_predictor(m, tol=0.1, X_val=Xq)

    def test_invalid_arguments(self, kernel_problem):
        X, y, _, _ = kernel_problem
        m = LSSVMRegressor(gam=10.0).fit(X, y)
        with pytest.raises(ValueError, match="budget"):
            compile_predictor(m, budget=0)
        with pytest.raises(ValueError, match="dtype"):
            compile_predictor(m, dtype="int32")
        with pytest.raises(ValueError, match="tol"):
            compile_predictor(m, tol=-1.0)


class TestUnsupportedPassthrough:
    def test_tree_is_passthrough(self, nonlinear_data):
        X, y = nonlinear_data
        m = REPTreeRegressor(seed=0).fit(X, y)
        cp = compile_predictor(m, tol=0.1, X_val=X, y_val=y)
        assert not cp.compiled
        assert cp.report.reason == "unsupported"
        assert np.array_equal(cp.predict(X), m.predict(X))

    def test_passthrough_interval_delegates(self, nonlinear_data):
        X, y = nonlinear_data
        bag = BaggingRegressor(n_estimators=5, seed=0).fit(X, y)  # trees
        cp = compile_predictor(bag)
        assert cp.report.reason == "unsupported"
        exact = bag.predict_interval(X, 0.1)
        wrapped = cp.predict_interval(X, 0.1)
        for a, b in zip(exact, wrapped):
            assert np.array_equal(a, b)


class TestCompiledEnsemble:
    @pytest.fixture(scope="class")
    def bag_problem(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(300, 4))
        y = X @ rng.normal(size=4) + 0.05 * rng.normal(size=300)
        bag = BaggingRegressor(
            base=LSSVMRegressor(gam=10.0, kernel="rbf", gamma=0.1),
            n_estimators=6,
            seed=3,
        ).fit(X[:220], y[:220])
        return bag, X[220:], y[220:]

    def test_member_wise_compile_with_shared_landmarks(self, bag_problem):
        bag, Xq, yq = bag_problem
        cp = compile_predictor(bag, budget=80, tol=1.0, X_val=Xq, y_val=yq)
        assert cp.compiled
        assert cp.report.n_landmarks <= 80
        assert len(cp.report.members) == 6
        assert np.allclose(cp.predict(Xq), bag.predict(Xq), atol=2.0)

    def test_interval_mean_is_predict_bits(self, bag_problem):
        bag, Xq, _ = bag_problem
        cp = compile_predictor(bag, budget=80)
        _, mean, _ = cp.predict_interval(Xq, 0.1)
        assert np.array_equal(mean, cp.predict(Xq))

    def test_interval_brackets_mean(self, bag_problem):
        bag, Xq, _ = bag_problem
        cp = compile_predictor(bag, budget=80)
        lower, mean, upper = cp.predict_interval(Xq, 0.1)
        assert (lower <= mean + 1e-9).all()
        assert (mean <= upper + 1e-9).all()

    def test_interval_quantile_validated(self, bag_problem):
        bag, Xq, _ = bag_problem
        cp = compile_predictor(bag, budget=80)
        with pytest.raises(ValueError, match="quantile"):
            cp.predict_interval(Xq, 0.6)


class TestEdgeCases:
    def test_empty_support_serves_intercept(self):
        m = _ExpansionModel(np.empty((0, 3)), np.empty(0), intercept=7.5)
        cp = compile_predictor(m, budget=8, dtype="float64")
        assert np.array_equal(cp.predict(np.zeros((6, 3))), np.full(6, 7.5))

    def test_single_reference_row(self):
        m = _ExpansionModel(np.ones((1, 2)), np.array([2.0]))
        cp = compile_predictor(m, budget=8, dtype="float64", prune_tol=0.0)
        Xq = np.array([[1.0, 1.0], [0.0, 0.0]])
        assert np.array_equal(cp.predict(Xq), m.predict(Xq))

    def test_single_query_row(self, kernel_problem):
        X, y, Xq, _ = kernel_problem
        m = LSSVMRegressor(gam=10.0, kernel="rbf", gamma=0.2).fit(X, y)
        cp = compile_predictor(m, budget=32)
        assert cp.predict(Xq[:1]).shape == (1,)

    def test_compiled_predictor_pickles(self, kernel_problem):
        import pickle

        X, y, Xq, _ = kernel_problem
        m = LSSVMRegressor(gam=10.0, kernel="rbf", gamma=0.2).fit(X, y)
        cp = compile_predictor(m, budget=32)
        cp2 = pickle.loads(pickle.dumps(cp))
        assert isinstance(cp2, CompiledPredictor)
        assert np.array_equal(cp.predict(Xq), cp2.predict(Xq))

    def test_report_records_timings_and_smae(self, kernel_problem):
        X, y, Xq, yq = kernel_problem
        m = LSSVMRegressor(gam=10.0, kernel="rbf", gamma=0.2).fit(X, y)
        cp = compile_predictor(m, budget=64, tol=5.0, X_val=Xq, y_val=yq)
        rep = cp.report
        assert rep.compile_seconds > 0.0
        assert rep.smae_exact is not None and rep.smae_compiled is not None
        assert rep.gate_delta == pytest.approx(
            rep.smae_compiled - rep.smae_exact
        )
