"""Tests for repro.ml.pipeline.ScaledModel."""

import numpy as np
import pytest

from repro.ml.base import clone
from repro.ml.lasso import Lasso
from repro.ml.linear import LinearRegression
from repro.ml.metrics import mean_absolute_error
from repro.ml.pipeline import ScaledModel
from repro.ml.svr import SVR


@pytest.fixture
def badly_scaled_data():
    """Features spanning 6 orders of magnitude, target offset by 1e4."""
    rng = np.random.default_rng(0)
    X = np.column_stack(
        [rng.normal(scale=1e6, size=200), rng.normal(scale=1e-2, size=200)]
    )
    y = 1e-4 * X[:, 0] + 300.0 * X[:, 1] + 1e4
    return X, y


class TestScaledModel:
    def test_linear_invariant_to_scaling(self, badly_scaled_data):
        # OLS is scale-equivariant: wrapping must not change predictions
        X, y = badly_scaled_data
        plain = LinearRegression().fit(X, y)
        scaled = ScaledModel(LinearRegression()).fit(X, y)
        assert np.allclose(plain.predict(X), scaled.predict(X), rtol=1e-6)

    def test_svr_needs_scaling(self, badly_scaled_data):
        X, y = badly_scaled_data
        scaled = ScaledModel(SVR(C=10.0, epsilon=0.01, kernel="rbf")).fit(X, y)
        # on raw features gamma='scale' collapses; scaled version must work
        assert mean_absolute_error(y, scaled.predict(X)) < 0.1 * y.std()

    def test_predictions_in_target_units(self, badly_scaled_data):
        X, y = badly_scaled_data
        m = ScaledModel(LinearRegression()).fit(X, y)
        pred = m.predict(X)
        assert abs(pred.mean() - y.mean()) < 0.1 * abs(y.mean())

    def test_prototype_not_fitted(self, badly_scaled_data):
        X, y = badly_scaled_data
        proto = LinearRegression()
        ScaledModel(proto).fit(X, y)
        assert proto.coef_ is None

    def test_shared_prototype_safe(self, badly_scaled_data):
        X, y = badly_scaled_data
        proto = Lasso(lam=0.01)
        m1 = ScaledModel(proto).fit(X, y)
        m2 = ScaledModel(proto).fit(X[:100], y[:100])
        # both wrappers hold their own fitted clones
        assert m1.inner_ is not m2.inner_

    def test_clone_works(self):
        m = ScaledModel(Lasso(lam=2.0), scale_y=False)
        c = clone(m)
        assert isinstance(c, ScaledModel)
        assert c.inner.lam == 2.0
        assert c.scale_y is False

    def test_scale_y_off(self, badly_scaled_data):
        X, y = badly_scaled_data
        m = ScaledModel(LinearRegression(), scale_y=False).fit(X, y)
        assert np.isfinite(m.predict(X)).all()

    def test_predict_before_fit(self, badly_scaled_data):
        X, _ = badly_scaled_data
        with pytest.raises(RuntimeError):
            ScaledModel(LinearRegression()).predict(X)

    def test_constant_target(self):
        X = np.arange(20.0)[:, None]
        y = np.full(20, 5.0)
        m = ScaledModel(LinearRegression()).fit(X, y)
        assert np.allclose(m.predict(X), 5.0)
