"""Tests for permutation importance (repro.ml.inspection)."""

import numpy as np
import pytest

from repro.ml.inspection import permutation_importance
from repro.ml.linear import LinearRegression
from repro.ml.tree import REPTreeRegressor


@pytest.fixture
def fitted_problem():
    """y depends strongly on f0, weakly on f1, not at all on f2."""
    rng = np.random.default_rng(0)
    X = rng.normal(size=(400, 3))
    y = 10.0 * X[:, 0] + 1.0 * X[:, 1] + rng.normal(scale=0.05, size=400)
    model = LinearRegression().fit(X, y)
    return model, X, y


class TestPermutationImportance:
    def test_ranks_by_true_influence(self, fitted_problem):
        model, X, y = fitted_problem
        imp = permutation_importance(model, X, y, seed=1)
        assert imp.importances_mean[0] > imp.importances_mean[1] > 0.0
        assert imp.importances_mean[0] > 5.0 * imp.importances_mean[1]

    def test_irrelevant_feature_near_zero(self, fitted_problem):
        model, X, y = fitted_problem
        imp = permutation_importance(model, X, y, seed=1)
        assert abs(imp.importances_mean[2]) < 0.05 * imp.importances_mean[0]

    def test_baseline_is_unpermuted_score(self, fitted_problem):
        model, X, y = fitted_problem
        imp = permutation_importance(model, X, y)
        from repro.ml.metrics import mean_absolute_error

        assert imp.baseline_score == pytest.approx(
            mean_absolute_error(y, model.predict(X))
        )

    def test_input_not_mutated(self, fitted_problem):
        model, X, y = fitted_problem
        before = X.copy()
        permutation_importance(model, X, y)
        assert np.array_equal(X, before)

    def test_ranking_and_top(self, fitted_problem):
        model, X, y = fitted_problem
        imp = permutation_importance(
            model, X, y, feature_names=["a", "b", "c"], seed=1
        )
        assert imp.ranking()[0][0] == "a"
        assert imp.top(2) == ("a", "b")

    def test_default_names(self, fitted_problem):
        model, X, y = fitted_problem
        imp = permutation_importance(model, X, y, seed=1)
        assert imp.ranking()[0][0] == "x[0]"

    def test_deterministic_given_seed(self, fitted_problem):
        model, X, y = fitted_problem
        a = permutation_importance(model, X, y, seed=5).importances_mean
        b = permutation_importance(model, X, y, seed=5).importances_mean
        assert np.array_equal(a, b)

    def test_repeat_std_reported(self, fitted_problem):
        model, X, y = fitted_problem
        imp = permutation_importance(model, X, y, n_repeats=4, seed=1)
        assert imp.importances_std.shape == (3,)
        assert (imp.importances_std >= 0).all()

    def test_validation(self, fitted_problem):
        model, X, y = fitted_problem
        with pytest.raises(ValueError):
            permutation_importance(model, X, y, n_repeats=0)
        with pytest.raises(ValueError):
            permutation_importance(model, X, y, feature_names=["only_one"])

    def test_works_with_trees(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(-2, 2, size=(300, 3))
        y = np.where(X[:, 1] > 0, 5.0, -5.0)
        model = REPTreeRegressor(seed=0).fit(X, y)
        imp = permutation_importance(model, X, y, seed=0)
        assert int(np.argmax(imp.importances_mean)) == 1
