"""Tests for GridSearchCV (repro.ml.model_selection)."""

import numpy as np
import pytest

from repro.ml.lasso import Lasso
from repro.ml.linear import RidgeRegression
from repro.ml.model_selection import GridSearchCV, KFold


class TestGridSearchCV:
    def test_explores_full_grid(self, linear_data):
        X, y = linear_data
        search = GridSearchCV(
            Lasso(), {"lam": [0.01, 1.0], "max_iter": [100, 500]}, cv=KFold(3)
        )
        result = search.fit(X, y)
        assert len(result.params) == 4
        assert {frozenset(p.items()) for p in result.params} == {
            frozenset({("lam", 0.01), ("max_iter", 100)}),
            frozenset({("lam", 0.01), ("max_iter", 500)}),
            frozenset({("lam", 1.0), ("max_iter", 100)}),
            frozenset({("lam", 1.0), ("max_iter", 500)}),
        }

    def test_picks_lowest_mean_score(self, linear_data):
        X, y = linear_data
        search = GridSearchCV(Lasso(), {"lam": [0.001, 1e6]}, cv=KFold(3))
        result = search.fit(X, y)
        # lam=1e6 collapses to the mean predictor: clearly worse
        assert result.best_params == {"lam": 0.001}
        means = [r.mean for r in result.results]
        assert result.best_score == min(means)

    def test_best_on_regularization_strength(self):
        # noisy, collinear design: some ridge regularization must win over
        # (near-)zero regularization on held-out folds
        rng = np.random.default_rng(0)
        x = rng.normal(size=80)
        X = np.column_stack([x, x + rng.normal(scale=1e-8, size=80)])
        y = x + rng.normal(scale=0.5, size=80)
        search = GridSearchCV(
            RidgeRegression(), {"alpha": [1e-12, 1.0, 10.0]}, cv=KFold(4)
        )
        result = search.fit(X, y)
        assert result.best_params["alpha"] >= 1.0

    def test_prototype_untouched(self, linear_data):
        X, y = linear_data
        proto = Lasso(lam=123.0)
        GridSearchCV(proto, {"lam": [0.1]}).fit(X, y)
        assert proto.lam == 123.0
        assert proto.coef_ is None

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            GridSearchCV(Lasso(), {})
        with pytest.raises(ValueError):
            GridSearchCV(Lasso(), {"lam": []})

    def test_custom_scorer(self, linear_data):
        from repro.ml.metrics import root_mean_squared_error

        X, y = linear_data
        result = GridSearchCV(
            Lasso(), {"lam": [0.01, 100.0]}, scorer=root_mean_squared_error
        ).fit(X, y)
        assert result.best_params == {"lam": 0.01}
