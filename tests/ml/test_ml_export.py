"""Tests for tree text export (repro.ml.tree.export)."""

import numpy as np
import pytest

from repro.ml.tree import M5PRegressor, REPTreeRegressor, export_text


@pytest.fixture
def step_data():
    X = np.arange(100.0)[:, None]
    y = np.where(X[:, 0] < 50, 1.0, 9.0)
    return X, y


class TestExportREPTree:
    def test_renders_splits_and_leaves(self, step_data):
        X, y = step_data
        m = REPTreeRegressor(prune=False, seed=0).fit(X, y)
        text = export_text(m)
        assert "x[0] <=" in text
        assert "value =" in text
        assert "(n=" in text

    def test_feature_names_used(self, step_data):
        X, y = step_data
        m = REPTreeRegressor(prune=False, seed=0).fit(X, y)
        text = export_text(m, feature_names=["mem_used"])
        assert "mem_used <=" in text
        assert "x[0]" not in text

    def test_leaf_count_matches(self, nonlinear_data):
        X, y = nonlinear_data
        m = REPTreeRegressor(seed=0).fit(X, y)
        text = export_text(m)
        assert text.count("value =") == m.n_leaves_

    def test_single_leaf_tree(self):
        X = np.arange(10.0)[:, None]
        y = np.full(10, 2.0)
        m = REPTreeRegressor(seed=0).fit(X, y)
        text = export_text(m)
        assert text.strip().startswith("value = 2")

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            export_text(REPTreeRegressor())


class TestExportM5P:
    def test_renders_linear_models(self, nonlinear_data):
        X, y = nonlinear_data
        m = M5PRegressor().fit(X, y)
        text = export_text(m)
        assert "LM:" in text

    def test_internal_models_optional(self, nonlinear_data):
        X, y = nonlinear_data
        m = M5PRegressor().fit(X, y)
        if m.n_leaves_ > 1:
            plain = export_text(m)
            verbose = export_text(m, show_internal_models=True)
            assert len(verbose) >= len(plain)
            assert "[LM:" in verbose

    def test_names_in_models(self, nonlinear_data):
        X, y = nonlinear_data
        names = ["alpha", "beta", "gamma"]
        m = M5PRegressor().fit(X, y)
        text = export_text(m, feature_names=names)
        assert any(n in text for n in names)


class TestIndentation:
    def test_depth_reflected_in_indent(self, step_data):
        X, y = step_data
        # force depth >= 2 with a 4-level step function
        y = (X[:, 0] // 25).astype(float)
        m = REPTreeRegressor(prune=False, seed=0).fit(X, y)
        text = export_text(m)
        assert "|   " in text
