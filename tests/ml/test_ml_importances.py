"""Tests for gain-based tree feature importances."""

import numpy as np
import pytest

from repro.ml.tree import M5PRegressor, REPTreeRegressor


@pytest.fixture
def signal_on_feature_1():
    rng = np.random.default_rng(0)
    X = rng.uniform(-2, 2, size=(400, 4))
    y = np.where(X[:, 1] > 0, 10.0, -10.0) + rng.normal(scale=0.2, size=400)
    return X, y


class TestREPTreeImportances:
    def test_signal_feature_dominates(self, signal_on_feature_1):
        X, y = signal_on_feature_1
        m = REPTreeRegressor(seed=0).fit(X, y)
        imp = m.feature_importances_
        assert int(np.argmax(imp)) == 1
        assert imp[1] > 0.8

    def test_normalized(self, signal_on_feature_1):
        X, y = signal_on_feature_1
        m = REPTreeRegressor(seed=0).fit(X, y)
        assert m.feature_importances_.sum() == pytest.approx(1.0)
        assert (m.feature_importances_ >= 0).all()

    def test_stump_all_zero(self):
        X = np.arange(20.0)[:, None]
        y = np.full(20, 3.0)  # constant target -> no splits
        m = REPTreeRegressor(seed=0).fit(X, y)
        assert np.array_equal(m.feature_importances_, np.zeros(1))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            REPTreeRegressor().feature_importances_

    def test_pruned_nodes_excluded(self, signal_on_feature_1):
        # pruning collapses subtrees; their gains must not leak into the
        # importances (make_leaf resets gain)
        X, y = signal_on_feature_1
        rng = np.random.default_rng(1)
        y_noisy = y + rng.normal(scale=5.0, size=y.shape)
        m = REPTreeRegressor(prune=True, seed=0).fit(X, y_noisy)
        n_internal = sum(1 for n in m.root_.iter_nodes() if not n.is_leaf)
        nonzero_gains = sum(
            1 for n in m.root_.iter_nodes() if n.gain > 0 and not n.is_leaf
        )
        assert nonzero_gains == n_internal


class TestM5PImportances:
    def test_signal_feature_dominates(self, signal_on_feature_1):
        X, y = signal_on_feature_1
        m = M5PRegressor().fit(X, y)
        imp = m.feature_importances_
        assert int(np.argmax(imp)) == 1

    def test_normalized_or_zero(self, signal_on_feature_1):
        X, y = signal_on_feature_1
        m = M5PRegressor().fit(X, y)
        total = m.feature_importances_.sum()
        assert total == pytest.approx(1.0) or total == 0.0
