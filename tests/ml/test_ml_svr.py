"""Tests for repro.ml.svr (SMO epsilon-SVR)."""

import numpy as np
import pytest

from repro.ml.metrics import mean_absolute_error
from repro.ml.svr import SVR


class TestSVRLinearKernel:
    def test_fits_linear_function(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(120, 3))
        y = 2.0 * X[:, 0] - X[:, 1] + 0.5
        m = SVR(C=10.0, epsilon=0.01, kernel="linear").fit(X, y)
        assert mean_absolute_error(y, m.predict(X)) < 0.05

    def test_intercept_learned(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(80, 2))
        y = X[:, 0] + 100.0  # large offset must land in the bias
        m = SVR(C=10.0, epsilon=0.01, kernel="linear").fit(X, y)
        assert mean_absolute_error(y, m.predict(X)) < 0.1


class TestSVRRBF:
    def test_fits_nonlinear_function(self, nonlinear_data):
        X, y = nonlinear_data
        m = SVR(C=50.0, epsilon=0.05, kernel="rbf", gamma=1.0).fit(X, y)
        assert mean_absolute_error(y, m.predict(X)) < 0.8

    def test_beats_linear_model_on_nonlinear_data(self, nonlinear_data):
        from repro.ml.linear import LinearRegression

        X, y = nonlinear_data
        rbf = SVR(C=50.0, epsilon=0.05, kernel="rbf", gamma=1.0).fit(X, y)
        lin = LinearRegression().fit(X, y)
        assert mean_absolute_error(y, rbf.predict(X)) < mean_absolute_error(
            y, lin.predict(X)
        )


class TestSVRMechanics:
    def test_epsilon_tube_limits_support_vectors(self):
        # with a wide tube around a flat function, few/no SVs are needed
        rng = np.random.default_rng(2)
        X = rng.normal(size=(100, 2))
        y = 0.01 * X[:, 0]
        m = SVR(C=1.0, epsilon=1.0, kernel="rbf").fit(X, y)
        assert m.support_.size == 0
        # prediction falls back to the bias
        assert np.allclose(m.predict(X), m.intercept_)

    def test_support_vector_count_grows_with_smaller_epsilon(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(150, 2))
        y = np.sin(X[:, 0]) + rng.normal(scale=0.05, size=150)
        wide = SVR(C=10.0, epsilon=0.5, kernel="rbf").fit(X, y)
        narrow = SVR(C=10.0, epsilon=0.01, kernel="rbf").fit(X, y)
        assert narrow.support_.size > wide.support_.size

    def test_dual_coefficients_bounded_by_C(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(80, 2))
        y = X[:, 0] + rng.normal(scale=0.3, size=80)
        C = 0.7
        m = SVR(C=C, epsilon=0.05, kernel="rbf").fit(X, y)
        assert (np.abs(m.dual_coef_) <= C + 1e-9).all()

    def test_dual_constraint_sums_to_zero(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(60, 2))
        y = X[:, 0] ** 2
        m = SVR(C=5.0, epsilon=0.05, kernel="rbf").fit(X, y)
        assert m.dual_coef_.sum() == pytest.approx(0.0, abs=1e-8)

    def test_max_iter_cap_respected(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(100, 2))
        y = rng.normal(size=100)
        m = SVR(C=100.0, epsilon=0.0001, kernel="rbf", max_iter=50).fit(X, y)
        assert m.n_iter_ <= 50

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SVR(C=0.0)
        with pytest.raises(ValueError):
            SVR(epsilon=-0.1)

    def test_small_kernel_cache_same_answer(self):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(60, 2))
        y = np.cos(X[:, 0])
        big = SVR(C=5.0, epsilon=0.05, kernel="rbf", cache_columns=10_000).fit(X, y)
        tiny = SVR(C=5.0, epsilon=0.05, kernel="rbf", cache_columns=2).fit(X, y)
        assert np.allclose(big.predict(X), tiny.predict(X), atol=1e-6)

    def test_duplicate_points_handled(self):
        X = np.repeat(np.arange(5.0)[:, None], 4, axis=0)
        y = np.repeat(np.arange(5.0), 4)
        m = SVR(C=10.0, epsilon=0.01, kernel="rbf", gamma=0.5).fit(X, y)
        assert mean_absolute_error(y, m.predict(X)) < 0.5

    def test_shrinking_agrees_with_reference_quality(self):
        # shrinking is a heuristic: the final model must still satisfy the
        # global KKT gap, i.e. be as good as an unshrunk reference fit
        rng = np.random.default_rng(8)
        X = rng.normal(size=(120, 3))
        y = np.sin(X[:, 0]) + 0.5 * X[:, 1]
        m = SVR(C=10.0, epsilon=0.05, kernel="rbf", gamma=0.5).fit(X, y)
        assert mean_absolute_error(y, m.predict(X)) < 0.12


class TestNormCachePredict:
    """The RBF predict fast path (cached support-vector norms)."""

    def _fit(self):
        rng = np.random.default_rng(11)
        X = rng.normal(size=(80, 3))
        y = np.sin(X[:, 0]) + 0.3 * X[:, 1]
        return SVR(C=10.0, epsilon=0.05, kernel="rbf", gamma=0.5).fit(X, y), X

    def test_cached_norms_populated_for_rbf_only(self):
        m, _ = self._fit()
        assert m._sv_sq_norms_ is not None
        assert m._sv_sq_norms_.shape == (m.support_vectors_.shape[0],)
        rng = np.random.default_rng(12)
        X = rng.normal(size=(40, 2))
        lin = SVR(C=10.0, epsilon=0.05, kernel="linear").fit(X, X[:, 0])
        assert lin._sv_sq_norms_ is None

    def test_fast_path_bit_identical_to_generic_kernel(self):
        m, X = self._fit()
        fast = m.predict(X)
        generic = m._kernel(X, m.support_vectors_) @ m.dual_coef_ + m.intercept_
        assert np.array_equal(fast, generic)

    def test_legacy_pickle_without_cache_still_predicts(self):
        # models pickled before the cache existed lack the attribute:
        # predict must fall through to the generic kernel, same answer
        m, X = self._fit()
        expected = m.predict(X)
        del m._sv_sq_norms_
        assert np.array_equal(m.predict(X), expected)

    def test_state_round_trip_keeps_fast_path(self):
        # simulate model persistence: a state-restored clone must keep
        # the cached norms and predict identically through the fast path
        m, X = self._fit()
        clone = SVR.__new__(SVR)
        clone.__dict__.update(m.__dict__)
        assert clone._sv_sq_norms_ is not None
        assert np.array_equal(clone.predict(X), m.predict(X))
