"""Tests for repro.ml.model_selection."""

import numpy as np
import pytest

from repro.ml.linear import LinearRegression
from repro.ml.model_selection import KFold, cross_validate, train_test_split


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(40.0).reshape(20, 2)
        y = np.arange(20.0)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.25, seed=0)
        assert Xte.shape[0] == 5
        assert Xtr.shape[0] == 15
        assert ytr.shape[0] == 15

    def test_partition_is_exact(self):
        X = np.arange(30.0).reshape(15, 2)
        y = np.arange(15.0)
        Xtr, Xte, ytr, yte = train_test_split(X, y, seed=1)
        combined = np.sort(np.concatenate([ytr, yte]))
        assert np.array_equal(combined, y)

    def test_rows_stay_aligned(self):
        X = np.arange(20.0).reshape(10, 2)
        y = X[:, 0] * 10.0
        Xtr, Xte, ytr, yte = train_test_split(X, y, seed=2)
        assert np.allclose(ytr, Xtr[:, 0] * 10.0)
        assert np.allclose(yte, Xte[:, 0] * 10.0)

    def test_no_shuffle_is_temporal(self):
        X = np.arange(10.0)[:, None]
        y = np.arange(10.0)
        _, Xte, _, yte = train_test_split(X, y, test_size=0.3, shuffle=False)
        assert np.array_equal(yte, [7.0, 8.0, 9.0])

    def test_deterministic_with_seed(self):
        X = np.arange(20.0)[:, None]
        y = np.arange(20.0)
        _, _, _, a = train_test_split(X, y, seed=7)
        _, _, _, b = train_test_split(X, y, seed=7)
        assert np.array_equal(a, b)

    def test_invalid_test_size(self):
        X = np.zeros((10, 1))
        y = np.zeros(10)
        for bad in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                train_test_split(X, y, test_size=bad)

    def test_at_least_one_each_side(self):
        X = np.zeros((3, 1))
        y = np.zeros(3)
        Xtr, Xte, *_ = train_test_split(X, y, test_size=0.01)
        assert Xte.shape[0] >= 1 and Xtr.shape[0] >= 1

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((1, 1)), np.zeros(1))


class TestKFold:
    def test_covers_all_indices_once(self):
        kf = KFold(n_splits=4)
        seen = np.concatenate([te for _, te in kf.split(22)])
        assert np.array_equal(np.sort(seen), np.arange(22))

    def test_train_test_disjoint(self):
        for tr, te in KFold(n_splits=3).split(10):
            assert not set(tr) & set(te)

    def test_fold_sizes_balanced(self):
        sizes = [len(te) for _, te in KFold(n_splits=4).split(10)]
        assert sizes == [3, 3, 2, 2]

    def test_shuffle_changes_order(self):
        plain = [te.tolist() for _, te in KFold(3).split(9)]
        shuffled = [te.tolist() for _, te in KFold(3, shuffle=True, seed=0).split(9)]
        assert plain != shuffled

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(3))

    def test_n_splits_validation(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)


class TestCrossValidate:
    def test_scores_per_fold(self, linear_data):
        X, y = linear_data
        res = cross_validate(LinearRegression(), X, y, cv=KFold(5))
        assert len(res.scores) == 5
        assert res.mean < 0.1  # near-noiseless linear problem

    def test_custom_scorer(self, linear_data):
        X, y = linear_data
        from repro.ml.metrics import max_absolute_error

        res = cross_validate(
            LinearRegression(), X, y, cv=KFold(3), scorer=max_absolute_error
        )
        assert all(s >= 0 for s in res.scores)

    def test_does_not_mutate_estimator(self, linear_data):
        X, y = linear_data
        proto = LinearRegression()
        cross_validate(proto, X, y, cv=KFold(3))
        assert proto.coef_ is None  # prototype never fitted

    def test_std_property(self, linear_data):
        X, y = linear_data
        res = cross_validate(LinearRegression(), X, y, cv=KFold(4))
        assert res.std >= 0.0
