"""Tests for REP-Tree and M5P (repro.ml.tree)."""

import numpy as np
import pytest

from repro.ml.metrics import mean_absolute_error
from repro.ml.tree import M5PRegressor, REPTreeRegressor
from repro.ml.tree._node import Node, predict_means


class TestNode:
    def test_leaf_flag(self):
        n = Node(value=1.0, n_samples=3)
        assert n.is_leaf
        n.left = Node(0.0, 1)
        n.right = Node(2.0, 2)
        n.feature = 0
        assert not n.is_leaf

    def test_make_leaf_collapses(self):
        n = Node(1.0, 4)
        n.feature, n.threshold = 0, 0.5
        n.left, n.right = Node(0.0, 2), Node(2.0, 2)
        n.make_leaf()
        assert n.is_leaf
        assert n.feature == -1

    def test_route_indices(self):
        n = Node(0.0, 4)
        n.feature, n.threshold = 0, 2.5
        X = np.array([[1.0], [2.0], [3.0], [4.0]])
        left, right = n.route_indices(X, np.arange(4))
        assert left.tolist() == [0, 1]
        assert right.tolist() == [2, 3]

    def test_counts_and_depth(self):
        root = Node(0.0, 4)
        root.feature, root.threshold = 0, 0.0
        root.left = Node(-1.0, 2)
        root.right = Node(1.0, 2)
        assert root.n_nodes() == 3
        assert root.n_leaves() == 2
        assert root.depth() == 1
        assert root.left.depth() == 0

    def test_predict_means_routes_correctly(self):
        root = Node(0.0, 4)
        root.feature, root.threshold = 0, 0.0
        root.left = Node(-5.0, 2)
        root.right = Node(5.0, 2)
        X = np.array([[-1.0], [1.0], [-0.5], [2.0]])
        assert predict_means(root, X).tolist() == [-5.0, 5.0, -5.0, 5.0]


class TestREPTree:
    def test_fits_step_function_exactly_unpruned(self):
        X = np.arange(100.0)[:, None]
        y = np.where(X[:, 0] < 50, 1.0, 9.0)
        m = REPTreeRegressor(prune=False, seed=0).fit(X, y)
        assert mean_absolute_error(y, m.predict(X)) < 1e-12

    def test_fits_step_function_approximately_pruned(self):
        # with a grow/prune holdout the step edge may land one sample off
        X = np.arange(100.0)[:, None]
        y = np.where(X[:, 0] < 50, 1.0, 9.0)
        m = REPTreeRegressor(prune=True, seed=0).fit(X, y)
        assert mean_absolute_error(y, m.predict(X)) < 0.5

    def test_beats_mean_on_nonlinear(self, nonlinear_data):
        X, y = nonlinear_data
        m = REPTreeRegressor(seed=0).fit(X, y)
        mae = mean_absolute_error(y, m.predict(X))
        mean_mae = np.abs(y - y.mean()).mean()
        assert mae < 0.3 * mean_mae

    def test_max_depth_enforced(self, nonlinear_data):
        X, y = nonlinear_data
        m = REPTreeRegressor(max_depth=2, seed=0).fit(X, y)
        assert m.depth_ <= 2

    def test_pruning_reduces_leaves(self, nonlinear_data):
        X, y = nonlinear_data
        rng = np.random.default_rng(0)
        y_noisy = y + rng.normal(scale=2.0, size=y.shape)
        pruned = REPTreeRegressor(prune=True, seed=0).fit(X, y_noisy)
        unpruned = REPTreeRegressor(prune=False, seed=0).fit(X, y_noisy)
        assert pruned.n_leaves_ < unpruned.n_leaves_

    def test_pruning_helps_generalization_under_noise(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-2, 2, size=(300, 2))
        f = np.where(X[:, 0] > 0, 3.0, -3.0)
        y = f + rng.normal(scale=2.0, size=300)
        X_test = rng.uniform(-2, 2, size=(200, 2))
        f_test = np.where(X_test[:, 0] > 0, 3.0, -3.0)
        pruned = REPTreeRegressor(prune=True, seed=0).fit(X, y)
        unpruned = REPTreeRegressor(prune=False, seed=0).fit(X, y)
        assert mean_absolute_error(f_test, pruned.predict(X_test)) <= mean_absolute_error(
            f_test, unpruned.predict(X_test)
        )

    def test_constant_target_single_leaf(self):
        X = np.arange(20.0)[:, None]
        y = np.full(20, 4.0)
        m = REPTreeRegressor(seed=0).fit(X, y)
        assert m.n_leaves_ == 1
        assert np.allclose(m.predict(X), 4.0)

    def test_min_samples_leaf(self, nonlinear_data):
        X, y = nonlinear_data
        m = REPTreeRegressor(min_samples_leaf=30, prune=False, seed=0).fit(X, y)
        for node in m.root_.iter_nodes():
            if node.is_leaf:
                assert node.n_samples >= 30

    def test_deterministic_given_seed(self, nonlinear_data):
        X, y = nonlinear_data
        p1 = REPTreeRegressor(seed=5).fit(X, y).predict(X)
        p2 = REPTreeRegressor(seed=5).fit(X, y).predict(X)
        assert np.array_equal(p1, p2)

    def test_backfitting_uses_all_data(self):
        # after fit, the root value must equal the FULL data mean (grow +
        # prune folds), proving backfitting happened
        rng = np.random.default_rng(2)
        X = rng.normal(size=(90, 2))
        y = rng.normal(size=90) + 10.0
        m = REPTreeRegressor(prune=True, seed=0).fit(X, y)
        assert m.root_.value == pytest.approx(y.mean())

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            REPTreeRegressor(min_samples_leaf=0)
        with pytest.raises(ValueError):
            REPTreeRegressor(n_folds=1)

    def test_tiny_dataset(self):
        X = np.array([[1.0], [2.0]])
        y = np.array([1.0, 2.0])
        m = REPTreeRegressor(seed=0).fit(X, y)
        assert np.isfinite(m.predict(X)).all()


class TestM5P:
    def test_fits_piecewise_linear_exactly(self):
        # y = x for x<0, y = 3x for x>=0: two linear leaves suffice
        rng = np.random.default_rng(0)
        x = rng.uniform(-3, 3, size=300)
        y = np.where(x < 0, x, 3.0 * x)
        X = x[:, None]
        m = M5PRegressor(smoothing=False).fit(X, y)
        assert mean_absolute_error(y, m.predict(X)) < 0.05

    def test_beats_reptree_on_smooth_function(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-2, 2, size=(400, 2))
        y = 3.0 * X[:, 0] + 2.0 * X[:, 1]
        m5p = M5PRegressor().fit(X, y)
        rep = REPTreeRegressor(seed=0).fit(X, y)
        assert mean_absolute_error(y, m5p.predict(X)) < mean_absolute_error(
            y, rep.predict(X)
        )

    def test_pruned_smaller_than_unpruned(self, nonlinear_data):
        X, y = nonlinear_data
        rng = np.random.default_rng(2)
        y_noisy = y + rng.normal(scale=1.0, size=y.shape)
        pruned = M5PRegressor(prune=True).fit(X, y_noisy)
        unpruned = M5PRegressor(prune=False).fit(X, y_noisy)
        assert pruned.n_leaves_ <= unpruned.n_leaves_

    def test_linear_function_collapses_to_single_model(self):
        # a purely linear target should prune to (nearly) the root model;
        # the leaf-model ridge shrinkage (alpha=1e-2 on standardized
        # columns) leaves a small but non-zero residual
        rng = np.random.default_rng(3)
        X = rng.normal(size=(300, 3))
        y = X @ np.array([1.0, 2.0, -1.0])
        m = M5PRegressor().fit(X, y)
        assert m.n_leaves_ <= 3
        assert mean_absolute_error(y, m.predict(X)) < 0.005 * y.std()

    def test_smoothing_changes_predictions(self, nonlinear_data):
        X, y = nonlinear_data
        smooth = M5PRegressor(smoothing=True).fit(X, y)
        raw = M5PRegressor(smoothing=False).fit(X, y)
        if smooth.n_leaves_ > 1:
            assert not np.allclose(smooth.predict(X), raw.predict(X))

    def test_constant_target(self):
        X = np.arange(30.0)[:, None]
        y = np.full(30, -2.0)
        m = M5PRegressor().fit(X, y)
        assert np.allclose(m.predict(X), -2.0, atol=1e-9)

    def test_every_node_has_model(self, nonlinear_data):
        X, y = nonlinear_data
        m = M5PRegressor().fit(X, y)
        for node in m.root_.iter_nodes():
            assert node.model is not None

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            M5PRegressor(min_samples_split=1)

    def test_deterministic(self, nonlinear_data):
        X, y = nonlinear_data
        p1 = M5PRegressor().fit(X, y).predict(X)
        p2 = M5PRegressor().fit(X, y).predict(X)
        assert np.array_equal(p1, p2)

    def test_tiny_dataset(self):
        X = np.array([[1.0], [2.0], [3.0]])
        y = np.array([1.0, 2.0, 3.0])
        m = M5PRegressor().fit(X, y)
        assert np.isfinite(m.predict(X)).all()
