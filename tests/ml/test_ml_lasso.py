"""Tests for repro.ml.lasso (coordinate descent, paper Eq. 2)."""

import numpy as np
import pytest

from repro.ml.lasso import Lasso, lasso_path
from repro.ml.linear import LinearRegression


class TestLassoFit:
    def test_zero_lambda_matches_ols(self, linear_data):
        X, y = linear_data
        lasso = Lasso(lam=0.0, max_iter=5000, tol=1e-12).fit(X, y)
        ols = LinearRegression().fit(X, y)
        assert np.allclose(lasso.coef_, ols.coef_, atol=1e-6)
        assert lasso.intercept_ == pytest.approx(ols.intercept_, abs=1e-6)

    def test_huge_lambda_zeroes_everything(self, linear_data):
        X, y = linear_data
        lasso = Lasso(lam=1e9).fit(X, y)
        assert np.count_nonzero(lasso.coef_) == 0
        # intercept falls back to the target mean
        assert lasso.intercept_ == pytest.approx(y.mean())

    def test_sparsity_increases_with_lambda(self, linear_data):
        X, y = linear_data
        nnz = [
            np.count_nonzero(Lasso(lam=lam).fit(X, y).coef_)
            for lam in (0.001, 0.1, 10.0, 1000.0)
        ]
        assert nnz == sorted(nnz, reverse=True)

    def test_irrelevant_features_zeroed_first(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 6))
        y = 5.0 * X[:, 0] + rng.normal(scale=0.01, size=200)
        m = Lasso(lam=0.5).fit(X, y)
        assert m.coef_[0] != 0.0
        assert np.count_nonzero(m.coef_[1:]) == 0

    def test_selected_features_property(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 4))
        y = 3.0 * X[:, 2] + rng.normal(scale=0.01, size=100)
        m = Lasso(lam=0.5).fit(X, y)
        assert m.selected_features_.tolist() == [2]

    def test_negative_lambda_rejected(self):
        with pytest.raises(ValueError):
            Lasso(lam=-1.0)

    def test_objective_never_worse_than_zero_vector(self, linear_data):
        X, y = linear_data
        lam = 1.0
        m = Lasso(lam=lam).fit(X, y)
        yc = y - y.mean()
        Xc = X - X.mean(axis=0)
        n = X.shape[0]

        def objective(beta):
            r = yc - Xc @ beta
            return (r @ r) / n + lam * np.abs(beta).sum()

        assert objective(m.coef_) <= objective(np.zeros(X.shape[1])) + 1e-9

    def test_normalize_equivalence_of_predictions(self, linear_data):
        # normalize=True must still report coefficients on the raw scale
        X, y = linear_data
        m = Lasso(lam=0.0, normalize=True, max_iter=5000, tol=1e-12).fit(X, y)
        ols = LinearRegression().fit(X, y)
        assert np.allclose(m.predict(X), ols.predict(X), atol=1e-5)

    def test_constant_feature_gets_zero_weight(self):
        rng = np.random.default_rng(2)
        X = np.column_stack([np.full(80, 3.0), rng.normal(size=80)])
        y = 2.0 * X[:, 1]
        m = Lasso(lam=0.001).fit(X, y)
        assert m.coef_[0] == 0.0

    def test_convergence_reported(self, linear_data):
        X, y = linear_data
        m = Lasso(lam=0.1).fit(X, y)
        assert 1 <= m.n_iter_ <= m.max_iter


class TestLassoPath:
    def test_shape(self, linear_data):
        X, y = linear_data
        lams = np.logspace(-3, 3, 7)
        coefs = lasso_path(X, y, lams)
        assert coefs.shape == (7, X.shape[1])

    def test_matches_individual_fits(self, linear_data):
        X, y = linear_data
        lams = np.array([0.01, 1.0, 100.0])
        coefs = lasso_path(X, y, lams, max_iter=5000, tol=1e-12)
        for lam, path_coef in zip(lams, coefs):
            solo = Lasso(lam=lam, max_iter=5000, tol=1e-12).fit(X, y)
            assert np.allclose(path_coef, solo.coef_, atol=1e-6)

    def test_order_independent(self, linear_data):
        X, y = linear_data
        asc = lasso_path(X, y, np.array([0.1, 1.0, 10.0]))
        desc = lasso_path(X, y, np.array([10.0, 1.0, 0.1]))
        assert np.allclose(asc, desc[::-1], atol=1e-8)

    def test_sparsity_monotone_along_path(self, linear_data):
        X, y = linear_data
        lams = np.logspace(-3, 6, 10)
        coefs = lasso_path(X, y, lams)
        nnz = (np.abs(coefs) > 0).sum(axis=1)
        assert (np.diff(nnz) <= 0).all()

    def test_negative_lambda_rejected(self, linear_data):
        X, y = linear_data
        with pytest.raises(ValueError):
            lasso_path(X, y, np.array([1.0, -2.0]))
