"""Tests for repro.ml.metrics (the paper's Sec. III-D metric set)."""

import numpy as np
import pytest

from repro.ml.metrics import (
    max_absolute_error,
    mean_absolute_error,
    r2_score,
    relative_absolute_error,
    root_mean_squared_error,
    soft_mean_absolute_error,
)


class TestMAE:
    def test_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert mean_absolute_error(y, y) == 0.0

    def test_known_value(self):
        assert mean_absolute_error(np.array([0.0, 0.0]), np.array([1.0, 3.0])) == 2.0

    def test_symmetric_in_sign_of_error(self):
        y = np.zeros(4)
        up = mean_absolute_error(y, np.full(4, 2.0))
        down = mean_absolute_error(y, np.full(4, -2.0))
        assert up == down

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            mean_absolute_error(np.zeros(3), np.zeros(4))


class TestRAE:
    def test_mean_predictor_is_one(self):
        # Predicting |y|'s mean everywhere gives RAE == 1 by Eq. 6/7.
        y = np.array([1.0, 2.0, 3.0, 6.0])
        pred = np.full(4, np.abs(y).mean())
        assert relative_absolute_error(y, pred) == pytest.approx(1.0)

    def test_perfect_is_zero(self):
        y = np.array([1.0, 2.0, 3.0])
        assert relative_absolute_error(y, y) == 0.0

    def test_degenerate_target_inf(self):
        y = np.full(3, 5.0)  # baseline error is zero
        assert relative_absolute_error(y, y + 1.0) == np.inf

    def test_degenerate_target_perfect(self):
        y = np.full(3, 5.0)
        assert relative_absolute_error(y, y) == 0.0


class TestMaxAE:
    def test_known_value(self):
        y = np.array([0.0, 0.0, 0.0])
        pred = np.array([1.0, -4.0, 2.0])
        assert max_absolute_error(y, pred) == 4.0

    def test_perfect(self):
        y = np.arange(5.0)
        assert max_absolute_error(y, y) == 0.0


class TestSMAE:
    def test_errors_below_threshold_zeroed(self):
        y = np.zeros(4)
        pred = np.array([0.5, 1.5, 0.9, 2.0])
        # threshold 1.0: only 1.5 and 2.0 count.
        assert soft_mean_absolute_error(y, pred, 1.0) == pytest.approx(3.5 / 4)

    def test_threshold_zero_equals_mae(self):
        rng = np.random.default_rng(0)
        y = rng.normal(size=50)
        pred = rng.normal(size=50)
        assert soft_mean_absolute_error(y, pred, 0.0) == pytest.approx(
            mean_absolute_error(y, pred)
        )

    def test_error_exactly_at_threshold_counts(self):
        # "less than a given threshold" — equality is NOT forgiven.
        y = np.zeros(1)
        pred = np.array([1.0])
        assert soft_mean_absolute_error(y, pred, 1.0) == 1.0

    def test_all_within_threshold(self):
        y = np.zeros(3)
        pred = np.array([0.1, -0.2, 0.05])
        assert soft_mean_absolute_error(y, pred, 0.5) == 0.0

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            soft_mean_absolute_error(np.zeros(2), np.zeros(2), -1.0)

    def test_smae_never_exceeds_mae(self):
        rng = np.random.default_rng(1)
        y = rng.normal(size=100)
        pred = rng.normal(size=100)
        mae = mean_absolute_error(y, pred)
        for thr in (0.1, 0.5, 1.0, 5.0):
            assert soft_mean_absolute_error(y, pred, thr) <= mae

    def test_monotone_in_threshold(self):
        rng = np.random.default_rng(2)
        y = rng.normal(size=100)
        pred = rng.normal(size=100)
        values = [
            soft_mean_absolute_error(y, pred, t) for t in (0.0, 0.2, 0.5, 1.0, 3.0)
        ]
        assert values == sorted(values, reverse=True)


class TestRMSE:
    def test_known_value(self):
        y = np.zeros(2)
        pred = np.array([3.0, 4.0])
        assert root_mean_squared_error(y, pred) == pytest.approx(np.sqrt(12.5))

    def test_rmse_at_least_mae(self):
        rng = np.random.default_rng(3)
        y = rng.normal(size=60)
        pred = rng.normal(size=60)
        assert root_mean_squared_error(y, pred) >= mean_absolute_error(y, pred)


class TestR2:
    def test_perfect(self):
        y = np.arange(10.0)
        assert r2_score(y, y) == pytest.approx(1.0)

    def test_mean_predictor_zero(self):
        y = np.arange(10.0)
        assert r2_score(y, np.full(10, y.mean())) == pytest.approx(0.0)

    def test_worse_than_mean_negative(self):
        y = np.arange(10.0)
        assert r2_score(y, -y) < 0.0

    def test_constant_target(self):
        y = np.full(5, 2.0)
        assert r2_score(y, y) == 0.0
        assert r2_score(y, y + 1.0) == float("-inf")
