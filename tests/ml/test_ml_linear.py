"""Tests for repro.ml.linear."""

import numpy as np
import pytest

from repro.ml.linear import LinearRegression, RidgeRegression
from repro.ml.metrics import mean_absolute_error


class TestLinearRegression:
    def test_recovers_coefficients(self, linear_data):
        X, y = linear_data
        m = LinearRegression().fit(X, y)
        assert m.coef_[0] == pytest.approx(3.0, abs=0.02)
        assert m.coef_[1] == pytest.approx(-2.0, abs=0.02)
        assert m.intercept_ == pytest.approx(1.0, abs=0.02)

    def test_exact_on_noiseless(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 3))
        y = X @ np.array([1.0, -2.0, 0.5]) + 4.0
        m = LinearRegression().fit(X, y)
        assert np.allclose(m.predict(X), y, atol=1e-10)

    def test_no_intercept(self):
        X = np.arange(1.0, 11.0)[:, None]
        y = 2.0 * X[:, 0] + 5.0
        m = LinearRegression(fit_intercept=False).fit(X, y)
        assert m.intercept_ == 0.0
        # slope absorbs what it can; prediction at 0 must be 0
        assert m.predict(np.zeros((1, 1)))[0] == 0.0

    def test_rank_deficient_handled(self):
        # duplicated column: lstsq must not blow up
        rng = np.random.default_rng(1)
        x = rng.normal(size=100)
        X = np.column_stack([x, x, rng.normal(size=100)])
        y = 2.0 * x + X[:, 2]
        m = LinearRegression().fit(X, y)
        assert np.allclose(m.predict(X), y, atol=1e-8)

    def test_single_feature(self):
        X = np.arange(10.0)[:, None]
        y = 3.0 * X[:, 0] - 1.0
        m = LinearRegression().fit(X, y)
        assert m.coef_[0] == pytest.approx(3.0)
        assert m.intercept_ == pytest.approx(-1.0)


class TestRidgeRegression:
    def test_matches_ols_at_zero_alpha(self, linear_data):
        X, y = linear_data
        ols = LinearRegression().fit(X, y)
        ridge = RidgeRegression(alpha=0.0).fit(X, y)
        assert np.allclose(ridge.coef_, ols.coef_, atol=1e-8)

    def test_shrinks_with_alpha(self, linear_data):
        X, y = linear_data
        small = RidgeRegression(alpha=0.1).fit(X, y)
        large = RidgeRegression(alpha=1e5).fit(X, y)
        assert np.linalg.norm(large.coef_) < np.linalg.norm(small.coef_)

    def test_huge_alpha_approaches_mean(self, linear_data):
        X, y = linear_data
        m = RidgeRegression(alpha=1e12).fit(X, y)
        assert np.allclose(m.predict(X), y.mean(), atol=0.01)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            RidgeRegression(alpha=-1.0)

    def test_more_features_than_samples(self):
        # the M5P leaf-model case: p > n must stay finite
        rng = np.random.default_rng(2)
        X = rng.normal(size=(5, 12))
        y = rng.normal(size=5)
        m = RidgeRegression(alpha=1e-6).fit(X, y)
        assert np.isfinite(m.predict(X)).all()

    def test_singular_design_zero_alpha(self):
        X = np.ones((10, 2))  # rank 1 after centring: rank 0
        y = np.arange(10.0)
        m = RidgeRegression(alpha=0.0).fit(X, y)
        assert np.isfinite(m.coef_).all()

    def test_better_generalization_on_collinear_noise(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=60)
        X = np.column_stack([x, x + rng.normal(scale=1e-6, size=60)])
        y = x + rng.normal(scale=0.1, size=60)
        Xte = np.column_stack([np.linspace(-2, 2, 20), np.linspace(-2, 2, 20)])
        yte = Xte[:, 0]
        ridge = RidgeRegression(alpha=1.0).fit(X, y)
        assert mean_absolute_error(yte, ridge.predict(Xte)) < 0.5
