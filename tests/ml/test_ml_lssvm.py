"""Tests for repro.ml.lssvm."""

import numpy as np
import pytest

from repro.ml.lssvm import LSSVMRegressor
from repro.ml.metrics import mean_absolute_error


class TestLSSVM:
    def test_fits_linear_function(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 3))
        y = 2.0 * X[:, 0] - X[:, 1] + 0.5
        m = LSSVMRegressor(gam=1e4, kernel="linear").fit(X, y)
        assert mean_absolute_error(y, m.predict(X)) < 0.01

    def test_fits_nonlinear_function(self, nonlinear_data):
        X, y = nonlinear_data
        m = LSSVMRegressor(gam=100.0, kernel="rbf", gamma=1.0).fit(X, y)
        assert mean_absolute_error(y, m.predict(X)) < 1.0

    def test_alpha_is_dense(self):
        # every training point is a "support vector" in LS-SVM
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 2))
        y = np.sin(X[:, 0])
        m = LSSVMRegressor(gam=10.0).fit(X, y)
        assert np.count_nonzero(m.alpha_) == 50

    def test_equality_constraint_holds(self):
        # the first KKT row: sum(alpha) = 0
        rng = np.random.default_rng(2)
        X = rng.normal(size=(40, 2))
        y = X[:, 0] ** 2
        m = LSSVMRegressor(gam=50.0).fit(X, y)
        assert m.alpha_.sum() == pytest.approx(0.0, abs=1e-6)

    def test_kkt_system_satisfied(self):
        # K alpha + 1 b + alpha/gam = y must hold row-wise
        from repro.ml.kernels import rbf_kernel, resolve_gamma

        rng = np.random.default_rng(3)
        X = rng.normal(size=(30, 2))
        y = np.cos(X[:, 0])
        gam = 25.0
        m = LSSVMRegressor(gam=gam, kernel="rbf", gamma=0.5).fit(X, y)
        K = rbf_kernel(X, X, gamma=0.5)
        lhs = K @ m.alpha_ + m.intercept_ + m.alpha_ / gam
        assert np.allclose(lhs, y, atol=1e-6)

    def test_regularization_smooths(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(80, 1))
        y = np.sin(2 * X[:, 0]) + rng.normal(scale=0.3, size=80)
        tight = LSSVMRegressor(gam=1e6, kernel="rbf", gamma=2.0).fit(X, y)
        loose = LSSVMRegressor(gam=0.1, kernel="rbf", gamma=2.0).fit(X, y)
        # the tight fit interpolates noise (lower train error)
        assert mean_absolute_error(y, tight.predict(X)) < mean_absolute_error(
            y, loose.predict(X)
        )

    def test_invalid_gam(self):
        with pytest.raises(ValueError):
            LSSVMRegressor(gam=0.0)

    def test_constant_target(self):
        X = np.arange(20.0)[:, None]
        y = np.full(20, 7.0)
        m = LSSVMRegressor(gam=10.0).fit(X, y)
        assert np.allclose(m.predict(X), 7.0, atol=1e-6)

    def test_deterministic(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(40, 2))
        y = X[:, 0]
        p1 = LSSVMRegressor(gam=10.0).fit(X, y).predict(X)
        p2 = LSSVMRegressor(gam=10.0).fit(X, y).predict(X)
        assert np.array_equal(p1, p2)


class TestNormCachePredict:
    """The RBF predict fast path (cached training-row norms)."""

    def _fit(self):
        rng = np.random.default_rng(11)
        X = rng.normal(size=(60, 2))
        y = np.sin(X[:, 0])
        return LSSVMRegressor(gam=50.0, kernel="rbf", gamma=1.0).fit(X, y), X

    def test_cached_norms_populated_for_rbf_only(self):
        m, X = self._fit()
        assert m._train_sq_norms_ is not None
        assert m._train_sq_norms_.shape == (X.shape[0],)
        lin = LSSVMRegressor(gam=50.0, kernel="linear").fit(X, X[:, 0])
        assert lin._train_sq_norms_ is None

    def test_fast_path_bit_identical_to_generic_kernel(self):
        m, X = self._fit()
        fast = m.predict(X)
        generic = m._kernel(X, m._X_train) @ m.alpha_ + m.intercept_
        assert np.array_equal(fast, generic)

    def test_legacy_pickle_without_cache_still_predicts(self):
        m, X = self._fit()
        expected = m.predict(X)
        del m._train_sq_norms_
        assert np.array_equal(m.predict(X), expected)
