"""Tests for the estimator protocol (repro.ml.base)."""

import numpy as np
import pytest

from repro.ml.base import Regressor, clone
from repro.ml.linear import LinearRegression, RidgeRegression
from repro.ml.lasso import Lasso
from repro.ml.svr import SVR
from repro.ml.lssvm import LSSVMRegressor
from repro.ml.tree import M5PRegressor, REPTreeRegressor

ALL_ESTIMATORS = [
    LinearRegression,
    RidgeRegression,
    Lasso,
    SVR,
    LSSVMRegressor,
    REPTreeRegressor,
    M5PRegressor,
]


class TestParams:
    @pytest.mark.parametrize("cls", ALL_ESTIMATORS)
    def test_get_params_roundtrip(self, cls):
        est = cls()
        params = est.get_params()
        rebuilt = cls(**params)
        assert rebuilt.get_params() == params

    @pytest.mark.parametrize("cls", ALL_ESTIMATORS)
    def test_clone_is_unfitted_copy(self, cls):
        est = cls()
        copy = clone(est)
        assert copy is not est
        assert copy.get_params() == est.get_params()

    def test_set_params_updates(self):
        est = Lasso(lam=1.0)
        est.set_params(lam=5.0)
        assert est.lam == 5.0

    def test_set_params_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            LinearRegression().set_params(bogus=1)

    def test_repr_contains_params(self):
        assert "lam=2.0" in repr(Lasso(lam=2.0))


class TestProtocol:
    @pytest.mark.parametrize("cls", ALL_ESTIMATORS)
    def test_fit_returns_self(self, cls, linear_data):
        X, y = linear_data
        est = cls()
        assert est.fit(X[:80], y[:80]) is est

    @pytest.mark.parametrize("cls", ALL_ESTIMATORS)
    def test_predict_shape(self, cls, linear_data):
        X, y = linear_data
        est = cls().fit(X[:80], y[:80])
        pred = est.predict(X[80:120])
        assert pred.shape == (40,)
        assert np.isfinite(pred).all()

    @pytest.mark.parametrize("cls", ALL_ESTIMATORS)
    def test_predict_before_fit_raises(self, cls, linear_data):
        X, _ = linear_data
        with pytest.raises(RuntimeError):
            cls().predict(X)

    @pytest.mark.parametrize("cls", ALL_ESTIMATORS)
    def test_feature_count_mismatch_raises(self, cls, linear_data):
        X, y = linear_data
        est = cls().fit(X[:80], y[:80])
        with pytest.raises(ValueError):
            est.predict(X[:10, :3])

    @pytest.mark.parametrize("cls", ALL_ESTIMATORS)
    def test_score_is_r2(self, cls, linear_data):
        X, y = linear_data
        est = cls().fit(X[:200], y[:200])
        # every learner should comfortably beat the mean predictor here
        assert est.score(X[200:], y[200:]) > 0.5

    def test_regressor_is_abstract(self):
        with pytest.raises(TypeError):
            Regressor()
