"""Tests for repro.ml.preprocessing."""

import numpy as np
import pytest

from repro.ml.preprocessing import MinMaxScaler, StandardScaler


class TestStandardScaler:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        X = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-12)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-12)

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 3))
        sc = StandardScaler().fit(X)
        assert np.allclose(sc.inverse_transform(sc.transform(X)), X)

    def test_constant_feature_not_divided(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        Z = StandardScaler().fit_transform(X)
        assert np.isfinite(Z).all()
        assert np.allclose(Z[:, 0], 0.0)

    def test_without_mean(self):
        X = np.arange(10.0)[:, None] + 100.0
        Z = StandardScaler(with_mean=False).fit_transform(X)
        assert Z.min() > 0  # not centred

    def test_without_std(self):
        X = np.arange(10.0)[:, None]
        Z = StandardScaler(with_std=False).fit_transform(X)
        assert np.allclose(Z.std(axis=0), X.std(axis=0))

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_feature_count_mismatch(self):
        sc = StandardScaler().fit(np.zeros((5, 3)) + np.arange(3.0))
        with pytest.raises(ValueError, match="features"):
            sc.transform(np.zeros((5, 2)))

    def test_transform_uses_training_stats(self):
        X_train = np.full((10, 1), 4.0) + np.arange(10.0)[:, None]
        sc = StandardScaler().fit(X_train)
        z = sc.transform(np.array([[X_train.mean()]]))
        assert z[0, 0] == pytest.approx(0.0)


class TestMinMaxScaler:
    def test_unit_range(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(100, 3)) * 7.0 + 3.0
        Z = MinMaxScaler().fit_transform(X)
        assert np.allclose(Z.min(axis=0), 0.0)
        assert np.allclose(Z.max(axis=0), 1.0)

    def test_custom_range(self):
        X = np.arange(10.0)[:, None]
        Z = MinMaxScaler(feature_range=(-1.0, 1.0)).fit_transform(X)
        assert Z.min() == pytest.approx(-1.0)
        assert Z.max() == pytest.approx(1.0)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1.0, 1.0))

    def test_inverse_roundtrip(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(40, 2))
        sc = MinMaxScaler().fit(X)
        assert np.allclose(sc.inverse_transform(sc.transform(X)), X)

    def test_constant_feature_maps_to_low(self):
        X = np.column_stack([np.full(5, 9.0), np.arange(5.0)])
        Z = MinMaxScaler().fit_transform(X)
        assert np.allclose(Z[:, 0], 0.0)

    def test_feature_count_mismatch(self):
        sc = MinMaxScaler().fit(np.arange(6.0).reshape(3, 2))
        with pytest.raises(ValueError):
            sc.transform(np.zeros((3, 4)))
