"""Tests for the vectorized split search (repro.ml.tree._splitter)."""

import numpy as np
import pytest

from repro.ml.tree._splitter import Split, find_best_split


def brute_force_best(X, y, criterion, min_samples_leaf=1):
    """Reference O(n^2 p) implementation for cross-checking."""
    n, p = X.shape
    total_sse = ((y - y.mean()) ** 2).sum()
    total_sd = y.std()
    best = None
    for f in range(p):
        for t in np.unique(X[:, f])[:-1]:
            mask = X[:, f] <= t
            nl, nr = mask.sum(), (~mask).sum()
            if nl < min_samples_leaf or nr < min_samples_leaf:
                continue
            yl, yr = y[mask], y[~mask]
            if criterion == "sse":
                gain = total_sse - ((yl - yl.mean()) ** 2).sum() - ((yr - yr.mean()) ** 2).sum()
            else:
                gain = total_sd - (nl * yl.std() + nr * yr.std()) / n
            if gain > 0 and (best is None or gain > best[0]):
                best = (gain, f)
    return best


class TestFindBestSplit:
    @pytest.mark.parametrize("criterion", ["sse", "sdr"])
    def test_matches_brute_force_gain(self, criterion):
        rng = np.random.default_rng(0)
        for trial in range(5):
            X = rng.normal(size=(40, 3))
            y = np.where(X[:, 1] > 0.3, 5.0, -5.0) + rng.normal(scale=0.2, size=40)
            fast = find_best_split(X, y, criterion=criterion)
            ref = brute_force_best(X, y, criterion)
            assert fast is not None and ref is not None
            assert fast.feature == ref[1]
            assert fast.gain == pytest.approx(ref[0], rel=1e-9)

    def test_obvious_split_found(self):
        X = np.arange(20.0)[:, None]
        y = np.where(X[:, 0] < 10, 0.0, 100.0)
        split = find_best_split(X, y)
        assert split.feature == 0
        assert 9.0 <= split.threshold < 10.0

    def test_threshold_separates_consistently(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 2))
        y = np.where(X[:, 0] > 0, 1.0, -1.0)
        split = find_best_split(X, y)
        mask = X[:, split.feature] <= split.threshold
        assert 0 < mask.sum() < 50

    def test_pure_node_returns_none(self):
        X = np.arange(10.0)[:, None]
        y = np.full(10, 3.0)
        assert find_best_split(X, y) is None

    def test_constant_features_return_none(self):
        X = np.ones((10, 3))
        y = np.arange(10.0)
        assert find_best_split(X, y) is None

    def test_min_samples_leaf_respected(self):
        X = np.arange(10.0)[:, None]
        y = np.array([0.0] * 1 + [10.0] * 9)  # best unconstrained cut at 0|1
        split = find_best_split(X, y, min_samples_leaf=3)
        mask = X[:, 0] <= split.threshold
        assert mask.sum() >= 3 and (~mask).sum() >= 3

    def test_too_few_samples(self):
        X = np.array([[1.0], [2.0], [3.0]])
        y = np.array([1.0, 2.0, 3.0])
        assert find_best_split(X, y, min_samples_leaf=2) is None

    def test_feature_subset_restriction(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(60, 3))
        y = np.where(X[:, 0] > 0, 10.0, -10.0)  # feature 0 is the signal
        split = find_best_split(X, y, features=np.array([1, 2]))
        assert split is None or split.feature in (1, 2)

    def test_duplicate_feature_values_never_split_between(self):
        X = np.array([[1.0], [1.0], [1.0], [2.0], [2.0]])
        y = np.array([0.0, 5.0, 0.0, 10.0, 10.0])
        split = find_best_split(X, y)
        assert 1.0 <= split.threshold < 2.0

    def test_unknown_criterion(self):
        with pytest.raises(ValueError):
            find_best_split(np.zeros((4, 1)), np.zeros(4), criterion="gini")

    def test_split_is_frozen_dataclass(self):
        s = Split(feature=0, threshold=1.0, gain=2.0)
        with pytest.raises(AttributeError):
            s.gain = 3.0
