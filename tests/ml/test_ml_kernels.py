"""Tests for repro.ml.kernels."""

import numpy as np
import pytest

from repro.ml.kernels import (
    linear_kernel,
    polynomial_kernel,
    rbf_kernel,
    resolve_gamma,
    resolve_kernel,
    resolve_kernel_diag,
    squared_norms,
)


@pytest.fixture
def XY():
    rng = np.random.default_rng(0)
    return rng.normal(size=(12, 4)), rng.normal(size=(8, 4))


class TestLinearKernel:
    def test_matches_dot(self, XY):
        X, Y = XY
        assert np.allclose(linear_kernel(X, Y), X @ Y.T)

    def test_symmetric_gram(self, XY):
        X, _ = XY
        K = linear_kernel(X, X)
        assert np.allclose(K, K.T)

    def test_1d_promoted(self):
        K = linear_kernel(np.array([1.0, 2.0]), np.array([3.0, 4.0]))
        assert K.shape == (1, 1)
        assert K[0, 0] == 11.0


class TestPolynomialKernel:
    def test_degree_one_affine_of_linear(self, XY):
        X, Y = XY
        K = polynomial_kernel(X, Y, degree=1, gamma=2.0, coef0=3.0)
        assert np.allclose(K, 2.0 * (X @ Y.T) + 3.0)

    def test_known_value(self):
        K = polynomial_kernel(
            np.array([[1.0, 1.0]]), np.array([[2.0, 0.0]]), degree=2, gamma=1.0, coef0=1.0
        )
        assert K[0, 0] == pytest.approx(9.0)  # (2 + 1)^2

    def test_invalid_degree(self, XY):
        X, Y = XY
        with pytest.raises(ValueError):
            polynomial_kernel(X, Y, degree=0)


class TestRBFKernel:
    def test_diag_is_one(self, XY):
        X, _ = XY
        K = rbf_kernel(X, X, gamma=0.5)
        assert np.allclose(np.diag(K), 1.0)

    def test_range(self, XY):
        X, Y = XY
        K = rbf_kernel(X, Y, gamma=1.0)
        assert (K > 0).all() and (K <= 1.0).all()

    def test_known_value(self):
        K = rbf_kernel(np.array([[0.0]]), np.array([[2.0]]), gamma=0.25)
        assert K[0, 0] == pytest.approx(np.exp(-1.0))

    def test_decays_with_distance(self):
        x = np.array([[0.0]])
        near = rbf_kernel(x, np.array([[0.5]]), gamma=1.0)[0, 0]
        far = rbf_kernel(x, np.array([[3.0]]), gamma=1.0)[0, 0]
        assert near > far

    def test_invalid_gamma(self, XY):
        X, Y = XY
        with pytest.raises(ValueError):
            rbf_kernel(X, Y, gamma=0.0)

    def test_psd_gram(self, XY):
        X, _ = XY
        K = rbf_kernel(X, X, gamma=0.7)
        eig = np.linalg.eigvalsh(K)
        assert eig.min() > -1e-10


class TestSquaredNorms:
    def test_matches_rowwise_dot(self, XY):
        X, _ = XY
        assert np.allclose(squared_norms(X), [x @ x for x in X])
        assert squared_norms(X).shape == (X.shape[0],)

    def test_rbf_fast_path_is_bit_identical(self, XY):
        """The cached-norm path must be *exact*, not just close: fitted
        predictors switch between the two paths depending on pickle age."""
        X, Y = XY
        plain = rbf_kernel(X, Y, gamma=0.5)
        cached = rbf_kernel(X, Y, gamma=0.5, sq_y=squared_norms(Y))
        assert np.array_equal(plain, cached)

    def test_rbf_rejects_misshapen_sq_y(self, XY):
        X, Y = XY
        with pytest.raises(ValueError, match="sq_y"):
            rbf_kernel(X, Y, gamma=0.5, sq_y=squared_norms(X))


class TestResolvers:
    def test_resolve_names(self, XY):
        X, Y = XY
        for name in ("linear", "poly", "rbf"):
            K = resolve_kernel(name, gamma=0.5)(X, Y)
            assert K.shape == (12, 8)

    def test_unknown_kernel(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("sigmoid")

    @pytest.mark.parametrize("name", ["linear", "poly", "rbf"])
    def test_diag_matches_gram(self, name, XY):
        X, _ = XY
        gram = resolve_kernel(name, gamma=0.5, degree=2)(X, X)
        diag = resolve_kernel_diag(name, gamma=0.5, degree=2)(X)
        assert np.allclose(diag, np.diag(gram))

    def test_resolve_gamma_scale(self, XY):
        X, _ = XY
        g = resolve_gamma("scale", X)
        assert g == pytest.approx(1.0 / (X.shape[1] * X.var()))

    def test_resolve_gamma_numeric_passthrough(self, XY):
        X, _ = XY
        assert resolve_gamma(0.3, X) == 0.3

    def test_resolve_gamma_invalid(self, XY):
        X, _ = XY
        with pytest.raises(ValueError):
            resolve_gamma(-1.0, X)
        with pytest.raises(ValueError):
            resolve_gamma("auto", X)

    def test_resolve_gamma_constant_X(self):
        X = np.ones((5, 2))
        assert np.isfinite(resolve_gamma("scale", X))
