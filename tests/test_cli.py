"""Tests for the command-line interface (repro.cli)."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core import DataHistory


@pytest.fixture
def history_file(tmp_path, history):
    path = tmp_path / "hist.npz"
    history.save(path)
    return str(path)


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestSimulate:
    def test_writes_history(self, tmp_path, capsys):
        out = tmp_path / "h.npz"
        rc = main(["simulate", "-o", str(out), "--runs", "2", "--seed", "1"])
        assert rc == 0
        assert out.exists()
        loaded = DataHistory.load(out)
        assert len(loaded) == 2
        assert "saved 2 runs" in capsys.readouterr().out

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        main(["simulate", "-o", str(a), "--runs", "1", "--seed", "5"])
        main(["simulate", "-o", str(b), "--runs", "1", "--seed", "5"])
        ha, hb = DataHistory.load(a), DataHistory.load(b)
        assert np.array_equal(ha[0].features, hb[0].features)

    def test_scenario_preset(self, tmp_path, capsys):
        out = tmp_path / "h.npz"
        rc = main([
            "simulate", "-o", str(out), "--runs", "1", "--seed", "5",
            "--scenario", "heap-fragmentation", "--max-run", "900",
        ])
        assert rc == 0
        assert len(DataHistory.load(out)) == 1
        assert "saved 1 runs" in capsys.readouterr().out

    def test_unknown_scenario_one_line_error(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main([
                "simulate", "-o", str(tmp_path / "h.npz"),
                "--scenario", "bogus",
            ])

    def test_bad_failure_spec_one_line_error(self, tmp_path):
        with pytest.raises(SystemExit, match="failure"):
            main([
                "simulate", "-o", str(tmp_path / "h.npz"),
                "--failure", "wat>3",
            ])


class TestScenariosCommand:
    def test_catalog_table(self, capsys):
        rc = main(["scenarios"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("baseline-shopping", "fd-leak", "mixed-aging"):
            assert name in out

    def test_describe_includes_descriptions(self, capsys):
        rc = main(["scenarios", "--describe"])
        assert rc == 0
        assert "EMFILE" in capsys.readouterr().out


class TestAggregate:
    def test_writes_dataset(self, tmp_path, history_file, capsys):
        out = tmp_path / "ds.npz"
        rc = main(["aggregate", history_file, "-o", str(out), "--window", "30"])
        assert rc == 0
        with np.load(out, allow_pickle=False) as data:
            assert data["X"].shape[1] == 30
            assert data["X"].shape[0] == data["y"].shape[0]
            assert len(data["feature_names"]) == 30

    def test_missing_history_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["aggregate", str(tmp_path / "nope.npz")])

    def test_corrupt_history_one_line_error(self, tmp_path):
        bad = tmp_path / "bad.npz"
        bad.write_text("this is not an npz archive")
        with pytest.raises(SystemExit, match="could not load history"):
            main(["aggregate", str(bad)])


class TestSelect:
    def test_prints_path_and_weights(self, history_file, capsys):
        rc = main(["select", history_file, "--window", "30"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Lasso regularization path" in out
        assert "strongest selection" in out
        assert "1e9" in out


class TestTrain:
    def test_prints_tables(self, history_file, capsys):
        rc = main(
            [
                "train",
                history_file,
                "--window",
                "30",
                "--models",
                "linear,reptree",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Soft Mean Absolute Error" in out
        assert "Training time" in out
        assert "best model:" in out

    def test_lasso_predictor_flag(self, history_file, capsys):
        rc = main(
            [
                "train",
                history_file,
                "--window",
                "30",
                "--models",
                "linear",
                "--lasso-predictors",
            ]
        )
        assert rc == 0
        assert "lasso(1e9)" in capsys.readouterr().out


class TestIngest:
    def test_csv_directory_to_history(self, history, tmp_path, capsys):
        from repro.core.ingest import write_run_csv

        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        for i, run in enumerate(history):
            write_run_csv(run, trace_dir / f"run{i}.csv")
        out = tmp_path / "ingested.npz"
        rc = main(
            [
                "ingest",
                str(trace_dir),
                "-o",
                str(out),
                "--rt-column",
                "response_time",
            ]
        )
        assert rc == 0
        loaded = DataHistory.load(out)
        assert len(loaded) == len(history)
        assert "ingested" in capsys.readouterr().out


class TestPredict:
    def test_saved_model_applied(self, history, tmp_path, capsys):
        hist_file = tmp_path / "h.npz"
        history.save(hist_file)
        model_file = tmp_path / "m.pkl"
        main(
            [
                "train",
                str(hist_file),
                "--window",
                "30",
                "--models",
                "linear",
                "--save-model",
                str(model_file),
            ]
        )
        capsys.readouterr()
        rc = main(
            ["predict", str(model_file), str(hist_file), "--window", "30", "--limit", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "predicted RTTF for the last 3 windows" in out
        assert out.count("t=") == 3

    def test_schema_mismatch_fails(self, history, tmp_path):
        from repro.core.persistence import save_model
        from repro.ml.linear import LinearRegression

        hist_file = tmp_path / "h.npz"
        history.save(hist_file)
        model_file = tmp_path / "bad.pkl"
        model = LinearRegression().fit(np.zeros((4, 2)) + np.arange(2.0), np.zeros(4))
        save_model(model, model_file, feature_names=["a", "b"])
        with pytest.raises(ValueError, match="schema mismatch"):
            main(["predict", str(model_file), str(hist_file), "--window", "30"])


class TestObservability:
    def test_train_writes_trace_and_metrics_json(self, tmp_path, history_file, capsys):
        trace_file = tmp_path / "t.json"
        metrics_file = tmp_path / "m.json"
        rc = main(
            [
                "train",
                history_file,
                "--window",
                "30",
                "--models",
                "linear",
                "--trace-json",
                str(trace_file),
                "--metrics-json",
                str(metrics_file),
            ]
        )
        assert rc == 0
        trace = json.loads(trace_file.read_text())
        root = trace["spans"][0]
        assert root["name"] == "f2pm.run"
        names = set()

        def collect(node):
            names.add(node["name"])
            assert node["duration_s"] > 0
            for child in node["children"]:
                collect(child)

        collect(root)
        assert {"aggregate", "select", "train", "validate"} <= names
        metrics = json.loads(metrics_file.read_text())
        assert metrics["counters"]["f2pm.runs_total"] >= 1
        assert any(
            k.startswith("model.fit_seconds.") for k in metrics["histograms"]
        )
        assert any(
            k.startswith("model.predict_seconds.") for k in metrics["histograms"]
        )

    def test_train_writes_manifest(self, tmp_path, history_file, capsys):
        manifest_file = tmp_path / "run.manifest.json"
        rc = main(
            [
                "train",
                history_file,
                "--window",
                "30",
                "--models",
                "linear",
                "--manifest",
                str(manifest_file),
            ]
        )
        assert rc == 0
        doc = json.loads(manifest_file.read_text())
        assert doc["schema"] == "f2pm.manifest/1"
        assert doc["kind"] == "f2pm.run"
        assert doc["trace"]["name"] == "f2pm.run"
        assert {r["name"] for r in doc["reports"]} >= {"linear"}

    def test_no_obs_leaves_trace_empty(self, tmp_path, history_file, capsys):
        trace_file = tmp_path / "t.json"
        rc = main(
            [
                "train",
                history_file,
                "--window",
                "30",
                "--models",
                "linear",
                "--no-obs",
                "--trace-json",
                str(trace_file),
            ]
        )
        assert rc == 0
        assert json.loads(trace_file.read_text()) == {"spans": []}
        # the switch is restored for later invocations in this process
        from repro import obs

        assert obs.enabled()

    def test_verbose_logs_phases_to_stderr(self, history_file, capsys):
        rc = main(
            ["train", history_file, "--window", "30", "--models", "linear", "-v"]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "INFO repro.core.framework" in err
        assert "aggregate rows_in=" in err

    def test_obs_renders_trace_file(self, tmp_path, history_file, capsys):
        trace_file = tmp_path / "t.json"
        main(
            [
                "train",
                history_file,
                "--window",
                "30",
                "--models",
                "linear",
                "--trace-json",
                str(trace_file),
            ]
        )
        capsys.readouterr()
        rc = main(["obs", str(trace_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "f2pm.run" in out
        assert "aggregate" in out

    def test_obs_renders_metrics_file(self, tmp_path, history_file, capsys):
        metrics_file = tmp_path / "m.json"
        main(
            [
                "train",
                history_file,
                "--window",
                "30",
                "--models",
                "linear",
                "--metrics-json",
                str(metrics_file),
            ]
        )
        capsys.readouterr()
        rc = main(["obs", str(metrics_file)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "counters" in out
        assert "f2pm.runs_total" in out

    def test_obs_missing_file_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["obs", str(tmp_path / "nope.json")])

    def test_obs_unparseable_file_errors(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="could not parse"):
            main(["obs", str(bad)])


class TestRejuvenate:
    def test_prints_policy_table(self, capsys):
        rc = main(
            [
                "rejuvenate",
                "--runs",
                "3",
                "--horizon",
                "2000",
                "--seed",
                "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Rejuvenation policies" in out
        assert "predictive" in out


class TestFleet:
    def test_prints_policy_table(self, capsys):
        rc = main(
            [
                "fleet",
                "--nodes",
                "6",
                "--horizon",
                "1500",
                "--seed",
                "1",
                "--capacity-floor",
                "0.5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Fleet of 6 nodes" in out
        assert "predictive" in out

    def test_scalar_engine_matches_batched(self, capsys):
        argv = ["fleet", "--nodes", "4", "--horizon", "1500", "--seed", "3"]
        assert main(argv + ["--engine", "batched"]) == 0
        batched = capsys.readouterr().out
        assert main(argv + ["--engine", "scalar"]) == 0
        scalar = capsys.readouterr().out
        # identical numbers; only the title names the engine
        def strip(text):
            return [line for line in text.splitlines() if "scoring" not in line]

        assert strip(batched) == strip(scalar)


class TestCache:
    @pytest.fixture
    def store_dir(self, tmp_path):
        from repro.store import ArtifactStore

        store = ArtifactStore(tmp_path / "cache")
        store.write(
            "a.bin", lambda p: p.write_bytes(b"data"), kind="test", fingerprint="ab" * 32
        )
        return str(store.root)

    def test_ls_empty(self, tmp_path, capsys):
        rc = main(["cache", "--dir", str(tmp_path / "empty"), "ls"])
        assert rc == 0
        assert "empty" in capsys.readouterr().out

    def test_ls_lists_entries(self, store_dir, capsys):
        rc = main(["cache", "--dir", store_dir, "ls"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "a.bin" in out and "ok" in out

    def test_ls_flags_corruption(self, store_dir, capsys):
        from pathlib import Path

        (Path(store_dir) / "a.bin").write_bytes(b"tampered")
        main(["cache", "--dir", store_dir, "ls"])
        out = capsys.readouterr().out
        assert "CORRUPT" in out and "checksum mismatch" in out

    def test_info(self, store_dir, capsys):
        rc = main(["cache", "--dir", store_dir, "info", "a.bin"])
        assert rc == 0
        meta = json.loads(capsys.readouterr().out)
        assert meta["name"] == "a.bin"
        assert meta["kind"] == "test"
        assert meta["fingerprint"] == "ab" * 32

    def test_info_missing_entry_errors(self, store_dir):
        with pytest.raises(SystemExit, match="no cache entry"):
            main(["cache", "--dir", store_dir, "info", "nope.bin"])

    def test_gc_sweeps_corrupt(self, store_dir, capsys):
        from pathlib import Path

        (Path(store_dir) / "a.bin").write_bytes(b"tampered")
        rc = main(["cache", "--dir", store_dir, "gc"])
        assert rc == 0
        assert "removed 2 file(s)" in capsys.readouterr().out
        main(["cache", "--dir", store_dir, "ls"])
        assert "empty" in capsys.readouterr().out

    def test_clear(self, store_dir, capsys):
        rc = main(["cache", "--dir", store_dir, "clear"])
        assert rc == 0
        assert "cleared" in capsys.readouterr().out
        from pathlib import Path

        assert list(Path(store_dir).iterdir()) == []
