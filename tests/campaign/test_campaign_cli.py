"""CLI conformance: ``f2pm campaign {plan,run,status}`` and
``f2pm cache gc --spec`` scoped eviction."""

import json

import pytest

from repro.campaign import CampaignManager, CampaignSpec
from repro.cli import main
from repro.store import ArtifactStore
from tests.campaign.conftest import tiny_spec


@pytest.fixture
def spec_file(tmp_path):
    spec = tiny_spec(name="cli", seeds=(3, 5))
    path = tmp_path / "spec.json"
    path.write_text(spec.to_json())
    return spec, str(path)


@pytest.fixture
def store_dir(tmp_path, monkeypatch):
    root = tmp_path / "cli-cache"
    monkeypatch.setenv("F2PM_CACHE_DIR", str(root))
    return str(root)


class TestCampaignCommand:
    def test_plan_prints_diff_without_executing(self, spec_file, store_dir, capsys):
        _, path = spec_file
        rc = main(["campaign", "--dir", store_dir, "plan", path])
        assert rc == 0
        out = capsys.readouterr().out
        assert "total=2 cached=0 missing=2" in out
        assert not list(ArtifactStore(store_dir).root.glob("history_*.npz"))

    def test_run_then_plan_shows_cached(self, spec_file, store_dir, capsys):
        _, path = spec_file
        rc = main(["campaign", "--dir", store_dir, "run", path, "--jobs", "1"])
        assert rc == 0
        assert "done: cached=0 run=2 failed=0" in capsys.readouterr().out
        rc = main(["campaign", "--dir", store_dir, "plan", path])
        assert rc == 0
        assert "total=2 cached=2 missing=0" in capsys.readouterr().out

    def test_rerun_is_all_cached(self, spec_file, store_dir, capsys):
        _, path = spec_file
        main(["campaign", "--dir", store_dir, "run", path, "--jobs", "1"])
        capsys.readouterr()
        main(["campaign", "--dir", store_dir, "run", path, "--jobs", "1"])
        assert "done: cached=2 run=0 failed=0" in capsys.readouterr().out

    def test_status_emits_json(self, spec_file, store_dir, capsys):
        spec, path = spec_file
        rc = main(["campaign", "--dir", store_dir, "status", path])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "f2pm.campaign-status/1"
        assert doc["spec_fingerprint"] == spec.fingerprint
        assert doc["cells_missing"] == 2

    def test_bad_spec_is_one_line_error(self, tmp_path, store_dir):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit, match="could not read spec"):
            main(["campaign", "--dir", store_dir, "plan", str(bad)])


class TestCacheGcSpec:
    def test_gc_spec_evicts_only_that_campaign(self, tmp_path, capsys):
        store = ArtifactStore(tmp_path / "cache")
        mine = tiny_spec(name="mine", seeds=(3,))
        other = tiny_spec(name="other", seeds=(5,))
        CampaignManager(mine, store).run(jobs=1)
        CampaignManager(other, store).run(jobs=1)
        assert len(store.entries()) == 2

        spec_path = tmp_path / "mine.json"
        spec_path.write_text(mine.to_json())
        rc = main(
            ["cache", "--dir", str(store.root), "gc", "--spec", str(spec_path)]
        )
        assert rc == 0
        assert "removed 2 file(s)" in capsys.readouterr().out  # payload + meta

        remaining = store.entries()
        assert len(remaining) == 1  # the other campaign survived
        (other_cell,) = other.cells()
        assert remaining[0].fingerprint == other_cell.fingerprint

    def test_gc_without_spec_keeps_healthy_entries(self, tmp_path, capsys):
        store = ArtifactStore(tmp_path / "cache")
        CampaignManager(tiny_spec(seeds=(3,)), store).run(jobs=1)
        rc = main(["cache", "--dir", str(store.root), "gc"])
        assert rc == 0
        assert len(store.entries()) == 1
