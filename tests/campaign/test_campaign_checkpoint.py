"""Regression: a checkpoint sized for a different campaign must be
evicted, never silently replayed.

Scenario: a spec is *narrowed* between runs (say 6 runs down to 4). A
checkpoint written for the 6-run campaign — or a checkpoint object a
caller constructed with the old ``total_runs`` — must not satisfy the
4-run campaign by replaying a stale prefix; ``run_campaign`` has to
detect the size mismatch, discard the checkpoint, and simulate fresh.
"""

from dataclasses import replace

from repro.campaign import CampaignManager, campaign_fingerprint, history_name
from repro.store import ArtifactStore, CampaignCheckpoint
from repro.system import TestbedSimulator
from tests.campaign.conftest import tiny_spec
from tests.conftest import small_campaign


class TestNarrowedSpecCheckpoint:
    def test_stale_checkpoint_discarded_not_replayed(self, tmp_path):
        wide = small_campaign(n_runs=6)
        narrow = replace(wide, n_runs=4)
        # A 4-run prefix of the *6-run* campaign, persisted under the
        # narrow config's key with the stale total — exactly what a
        # caller that cached a checkpoint object across a spec
        # narrowing would hand in.
        wide_history = TestbedSimulator(wide).run_campaign()
        stale = CampaignCheckpoint(
            tmp_path / "c.npz", key=campaign_fingerprint(narrow), total_runs=6
        )
        stale.save(list(wide_history.runs)[:4])

        resumed = TestbedSimulator(narrow).run_campaign(checkpoint=stale)
        fresh = TestbedSimulator(narrow).run_campaign()
        assert resumed.content_fingerprint() == fresh.content_fingerprint(), (
            "stale checkpoint was replayed instead of evicted"
        )
        assert not (tmp_path / "c.npz").exists(), (
            "completed campaign left its (stale) checkpoint behind"
        )

    def test_matching_checkpoint_still_resumes(self, tmp_path):
        config = small_campaign(n_runs=4)
        fresh = TestbedSimulator(config).run_campaign()
        checkpoint = CampaignCheckpoint(
            tmp_path / "c.npz", key=campaign_fingerprint(config), total_runs=4
        )
        checkpoint.save(list(fresh.runs)[:2])
        resumed = TestbedSimulator(config).run_campaign(checkpoint=checkpoint)
        assert resumed.content_fingerprint() == fresh.content_fingerprint()

    def test_narrowed_spec_creates_distinct_store_entries(self, store):
        # At the manager level the narrowing is harmless by construction:
        # the narrow config has a different fingerprint, so it owns a
        # different artifact *and* a different checkpoint path.
        wide_spec = tiny_spec(n_runs=3)
        narrow_spec = tiny_spec(n_runs=2)
        (wide_cell,) = wide_spec.cells()
        (narrow_cell,) = narrow_spec.cells()
        assert wide_cell.fingerprint != narrow_cell.fingerprint
        assert history_name(wide_cell.config) != history_name(narrow_cell.config)

        CampaignManager(wide_spec, store).run(jobs=1)
        result = CampaignManager(narrow_spec, store).run(jobs=1)
        assert result.cells_run == 1  # simulated fresh, no aliasing
        narrow_history = result.outcome(0).results["simulate"]
        assert len(narrow_history) == 2
