"""Spec semantics: fingerprint stability, serialization, enumeration.

``spec_fingerprint.txt`` pins the canonical fingerprint of a reference
spec at the time the campaign layer shipped (the same pattern as
``tests/faults/clean_fingerprint.txt``). If the pinned test fails, either
the key schema changed deliberately (bump ``KEY_SCHEMA_VERSION``, update
the file) or spec fingerprinting drifted by accident — a cache-busting
bug, because every artifact in every user's store is keyed by it.
"""

from dataclasses import replace
from pathlib import Path

import pytest

from repro.campaign import CampaignSpec, STAGES, merged_cells, stage_artifact
from repro.experiments.common import _campaign_fingerprint
from repro.system.tpcw import MIXES
from tests.campaign.conftest import tiny_spec
from tests.conftest import small_campaign

FINGERPRINT_FILE = Path(__file__).with_name("spec_fingerprint.txt")


def golden_spec() -> CampaignSpec:
    """The reference spec behind the committed fingerprint — every field
    pinned explicitly so environment knobs can't perturb it."""
    return CampaignSpec(
        name="golden",
        base=small_campaign(n_runs=4, seed=3),
        axes={"n_browsers": (40, 44), "mix": ("shopping", "browsing")},
        seeds=(3, 5),
        stages=STAGES,
        window_seconds=30.0,
        sanitize=None,
        models=("linear", "m5p", "reptree"),
        train_seed=0,
    )


class TestFingerprint:
    def test_matches_committed_fingerprint(self):
        expected = FINGERPRINT_FILE.read_text().strip()
        assert golden_spec().fingerprint == expected, (
            "spec fingerprint drifted — every store entry keyed by it "
            "would be orphaned; if the key schema changed deliberately, "
            "update tests/campaign/spec_fingerprint.txt"
        )

    def test_name_and_substrate_are_not_content(self):
        spec = golden_spec()
        assert replace(spec, name="other").fingerprint == spec.fingerprint
        assert replace(spec, substrate="loop").fingerprint == spec.fingerprint

    def test_content_fields_are_content(self):
        spec = golden_spec()
        assert replace(spec, seeds=(3,)).fingerprint != spec.fingerprint
        assert replace(spec, window_seconds=20.0).fingerprint != spec.fingerprint
        assert replace(spec, sanitize="repair").fingerprint != spec.fingerprint

    def test_cell_fingerprint_matches_legacy_experiment_scheme(self):
        # Interop invariant: a store populated by the pre-campaign
        # helpers (default_history) must count as cached for a spec
        # covering the same config.
        spec = tiny_spec()
        (cell,) = spec.cells()
        assert cell.fingerprint == _campaign_fingerprint(cell.config)
        name, fp = stage_artifact(spec, cell, "simulate")
        assert name == f"history_{fp[:16]}.npz"


class TestSerialization:
    def test_json_round_trip_preserves_identity(self):
        spec = golden_spec()
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert clone.fingerprint == spec.fingerprint
        assert [c.fingerprint for c in clone.cells()] == [
            c.fingerprint for c in spec.cells()
        ]

    def test_json_file_round_trip(self, tmp_path):
        spec = golden_spec()
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert CampaignSpec.from_json_file(path).fingerprint == spec.fingerprint

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown spec fields"):
            CampaignSpec.from_dict({"name": "x", "frobnicate": 1})

    def test_unknown_base_field_rejected(self):
        with pytest.raises(ValueError, match="unknown CampaignConfig field"):
            CampaignSpec.from_dict({"base": {"frobnicate": 1}})

    def test_unreadable_file_is_one_error(self, tmp_path):
        with pytest.raises(ValueError, match="could not read spec"):
            CampaignSpec.from_json_file(tmp_path / "missing.json")


class TestValidation:
    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign axis"):
            tiny_spec(axes={"frobnicate": (1, 2)})

    def test_reserved_axes_rejected(self):
        with pytest.raises(ValueError, match="reserved"):
            tiny_spec(axes={"seed": (1, 2)})
        with pytest.raises(ValueError, match="reserved"):
            tiny_spec(axes={"substrate": ("fused",)})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            tiny_spec(axes={"n_browsers": ()})

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown stage"):
            tiny_spec(stages=("simulate", "frobnicate"))

    def test_stages_normalize_to_pipeline_order(self):
        spec = tiny_spec(stages=("train", "simulate", "aggregate"))
        assert spec.stages == ("simulate", "aggregate", "train")

    def test_unknown_mix_name_rejected(self):
        with pytest.raises(ValueError, match="unknown TPC-W mix"):
            tiny_spec(axes={"mix": ("frobnicate",)}).cells()


class TestEnumeration:
    def test_grid_size_and_order(self):
        spec = golden_spec()
        cells = spec.cells()
        assert len(cells) == 2 * 2 * 2  # browsers x mixes x seeds
        assert [c.index for c in cells] == list(range(8))
        # Seeds are innermost: consecutive cells share their grid point.
        assert cells[0].params == cells[1].params
        assert (cells[0].seed, cells[1].seed) == (3, 5)

    def test_enumeration_is_deterministic(self):
        a = [c.fingerprint for c in golden_spec().cells()]
        b = [c.fingerprint for c in golden_spec().cells()]
        assert a == b

    def test_mix_coerced_by_name(self):
        spec = tiny_spec(axes={"mix": ("browsing",)})
        (cell,) = spec.cells()
        assert cell.config.mix == MIXES["browsing"]
        assert dict(cell.params)["mix"] == "browsing"
        assert "mix=browsing" in cell.label()

    def test_substrate_override_does_not_change_fingerprints(self):
        plain = tiny_spec().cells()
        overridden = tiny_spec(substrate="loop").cells()
        assert [c.fingerprint for c in plain] == [
            c.fingerprint for c in overridden
        ]
        assert all(c.config.substrate == "loop" for c in overridden)

    def test_empty_seeds_fall_back_to_base_seed(self):
        spec = tiny_spec(seeds=())
        (cell,) = spec.cells()
        assert cell.seed == spec.base.seed


class TestMergedCells:
    def test_union_deduplicates_by_fingerprint(self):
        a = tiny_spec(seeds=(3, 5))
        b = tiny_spec(seeds=(5, 7))
        merged = merged_cells([a, b])
        assert [c.seed for c in merged] == [3, 5, 7]
        assert [c.index for c in merged] == [0, 1, 2]

    def test_union_with_self_is_identity(self):
        spec = tiny_spec(seeds=(3, 5))
        assert [c.fingerprint for c in merged_cells([spec, spec])] == [
            c.fingerprint for c in spec.cells()
        ]
