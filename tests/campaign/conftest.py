"""Shared fixtures for the campaign conformance battery.

Every test gets a private artifact store (``F2PM_CACHE_DIR`` repointed to
a temp dir), so nothing here touches the developer's real cache, and the
spec builders all start from the fast 4-run test VM campaign.
"""

from __future__ import annotations

import pytest

from repro.campaign import CampaignSpec
from repro.store import ArtifactStore
from tests.conftest import small_campaign


@pytest.fixture
def store(tmp_path, monkeypatch) -> ArtifactStore:
    """A private artifact store, also exported as ``F2PM_CACHE_DIR`` so
    the legacy helpers (``default_history``) hit the same directory."""
    root = tmp_path / "cache"
    monkeypatch.setenv("F2PM_CACHE_DIR", str(root))
    return ArtifactStore(root)


def tiny_spec(
    *,
    name: str = "test-campaign",
    n_runs: int = 2,
    seeds: tuple = (3,),
    stages: tuple = ("simulate",),
    **kwargs,
) -> CampaignSpec:
    """A spec over the fast test VM campaign; simulates in well under a
    second per cell."""
    return CampaignSpec(
        name=name,
        base=small_campaign(n_runs=n_runs),
        seeds=seeds,
        stages=stages,
        **kwargs,
    )
