"""Planning semantics: the diff is pure, idempotent, and store-aware."""

from repro.campaign import CampaignManager, plan_cells
from repro.experiments import common
from repro.obs import get_metrics
from tests.campaign.conftest import tiny_spec


def simulated_runs() -> int:
    return get_metrics().snapshot()["counters"].get("sim.runs_total", 0)


class TestPlan:
    def test_cold_store_everything_missing(self, store):
        spec = tiny_spec(seeds=(3, 5), stages=("simulate", "aggregate"))
        plan = CampaignManager(spec, store).plan()
        assert len(plan.cells) == 2
        assert len(plan.missing_cells) == 2
        assert not plan.cached_cells
        for cell_plan in plan.cells:
            assert cell_plan.missing_stages == ("simulate", "aggregate")

    def test_plan_executes_nothing(self, store):
        spec = tiny_spec(seeds=(3, 5))
        before = simulated_runs()
        CampaignManager(spec, store).plan()
        assert simulated_runs() == before
        assert not list(store.root.glob("history_*.npz"))

    def test_plan_is_idempotent(self, store):
        manager = CampaignManager(tiny_spec(seeds=(3, 5)), store)
        assert manager.plan() == manager.plan()

    def test_no_store_means_everything_missing(self):
        spec = tiny_spec()
        plan = plan_cells(spec, spec.cells(), None)
        assert len(plan.missing_cells) == len(plan.cells) == 1

    def test_legacy_cache_counts_as_cached(self, store):
        # A store populated by the pre-campaign helper must satisfy a
        # spec covering the same config — same names, same fingerprints.
        spec = tiny_spec()
        common._HISTORY_MEMO.clear()  # force the store path, not the memo
        common.default_history(spec.cells()[0].config)
        plan = CampaignManager(spec, store).plan()
        assert len(plan.cached_cells) == 1
        assert not plan.missing_cells

    def test_summary_is_greppable(self, store):
        spec = tiny_spec(seeds=(3, 5))
        manager = CampaignManager(spec, store)
        summary = manager.plan().summary()
        assert "total=2 cached=0 missing=2" in summary
        assert spec.fingerprint[:16] in summary

    def test_status_document_shape(self, store):
        spec = tiny_spec(seeds=(3, 5))
        status = CampaignManager(spec, store).status()
        assert status["schema"] == "f2pm.campaign-status/1"
        assert status["cells_total"] == 2
        assert status["cells_missing"] == 2
        assert status["spec_fingerprint"] == spec.fingerprint
        assert [c["index"] for c in status["cells"]] == [0, 1]
