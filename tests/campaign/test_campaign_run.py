"""Execution semantics: run-missing-only, worker-count and multi-driver
bit-identity, failure isolation.

The two-driver test mirrors ``tests/store/test_store_concurrency.py``:
two fresh processes race one cold spec against a shared store with a
go-file start barrier, then the artifacts must be bit-identical to a
serial single-driver run and each cell simulated exactly once in total.
"""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.campaign import CampaignError, CampaignManager
from repro.obs import get_metrics
from repro.store import ArtifactStore
from tests.campaign.conftest import tiny_spec


def simulated_runs() -> int:
    return get_metrics().snapshot()["counters"].get("sim.runs_total", 0)


class TestRunMissingOnly:
    def test_second_run_simulates_nothing(self, store):
        spec = tiny_spec(seeds=(3, 5), stages=("simulate", "aggregate"))
        manager = CampaignManager(spec, store)
        first = manager.run(jobs=1)
        assert first.cells_run == 2 and first.cells_cached == 0
        before = simulated_runs()
        second = manager.run(jobs=1)
        assert simulated_runs() == before, "cached campaign re-simulated"
        assert second.cells_cached == 2 and second.cells_run == 0
        assert second.cells_failed == 0

    def test_partial_cache_runs_only_the_frontier(self, store):
        narrow = tiny_spec(seeds=(3,))
        CampaignManager(narrow, store).run(jobs=1)
        wide = tiny_spec(seeds=(3, 5))
        result = CampaignManager(wide, store).run(jobs=1)
        assert result.cells_cached == 1
        assert result.cells_run == 1
        assert result.outcome(0).cached  # seed 3 loaded, not re-simulated

    def test_later_stages_reuse_cached_prefix(self, store):
        sim_only = tiny_spec(stages=("simulate",))
        CampaignManager(sim_only, store).run(jobs=1)
        before = simulated_runs()
        staged = tiny_spec(stages=("simulate", "aggregate"))
        result = CampaignManager(staged, store).run(jobs=1)
        # The aggregate stage was produced, but its history input loaded
        # from the store — zero new simulation.
        assert simulated_runs() == before
        assert result.outcome(0).produced_stages == ("aggregate",)

    def test_run_without_store_executes_everything(self):
        spec = tiny_spec(seeds=(3, 5))
        result = CampaignManager(spec, None).run(jobs=1)
        assert result.cells_run == 2
        assert result.cells_cached == 0


class TestBitIdentity:
    def test_jobs_1_vs_4_identical_artifacts(self, tmp_path):
        spec = tiny_spec(n_runs=4)
        serial = CampaignManager(spec, ArtifactStore(tmp_path / "serial"))
        fanned = CampaignManager(spec, ArtifactStore(tmp_path / "fanned"))
        h1 = serial.run(jobs=1).outcome(0).results["simulate"]
        h4 = fanned.run(jobs=4).outcome(0).results["simulate"]
        assert h1.content_fingerprint() == h4.content_fingerprint()

    def test_fresh_run_matches_cache_loaded_run(self, store):
        spec = tiny_spec(n_runs=4)
        manager = CampaignManager(spec, store)
        produced = manager.run(jobs=1).outcome(0).results["simulate"]
        loaded = manager.run(jobs=1).outcome(0).results["simulate"]
        assert produced.content_fingerprint() == loaded.content_fingerprint()


class TestFailureIsolation:
    def test_failing_cell_does_not_abort_campaign(self, store, monkeypatch):
        import repro.campaign.manager as manager_mod

        spec = tiny_spec(seeds=(3, 5, 7))
        real_run_stage = manager_mod.run_stage

        def flaky(spec_, cell, stage, store_, **kwargs):
            if cell.seed == 5:
                raise RuntimeError("injected cell failure")
            return real_run_stage(spec_, cell, stage, store_, **kwargs)

        monkeypatch.setattr(manager_mod, "run_stage", flaky)
        manager = CampaignManager(spec, store)
        with pytest.raises(CampaignError, match="injected cell failure"):
            manager.run(jobs=1)
        # The healthy cells still published their artifacts.
        plan = manager.plan()
        assert sorted(p.cell.seed for p in plan.cached_cells) == [3, 7]
        assert [p.cell.seed for p in plan.missing_cells] == [5]

    def test_failed_counter_incremented(self, store, monkeypatch):
        import repro.campaign.manager as manager_mod

        spec = tiny_spec(seeds=(3, 5))

        def broken(*args, **kwargs):
            raise RuntimeError("boom")

        monkeypatch.setattr(manager_mod, "run_stage", broken)
        counters = get_metrics().snapshot()["counters"]
        before = counters.get("campaign.cells_failed", 0)
        with pytest.raises(CampaignError):
            CampaignManager(spec, store).run(jobs=1)
        counters = get_metrics().snapshot()["counters"]
        assert counters.get("campaign.cells_failed", 0) == before + 2


N_RUNS = 3

DRIVER = textwrap.dedent(
    """
    import json
    import sys
    import time

    from repro.campaign import CampaignManager, CampaignSpec
    from repro.obs import get_metrics
    from repro.store import ArtifactStore

    spec_path, go_file = sys.argv[1], sys.argv[2]
    spec = CampaignSpec.from_json_file(spec_path)
    print("ready", flush=True)
    while True:  # start barrier: both drivers begin together
        try:
            open(go_file).close()
            break
        except OSError:
            time.sleep(0.005)

    result = CampaignManager(spec, ArtifactStore()).run(jobs=1)
    counters = get_metrics().snapshot()["counters"]
    print(json.dumps({
        "fingerprints": sorted(
            o.results["simulate"].content_fingerprint() for o in result.outcomes
        ),
        "simulated_runs": counters.get("sim.runs_total", 0),
        "cells_run": result.cells_run,
        "cells_cached": result.cells_cached,
        "busy": counters.get("store.busy_total", 0),
    }), flush=True)
    """
)


class TestTwoCooperatingDrivers:
    def test_cold_race_is_bit_identical_to_serial(self, tmp_path):
        repo = Path(__file__).resolve().parents[2]
        spec = tiny_spec(name="race", n_runs=N_RUNS, seeds=(3, 5))

        # Reference: one serial driver in-process, private store.
        serial = CampaignManager(spec, ArtifactStore(tmp_path / "serial"))
        reference = sorted(
            o.results["simulate"].content_fingerprint()
            for o in serial.run(jobs=1).outcomes
        )

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(spec.to_json())
        shared = tmp_path / "shared-cache"
        env = dict(os.environ)
        env["F2PM_CACHE_DIR"] = str(shared)
        env["PYTHONPATH"] = f"{repo / 'src'}{os.pathsep}{env.get('PYTHONPATH', '')}"
        go_file = tmp_path / "go"

        procs = [
            subprocess.Popen(
                [sys.executable, "-c", DRIVER, str(spec_path), str(go_file)],
                stdout=subprocess.PIPE,
                cwd=repo,
                env=env,
                text=True,
            )
            for _ in range(2)
        ]
        try:
            for proc in procs:
                assert proc.stdout.readline().strip() == "ready"
            go_file.touch()  # release both at once
            results = []
            for proc in procs:
                out, _ = proc.communicate(timeout=180)
                assert proc.returncode == 0
                results.append(json.loads(out.strip().splitlines()[-1]))
        finally:
            for proc in procs:
                if proc.poll() is None:  # pragma: no cover - cleanup on bug
                    proc.kill()
                    proc.wait()

        # Both drivers converge on the same artifacts, and those artifacts
        # are bit-identical to the serial single-driver run.
        for r in results:
            assert r["fingerprints"] == reference, results
        # Each cell simulated exactly once across the fleet: total
        # simulated runs == the spec's total (2 cells x N_RUNS runs).
        assert sum(r["simulated_runs"] for r in results) == 2 * N_RUNS, results
        assert sum(r["cells_run"] for r in results) == 2, results
        # Exactly one history artifact per cell in the shared store.
        npz = [
            p.name
            for p in shared.glob("history_*.npz")
            if not p.name.endswith(".ckpt.npz")
        ]
        assert len(npz) == 2
