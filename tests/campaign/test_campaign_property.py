"""Property tests: diff algebra over random spec pairs, kill-resume identity.

The union property is the heart of run-missing: for any two specs A and
B sharing a store, the missing frontier of their union must be exactly
the union of their missing frontiers (dedup by artifact fingerprint),
and the cached set likewise. Cells are "cached" here via synthetic store
entries — the property is about the *diff*, so no simulation runs.

The SIGKILL torture mirrors ``tests/store``: a driver is killed mid-
campaign, a second driver re-runs the spec, and the final artifacts must
be bit-identical to an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.campaign import CampaignManager, CampaignSpec, merged_cells, plan_cells
from repro.store import ArtifactStore
from tests.conftest import small_campaign

# -- diff-union property ------------------------------------------------------

seeds_strategy = st.lists(
    st.integers(min_value=0, max_value=5), min_size=1, max_size=3, unique=True
)
browsers_strategy = st.lists(
    st.sampled_from([38, 40, 42, 44]), min_size=1, max_size=3, unique=True
)


def build_spec(seeds, browsers) -> CampaignSpec:
    return CampaignSpec(
        name="prop",
        base=small_campaign(n_runs=2),
        axes={"n_browsers": tuple(browsers)},
        seeds=tuple(seeds),
        stages=("simulate",),
    )


def fake_cache(store: ArtifactStore, spec: CampaignSpec, cached_cells) -> None:
    """Publish a synthetic (verified) entry for each chosen cell, so the
    planner sees it as cached without anything being simulated."""
    from repro.campaign import stage_artifact

    for cell in cached_cells:
        name, fp = stage_artifact(spec, cell, "simulate")
        if not store.contains(name):
            store.write(
                name,
                lambda p: p.write_bytes(b"synthetic"),
                kind="history",
                fingerprint=fp,
            )


def missing_fps(spec, cells, store) -> set:
    plan = plan_cells(spec, cells, store)
    return {p.cell.fingerprint for p in plan.missing_cells}


def cached_fps(spec, cells, store) -> set:
    plan = plan_cells(spec, cells, store)
    return {p.cell.fingerprint for p in plan.cached_cells}


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    seeds_a=seeds_strategy,
    browsers_a=browsers_strategy,
    seeds_b=seeds_strategy,
    browsers_b=browsers_strategy,
    cache_mask=st.integers(min_value=0, max_value=2**12 - 1),
)
def test_diff_of_union_is_union_of_diffs(
    tmp_path_factory, seeds_a, browsers_a, seeds_b, browsers_b, cache_mask
):
    store = ArtifactStore(tmp_path_factory.mktemp("prop-store"))
    spec_a = build_spec(seeds_a, browsers_a)
    spec_b = build_spec(seeds_b, browsers_b)

    union = merged_cells([spec_a, spec_b])
    # Pre-cache an arbitrary subset of the union's cells (the mask picks
    # which); both specs share the store, as cooperating drivers would.
    cached = [cell for i, cell in enumerate(union) if cache_mask & (1 << i)]
    fake_cache(store, spec_a, cached)

    # diff(A ∪ B) == diff(A) ∪ diff(B) — and the cached complement too.
    assert missing_fps(spec_a, union, store) == (
        missing_fps(spec_a, spec_a.cells(), store)
        | missing_fps(spec_b, spec_b.cells(), store)
    )
    assert cached_fps(spec_a, union, store) == (
        cached_fps(spec_a, spec_a.cells(), store)
        | cached_fps(spec_b, spec_b.cells(), store)
    )
    # Sanity: the union partitions exactly.
    assert len(missing_fps(spec_a, union, store)) + len(
        cached_fps(spec_a, union, store)
    ) == len(union)


# -- SIGKILL torture ----------------------------------------------------------

TORTURE_RUNS = 24

TORTURE_DRIVER = textwrap.dedent(
    """
    import sys

    from repro.campaign import CampaignManager, CampaignSpec
    from repro.store import ArtifactStore

    spec = CampaignSpec.from_json_file(sys.argv[1])
    print("started", flush=True)
    CampaignManager(spec, ArtifactStore()).run(jobs=1, checkpoint_every=1)
    print("finished", flush=True)
    """
)


def test_sigkill_mid_campaign_then_rerun_is_bit_identical(tmp_path):
    repo = Path(__file__).resolve().parents[2]
    spec = CampaignSpec(
        name="torture",
        base=small_campaign(n_runs=TORTURE_RUNS),
        stages=("simulate",),
    )
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(spec.to_json())

    # Reference: an uninterrupted run in a private store.
    reference = (
        CampaignManager(spec, ArtifactStore(tmp_path / "reference"))
        .run(jobs=1)
        .outcome(0)
        .results["simulate"]
        .content_fingerprint()
    )

    shared = tmp_path / "cache"
    env = dict(os.environ)
    env["F2PM_CACHE_DIR"] = str(shared)
    env["PYTHONPATH"] = f"{repo / 'src'}{os.pathsep}{env.get('PYTHONPATH', '')}"

    # Kill a driver mid-campaign (checkpoint_every=1 makes any moment
    # mid-campaign); retry with a longer fuse if it finished too fast.
    killed = False
    for fuse in (0.4, 0.2, 0.1):
        proc = subprocess.Popen(
            [sys.executable, "-c", TORTURE_DRIVER, str(spec_path)],
            stdout=subprocess.PIPE,
            cwd=repo,
            env=env,
            text=True,
        )
        assert proc.stdout.readline().strip() == "started"
        time.sleep(fuse)
        if proc.poll() is None:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            killed = True
            break
        # Finished before the fuse: clear and try a shorter one.
        for p in shared.glob("*"):
            if p.is_file():
                p.unlink()

    # Even if every fuse lost the race (very fast machine), the rerun
    # assertion below still verifies resume-or-load bit-identity.
    result = CampaignManager(spec, ArtifactStore(shared)).run(jobs=1)
    final = result.outcome(0).results["simulate"].content_fingerprint()
    assert final == reference, (
        f"killed={killed}: resumed campaign diverged from uninterrupted run"
    )
