"""Tests for canonical config fingerprints (repro.store.keys).

The properties under test are exactly the failure modes of the old
``repr(config)`` key: repr-dependent floats, accidental invalidation on
dataclass field additions, and type collisions.
"""

import enum
from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.store.keys import (
    KEY_SCHEMA_VERSION,
    canonical,
    canonical_json,
    fingerprint,
    short_fingerprint,
)


@dataclass(frozen=True)
class Inner:
    gain: float = 1.5
    label: str = "x"


@dataclass(frozen=True)
class ConfigV1:
    runs: int = 10
    rate: float = 0.1
    inner: Inner = field(default_factory=Inner)
    grid: tuple = (1.0, 2.0)


@dataclass(frozen=True)
class ConfigV2:
    """V1 plus a new defaulted field — simulates a dataclass evolving."""

    runs: int = 10
    rate: float = 0.1
    inner: Inner = field(default_factory=Inner)
    grid: tuple = (1.0, 2.0)
    new_knob: bool = False


class TestCanonicalEncoding:
    def test_floats_encoded_by_value_not_repr(self):
        # 0.1 + 0.2 != 0.3 — canonical() must see through repr games and
        # key by the exact binary value.
        assert canonical(0.1 + 0.2) != canonical(0.3)
        assert canonical(0.5) == canonical(1.0 / 2.0)
        assert canonical(np.float64(0.25)) == canonical(0.25)

    def test_float_hex_not_repr_shortening(self):
        assert canonical(0.1) == f"f|{(0.1).hex()}"
        assert "0.1" not in str(canonical(0.1))  # no decimal repr anywhere

    def test_nan_normalized(self):
        assert canonical(float("nan")) == canonical(np.float64("nan"))

    def test_strings_and_floats_cannot_collide(self):
        assert canonical("f|0x1.8p+0") != canonical(1.5)

    def test_bool_is_not_int(self):
        # True == 1 in Python, but the canonical JSON must distinguish them.
        assert canonical_json("k", True) != canonical_json("k", 1)

    def test_enum_by_name(self):
        class Mode(enum.Enum):
            FAST = 1
            SLOW = 2

        assert canonical(Mode.FAST) == "e|FAST"

    def test_ndarray_by_content(self):
        a = np.arange(6.0).reshape(2, 3)
        b = np.arange(6.0).reshape(2, 3)
        assert canonical(a) == canonical(b)
        b[0, 0] = 99.0
        assert canonical(a) != canonical(b)

    def test_dict_order_independent(self):
        assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})

    def test_unknown_type_rejected(self):
        class Opaque:
            pass

        with pytest.raises(TypeError, match="no canonical encoding"):
            canonical(Opaque())


class TestDataclassKeys:
    def test_equal_content_equal_fingerprint(self):
        assert fingerprint("cfg", ConfigV1()) == fingerprint("cfg", ConfigV1())
        assert fingerprint("cfg", ConfigV1(rate=0.1)) == fingerprint(
            "cfg", ConfigV1()
        )

    def test_value_change_changes_fingerprint(self):
        assert fingerprint("cfg", ConfigV1(runs=11)) != fingerprint(
            "cfg", ConfigV1()
        )
        assert fingerprint("cfg", ConfigV1(inner=Inner(gain=2.0))) != fingerprint(
            "cfg", ConfigV1()
        )

    def test_field_addition_preserves_default_keys(self):
        # Default elision: adding a defaulted field must NOT retire every
        # cached artifact (the old repr() key did, silently).
        assert fingerprint("cfg", ConfigV2()) == fingerprint("cfg", ConfigV1())

    def test_field_addition_nondefault_changes_key(self):
        assert fingerprint("cfg", ConfigV2(new_knob=True)) != fingerprint(
            "cfg", ConfigV1()
        )

    def test_kind_separates_namespaces(self):
        assert fingerprint("campaign", ConfigV1()) != fingerprint(
            "f2pm-config", ConfigV1()
        )

    def test_schema_version_embedded(self):
        assert f'"schema":{KEY_SCHEMA_VERSION}' in canonical_json("cfg", ConfigV1())

    def test_short_fingerprint_is_prefix(self):
        full = fingerprint("cfg", ConfigV1())
        assert full.startswith(short_fingerprint("cfg", ConfigV1()))
        assert len(short_fingerprint("cfg", ConfigV1())) == 16


class TestRealConfigs:
    def test_campaign_config_fingerprints(self):
        from repro.system import CampaignConfig

        base = CampaignConfig(n_runs=20, seed=7)
        assert fingerprint("campaign", base) == fingerprint(
            "campaign", CampaignConfig(n_runs=20, seed=7)
        )
        assert fingerprint("campaign", base) != fingerprint(
            "campaign", CampaignConfig(n_runs=21, seed=7)
        )

    def test_f2pm_config_fingerprints(self):
        from repro.core import AggregationConfig, F2PMConfig

        a = F2PMConfig(aggregation=AggregationConfig(window_seconds=30.0))
        b = F2PMConfig(aggregation=AggregationConfig(window_seconds=60.0))
        assert fingerprint("f2pm", a) != fingerprint("f2pm", b)

    def test_no_repr_in_campaign_key(self):
        # Regression for the old scheme: the key must not depend on repr().
        from repro.experiments.common import _campaign_key
        from repro.system import CampaignConfig

        class Evil(CampaignConfig):
            def __repr__(self):  # pragma: no cover - repr never consulted
                raise AssertionError("cache key consulted repr()")

        cfg = Evil(n_runs=2, seed=1)
        key = _campaign_key(cfg)
        assert key.startswith("history_")
