"""Checkpointed campaigns resume bit-identically (or start clean).

The determinism contract: every run's random stream is pre-spawned from
the campaign seed, so a campaign assembled as prefix-from-checkpoint plus
freshly simulated remainder is *bit-identical* to one uninterrupted
simulation — for any worker count and any kill point. An untrustworthy
checkpoint (wrong config, wrong size, torn write) is discarded and the
campaign restarts from run 0 rather than resuming garbage.
"""

import json

import pytest

from repro.core import AggregationConfig, F2PMConfig
from repro.core.incremental import IncrementalCollector, IncrementalConfig
from repro.store import CampaignCheckpoint
from repro.system import TestbedSimulator


def fingerprints(history):
    return history.content_fingerprint()


@pytest.fixture
def plain(campaign):
    """The uninterrupted reference campaign."""
    return TestbedSimulator(campaign).run_campaign()


def make_ckpt(tmp_path, campaign, **kw):
    kw.setdefault("key", "test-campaign-key")
    kw.setdefault("total_runs", campaign.n_runs)
    return CampaignCheckpoint(tmp_path / "c.ckpt.npz", **kw)


class TestCampaignResume:
    def test_checkpointed_equals_plain(self, tmp_path, campaign, plain):
        ckpt = make_ckpt(tmp_path, campaign)
        history = TestbedSimulator(campaign).run_campaign(
            checkpoint=ckpt, checkpoint_every=2
        )
        assert fingerprints(history) == fingerprints(plain)

    def test_resume_from_prefix_is_bit_identical(self, tmp_path, campaign, plain):
        # Simulate a kill after 2 of 4 runs: the checkpoint holds the
        # prefix, the restarted campaign simulates only the remainder.
        ckpt = make_ckpt(tmp_path, campaign)
        ckpt.save(list(plain.runs)[:2])
        history = TestbedSimulator(campaign).run_campaign(
            checkpoint=ckpt, checkpoint_every=2
        )
        assert fingerprints(history) == fingerprints(plain)

    def test_parallel_resume_is_bit_identical(self, tmp_path, campaign, plain):
        ckpt = make_ckpt(tmp_path, campaign)
        ckpt.save(list(plain.runs)[:3])
        history = TestbedSimulator(campaign).run_campaign(
            jobs=2, checkpoint=ckpt, checkpoint_every=2
        )
        assert fingerprints(history) == fingerprints(plain)

    def test_checkpoint_discarded_on_completion(self, tmp_path, campaign):
        ckpt = make_ckpt(tmp_path, campaign)
        TestbedSimulator(campaign).run_campaign(checkpoint=ckpt, checkpoint_every=2)
        assert not ckpt.path.exists()
        assert not ckpt._meta_path.exists()
        assert ckpt.load() == ([], {})


class TestCheckpointValidation:
    def test_wrong_key_ignored(self, tmp_path, campaign, plain):
        make_ckpt(tmp_path, campaign, key="old-config").save(list(plain.runs)[:2])
        ckpt = make_ckpt(tmp_path, campaign, key="new-config")
        assert ckpt.load() == ([], {})
        assert not ckpt.path.exists()  # untrusted state removed

    def test_wrong_total_runs_ignored(self, tmp_path, campaign, plain):
        make_ckpt(tmp_path, campaign, total_runs=4).save(list(plain.runs)[:2])
        ckpt = make_ckpt(tmp_path, campaign, total_runs=40)
        assert ckpt.load() == ([], {})

    def test_torn_payload_ignored(self, tmp_path, campaign, plain):
        ckpt = make_ckpt(tmp_path, campaign)
        ckpt.save(list(plain.runs)[:2])
        blob = ckpt.path.read_bytes()
        ckpt.path.write_bytes(blob[: len(blob) // 2])
        assert ckpt.load() == ([], {})

    def test_tampered_meta_ignored(self, tmp_path, campaign, plain):
        ckpt = make_ckpt(tmp_path, campaign)
        ckpt.save(list(plain.runs)[:2])
        meta = json.loads(ckpt._meta_path.read_text())
        meta["n_done"] = 3  # lies about the prefix length
        ckpt._meta_path.write_text(json.dumps(meta))
        assert ckpt.load() == ([], {})

    def test_half_a_checkpoint_is_no_checkpoint(self, tmp_path, campaign, plain):
        ckpt = make_ckpt(tmp_path, campaign)
        ckpt.save(list(plain.runs)[:2])
        ckpt._meta_path.unlink()  # crash between payload and sidecar
        assert ckpt.load() == ([], {})
        assert not ckpt.path.exists()

    def test_roundtrip_preserves_extra(self, tmp_path, campaign, plain):
        ckpt = make_ckpt(tmp_path, campaign)
        ckpt.save(list(plain.runs)[:2], extra={"trace": [{"n_runs": 2}]})
        records, extra = ckpt.load()
        assert len(records) == 2
        assert extra == {"trace": [{"n_runs": 2}]}
        assert fingerprints(type(plain)(runs=records)) == fingerprints(
            type(plain)(runs=list(plain.runs)[:2])
        )

    def test_invalid_checkpoint_still_yields_correct_campaign(
        self, tmp_path, campaign, plain
    ):
        # End to end: a corrupt checkpoint must cost only time, never
        # correctness.
        ckpt = make_ckpt(tmp_path, campaign)
        ckpt.save(list(plain.runs)[:2])
        ckpt.path.write_bytes(b"rot")
        history = TestbedSimulator(campaign).run_campaign(
            checkpoint=ckpt, checkpoint_every=2
        )
        assert fingerprints(history) == fingerprints(plain)


class TestIncrementalResume:
    def _collector(self, campaign):
        f2pm = F2PMConfig(
            aggregation=AggregationConfig(window_seconds=30.0),
            models=("linear",),
            lasso_predictor_lambdas=(1.0, 1e9),
            seed=0,
        )
        cfg = IncrementalConfig(
            batch_runs=2, max_runs=4, target_smae_frac=0.001, seed=5
        )
        return IncrementalCollector(TestbedSimulator(campaign), f2pm, cfg)

    def test_resume_matches_uninterrupted_collection(self, tmp_path, campaign):
        plain = self._collector(campaign).collect()

        # First attempt is "killed" after one batch: steal the checkpoint
        # it wrote by stopping the simulator after batch 1.
        ckpt = CampaignCheckpoint(
            tmp_path / "inc.ckpt.npz", key="inc", total_runs=4
        )
        ckpt.save(
            list(plain.history.runs)[:2],
            extra={
                "trace": [
                    {
                        "n_runs": p.n_runs,
                        "n_windows": p.n_windows,
                        "best_model": p.best_model,
                        "best_smae": p.best_smae,
                        "target": p.target,
                    }
                    for p in plain.trace[:1]
                ]
            },
        )
        resumed = self._collector(campaign).collect(checkpoint=ckpt)
        assert fingerprints(resumed.history) == fingerprints(plain.history)
        assert resumed.trace == plain.trace
        assert not ckpt.path.exists()  # discarded on completion
