"""Concurrent cold-cache drivers must cooperate, not duplicate work.

Two fresh processes ask for the same (uncached) campaign against a shared
``F2PM_CACHE_DIR``. The advisory per-entry lock makes one of them
simulate while the other waits and loads the published artifact — so the
campaign is simulated exactly once and both see identical data.
"""

import json
import os
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.store.lock import FileLock, LockTimeout

N_RUNS = 3

WORKER = textwrap.dedent(
    f"""
    import json
    import sys
    import time

    from repro.experiments import common
    from repro.obs import get_metrics
    from tests.conftest import small_campaign

    go_file = sys.argv[1]
    print("ready", flush=True)
    while True:  # start barrier: both workers begin together
        try:
            open(go_file).close()
            break
        except OSError:
            time.sleep(0.005)

    history = common.default_history(small_campaign(n_runs={N_RUNS}, seed=11))
    counters = get_metrics().snapshot()["counters"]
    print(json.dumps({{
        "fingerprint": history.content_fingerprint(),
        "simulated_runs": counters.get("sim.runs_total", 0),
        "lock_waits": counters.get("store.lock_waits_total", 0),
        "hits": counters.get("store.hits_total", 0),
    }}), flush=True)
    """
)


def test_two_cold_drivers_one_simulation(tmp_path):
    repo = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    env["F2PM_CACHE_DIR"] = str(tmp_path / "cache")
    env["PYTHONPATH"] = f"{repo / 'src'}{os.pathsep}{env.get('PYTHONPATH', '')}"
    go_file = tmp_path / "go"

    procs = [
        subprocess.Popen(
            [sys.executable, "-c", WORKER, str(go_file)],
            stdout=subprocess.PIPE,
            cwd=repo,
            env=env,
            text=True,
        )
        for _ in range(2)
    ]
    try:
        for proc in procs:
            assert proc.stdout.readline().strip() == "ready"
        go_file.touch()  # release both at once
        results = []
        for proc in procs:
            out, _ = proc.communicate(timeout=120)
            assert proc.returncode == 0
            results.append(json.loads(out.strip().splitlines()[-1]))
    finally:
        for proc in procs:
            if proc.poll() is None:  # pragma: no cover - cleanup on test bug
                proc.kill()
                proc.wait()

    simulated = sorted(r["simulated_runs"] for r in results)
    assert simulated == [0, N_RUNS], results  # exactly one simulation
    assert results[0]["fingerprint"] == results[1]["fingerprint"]
    loader = next(r for r in results if r["simulated_runs"] == 0)
    assert loader["hits"] == 1  # the waiter *loaded* the published artifact
    assert loader["lock_waits"] >= 1  # ... after genuinely waiting on the lock

    # Exactly one history artifact (plus its checkpoint leftovers, if any)
    # was published to the shared store.
    npz = [p.name for p in (tmp_path / "cache").glob("history_*.npz")]
    assert len([n for n in npz if not n.endswith(".ckpt.npz")]) == 1


class TestFileLock:
    def test_reentrant_exclusion_between_processes(self, tmp_path):
        # A child process holding the lock forces the parent to wait.
        lock_path = tmp_path / "l.lock"
        script = textwrap.dedent(
            f"""
            import sys, time
            from repro.store.lock import FileLock
            with FileLock({str(lock_path)!r}):
                print("locked", flush=True)
                time.sleep(0.6)
            """
        )
        repo = Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{repo / 'src'}{os.pathsep}{env.get('PYTHONPATH', '')}"
        proc = subprocess.Popen(
            [sys.executable, "-c", script], stdout=subprocess.PIPE, env=env, text=True
        )
        try:
            assert proc.stdout.readline().strip() == "locked"
            t0 = time.monotonic()
            with FileLock(lock_path, timeout=30.0) as lock:
                pass
            assert lock.waited
            assert time.monotonic() - t0 > 0.2
        finally:
            proc.wait(timeout=30)

    def test_timeout_raises(self, tmp_path):
        lock_path = tmp_path / "l.lock"
        with FileLock(lock_path):
            inner = FileLock(lock_path, timeout=0.2, poll_interval=0.02)
            with pytest.raises(LockTimeout):
                inner.acquire()

    def test_uncontended_acquire_does_not_wait(self, tmp_path):
        with FileLock(tmp_path / "l.lock") as lock:
            assert not lock.waited
            assert lock.wait_seconds < lock.poll_interval
