"""Tests for ArtifactStore: verification, cache protocol, maintenance."""

import json

import pytest

from repro.obs import get_metrics
from repro.store import ArtifactStore, StoreCorruption
from repro.store.store import META_SUFFIX, STORE_VERSION


def write_entry(store, name="a.bin", payload=b"payload bytes", **kw):
    kw.setdefault("kind", "test")
    kw.setdefault("fingerprint", "f" * 64)
    return store.write(name, lambda p: p.write_bytes(payload), **kw)


def counters():
    return dict(get_metrics().snapshot()["counters"])


class TestWriteVerify:
    def test_write_publishes_payload_and_sidecar(self, tmp_path):
        store = ArtifactStore(tmp_path)
        write_entry(store, "a.bin")
        assert (tmp_path / "a.bin").read_bytes() == b"payload bytes"
        meta = json.loads((tmp_path / f"a.bin{META_SUFFIX}").read_text())
        assert meta["store_version"] == STORE_VERSION
        assert meta["kind"] == "test"
        assert store.verify("a.bin")["sha256"] == meta["sha256"]

    def test_clean_miss_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ArtifactStore(tmp_path).verify("nothing.bin")

    def test_payload_bitflip_detected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        write_entry(store, "a.bin")
        (tmp_path / "a.bin").write_bytes(b"payload bytEs")
        with pytest.raises(StoreCorruption, match="checksum mismatch"):
            store.verify("a.bin")

    def test_truncated_payload_detected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        write_entry(store, "a.bin")
        (tmp_path / "a.bin").write_bytes(b"payload")
        with pytest.raises(StoreCorruption, match="checksum mismatch"):
            store.verify("a.bin")

    def test_missing_sidecar_detected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        write_entry(store, "a.bin")
        (tmp_path / f"a.bin{META_SUFFIX}").unlink()
        with pytest.raises(StoreCorruption, match="sidecar missing"):
            store.verify("a.bin")

    def test_sidecar_without_payload_detected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        write_entry(store, "a.bin")
        (tmp_path / "a.bin").unlink()
        with pytest.raises(StoreCorruption, match="without payload"):
            store.verify("a.bin")

    def test_future_store_version_refused(self, tmp_path):
        store = ArtifactStore(tmp_path)
        write_entry(store, "a.bin")
        meta_path = tmp_path / f"a.bin{META_SUFFIX}"
        meta = json.loads(meta_path.read_text())
        meta["store_version"] = STORE_VERSION + 1
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StoreCorruption, match="store version"):
            store.verify("a.bin")

    def test_loader_failure_is_corruption(self, tmp_path):
        store = ArtifactStore(tmp_path)
        write_entry(store, "a.bin")

        def bad_loader(path):
            raise ValueError("cannot parse")

        with pytest.raises(StoreCorruption, match="failed to load"):
            store.fetch("a.bin", bad_loader)

    def test_invalid_names_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError):
            store.path("../escape")
        with pytest.raises(ValueError):
            store.path(".hidden")


class TestGetOrProduce:
    @staticmethod
    def _cached(store, name="e.txt", value="v1"):
        calls = []

        def produce():
            calls.append(1)
            return value

        result, produced = store.get_or_produce(
            name,
            produce,
            save=lambda v, p: p.write_text(v),
            load=lambda p: p.read_text(),
            kind="text",
        )
        return result, produced, len(calls)

    def test_miss_produces_then_hit_loads(self, tmp_path):
        store = ArtifactStore(tmp_path)
        v1, produced1, calls1 = self._cached(store)
        assert (v1, produced1, calls1) == ("v1", True, 1)
        v2, produced2, calls2 = self._cached(store)
        assert (v2, produced2, calls2) == ("v1", False, 0)

    def test_metrics_hit_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        before = counters()
        self._cached(store)
        self._cached(store)
        after = counters()
        assert after.get("store.misses_total", 0) == before.get("store.misses_total", 0) + 1
        assert after.get("store.hits_total", 0) == before.get("store.hits_total", 0) + 1

    def test_corrupt_entry_evicted_and_reproduced(self, tmp_path):
        store = ArtifactStore(tmp_path)
        self._cached(store)
        (tmp_path / "e.txt").write_text("tampered")
        before = counters()
        value, produced, calls = self._cached(store, value="v2")
        assert (value, produced, calls) == ("v2", True, 1)
        after = counters()
        assert after.get("store.corrupt_total", 0) == before.get("store.corrupt_total", 0) + 1
        # the rebuilt entry verifies clean again
        assert store.verify("e.txt")["sha256"]

    def test_crash_between_payload_and_sidecar_recovers(self, tmp_path):
        # Simulate the documented torn state: payload published, sidecar
        # never written (the write order guarantees this is the only
        # possible in-between state).
        store = ArtifactStore(tmp_path)
        self._cached(store)
        (tmp_path / f"e.txt{META_SUFFIX}").unlink()
        value, produced, calls = self._cached(store, value="v3")
        assert (value, produced, calls) == ("v3", True, 1)

    def test_mid_publication_window_not_evicted(self, tmp_path):
        # Regression: the payload-then-sidecar publication leaves a
        # window where a lock-free reader sees "payload without meta" —
        # indistinguishable from a torn write. The reader must NOT evict
        # the (healthy) payload from outside the lock; it has to wait
        # for the producer's lock and then load what was published.
        import threading
        import time

        from repro.store.lock import FileLock

        store = ArtifactStore(tmp_path)
        name = "e.txt"
        store.write(name, lambda p: p.write_text("published"), kind="text")
        meta_path = tmp_path / f"{name}{META_SUFFIX}"
        meta_json = meta_path.read_text()
        meta_path.unlink()  # the in-between state, producer still "writing"

        producer_lock = FileLock(store._lock_path(name))
        producer_lock.acquire()

        def finish_publication():
            time.sleep(0.2)  # the reader is blocked on the lock by now
            meta_path.write_text(meta_json)  # sidecar rename lands
            producer_lock.release()

        thread = threading.Thread(target=finish_publication)
        thread.start()
        try:
            value, produced, calls = self._cached(store, value="racer")
        finally:
            thread.join()
        # Loaded the producer's artifact — never evicted, never re-produced.
        assert (value, produced, calls) == ("published", False, 0)
        assert (tmp_path / name).read_text() == "published"


class TestMaintenance:
    def test_entries_and_info(self, tmp_path):
        store = ArtifactStore(tmp_path)
        write_entry(store, "a.bin")
        write_entry(store, "b.bin", payload=b"other")
        names = [e.name for e in store.entries()]
        assert names == ["a.bin", "b.bin"]
        info = store.info("a.bin")
        assert info.ok and info.kind == "test" and info.size_bytes == 13

    def test_gc_ignores_foreign_files(self, tmp_path):
        # Driver manifests live in the same directory; the store must
        # never claim or collect them.
        store = ArtifactStore(tmp_path)
        write_entry(store, "a.bin")
        foreign = tmp_path / "table2.manifest.json"
        foreign.write_text("{}")
        assert [e.name for e in store.entries()] == ["a.bin"]
        report = store.gc()
        assert report.removed == ()
        assert foreign.exists()

    def test_gc_sweeps_corrupt_entries_and_temps(self, tmp_path):
        store = ArtifactStore(tmp_path)
        write_entry(store, "a.bin")
        write_entry(store, "bad.bin")
        (tmp_path / "bad.bin").write_bytes(b"rot")
        orphan_tmp = tmp_path / "x.deadbeef-cafe0123.tmp.npz"
        orphan_tmp.write_bytes(b"partial")
        report = store.gc()
        assert not orphan_tmp.exists()
        assert not (tmp_path / "bad.bin").exists()
        assert not (tmp_path / f"bad.bin{META_SUFFIX}").exists()
        assert store.contains("a.bin")
        assert report.freed_bytes > 0

    def test_clear_removes_everything(self, tmp_path):
        store = ArtifactStore(tmp_path)
        write_entry(store, "a.bin")
        store.get_or_produce(  # creates a lock file under locks/
            "b.txt",
            lambda: "v",
            save=lambda v, p: p.write_text(v),
            load=lambda p: p.read_text(),
            kind="text",
        )
        count = store.clear()
        assert count >= 3
        assert list(tmp_path.iterdir()) == []
