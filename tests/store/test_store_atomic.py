"""Crash-safety tests: atomic writes, checksums, kill -9 torture.

The acceptance bar: a ``kill -9`` during ``DataHistory.save`` or
``save_model`` must never leave a file that ``load`` accepts, and a
corrupted artifact must be *detected*, not deserialized into garbage.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.history import DataHistory
from repro.core.persistence import load_model, save_model
from repro.ml.linear import LinearRegression
from repro.store import ArtifactStore, atomic_write_bytes, atomic_writer, sha256_file
from repro.store.atomic import is_tmp_file

from tests.core.test_core_history import make_run


class TestAtomicWriter:
    def test_success_publishes(self, tmp_path):
        target = tmp_path / "out.bin"
        with atomic_writer(target) as tmp:
            tmp.write_bytes(b"hello")
        assert target.read_bytes() == b"hello"
        assert list(tmp_path.iterdir()) == [target]  # no temporaries left

    def test_body_failure_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "out.bin"
        target.write_bytes(b"old")
        with pytest.raises(RuntimeError, match="boom"):
            with atomic_writer(target) as tmp:
                tmp.write_bytes(b"partial garbage")
                raise RuntimeError("boom")
        assert target.read_bytes() == b"old"
        assert list(tmp_path.iterdir()) == [target]

    def test_body_must_write(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="did not write"):
            with atomic_writer(tmp_path / "never.bin"):
                pass

    def test_tmp_names_are_recognizable(self, tmp_path):
        captured = {}
        with atomic_writer(tmp_path / "data.npz") as tmp:
            captured["tmp"] = tmp
            tmp.write_bytes(b"x")
        assert is_tmp_file(captured["tmp"])
        assert not is_tmp_file(tmp_path / "data.npz")
        assert not is_tmp_file(tmp_path / "x.manifest.json")
        # numpy's extension sniffing must not re-suffix the temp name
        assert captured["tmp"].suffix == ".npz"

    def test_sha256_file(self, tmp_path):
        p = atomic_write_bytes(tmp_path / "f", b"abc")
        import hashlib

        assert sha256_file(p) == hashlib.sha256(b"abc").hexdigest()


class TestHistoryAtomicSave:
    def test_save_is_atomic_under_failure(self, tmp_path, monkeypatch):
        history = DataHistory(runs=[make_run(n=50)])
        target = tmp_path / "h.npz"
        history.save(target)
        before = target.read_bytes()

        # Simulate a crash at the instant of publication: os.replace never
        # runs, so the old complete file must survive and no torn file
        # may take its place.
        import repro.store.atomic as atomic_mod

        def crashing_replace(src, dst):
            raise OSError("simulated crash during publish")

        monkeypatch.setattr(atomic_mod.os, "replace", crashing_replace)
        with pytest.raises(OSError, match="simulated crash"):
            DataHistory(runs=[make_run(n=99)]).save(target)
        monkeypatch.undo()
        assert target.read_bytes() == before
        loaded = DataHistory.load(target)
        assert loaded[0].n_datapoints == 50

    def test_truncated_npz_rejected_by_load(self, tmp_path):
        target = tmp_path / "h.npz"
        DataHistory(runs=[make_run(n=200)]).save(target)
        blob = target.read_bytes()
        target.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(Exception):
            DataHistory.load(target)


@pytest.mark.parametrize("artifact", ["history", "model"])
def test_kill9_never_publishes_torn_file(tmp_path, artifact):
    """SIGKILL a process that is saving in a tight loop; whatever file
    exists afterwards must load cleanly (or not exist at all)."""
    target = tmp_path / ("h.npz" if artifact == "history" else "m.pkl")
    script = textwrap.dedent(
        f"""
        import sys
        import numpy as np
        from repro.core.history import DataHistory, RunRecord
        from repro.core.persistence import save_model
        from repro.ml.linear import LinearRegression

        n = 40000
        feats = np.zeros((n, 15))
        feats[:, 0] = np.arange(n, dtype=float)
        feats[:, 1:] = np.random.default_rng(0).normal(size=(n, 14))
        history = DataHistory(runs=[RunRecord(features=feats, fail_time=float(n))])
        X = np.random.default_rng(1).normal(size=(200, 40))
        y = X[:, 0] * 2.0
        model = LinearRegression().fit(X, y)
        # Fat metadata makes the envelope large enough that writes take
        # real time, so the SIGKILL lands mid-write with high probability.
        blob = np.random.default_rng(2).normal(size=1_500_000)
        print("ready", flush=True)
        while True:
            if {artifact!r} == "history":
                history.save({str(target)!r})
            else:
                save_model(model, {str(target)!r}, metadata={{"blob": blob}})
        """
    )
    env = dict(os.environ)
    repo = Path(__file__).resolve().parents[2]
    env["PYTHONPATH"] = f"{repo / 'src'}{os.pathsep}{env.get('PYTHONPATH', '')}"
    proc = subprocess.Popen(
        [sys.executable, "-c", script], stdout=subprocess.PIPE, env=env
    )
    try:
        assert proc.stdout.readline().strip() == b"ready"
        deadline = time.monotonic() + 10.0
        killed_mid_flight = False
        while time.monotonic() < deadline:
            time.sleep(0.01)
            if any(is_tmp_file(p) for p in tmp_path.iterdir()):
                killed_mid_flight = True
                break
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on test bug
            proc.kill()
            proc.wait()
    # The loop is write-bound, so the poll catches a temp file (i.e. the
    # kill landed mid-write) essentially always. Either way the invariant
    # holds: whatever file exists must load completely.
    if target.exists():
        if artifact == "history":
            DataHistory.load(target)  # must parse completely
        else:
            load_model(target)
    assert killed_mid_flight or target.exists()
    # gc sweeps any orphaned temporaries the kill left behind
    ArtifactStore(tmp_path).gc()
    assert not any(is_tmp_file(p) for p in tmp_path.iterdir())


class TestModelEnvelopeChecksums:
    @pytest.fixture
    def model(self, linear_data):
        X, y = linear_data
        return LinearRegression().fit(X, y), X

    def test_roundtrip(self, model, tmp_path):
        m, X = model
        path = save_model(m, tmp_path / "m.pkl")
        assert np.array_equal(load_model(path).predict(X), m.predict(X))

    def test_truncated_envelope_detected(self, model, tmp_path):
        m, _ = model
        path = save_model(m, tmp_path / "m.pkl")
        blob = path.read_bytes()
        path.write_bytes(blob[:-20])
        with pytest.raises(ValueError, match="checksum mismatch"):
            load_model(path)

    def test_bitflip_detected(self, model, tmp_path):
        m, _ = model
        path = save_model(m, tmp_path / "m.pkl")
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(ValueError, match="checksum mismatch"):
            load_model(path)

    def test_legacy_headerless_pickle_still_loads(self, model, tmp_path):
        import pickle

        from repro.core.persistence import FORMAT_VERSION, ModelEnvelope

        m, X = model
        env = ModelEnvelope(
            model=m,
            feature_names=None,
            package_version="0.0",
            format_version=FORMAT_VERSION,
            metadata={},
        )
        path = tmp_path / "legacy.pkl"
        path.write_bytes(pickle.dumps(env))
        assert np.array_equal(load_model(path).predict(X), m.predict(X))

    def test_garbage_rejected_cleanly(self, tmp_path):
        path = tmp_path / "junk.pkl"
        path.write_bytes(b"\x00\x01\x02 not a pickle at all")
        with pytest.raises(ValueError, match="envelope"):
            load_model(path)
