"""Process-pool plumbing shared by the campaign and training layers.

The dispatch contract is deliberately narrow so that every parallel
entry point in the package behaves identically:

- tasks are submitted with their payload index and results are returned
  **in payload order**, never in completion order — merged artefacts
  (histories, report tables, telemetry) are therefore independent of
  worker scheduling;
- the first failing task cancels everything still queued, shuts the
  pool down, and surfaces one :class:`WorkerError` naming the task —
  no hang, no orphaned pool, no half-merged results;
- ``jobs=1`` never touches :mod:`concurrent.futures` at all (callers
  keep their in-process serial path), so the legacy single-process
  behavior — including its exception types — is always reachable;
- payload data shared by many tasks can ship **once per worker** via
  ``run_tasks(..., context=...)`` instead of once per task: the context
  object is pickled into each worker at pool start (an initializer) and
  read back with :func:`worker_context` inside the task.

Processes (not threads) are the right default here: the simulator and
the model fits are CPU-bound numpy + pure-Python work that holds the
GIL. See ``docs/PARALLELISM.md`` for the full discussion.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from typing import Any, Callable, Sequence


class WorkerError(RuntimeError):
    """One task of a parallel batch failed.

    Carries the human label of the failing task and the original
    exception (also chained as ``__cause__``), so a crashed campaign
    reports *which run* died and *why* in a single line.
    """

    def __init__(self, label: str, cause: BaseException) -> None:
        super().__init__(
            f"{label} failed in a worker process: "
            f"{type(cause).__name__}: {cause}"
        )
        self.label = label
        self.cause = cause


#: Per-worker shared payload installed by the pool initializer.
_worker_context: Any = None


def _set_worker_context(context: Any) -> None:
    """Pool initializer: runs once in each worker process."""
    global _worker_context
    _worker_context = context


def worker_context() -> Any:
    """The ``context`` object this worker's pool was started with.

    ``None`` when the pool was started without one (or when called in
    the parent process).
    """
    return _worker_context


def resolve_jobs(jobs: "int | None") -> int:
    """Normalize a ``--jobs`` value: ``None`` means all cores, else >= 1."""
    if jobs is None:
        return os.cpu_count() or 1
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def run_tasks(
    worker: Callable[[Any], Any],
    payloads: Sequence[Any],
    *,
    jobs: int,
    labels: "Sequence[str] | None" = None,
    context: Any = None,
) -> list[Any]:
    """Run ``worker(payload)`` for every payload on ``jobs`` processes.

    Returns the results **ordered by payload index** regardless of
    completion order. On the first task failure the remaining queued
    tasks are cancelled, the pool is shut down, and a
    :class:`WorkerError` naming the failing task is raised.

    ``worker`` must be a module-level callable and every payload must be
    picklable (the usual :mod:`multiprocessing` constraints). A non-None
    ``context`` is shipped once to each worker at pool start and is
    available inside ``worker`` via :func:`worker_context` — use it for
    bulky data shared by many payloads (e.g. a training split fitted by
    every model in a grid) instead of repeating it per payload.
    """
    payloads = list(payloads)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if not payloads:
        return []
    if labels is not None and len(labels) != len(payloads):
        raise ValueError("labels must align with payloads")

    results: list[Any] = [None] * len(payloads)
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(payloads)),
        initializer=_set_worker_context if context is not None else None,
        initargs=(context,) if context is not None else (),
    ) as pool:
        futures = {pool.submit(worker, p): i for i, p in enumerate(payloads)}
        done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
        failed: "tuple[int, BaseException] | None" = None
        for fut in done:
            exc = fut.exception()
            if exc is not None:
                idx = futures[fut]
                if failed is None or idx < failed[0]:
                    failed = (idx, exc)
        if failed is not None:
            pool.shutdown(wait=True, cancel_futures=True)
            idx, exc = failed
            label = labels[idx] if labels is not None else f"task {idx}"
            raise WorkerError(label, exc) from exc
        # FIRST_EXCEPTION with no exception == ALL_COMPLETED.
        assert not not_done
        for fut, idx in futures.items():
            results[idx] = fut.result()
    return results
