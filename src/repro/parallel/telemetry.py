"""Worker-side observability capture and parent-side merge.

Each worker task runs against the worker process's *own* global tracer,
metrics registry and telemetry bus (with the default ``fork`` start
method these begin as copies of the parent's). To keep accounting exact:

1. :func:`configure_worker` aligns the worker's obs switches with the
   parent's (shipped in the task payload, so ``--no-obs`` and
   ``F2PM_OBS=0`` behave identically under any start method);
2. :func:`begin_capture` resets the worker's tracer + registry + bus,
   so the task records a clean delta (nothing inherited from the parent
   via ``fork``, nothing left over from a previous task on this worker);
3. :func:`collect` exports the delta as a picklable
   :class:`WorkerTelemetry`, shipped back alongside the task result;
4. :func:`merge` folds the telemetry into the parent registry/tracer/
   bus — counters add, gauges last-write-wins, histograms pool
   bucket-exactly, span trees are grafted under the parent's open span,
   and time-series points replay through the parent bus (feeding any
   attached exporter). Callers merge in task-index order, so manifests
   and telemetry streams are deterministic for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs import get_metrics, get_telemetry, get_tracer
from repro.obs.trace import Span


@dataclass
class WorkerTelemetry:
    """One task's observability delta, in transportable form."""

    #: exported span trees (:meth:`Span.to_dict` layout), root-first
    spans: list[dict] = field(default_factory=list)
    #: :meth:`MetricsRegistry.dump_state` payload
    metrics: dict[str, Any] = field(default_factory=dict)
    #: :meth:`TelemetryBus.dump_state` payload (series + events)
    series: dict[str, Any] = field(default_factory=dict)


def configure_worker(trace_on: bool, metrics_on: bool, bus_on: "bool | None" = None) -> None:
    """Align this process's obs switches with the parent's.

    ``bus_on`` defaults to ``metrics_on`` — the telemetry bus ships its
    switch with the metrics switch unless a payload says otherwise,
    which keeps older two-field payloads behaving identically.
    """
    tracer = get_tracer()
    registry = get_metrics()
    bus = get_telemetry()
    tracer.enable() if trace_on else tracer.disable()
    registry.enable() if metrics_on else registry.disable()
    if bus_on is None:
        bus_on = metrics_on
    bus.enable() if bus_on else bus.disable()


def begin_capture() -> None:
    """Start a fresh measurement window in this (worker) process."""
    get_tracer().reset()
    get_metrics().reset()
    get_telemetry().reset()


def collect() -> WorkerTelemetry:
    """Export everything recorded since :func:`begin_capture`."""
    tracer = get_tracer()
    registry = get_metrics()
    bus = get_telemetry()
    return WorkerTelemetry(
        spans=[s.to_dict() for s in tracer.roots] if tracer.enabled else [],
        metrics=registry.dump_state() if registry.enabled else {},
        series=bus.dump_state() if bus.enabled else {},
    )


def merge(telemetry: "WorkerTelemetry | None") -> None:
    """Fold one task's telemetry into the parent registry/tracer/bus.

    Span trees are attached under the innermost open span on the
    calling thread (e.g. the ``simulate.campaign`` span that dispatched
    the work), preserving the tree shape the serial path produces.
    Bus points replay through the parent's :meth:`TelemetryBus.emit`,
    so streaming sinks (``--telemetry-jsonl``) see worker points too.
    """
    if telemetry is None:
        return
    if telemetry.metrics:
        get_metrics().merge_state(telemetry.metrics)
    if getattr(telemetry, "series", None):
        get_telemetry().merge_state(telemetry.series)
    tracer = get_tracer()
    if tracer.enabled:
        for exported in telemetry.spans:
            tracer.attach(Span.from_dict(exported))
