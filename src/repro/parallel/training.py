"""Parallel model training: fan the (model x feature-set) grid out.

Every grid cell is an independent fit of a fresh estimator on an
immutable training set, so cells ship whole to worker processes. The
training/validation wall-clocks the paper's Tables III-IV report are
measured *inside* the worker by :func:`repro.core.evaluation.evaluate_model`
(same code path as serial), so per-model timings stay honest — they are
the time the fit actually took, wherever it ran.

Error metrics and predictions are deterministic functions of the data
(every estimator in the zoo fits with a fixed seed), so the merged
result tables are identical to a serial execution's; only the
nondeterministic wall-clock columns differ, exactly as they do between
two serial executions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.parallel import telemetry
from repro.parallel.pool import run_tasks

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (framework imports us)
    from repro.core.dataset import TrainingSet
    from repro.core.evaluation import ModelReport
    from repro.ml.base import Regressor


def _fit_task(payload: dict[str, Any]) -> tuple:
    """Worker entry point: fit + validate one grid cell.

    The train/validation split normally arrives via the pool's worker
    context (shipped once per worker, keyed by feature set); a payload
    may still carry it inline (``"train"``/``"validation"`` keys), the
    fallback for the rare grid whose cells disagree on the split.
    """
    from repro.core.evaluation import evaluate_model
    from repro.parallel.pool import worker_context

    telemetry.configure_worker(payload["trace_on"], payload["metrics_on"])
    telemetry.begin_capture()
    train = payload.get("train")
    if train is None:
        train, validation = worker_context()[payload["feature_set"]]
    else:
        validation = payload["validation"]
    report, fitted, pred = evaluate_model(
        payload["name"],
        payload["model"],
        train,
        validation,
        smae_threshold=payload["smae_threshold"],
        feature_set=payload["feature_set"],
    )
    return report, fitted, pred, telemetry.collect()


def evaluate_grid_parallel(
    grid: "list[tuple[str, str, Regressor, TrainingSet, TrainingSet]]",
    *,
    smae_threshold: float,
    jobs: int,
) -> "list[tuple[ModelReport, Regressor, np.ndarray]]":
    """Evaluate ``(feature_set, name, model, train, validation)`` cells.

    Returns ``(report, fitted_model, predictions)`` per cell **in grid
    order**, with each cell's telemetry merged into the parent registry
    (in the same order) before returning.

    Every model in a feature set fits the same train/validation split,
    so the splits ship **once per worker** (pool context keyed by
    feature set) instead of being re-pickled into all ~len(grid)
    payloads. A cell whose split unexpectedly differs from its feature
    set's first cell ships inline, preserving correctness for arbitrary
    grids.
    """
    from repro.obs import get_metrics, get_tracer

    tracer = get_tracer()
    registry = get_metrics()
    splits: dict[str, tuple] = {}
    payloads = []
    for feature_set, name, model, train, validation in grid:
        payload = {
            "feature_set": feature_set,
            "name": name,
            "model": model,
            "smae_threshold": smae_threshold,
            "trace_on": tracer.enabled,
            "metrics_on": registry.enabled,
        }
        prev = splits.setdefault(feature_set, (train, validation))
        if prev[0] is not train or prev[1] is not validation:
            payload["train"] = train  # divergent split: ship inline
            payload["validation"] = validation
        payloads.append(payload)
    outcomes = run_tasks(
        _fit_task,
        payloads,
        jobs=jobs,
        labels=[f"fit {name}/{feature_set}" for feature_set, name, *_ in grid],
        context=splits,
    )
    results = []
    for report, fitted, pred, task_telemetry in outcomes:
        telemetry.merge(task_telemetry)
        results.append((report, fitted, pred))
    return results
