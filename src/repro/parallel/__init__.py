"""``repro.parallel`` — deterministic multi-process execution.

The F2PM pipeline is embarrassingly parallel at two layers:

campaign (:func:`repro.parallel.campaign.run_campaign_parallel`)
    Independent simulation runs, dispatched one-per-task to a
    ``ProcessPoolExecutor``. Per-run generators are spawned in the
    parent via the SeedSequence protocol **before** dispatch, so the
    merged :class:`~repro.core.history.DataHistory` is bit-identical
    for any worker count (including the serial path).
training (:func:`repro.parallel.training.evaluate_grid_parallel`)
    The (model x feature-set) grid, one fit+validate per task, with
    per-model wall-clocks measured inside the worker.

Both layers capture the worker's metrics/spans deltas and merge them
back into the parent registry in task-index order
(:mod:`repro.parallel.telemetry`), so traces, metric snapshots and run
manifests are complete and deterministic regardless of where the work
ran. Shared dispatch/error semantics live in
:mod:`repro.parallel.pool`; the guarantees are documented in
``docs/PARALLELISM.md`` and exercised by ``tests/parallel/``.
"""

from __future__ import annotations

from repro.parallel.pool import WorkerError, resolve_jobs, run_tasks, worker_context
from repro.parallel.telemetry import WorkerTelemetry

__all__ = [
    "WorkerError",
    "WorkerTelemetry",
    "resolve_jobs",
    "run_tasks",
    "worker_context",
]
