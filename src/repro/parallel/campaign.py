"""Parallel campaign execution: fan simulation runs out to a pool.

The parent spawns **all** per-run generators before dispatch (the
SeedSequence spawning protocol, exactly as the serial loop does), so a
run's random stream depends only on the campaign seed and the run
index — never on which worker executes it or in what order. Merged
histories are therefore bit-identical for any worker count; see
``tests/parallel/test_determinism.py``.

Workers return ``(RunRecord, WorkerTelemetry)``; the parent reassembles
both in run-index order, so the campaign's metrics/spans/manifests are
byte-for-byte what the serial path would have produced (modulo wall
clocks).

The execution substrate (``CampaignConfig.substrate``) rides along in
the pickled config: each worker dispatches through
``TestbedSimulator.run_once`` and hence runs the same fused/loop engine
the serial path would, so ``jobs=N`` x fused stays bit-identical to
``jobs=1`` x loop (``tests/system/test_substrate_equivalence.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

import numpy as np

from repro.parallel import telemetry
from repro.parallel.pool import run_tasks
from repro.obs import kv, span
from repro.obs.logs import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (simulator imports us)
    from repro.core.history import RunRecord
    from repro.store.checkpoint import CampaignCheckpoint
    from repro.system.simulator import TestbedSimulator

_log = get_logger("parallel.campaign")


def emit_run_series(index: int, record: "RunRecord") -> None:
    """Publish one run's summary points to the telemetry bus.

    Indexed by run number (the campaign's natural x-axis) and emitted
    identically by the serial loop and by each worker task, so the
    merged bus is **bit-identical for any worker count**: each task's
    emission count is far below the ring capacity (three points per
    run), hence every worker dump is lossless, and the parent replays
    dumps in run-index order — exactly the serial emission sequence.
    """
    from repro.obs import get_telemetry

    bus = get_telemetry()
    if not bus.enabled:
        return
    t = float(index)
    bus.emit("sim.run_seconds", t, record.fail_time)
    bus.emit("sim.run_datapoints", t, float(record.n_datapoints))
    bus.emit("sim.run_crashed", t, float(record.metadata.get("crashed", 0.0)))


def _campaign_task(payload: dict[str, Any]) -> tuple:
    """Worker entry point: simulate one run, capture its telemetry."""
    from repro.system.simulator import TestbedSimulator

    telemetry.configure_worker(
        payload["trace_on"], payload["metrics_on"], payload.get("bus_on")
    )
    telemetry.begin_capture()
    simulator = TestbedSimulator(payload["config"], payload["failure_condition"])
    index = payload["index"]
    with span("simulate.run", index=index) as sp:
        record = simulator.run_once(payload["rng"])
        sp.set(
            datapoints=record.n_datapoints,
            fail_time=record.fail_time,
            crashed=bool(record.metadata.get("crashed", 0.0)),
        )
    emit_run_series(index, record)
    return record, telemetry.collect()


def run_campaign_parallel(
    simulator: "TestbedSimulator",
    rngs: "list[np.random.Generator]",
    *,
    jobs: int,
    start_index: int = 0,
) -> "list[RunRecord]":
    """Execute one pre-seeded run per generator on ``jobs`` processes.

    Called by :meth:`TestbedSimulator.run_many` with the campaign span
    already open, so the merged per-run spans land under it.
    ``start_index`` offsets the telemetry run indices when the batch is
    a resumed or checkpointed slice of a larger campaign.
    """
    from repro.obs import get_metrics, get_telemetry, get_tracer

    tracer = get_tracer()
    registry = get_metrics()
    payloads = [
        {
            "index": start_index + i,
            "config": simulator.config,
            "failure_condition": simulator.failure_condition,
            "rng": rng,
            "trace_on": tracer.enabled,
            "metrics_on": registry.enabled,
            "bus_on": get_telemetry().enabled,
        }
        for i, rng in enumerate(rngs)
    ]
    outcomes = run_tasks(
        _campaign_task,
        payloads,
        jobs=jobs,
        labels=[f"campaign run {start_index + i}" for i in range(len(payloads))],
    )
    records: "list[RunRecord]" = []
    for i, (record, task_telemetry) in enumerate(outcomes):
        telemetry.merge(task_telemetry)
        records.append(record)
        _log.info(
            "run complete %s",
            kv(
                run=start_index + i,
                datapoints=record.n_datapoints,
                fail_time=record.fail_time,
                crashed=bool(record.metadata.get("crashed", 0.0)),
            ),
        )
    return records


def run_campaign_checkpointed(
    simulator: "TestbedSimulator",
    rngs: "list[np.random.Generator]",
    *,
    done: "list[RunRecord]",
    checkpoint: "CampaignCheckpoint",
    every: int,
    jobs: int,
) -> "list[RunRecord]":
    """Execute the remaining runs in chunks of ``every``, persisting the
    completed prefix after each chunk.

    ``done`` is the already-resumed prefix (its generators were spawned
    and skipped by the caller). Chunking does not perturb determinism:
    each run's stream comes from its own pre-spawned generator, so the
    concatenation of prefix + chunks is bit-identical to one
    uninterrupted dispatch. A killed process loses at most ``every - 1``
    completed runs of work.
    """
    if every < 1:
        raise ValueError(f"checkpoint interval must be >= 1, got {every}")
    records: "list[RunRecord]" = []
    for start in range(0, len(rngs), every):
        chunk = rngs[start : start + every]
        records.extend(
            simulator.run_many(chunk, jobs=jobs, start_index=len(done) + start)
        )
        if start + every < len(rngs):  # final chunk completes the campaign
            checkpoint.save(done + records)
    return records
