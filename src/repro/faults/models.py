"""Corruption models: deterministic, seeded telemetry defects.

Each model reproduces one class of dirty production data and applies it
to a :class:`DirtyRun` (batch) and, where the defect exists at stream
granularity, to a live datapoint flow (see
:class:`~repro.faults.profile.StreamCorruptor`). All randomness flows
through the ``numpy.random.Generator`` handed in by the caller, so a
given seed always yields the same corruption — tests can count injected
defects and check the sanitizer's :class:`~repro.core.sanitize.QualityReport`
against the exact ground truth.

The catalogue matches :data:`repro.core.sanitize.KINDS` one-to-one;
``CORRUPTION_MODELS`` maps the short spec names used by
``FaultProfile.from_spec`` / ``f2pm faults --spec``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.datapoint import FEATURE_INDEX, FEATURES
from repro.core.history import RunRecord


@dataclass
class DirtyRun:
    """A run that may violate :class:`~repro.core.history.RunRecord` invariants.

    RunRecord's constructor (correctly) rejects unsorted timestamps and
    inconsistent fail times, so corrupted runs need their own carrier on
    the way into the sanitize layer.
    """

    features: np.ndarray
    fail_time: float
    response_times: "np.ndarray | None" = None
    metadata: Mapping[str, float] = field(default_factory=dict)

    @classmethod
    def from_run(cls, run: RunRecord) -> "DirtyRun":
        return cls(
            features=np.array(run.features, dtype=np.float64),
            fail_time=float(run.fail_time),
            response_times=(
                None
                if run.response_times is None
                else np.array(run.response_times, dtype=np.float64)
            ),
            metadata=dict(run.metadata),
        )

    @property
    def n_datapoints(self) -> int:
        return self.features.shape[0]


def _resolve_columns(columns: "tuple[str, ...] | None") -> list[int]:
    if columns is None:
        return list(range(1, len(FEATURES)))  # every non-time column
    out = []
    for name in columns:
        if name not in FEATURE_INDEX:
            raise ValueError(f"unknown feature {name!r}")
        if name == "tgen":
            raise ValueError("corrupting tgen cells is the job of the clock models")
        out.append(FEATURE_INDEX[name])
    return out


class CorruptionModel(ABC):
    """One class of telemetry defect."""

    #: short name used in specs, reports and test parametrization
    name: str = "?"

    @abstractmethod
    def apply(self, run: DirtyRun, rng: np.random.Generator) -> DirtyRun:
        """Corrupt *run* in place (and return it)."""

    # -- streaming ---------------------------------------------------------------

    def stream_state(self, rng: np.random.Generator) -> dict:
        """Fresh per-run state for stream corruption."""
        return {}

    def stream_apply(
        self, row: np.ndarray, state: dict, rng: np.random.Generator
    ) -> "list[np.ndarray]":
        """Corrupt one live datapoint; return 0, 1 or more rows."""
        return [row]


@dataclass
class NaNCells(CorruptionModel):
    """Non-finite cells: a crashed exporter writes ``nan``/``inf``."""

    rate: float = 0.02
    columns: "tuple[str, ...] | None" = None
    name: str = "nan"

    _BAD = (float("nan"), float("inf"), float("-inf"))

    def apply(self, run: DirtyRun, rng: np.random.Generator) -> DirtyRun:
        cols = _resolve_columns(self.columns)
        n = run.n_datapoints
        mask = rng.random((n, len(cols))) < self.rate
        choice = rng.integers(0, len(self._BAD), size=mask.sum())
        rr, cc = np.nonzero(mask)
        for k, (r, c) in enumerate(zip(rr, cc)):
            run.features[r, cols[c]] = self._BAD[choice[k]]
        return run

    def stream_apply(self, row, state, rng):
        cols = _resolve_columns(self.columns)
        hit = rng.random(len(cols)) < self.rate
        if hit.any():
            row = row.copy()
            for c in np.flatnonzero(hit):
                row[cols[c]] = self._BAD[int(rng.integers(0, len(self._BAD)))]
        return [row]


@dataclass
class DroppedSamples(CorruptionModel):
    """Sampling gaps: the monitor wedges and misses ``burst`` samples."""

    rate: float = 0.02  # probability a burst starts at any given row
    burst: int = 3
    name: str = "drop"

    def apply(self, run: DirtyRun, rng: np.random.Generator) -> DirtyRun:
        n = run.n_datapoints
        starts = rng.random(n) < self.rate
        drop = np.zeros(n, dtype=bool)
        for s in np.flatnonzero(starts):
            drop[s : s + self.burst] = True
        drop[:2] = False  # keep the head so the run stays non-empty
        if drop.all():
            drop[-1] = False
        run.features = run.features[~drop]
        if run.response_times is not None:
            run.response_times = run.response_times[~drop]
        return run

    def stream_state(self, rng):
        return {"remaining": 0}

    def stream_apply(self, row, state, rng):
        if state["remaining"] > 0:
            state["remaining"] -= 1
            return []
        if rng.random() < self.rate:
            state["remaining"] = self.burst - 1
            return []
        return [row]


@dataclass
class DuplicatedRows(CorruptionModel):
    """At-least-once transport: a datapoint is delivered twice."""

    rate: float = 0.02
    name: str = "dup"

    def apply(self, run: DirtyRun, rng: np.random.Generator) -> DirtyRun:
        n = run.n_datapoints
        repeats = np.where(rng.random(n) < self.rate, 2, 1)
        run.features = np.repeat(run.features, repeats, axis=0)
        if run.response_times is not None:
            run.response_times = np.repeat(run.response_times, repeats)
        return run

    def stream_apply(self, row, state, rng):
        if rng.random() < self.rate:
            return [row, row.copy()]
        return [row]


@dataclass
class OutOfOrder(CorruptionModel):
    """Bounded reordering: a datapoint is delivered late by a few slots."""

    rate: float = 0.05
    max_displacement: int = 2
    name: str = "ooo"

    def apply(self, run: DirtyRun, rng: np.random.Generator) -> DirtyRun:
        n = run.n_datapoints
        order = np.arange(n)
        for i in np.flatnonzero(rng.random(n) < self.rate):
            d = int(rng.integers(1, self.max_displacement + 1))
            j = min(i + d, n - 1)
            order[i], order[j] = order[j], order[i]
        run.features = run.features[order]
        if run.response_times is not None:
            run.response_times = run.response_times[order]
        return run

    def stream_state(self, rng):
        return {"held": None}

    def stream_apply(self, row, state, rng):
        out: list[np.ndarray] = []
        if state["held"] is not None:
            out.append(row)  # the newer row jumps the queue
            out.append(state["held"])  # the held row arrives late
            state["held"] = None
            return out
        if rng.random() < self.rate:
            state["held"] = row
            return []
        return [row]


@dataclass
class ClockReset(CorruptionModel):
    """NTP step / monitor restart: timestamps jump back to ~zero mid-run."""

    probability: float = 1.0
    at_fraction: tuple[float, float] = (0.4, 0.8)
    name: str = "reset"

    def apply(self, run: DirtyRun, rng: np.random.Generator) -> DirtyRun:
        if rng.random() >= self.probability or run.n_datapoints < 4:
            return run
        lo, hi = self.at_fraction
        i = int(rng.integers(
            max(1, int(lo * run.n_datapoints)),
            max(2, int(hi * run.n_datapoints)),
        ))
        run.features[i:, 0] -= run.features[i, 0]
        return run

    def stream_state(self, rng):
        fire = rng.random() < self.probability
        lo, hi = self.at_fraction
        return {
            "at": float(rng.uniform(lo, hi)) if fire else None,  # fraction of fail_time
            "offset": None,
        }

    def stream_apply(self, row, state, rng):
        if state["offset"] is not None:
            row = row.copy()
            row[0] -= state["offset"]
        elif state["at"] is not None and state.get("horizon") and row[0] >= state[
            "at"
        ] * state["horizon"]:
            state["offset"] = float(row[0])
            row = row.copy()
            row[0] = 0.0
        return [row]


@dataclass
class TruncatedRun(CorruptionModel):
    """Monitoring dies early: the tail of the run is never recorded."""

    probability: float = 1.0
    keep_fraction: tuple[float, float] = (0.4, 0.7)
    name: str = "truncate"

    def apply(self, run: DirtyRun, rng: np.random.Generator) -> DirtyRun:
        if rng.random() >= self.probability or run.n_datapoints < 4:
            return run
        lo, hi = self.keep_fraction
        keep = max(2, int(rng.uniform(lo, hi) * run.n_datapoints))
        run.features = run.features[:keep]
        if run.response_times is not None:
            run.response_times = run.response_times[:keep]
        return run

    def stream_state(self, rng):
        lo, hi = self.keep_fraction
        fire = rng.random() < self.probability
        return {"at": float(rng.uniform(lo, hi)) if fire else None, "dead": False}

    def stream_apply(self, row, state, rng):
        if state["dead"]:
            return []
        if (
            state["at"] is not None
            and state.get("horizon")
            and row[0] >= state["at"] * state["horizon"]
        ):
            state["dead"] = True
            return []
        return [row]


@dataclass
class UnitScaleGlitch(CorruptionModel):
    """A collector briefly reports KB as bytes (or vice versa)."""

    rate: float = 0.01
    factor: float = 1024.0
    columns: tuple[str, ...] = ("mem_used", "mem_free", "mem_cached", "swap_free")
    name: str = "scale"

    def apply(self, run: DirtyRun, rng: np.random.Generator) -> DirtyRun:
        cols = _resolve_columns(self.columns)
        n = run.n_datapoints
        mask = rng.random((n, len(cols))) < self.rate
        # Keep glitches transient (the sanitizer's detector is a
        # neighbour test): never corrupt two adjacent rows of a column.
        mask[1:] &= ~mask[:-1]
        mask[0] = mask[-1] = False
        for r, c in zip(*np.nonzero(mask)):
            run.features[r, cols[c]] *= self.factor
        return run

    def stream_state(self, rng):
        return {"last_hit": False}

    def stream_apply(self, row, state, rng):
        cols = _resolve_columns(self.columns)
        if not state["last_hit"] and rng.random() < self.rate * len(cols):
            c = cols[int(rng.integers(0, len(cols)))]
            row = row.copy()
            row[c] *= self.factor
            state["last_hit"] = True
        else:
            state["last_hit"] = False
        return [row]


@dataclass
class FailTimeSkew(CorruptionModel):
    """A mislogged fail event earlier than the trace's last datapoints.

    The defect behind the negative-RTTF-label bug: an explicit
    ``fail_time`` that precedes the final samples makes
    ``fail_time - mean(tgen)`` negative for the tail windows.
    """

    probability: float = 1.0
    fraction: tuple[float, float] = (0.5, 0.9)
    name: str = "failskew"

    def apply(self, run: DirtyRun, rng: np.random.Generator) -> DirtyRun:
        if rng.random() >= self.probability:
            return run
        lo, hi = self.fraction
        run.fail_time = float(run.fail_time * rng.uniform(lo, hi))
        return run


#: spec name -> model class (the catalogue; order matches KINDS intent)
CORRUPTION_MODELS: dict[str, type] = {
    m.name: m
    for m in (
        NaNCells,
        DroppedSamples,
        DuplicatedRows,
        OutOfOrder,
        ClockReset,
        TruncatedRun,
        UnitScaleGlitch,
        FailTimeSkew,
    )
}
