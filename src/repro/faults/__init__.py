"""``repro.faults`` — telemetry fault injection.

Deterministic, seeded corruption models for monitoring data (the dirty
realities of production telemetry: NaN cells, gaps, duplicates, bounded
reordering, clock resets, truncation, unit-scale glitches, mislogged
fail events), composable via :class:`FaultProfile` and applicable to a
:class:`~repro.core.history.DataHistory` or a live datapoint stream.

The harness exists to *prove* the sanitize layer
(:mod:`repro.core.sanitize`): every corruption it can inject, the
sanitizer must either reject with a located diagnostic (``strict``) or
convert into a finite, ordered, fully-labelled training set (``repair``
/ ``quarantine``). See ``docs/ROBUSTNESS.md`` and ``tests/faults/``.
"""

from repro.faults.models import (
    CORRUPTION_MODELS,
    ClockReset,
    CorruptionModel,
    DirtyRun,
    DroppedSamples,
    DuplicatedRows,
    FailTimeSkew,
    NaNCells,
    OutOfOrder,
    TruncatedRun,
    UnitScaleGlitch,
)
from repro.faults.profile import PRESETS, FaultProfile, StreamCorruptor

__all__ = [
    "CORRUPTION_MODELS",
    "PRESETS",
    "CorruptionModel",
    "DirtyRun",
    "FaultProfile",
    "StreamCorruptor",
    "NaNCells",
    "DroppedSamples",
    "DuplicatedRows",
    "OutOfOrder",
    "ClockReset",
    "TruncatedRun",
    "UnitScaleGlitch",
    "FailTimeSkew",
]
