"""Composable fault profiles and the stream corruptor.

A :class:`FaultProfile` is an ordered tuple of corruption models applied
to a run (or a live datapoint stream) under one seed. Determinism is
strict: the profile spawns one child RNG per (run, model) pair with the
SeedSequence protocol, so corrupting run *k* never depends on how many
runs came before it or which other models are enabled after it.

Profiles compose from presets (``FaultProfile.preset("default")``), from
explicit model instances, or from a compact spec string shared with the
``f2pm faults`` CLI::

    FaultProfile.from_spec("nan=0.05,dup=0.02,reset=1")
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.history import DataHistory, RunRecord
from repro.faults.models import (
    CORRUPTION_MODELS,
    ClockReset,
    CorruptionModel,
    DirtyRun,
    DroppedSamples,
    DuplicatedRows,
    FailTimeSkew,
    NaNCells,
    OutOfOrder,
    TruncatedRun,
    UnitScaleGlitch,
)
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class FaultProfile:
    """An ordered composition of corruption models."""

    models: tuple[CorruptionModel, ...]

    def __post_init__(self) -> None:
        if not self.models:
            raise ValueError("a FaultProfile needs at least one corruption model")

    # -- construction ------------------------------------------------------------

    @classmethod
    def preset(cls, name: str) -> "FaultProfile":
        """A named preset (see :data:`PRESETS`)."""
        try:
            return PRESETS[name]()
        except KeyError:
            raise ValueError(
                f"unknown fault preset {name!r}; choose from {sorted(PRESETS)}"
            ) from None

    @classmethod
    def from_spec(cls, spec: str) -> "FaultProfile":
        """Parse ``"nan=0.05,dup=0.02,reset=1"`` into a profile.

        Each ``name=rate`` pair enables one corruption model at the given
        rate/probability; a bare ``name`` uses the model's default.
        """
        models: list[CorruptionModel] = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, _, value = part.partition("=")
            name = name.strip()
            if name not in CORRUPTION_MODELS:
                raise ValueError(
                    f"unknown corruption model {name!r}; "
                    f"choose from {sorted(CORRUPTION_MODELS)}"
                )
            model_cls = CORRUPTION_MODELS[name]
            if not value:
                models.append(model_cls())
                continue
            rate = float(value)
            # Every model's knob is its first numeric field: rate for the
            # cell/row models, probability for the run-level ones.
            if hasattr(model_cls(), "rate"):
                models.append(model_cls(rate=rate))
            else:
                models.append(model_cls(probability=rate))
        return cls(models=tuple(models))

    # -- batch application -------------------------------------------------------

    def apply_run(
        self, run: "RunRecord | DirtyRun", seed: "int | np.random.Generator" = 0
    ) -> DirtyRun:
        """Corrupt one run (deterministically for a given seed)."""
        dirty = run if isinstance(run, DirtyRun) else DirtyRun.from_run(run)
        rngs = as_rng(seed).spawn(len(self.models))
        for model, rng in zip(self.models, rngs):
            dirty = model.apply(dirty, rng)
        return dirty

    def apply_history(
        self, history: DataHistory, seed: "int | np.random.Generator" = 0
    ) -> list[DirtyRun]:
        """Corrupt every run of a history into a list of dirty runs."""
        rngs = as_rng(seed).spawn(len(history))
        return [self.apply_run(run, rng) for run, rng in zip(history, rngs)]

    # -- streaming ---------------------------------------------------------------

    def stream(
        self,
        seed: "int | np.random.Generator" = 0,
        *,
        horizon: "float | None" = None,
    ) -> "StreamCorruptor":
        """A stateful corruptor for a live datapoint stream.

        ``horizon`` (expected run length in seconds) anchors the
        run-position models (clock reset, truncation) that fire at a
        fraction of the run.
        """
        return StreamCorruptor(self, seed, horizon=horizon)


class StreamCorruptor:
    """Applies a profile's corruption models to datapoints one at a time."""

    def __init__(
        self,
        profile: FaultProfile,
        seed: "int | np.random.Generator" = 0,
        *,
        horizon: "float | None" = None,
    ) -> None:
        self.profile = profile
        self.horizon = horizon
        self._rngs = as_rng(seed).spawn(len(profile.models))
        self._states = [
            m.stream_state(r) for m, r in zip(profile.models, self._rngs)
        ]
        if horizon is not None:
            for state in self._states:
                if isinstance(state, dict) and "at" in state:
                    state["horizon"] = float(horizon)

    def reset(self, seed: "int | np.random.Generator | None" = None) -> None:
        """Fresh per-run state (call at each episode start)."""
        if seed is not None:
            self._rngs = as_rng(seed).spawn(len(self.profile.models))
        self._states = [
            m.stream_state(r) for m, r in zip(self.profile.models, self._rngs)
        ]
        if self.horizon is not None:
            for state in self._states:
                if isinstance(state, dict) and "at" in state:
                    state["horizon"] = float(self.horizon)

    def feed(self, row: np.ndarray) -> "list[np.ndarray]":
        """Corrupt one datapoint; may emit zero, one or several rows."""
        rows = [np.asarray(row, dtype=np.float64)]
        for model, state, rng in zip(self.profile.models, self._states, self._rngs):
            nxt: list[np.ndarray] = []
            for r in rows:
                nxt.extend(model.stream_apply(r, state, rng))
            rows = nxt
        return rows


#: Named presets for tests and the CLI.
PRESETS: dict[str, "type[FaultProfile] | object"] = {
    "default": lambda: FaultProfile(
        models=(
            NaNCells(rate=0.01),
            DroppedSamples(rate=0.01, burst=3),
            DuplicatedRows(rate=0.01),
            OutOfOrder(rate=0.02, max_displacement=1),
        )
    ),
    "nan": lambda: FaultProfile(models=(NaNCells(rate=0.05),)),
    "gaps": lambda: FaultProfile(models=(DroppedSamples(rate=0.02, burst=5),)),
    "dup": lambda: FaultProfile(models=(DuplicatedRows(rate=0.05),)),
    "ooo": lambda: FaultProfile(models=(OutOfOrder(rate=0.05, max_displacement=2),)),
    "reset": lambda: FaultProfile(models=(ClockReset(),)),
    "truncate": lambda: FaultProfile(models=(TruncatedRun(),)),
    "scale": lambda: FaultProfile(models=(UnitScaleGlitch(rate=0.02),)),
    "failskew": lambda: FaultProfile(models=(FailTimeSkew(),)),
    "storm": lambda: FaultProfile(
        models=(
            NaNCells(rate=0.03),
            DroppedSamples(rate=0.02, burst=4),
            DuplicatedRows(rate=0.03),
            OutOfOrder(rate=0.05, max_displacement=1),
            UnitScaleGlitch(rate=0.01),
        )
    ),
}
