"""Named scenario presets: the workload/anomaly catalog (ROADMAP item 3).

The paper exercises exactly one scenario — the TPC-W shopping mix under
constant full load on one machine size, aging through request-coupled
memory leaks and unterminated threads. Every model the framework ships
is therefore validated on the narrowest possible slice of the space the
related work (CHAOS, the creep-failure study) shows matters: aging
signatures differ sharply across fault families, and *which features
carry* across them is an open question the generalization-matrix
experiment (:mod:`repro.experiments.ext_generalization`) answers.

A :class:`Scenario` composes four orthogonal ingredients into a named
``CampaignConfig`` transform:

- **workload**: a TPC-W mix (:data:`~repro.system.tpcw.MIXES`);
- **load schedule**: constant, diurnal, or flash-crowd
  (:mod:`repro.system.schedule`);
- **machine profile**: a named VM sizing
  (:data:`~repro.system.resources.MACHINE_PROFILES`);
- **anomaly family**: request-coupled leaks/threads, time-based
  leak/thread storms, lock contention, fd/socket leaks, connection-pool
  depletion, or heap fragmentation — with a matching failure condition
  (:func:`~repro.system.failure.parse_failure` spec).

Scenarios are *transforms over a base config*, not configs: the campaign
layer applies them to whatever base a spec declares (run count, seed,
horizon stay caller-controlled), and the resolved config is
content-addressed by the exact ``fingerprint("campaign", config)``
scheme every artifact already uses — a scenario name in a
``CampaignSpec`` axis aliases the same store entries as the equivalent
hand-written config.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.system.resources import MACHINE_PROFILES
from repro.system.schedule import DiurnalLoad, FlashCrowdLoad
from repro.system.simulator import CampaignConfig
from repro.system.tpcw import BROWSING_MIX, ORDERING_MIX, SHOPPING_MIX

#: Anomaly-profile draw ranges that disable request-coupled injection
#: (used by scenarios whose aging family is purely time-based, so the
#: family under study is the *only* thing degrading the system).
_NO_REQUEST_ANOMALIES: dict[str, Any] = {
    "p_leak_range": (0.0, 0.0),
    "leak_kb_range": (0.0, 0.0),
    "p_thread_range": (0.0, 0.0),
}


@dataclass(frozen=True)
class Scenario:
    """One named point in the scenario space.

    ``overrides`` maps :class:`CampaignConfig` field names to values;
    :meth:`apply` is ``dataclasses.replace`` with them. The descriptive
    fields (``workload``/``schedule``/``profile``/``anomaly``) are
    labels for catalogs and docs, never inputs to the simulation.
    """

    name: str
    description: str
    workload: str
    schedule: str
    profile: str
    anomaly: str
    overrides: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        known = {f.name for f in dataclasses.fields(CampaignConfig)}
        unknown = set(self.overrides) - known
        if unknown:
            raise ValueError(
                f"scenario {self.name!r} overrides unknown CampaignConfig "
                f"fields: {sorted(unknown)}"
            )
        for reserved in ("seed", "n_runs", "substrate"):
            if reserved in self.overrides:
                raise ValueError(
                    f"scenario {self.name!r} may not override {reserved!r}: "
                    "run count, seed and substrate belong to the caller"
                )

    def apply(self, base: CampaignConfig) -> CampaignConfig:
        """Resolve this scenario against a base campaign config."""
        return dataclasses.replace(base, **dict(self.overrides))


#: The catalog. Names are accepted as ``scenario`` axis values in
#: :class:`~repro.campaign.spec.CampaignSpec`, by ``f2pm simulate
#: --scenario``, and by :func:`get_scenario`.
SCENARIOS: dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            name="baseline-shopping",
            description="The paper's setup: shopping mix, constant full "
            "load, request-coupled memory/thread anomalies, OOM failure.",
            workload="shopping",
            schedule="constant",
            profile="default",
            anomaly="request-coupled leaks+threads",
            overrides={"mix": SHOPPING_MIX},
        ),
        Scenario(
            name="browsing-diurnal",
            description="Browsing mix (2x the Home rate) under a diurnal "
            "cycle: anomaly accumulation tracks the day/night load swing.",
            workload="browsing",
            schedule="diurnal",
            profile="default",
            anomaly="request-coupled leaks+threads",
            overrides={
                "mix": BROWSING_MIX,
                "load_schedule": DiurnalLoad(period=3600.0),
            },
        ),
        Scenario(
            name="ordering-flash-crowd",
            description="Ordering mix (lowest Home rate) with a mid-run "
            "flash crowd: a burst of load bends the RTTF trajectory.",
            workload="ordering",
            schedule="flash-crowd",
            profile="default",
            anomaly="request-coupled leaks+threads",
            overrides={
                "mix": ORDERING_MIX,
                "load_schedule": FlashCrowdLoad(),
            },
        ),
        Scenario(
            name="lock-contention",
            description="Stuck application locks serialize the mix: "
            "response times degrade with zero memory signature.",
            workload="shopping",
            schedule="constant",
            profile="default",
            anomaly="lock contention",
            overrides={
                **_NO_REQUEST_ANOMALIES,
                "use_lock_injector": True,
                "failure": "rt>10",
            },
        ),
        Scenario(
            name="fd-leak",
            description="Socket/file-descriptor leaks on a tight ulimit: "
            "the fd table fills and the app dies on EMFILE (loop-fallback "
            "failure condition).",
            workload="shopping",
            schedule="constant",
            profile="constrained-fd",
            anomaly="fd/socket leak",
            overrides={
                **_NO_REQUEST_ANOMALIES,
                "machine": MACHINE_PROFILES["constrained-fd"],
                "use_fd_injector": True,
                "failure": "fd",
            },
        ),
        Scenario(
            name="conn-pool-exhaustion",
            description="DB connections checked out and never returned: "
            "requests queue on the shrinking pool until service collapses.",
            workload="shopping",
            schedule="constant",
            profile="default",
            anomaly="connection-pool depletion",
            overrides={
                **_NO_REQUEST_ANOMALIES,
                "use_conn_injector": True,
                "failure": "rt>10",
            },
        ),
        Scenario(
            name="heap-fragmentation",
            description="Allocator fragmentation inflates service times "
            "with no RSS growth — the family memory-based predictors miss.",
            workload="shopping",
            schedule="constant",
            profile="default",
            anomaly="heap fragmentation",
            overrides={
                **_NO_REQUEST_ANOMALIES,
                "use_frag_injector": True,
                "failure": "rt>10",
            },
        ),
        Scenario(
            name="memory-leak-storm",
            description="Sec. III-E time-based leak/thread utilities on a "
            "memory-starved VM: fast, workload-independent aging.",
            workload="shopping",
            schedule="constant",
            profile="small-vm",
            anomaly="time-based leaks+threads",
            overrides={
                **_NO_REQUEST_ANOMALIES,
                "machine": MACHINE_PROFILES["small-vm"],
                "use_time_injectors": True,
                "failure": "mem",
            },
        ),
        Scenario(
            name="mixed-aging",
            description="Everything at once on an over-provisioned VM: "
            "request-coupled and time-based anomalies plus lock contention "
            "under diurnal load, racing OOM against RT collapse.",
            workload="shopping (session chain)",
            schedule="diurnal",
            profile="large-vm",
            anomaly="leaks+threads+locks",
            overrides={
                "machine": MACHINE_PROFILES["large-vm"],
                "use_session_chain": True,
                "use_time_injectors": True,
                "use_lock_injector": True,
                "load_schedule": DiurnalLoad(period=3600.0),
                "failure": "mem|rt>12",
            },
        ),
    )
}


def get_scenario(name: str) -> Scenario:
    """Look up a catalog scenario; one-line error listing known names."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; known: {sorted(SCENARIOS)}"
        ) from None


def scenario_names() -> tuple[str, ...]:
    """Catalog names in stable (sorted) order."""
    return tuple(sorted(SCENARIOS))


def resolve_scenario(name: str, base: CampaignConfig) -> CampaignConfig:
    """Resolve a scenario name against a base config (lookup + apply)."""
    return get_scenario(name).apply(base)
