"""Anomaly injection, mirroring the paper's two mechanisms.

The paper injects anomalies in two ways:

1. **Request-coupled** (Sec. IV-A): the TPC-W ``Home`` interaction is
   modified so that each arriving session leaks memory or spawns a thread
   with per-run probabilities drawn at server startup. The anomaly rate
   therefore tracks the request rate — which is what makes the RTTF
   curves bend (throughput collapse slows anomaly accumulation near the
   crash). :class:`AnomalyProfile` carries those per-run draws.

2. **Time-based utilities** (Sec. III-E): standalone injectors where leak
   sizes are uniform in a user interval and inter-arrival times are
   exponential with a mean itself drawn uniformly at startup, leaks being
   *written* so they occupy real memory. :class:`MemoryLeakInjector` and
   :class:`ThreadLeakInjector` implement exactly that design and can be
   used to stress a :class:`~repro.system.resources.MachineState` without
   any workload at all ("testing F2PM in a synthetic environment, or to
   speed up the collection of datapoints").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.system.resources import MachineState
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class AnomalyProfile:
    """Per-run anomaly intensities (redrawn at every restart).

    Attributes
    ----------
    p_leak : probability a Home interaction leaks memory.
    leak_min_kb, leak_max_kb : uniform leak-size interval.
    p_thread : probability a Home interaction leaves an unterminated thread.
    """

    p_leak: float
    leak_min_kb: float
    leak_max_kb: float
    p_thread: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.p_leak <= 1.0:
            raise ValueError(f"p_leak must be in [0,1], got {self.p_leak}")
        if not 0.0 <= self.p_thread <= 1.0:
            raise ValueError(f"p_thread must be in [0,1], got {self.p_thread}")
        if not 0.0 <= self.leak_min_kb <= self.leak_max_kb:
            raise ValueError(
                f"need 0 <= leak_min_kb <= leak_max_kb, got "
                f"({self.leak_min_kb}, {self.leak_max_kb})"
            )

    @classmethod
    def draw(
        cls,
        rng: np.random.Generator,
        *,
        p_leak_range: tuple[float, float] = (0.08, 0.30),
        leak_kb_range: tuple[float, float] = (64.0, 2048.0),
        p_thread_range: tuple[float, float] = (0.02, 0.10),
    ) -> "AnomalyProfile":
        """Draw a fresh profile, as the modified servlet does at startup."""
        lo, hi = leak_kb_range
        leak_min = float(rng.uniform(lo, (lo + hi) / 2.0))
        leak_max = float(rng.uniform(leak_min, hi))
        return cls(
            p_leak=float(rng.uniform(*p_leak_range)),
            leak_min_kb=leak_min,
            leak_max_kb=leak_max,
            p_thread=float(rng.uniform(*p_thread_range)),
        )

    # -- request-coupled injection ---------------------------------------------

    def apply_home_visits(
        self, state: MachineState, n_visits: int, rng: np.random.Generator
    ) -> tuple[float, int]:
        """Inject anomalies for *n_visits* Home interactions.

        Returns ``(leaked_kb, threads_spawned)`` for bookkeeping.
        """
        if n_visits <= 0:
            return 0.0, 0
        n_leaks = int(rng.binomial(n_visits, self.p_leak))
        leaked = 0.0
        if n_leaks > 0:
            sizes = rng.uniform(self.leak_min_kb, self.leak_max_kb, size=n_leaks)
            leaked = float(sizes.sum())
            state.leak_memory(leaked)
        n_threads = int(rng.binomial(n_visits, self.p_thread))
        if n_threads > 0:
            state.spawn_threads(n_threads)
        return leaked, n_threads


class _ExponentialArrivals:
    """Shared event-timing logic: exponential inter-arrivals whose mean is
    itself drawn uniformly at construction (paper Sec. III-E)."""

    def __init__(
        self,
        mean_interval_range: tuple[float, float],
        seed: "int | None | np.random.Generator",
    ) -> None:
        lo, hi = mean_interval_range
        if not 0.0 < lo <= hi:
            raise ValueError(
                f"mean_interval_range must be positive-increasing, got {mean_interval_range}"
            )
        self.rng = as_rng(seed)
        self.mean_interval = float(self.rng.uniform(lo, hi))
        self._next_time = float(self.rng.exponential(self.mean_interval))

    @property
    def next_time(self) -> float:
        """Scheduled time of the next event (no draw; event scheduling)."""
        return self._next_time

    def events_until(self, now: float) -> int:
        """Number of events with firing time <= now; advances the clock."""
        count = 0
        while self._next_time <= now:
            count += 1
            self._next_time += float(self.rng.exponential(self.mean_interval))
        return count


class MemoryLeakInjector:
    """Time-based leak generator (paper Sec. III-E).

    Each event leaks ``Uniform(size_min_kb, size_max_kb)`` KB; events
    arrive with exponential inter-arrival times whose mean is drawn
    uniformly from *mean_interval_range* at construction.
    """

    def __init__(
        self,
        size_range_kb: tuple[float, float] = (128.0, 4096.0),
        mean_interval_range: tuple[float, float] = (2.0, 20.0),
        seed: "int | None | np.random.Generator" = None,
    ) -> None:
        lo, hi = size_range_kb
        if not 0.0 <= lo <= hi:
            raise ValueError(f"invalid size_range_kb {size_range_kb}")
        self.size_range_kb = size_range_kb
        self._timing = _ExponentialArrivals(mean_interval_range, seed)
        self.total_leaked_kb = 0.0

    @property
    def mean_interval(self) -> float:
        return self._timing.mean_interval

    @property
    def next_fire_time(self) -> float:
        """When the next leak fires — lets event-driven callers skip
        :meth:`advance` calls that would be no-ops."""
        return self._timing.next_time

    def advance(self, state: MachineState, now: float) -> float:
        """Fire all leaks due by *now*; returns KB leaked this call."""
        n = self._timing.events_until(now)
        if n == 0:
            return 0.0
        sizes = self._timing.rng.uniform(*self.size_range_kb, size=n)
        leaked = float(sizes.sum())
        state.leak_memory(leaked)
        self.total_leaked_kb += leaked
        return leaked


class LockContentionInjector:
    """Time-based stuck-lock generator (extension).

    The paper's introduction lists "unreleased locks" among the anomaly
    classes; its evaluation injects only leaks and threads. This injector
    adds the third class: each event leaves one application lock
    permanently held, serializing a slice of the request mix. Unlike the
    memory anomalies it consumes *no* memory — it degrades service times
    directly (via :meth:`~repro.system.server.AppServer.add_stuck_locks`),
    so an RT-based failure condition can fire without any swap pressure.

    Same stochastic design as the other Sec. III-E utilities: exponential
    inter-arrival times with a uniformly drawn mean.
    """

    def __init__(
        self,
        mean_interval_range: tuple[float, float] = (30.0, 300.0),
        seed: "int | None | np.random.Generator" = None,
    ) -> None:
        self._timing = _ExponentialArrivals(mean_interval_range, seed)
        self.total_locks = 0

    @property
    def mean_interval(self) -> float:
        return self._timing.mean_interval

    @property
    def next_fire_time(self) -> float:
        """When the next lock gets stuck (see :class:`MemoryLeakInjector`)."""
        return self._timing.next_time

    def advance(self, server, now: float) -> int:
        """Leave all locks due by *now* stuck; returns the count."""
        n = self._timing.events_until(now)
        if n > 0:
            server.add_stuck_locks(n)
            self.total_locks += n
        return n


class ThreadLeakInjector:
    """Time-based unterminated-thread generator (paper Sec. III-E)."""

    def __init__(
        self,
        mean_interval_range: tuple[float, float] = (5.0, 60.0),
        seed: "int | None | np.random.Generator" = None,
    ) -> None:
        self._timing = _ExponentialArrivals(mean_interval_range, seed)
        self.total_threads = 0

    @property
    def mean_interval(self) -> float:
        return self._timing.mean_interval

    @property
    def next_fire_time(self) -> float:
        """When the next thread spawns (see :class:`MemoryLeakInjector`)."""
        return self._timing.next_time

    def advance(self, state: MachineState, now: float) -> int:
        """Spawn all threads due by *now*; returns the count."""
        n = self._timing.events_until(now)
        if n > 0:
            state.spawn_threads(n)
            self.total_threads += n
        return n


class FdLeakInjector:
    """Time-based file-descriptor/socket leak generator (extension).

    Models unclosed sockets and files: each event leaks a uniform
    integer count of descriptors into the process fd table
    (:meth:`~repro.system.resources.MachineState.leak_fds`). Descriptors
    consume no resident memory — the degradation is a service-time
    inflation as the table fills (kernel fd allocation scans, accept()
    retries) and a crash when it is exhausted
    (:class:`~repro.system.failure.FdExhaustion`).

    Same stochastic design as the Sec. III-E utilities: exponential
    inter-arrival times with a uniformly drawn mean.
    """

    def __init__(
        self,
        count_range: tuple[int, int] = (8, 128),
        mean_interval_range: tuple[float, float] = (5.0, 60.0),
        seed: "int | None | np.random.Generator" = None,
    ) -> None:
        lo, hi = count_range
        if not 1 <= lo <= hi:
            raise ValueError(f"invalid count_range {count_range}")
        self.count_range = (int(lo), int(hi))
        self._timing = _ExponentialArrivals(mean_interval_range, seed)
        self.total_fds = 0

    @property
    def mean_interval(self) -> float:
        return self._timing.mean_interval

    @property
    def next_fire_time(self) -> float:
        """When the next leak fires (see :class:`MemoryLeakInjector`)."""
        return self._timing.next_time

    def advance(self, state: MachineState, now: float) -> int:
        """Leak all descriptors due by *now*; returns the count."""
        n = self._timing.events_until(now)
        if n == 0:
            return 0
        lo, hi = self.count_range
        counts = self._timing.rng.integers(lo, hi, size=n, endpoint=True)
        leaked = int(counts.sum())
        state.leak_fds(leaked)
        self.total_fds += leaked
        return leaked


class ConnectionPoolInjector:
    """Time-based connection-pool depletion generator (extension).

    Models DB connections checked out and never returned: each event
    permanently holds one connection from the server's fixed-size pool
    (:meth:`~repro.system.server.AppServer.hold_connections`). Requests
    queue on the shrinking free set, so service times inflate
    hyperbolically as the pool drains and blow up when it is exhausted —
    with no memory footprint at all.
    """

    def __init__(
        self,
        mean_interval_range: tuple[float, float] = (20.0, 180.0),
        seed: "int | None | np.random.Generator" = None,
    ) -> None:
        self._timing = _ExponentialArrivals(mean_interval_range, seed)
        self.total_held = 0

    @property
    def mean_interval(self) -> float:
        return self._timing.mean_interval

    @property
    def next_fire_time(self) -> float:
        """When the next connection leaks (see :class:`MemoryLeakInjector`)."""
        return self._timing.next_time

    def advance(self, server, now: float) -> int:
        """Hold all connections due by *now*; returns the count."""
        n = self._timing.events_until(now)
        if n > 0:
            server.hold_connections(n)
            self.total_held += n
        return n


class HeapFragmentationInjector:
    """Time-based heap-fragmentation generator (extension).

    Models allocator fragmentation: each event marks a slice of the heap
    unusable for large allocations
    (:meth:`~repro.system.server.AppServer.fragment_heap`), inflating
    allocation latency — service-time degradation with **no RSS growth**,
    the aging family that defeats purely memory-based predictors.
    """

    def __init__(
        self,
        mean_interval_range: tuple[float, float] = (10.0, 120.0),
        seed: "int | None | np.random.Generator" = None,
    ) -> None:
        self._timing = _ExponentialArrivals(mean_interval_range, seed)
        self.total_events = 0

    @property
    def mean_interval(self) -> float:
        return self._timing.mean_interval

    @property
    def next_fire_time(self) -> float:
        """When the next fragmentation event lands (see
        :class:`MemoryLeakInjector`)."""
        return self._timing.next_time

    def advance(self, server, now: float) -> int:
        """Apply all fragmentation events due by *now*; returns the count."""
        n = self._timing.events_until(now)
        if n > 0:
            server.fragment_heap(n)
            self.total_events += n
        return n
