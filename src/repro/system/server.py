"""Application-server model: service under anomaly-driven degradation.

A fluid (CPU-seconds backlog) model of the Tomcat+MySQL tier, advanced in
fixed ticks. Per tick:

1. EBs whose think timers expired issue interactions; Home visits trigger
   request-coupled anomaly injection (leaks / unterminated threads).
2. Each request's CPU demand is its base interaction demand inflated by
   two multiplicative degradation factors:

   - *thread bloat*: leaked threads add scheduler and lock-contention
     overhead, linear in the thread count;
   - *swap thrashing*: as swap pressure ``s`` grows, page faults inflate
     compute (polynomial term) and, near exhaustion, the ``1/(1 - s)``
     term makes the service time blow up — producing the super-linear
     end-of-life behaviour the paper's slope features exist to catch.

3. Demand enters a shared backlog drained at ``n_cpus`` CPU-seconds per
   second; a request's response time is its own (inflated) demand plus
   the backlog drain time ahead of it plus paging I/O stalls.
4. CPU accounting decomposes the tick into user/sys/iowait/steal/nice and
   idle, which is what the FMC samples.

Because EBs are closed-loop, throughput falls as response times grow, so
the anomaly arrival rate *also* falls near the crash — exactly the
mechanism the paper cites for models under-predicting RTTF far from the
failure point (Sec. IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.system.anomalies import AnomalyProfile
from repro.system.resources import MachineState
from repro.system.tpcw import SERVICE_DEMANDS, EmulatedBrowserPool, Interaction
from repro.utils.rng import as_rng


@dataclass(frozen=True)
class ServerConfig:
    """Degradation and accounting coefficients of the app-server model."""

    #: Scheduler/contention overhead per 1000 leaked threads (fractional).
    thread_overhead_per_1k: float = 0.35
    #: Quadratic thrash coefficient on swap pressure.
    swap_thrash_coef: float = 3.0
    #: Weight of the 1/(1-s) blow-up term near swap exhaustion.
    swap_blowup_coef: float = 0.03
    #: Paging I/O stall seconds per request at full swap pressure.
    io_stall_coef: float = 1.5
    #: Kernel share of compute work on a healthy system.
    base_sys_share: float = 0.18
    #: iowait fraction at full swap pressure.
    iowait_coef: float = 0.55
    #: Mean hypervisor steal fraction (virtualized testbed).
    steal_mean: float = 0.004
    #: Service-demand lognormal noise sigma (per-request variability).
    demand_noise_sigma: float = 0.15
    #: Service inflation per permanently held application lock.
    lock_contention_per_lock: float = 0.05
    #: Weight of the fd-table fill blow-up term (kernel fd scans,
    #: accept() retries as the descriptor table saturates).
    fd_pressure_coef: float = 0.4
    #: DB connection-pool capacity (connections).
    conn_pool_size: int = 32
    #: Service inflation per held/free connection ratio (queueing on
    #: the shrinking free set).
    conn_wait_coef: float = 0.12
    #: Fraction of the heap effectively lost per fragmentation event.
    frag_per_event: float = 0.004
    #: Ceiling on the effective heap fraction lost to fragmentation.
    frag_cap: float = 0.95

    def __post_init__(self) -> None:
        if self.swap_blowup_coef < 0 or self.swap_thrash_coef < 0:
            raise ValueError("degradation coefficients must be non-negative")
        if self.fd_pressure_coef < 0 or self.conn_wait_coef < 0:
            raise ValueError("degradation coefficients must be non-negative")
        if self.conn_pool_size < 1:
            raise ValueError(
                f"conn_pool_size must be >= 1, got {self.conn_pool_size}"
            )
        if self.frag_per_event < 0:
            raise ValueError(
                f"frag_per_event must be non-negative, got {self.frag_per_event}"
            )
        if not 0.0 <= self.frag_cap < 1.0:
            raise ValueError(f"frag_cap must be in [0,1), got {self.frag_cap}")


def degradation_multiplier(
    config: ServerConfig,
    *,
    n_leaked_threads: int,
    n_stuck_locks: int,
    swap_pressure: float,
    n_leaked_fds: int = 0,
    fd_limit: float = float("inf"),
    n_held_connections: int = 0,
    frag_events: int = 0,
) -> float:
    """Combined service-time inflation from every active aging family.

    Pure form of :meth:`AppServer.service_multiplier` (which delegates
    here). The fused substrate inlines this exact expression sequence in
    its hot loop (marked there); the substrate-equivalence battery keeps
    the copies bit-identical. The fd/connection/fragmentation factors are
    exactly ``1.0`` when their counters are zero, so campaigns that never
    enable those injectors produce float-for-float the same multipliers
    as before the families existed (``x * 1.0`` is a bitwise no-op).
    """
    thread_factor = 1.0 + config.thread_overhead_per_1k * (
        n_leaked_threads / 1000.0
    )
    lock_factor = 1.0 + config.lock_contention_per_lock * n_stuck_locks
    s = swap_pressure
    swap_factor = 1.0 + config.swap_thrash_coef * s * s
    if s < 1.0:
        swap_factor += config.swap_blowup_coef * s / (1.0 - s)
    else:
        swap_factor += config.swap_blowup_coef * 1e3
    fd_factor = 1.0
    if n_leaked_fds > 0:
        fill = n_leaked_fds / fd_limit
        if fill < 1.0:
            fd_factor = 1.0 + config.fd_pressure_coef * fill / (1.0 - fill)
        else:
            fd_factor = 1.0 + config.fd_pressure_coef * 1e3
    conn_factor = 1.0
    if n_held_connections > 0:
        free = config.conn_pool_size - n_held_connections
        if free > 0:
            conn_factor = 1.0 + config.conn_wait_coef * (
                n_held_connections / free
            )
        else:
            conn_factor = 1.0 + config.conn_wait_coef * 1e3
    frag_factor = 1.0
    if frag_events > 0:
        frag = frag_events * config.frag_per_event
        if frag > config.frag_cap:
            frag = config.frag_cap
        frag_factor = 1.0 / (1.0 - frag)
    return (
        thread_factor
        * lock_factor
        * swap_factor
        * fd_factor
        * conn_factor
        * frag_factor
    )


def tick_cpu_inputs(
    config: ServerConfig,
    *,
    n_leaked_threads: int,
    utilization: float,
    swap_pressure: float,
) -> tuple[float, float, float]:
    """Return one tick's ``(busy_frac, sys_share, iowait_frac)``.

    The deterministic part of the per-tick CPU accounting (the steal and
    nice draws stay with the caller, which owns the RNG stream). Used by
    :meth:`AppServer.tick`; the fused substrate inlines the same
    expression sequence (marked there), kept in sync by the
    substrate-equivalence battery.
    """
    s = swap_pressure
    sched_overhead = min(0.10, n_leaked_threads / 20_000.0)
    sys_share = min(0.9, config.base_sys_share + sched_overhead)
    iowait = config.iowait_coef * s * s * (0.3 + 0.7 * min(1.0, utilization + s))
    busy = min(1.0, utilization + sched_overhead)
    return busy, sys_share, iowait


@dataclass
class TickStats:
    """Aggregate statistics of one server tick (for the monitor)."""

    n_completed: int = 0
    sum_response_time: float = 0.0
    utilization: float = 0.0

    @property
    def mean_response_time(self) -> float:
        if self.n_completed == 0:
            return 0.0
        return self.sum_response_time / self.n_completed


class AppServer:
    """Closed-loop fluid application server over a :class:`MachineState`."""

    def __init__(
        self,
        config: ServerConfig,
        state: MachineState,
        pool: EmulatedBrowserPool,
        profile: AnomalyProfile,
        seed: "int | None | np.random.Generator" = None,
    ) -> None:
        self.config = config
        self.state = state
        self.pool = pool
        self.profile = profile
        self.rng = as_rng(seed)
        self.backlog_cpu_s: float = 0.0
        self.last_rt: float = 0.0
        self.total_completed: int = 0
        self.total_leaked_kb: float = 0.0
        self.total_threads_spawned: int = 0
        self.n_stuck_locks: int = 0
        self.n_held_connections: int = 0
        self.frag_events: int = 0

    def add_stuck_locks(self, count: int) -> None:
        """Account permanently held locks (serialize part of the mix)."""
        if count < 0:
            raise ValueError(f"lock count must be non-negative, got {count}")
        self.n_stuck_locks += count

    def hold_connections(self, count: int) -> None:
        """Account pool connections checked out and never returned."""
        if count < 0:
            raise ValueError(f"connection count must be non-negative, got {count}")
        self.n_held_connections += count

    def fragment_heap(self, count: int) -> None:
        """Account heap-fragmentation events (no RSS growth)."""
        if count < 0:
            raise ValueError(f"event count must be non-negative, got {count}")
        self.frag_events += count

    # -- degradation model ---------------------------------------------------

    def service_multiplier(self) -> float:
        """Combined service-time inflation from all active aging families."""
        return degradation_multiplier(
            self.config,
            n_leaked_threads=self.state.n_leaked_threads,
            n_stuck_locks=self.n_stuck_locks,
            swap_pressure=self.state.swap_pressure,
            n_leaked_fds=self.state.n_leaked_fds,
            fd_limit=self.state.config.fd_limit,
            n_held_connections=self.n_held_connections,
            frag_events=self.frag_events,
        )

    def _io_stall(self, n: int) -> np.ndarray:
        """Per-request paging stalls (seconds) at current swap pressure."""
        s = self.state.swap_pressure
        if s <= 0.0 or n == 0:
            return np.zeros(n)
        base = self.config.io_stall_coef * s * s
        return base * (1.0 + self.rng.exponential(0.5, size=n))

    # -- tick advance -----------------------------------------------------------

    def tick(self, now: float, dt: float, active_fraction: float = 1.0) -> TickStats:
        """Advance the server by one tick ending at ``now + dt``.

        ``active_fraction`` is forwarded to the browser pool (load
        schedule support); 1.0 reproduces the paper's constant load.
        """
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt}")
        state = self.state
        cfg = self.config
        stats = TickStats()

        indices, interactions = self.pool.due_requests(now, active_fraction)
        n_arrivals = indices.size

        # Request-coupled anomaly injection on Home interactions.
        n_home = int((interactions == Interaction.HOME).sum())
        if n_home > 0:
            leaked, spawned = self.profile.apply_home_visits(state, n_home, self.rng)
            self.total_leaked_kb += leaked
            self.total_threads_spawned += spawned
        state.update_swap()

        multiplier = self.service_multiplier()
        capacity = state.config.n_cpus * dt

        if n_arrivals > 0:
            noise = self.rng.lognormal(
                mean=0.0, sigma=cfg.demand_noise_sigma, size=n_arrivals
            )
            demands = SERVICE_DEMANDS[interactions] * multiplier * noise
            # FIFO latency estimate: own demand + drain time of the backlog
            # ahead (including earlier arrivals this tick) + paging stalls.
            queue_ahead = self.backlog_cpu_s + np.concatenate(
                ([0.0], np.cumsum(demands[:-1]))
            )
            waits = queue_ahead / state.config.n_cpus
            rts = demands + waits + self._io_stall(n_arrivals)
            self.backlog_cpu_s += float(demands.sum())
            self.pool.complete(indices, now + rts)
            stats.n_completed = n_arrivals
            stats.sum_response_time = float(rts.sum())
            self.last_rt = float(rts.mean())
            self.total_completed += n_arrivals

        processed = min(self.backlog_cpu_s, capacity)
        self.backlog_cpu_s -= processed
        utilization = processed / capacity
        stats.utilization = utilization

        # CPU accounting for this tick.
        busy, sys_share, iowait = tick_cpu_inputs(
            cfg,
            n_leaked_threads=state.n_leaked_threads,
            utilization=utilization,
            swap_pressure=state.swap_pressure,
        )
        steal = max(0.0, self.rng.normal(cfg.steal_mean, cfg.steal_mean / 2.0))
        nice = max(0.0, self.rng.normal(0.001, 0.001))
        state.account_cpu(
            busy_frac=busy,
            sys_share=sys_share,
            iowait_frac=iowait,
            steal_frac=steal,
            nice_frac=nice,
        )
        return stats
