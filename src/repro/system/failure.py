"""User-defined failure conditions (paper Sec. I / III).

F2PM's failure definition is deliberately user-supplied: "the condition
can be defined by the user on the basis of the values of one or more
selected system features, which can reveal that the system is
approaching, e.g., a hang/crash point or is working in a sub-optimal
way". A condition is a predicate over the live system; the simulator
checks it every tick and, when it fires, logs the fail event and
restarts the VM.

Provided conditions:

- :class:`MemoryExhaustion` — demand exceeds RAM + swap (the OOM crash of
  the paper's testbed);
- :class:`ResponseTimeLimit` — the "working in a sub-optimal way"
  alternative: mean client RT above a threshold;
- :class:`GenerationTimeLimit` — threshold on the datapoint
  inter-generation time, the knob the paper suggests for fine-tuning the
  failure definition after the Fig. 3 correlation;
- :class:`AnyOf` — disjunction of conditions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.system.resources import MachineState


@dataclass
class SystemView:
    """The live quantities a failure condition may inspect."""

    state: MachineState
    mean_response_time: float
    last_generation_interval: float


class FailureCondition(ABC):
    """Predicate deciding whether the monitored system has failed."""

    @abstractmethod
    def is_failed(self, view: SystemView) -> bool:
        """True when the user-defined failure condition holds."""

    @property
    def description(self) -> str:
        return type(self).__name__

    def __or__(self, other: "FailureCondition") -> "AnyOf":
        return AnyOf(self, other)


class MemoryExhaustion(FailureCondition):
    """System failed when memory demand exceeds RAM + swap.

    ``headroom_frac`` fires slightly early (e.g. 0.02 keeps 2% of swap as
    margin), modelling the kernel OOM-killing the JVM before literal
    exhaustion.
    """

    def __init__(self, headroom_frac: float = 0.0) -> None:
        if not 0.0 <= headroom_frac < 1.0:
            raise ValueError(f"headroom_frac must be in [0,1), got {headroom_frac}")
        self.headroom_frac = headroom_frac

    def is_failed(self, view: SystemView) -> bool:
        state = view.state
        limit = state.config.swap_kb * (1.0 - self.headroom_frac)
        return state.overflow_kb > limit

    @property
    def description(self) -> str:
        return f"memory exhaustion (headroom {self.headroom_frac:.0%})"


class ResponseTimeLimit(FailureCondition):
    """System failed when the mean client response time exceeds a limit."""

    def __init__(self, limit_seconds: float) -> None:
        if limit_seconds <= 0:
            raise ValueError(f"limit_seconds must be positive, got {limit_seconds}")
        self.limit_seconds = limit_seconds

    def is_failed(self, view: SystemView) -> bool:
        return view.mean_response_time > self.limit_seconds

    @property
    def description(self) -> str:
        return f"response time > {self.limit_seconds}s"


class GenerationTimeLimit(FailureCondition):
    """System failed when the datapoint inter-generation time exceeds a
    limit — the paper's suggested overload proxy once the Fig. 3
    correlation is established (no client instrumentation needed)."""

    def __init__(self, limit_seconds: float) -> None:
        if limit_seconds <= 0:
            raise ValueError(f"limit_seconds must be positive, got {limit_seconds}")
        self.limit_seconds = limit_seconds

    def is_failed(self, view: SystemView) -> bool:
        return view.last_generation_interval > self.limit_seconds

    @property
    def description(self) -> str:
        return f"inter-generation time > {self.limit_seconds}s"


class AnyOf(FailureCondition):
    """Disjunction: failed when any sub-condition fires."""

    def __init__(self, *conditions: FailureCondition) -> None:
        if not conditions:
            raise ValueError("AnyOf needs at least one condition")
        self.conditions = conditions

    def is_failed(self, view: SystemView) -> bool:
        return any(c.is_failed(view) for c in self.conditions)

    @property
    def description(self) -> str:
        return " OR ".join(c.description for c in self.conditions)
