"""User-defined failure conditions (paper Sec. I / III).

F2PM's failure definition is deliberately user-supplied: "the condition
can be defined by the user on the basis of the values of one or more
selected system features, which can reveal that the system is
approaching, e.g., a hang/crash point or is working in a sub-optimal
way". A condition is a predicate over the live system; the simulator
checks it every tick and, when it fires, logs the fail event and
restarts the VM.

Provided conditions:

- :class:`MemoryExhaustion` — demand exceeds RAM + swap (the OOM crash of
  the paper's testbed);
- :class:`ResponseTimeLimit` — the "working in a sub-optimal way"
  alternative: mean client RT above a threshold;
- :class:`GenerationTimeLimit` — threshold on the datapoint
  inter-generation time, the knob the paper suggests for fine-tuning the
  failure definition after the Fig. 3 correlation;
- :class:`AnyOf` — disjunction of conditions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.system.resources import MachineConfig, MachineState

#: Sentinel limit for an unused threshold channel (never crossed).
NO_LIMIT = float("inf")


@dataclass
class SystemView:
    """The live quantities a failure condition may inspect."""

    state: MachineState
    mean_response_time: float
    last_generation_interval: float


class FailureCondition(ABC):
    """Predicate deciding whether the monitored system has failed."""

    @abstractmethod
    def is_failed(self, view: SystemView) -> bool:
        """True when the user-defined failure condition holds."""

    @property
    def description(self) -> str:
        return type(self).__name__

    def fused_limits(
        self, machine: MachineConfig
    ) -> "tuple[float, float, float] | None":
        """Compile this condition to scalar thresholds, if possible.

        Returns ``(overflow_kb_limit, mean_rt_limit, generation_limit)``
        such that the condition fires exactly when **any** channel's
        observable strictly exceeds its limit (:data:`NO_LIMIT` marks an
        unused channel), or ``None`` when the condition has no such
        threshold form. The fused substrate uses the compiled form to
        check failure with three float compares per tick instead of
        building a :class:`SystemView`; ``None`` makes the simulator fall
        back to the legacy loop, so user-defined conditions always stay
        correct. Subclasses of the built-in conditions deliberately do
        not inherit compilation (an overridden ``is_failed`` would be
        miscompiled): each built-in guards on its exact type.
        """
        return None

    def __or__(self, other: "FailureCondition") -> "AnyOf":
        return AnyOf(self, other)


class MemoryExhaustion(FailureCondition):
    """System failed when memory demand exceeds RAM + swap.

    ``headroom_frac`` fires slightly early (e.g. 0.02 keeps 2% of swap as
    margin), modelling the kernel OOM-killing the JVM before literal
    exhaustion.
    """

    def __init__(self, headroom_frac: float = 0.0) -> None:
        if not 0.0 <= headroom_frac < 1.0:
            raise ValueError(f"headroom_frac must be in [0,1), got {headroom_frac}")
        self.headroom_frac = headroom_frac

    def is_failed(self, view: SystemView) -> bool:
        state = view.state
        limit = state.config.swap_kb * (1.0 - self.headroom_frac)
        return state.overflow_kb > limit

    @property
    def description(self) -> str:
        return f"memory exhaustion (headroom {self.headroom_frac:.0%})"

    def fused_limits(
        self, machine: MachineConfig
    ) -> "tuple[float, float, float] | None":
        if type(self) is not MemoryExhaustion:
            return None
        return (machine.swap_kb * (1.0 - self.headroom_frac), NO_LIMIT, NO_LIMIT)


class ResponseTimeLimit(FailureCondition):
    """System failed when the mean client response time exceeds a limit."""

    def __init__(self, limit_seconds: float) -> None:
        if limit_seconds <= 0:
            raise ValueError(f"limit_seconds must be positive, got {limit_seconds}")
        self.limit_seconds = limit_seconds

    def is_failed(self, view: SystemView) -> bool:
        return view.mean_response_time > self.limit_seconds

    @property
    def description(self) -> str:
        return f"response time > {self.limit_seconds}s"

    def fused_limits(
        self, machine: MachineConfig
    ) -> "tuple[float, float, float] | None":
        if type(self) is not ResponseTimeLimit:
            return None
        return (NO_LIMIT, self.limit_seconds, NO_LIMIT)


class GenerationTimeLimit(FailureCondition):
    """System failed when the datapoint inter-generation time exceeds a
    limit — the paper's suggested overload proxy once the Fig. 3
    correlation is established (no client instrumentation needed)."""

    def __init__(self, limit_seconds: float) -> None:
        if limit_seconds <= 0:
            raise ValueError(f"limit_seconds must be positive, got {limit_seconds}")
        self.limit_seconds = limit_seconds

    def is_failed(self, view: SystemView) -> bool:
        return view.last_generation_interval > self.limit_seconds

    @property
    def description(self) -> str:
        return f"inter-generation time > {self.limit_seconds}s"

    def fused_limits(
        self, machine: MachineConfig
    ) -> "tuple[float, float, float] | None":
        if type(self) is not GenerationTimeLimit:
            return None
        return (NO_LIMIT, NO_LIMIT, self.limit_seconds)


class FdExhaustion(FailureCondition):
    """System failed when leaked descriptors fill the process fd table.

    ``fill_frac`` is the fraction of :attr:`MachineConfig.fd_limit` at
    which the application dies (accept loops hit ``EMFILE`` before the
    table is literally full). This condition reads a counter the fused
    engine does not track as a threshold channel, so it has **no**
    ``fused_limits`` form — fd-leak scenarios deliberately exercise the
    loop-fallback path (``sim.fused_fallback_total``).
    """

    def __init__(self, fill_frac: float = 0.95) -> None:
        if not 0.0 < fill_frac <= 1.0:
            raise ValueError(f"fill_frac must be in (0,1], got {fill_frac}")
        self.fill_frac = fill_frac

    def is_failed(self, view: SystemView) -> bool:
        state = view.state
        return state.n_leaked_fds > self.fill_frac * state.config.fd_limit

    @property
    def description(self) -> str:
        return f"fd table > {self.fill_frac:.0%} full"


class AnyOf(FailureCondition):
    """Disjunction: failed when any sub-condition fires."""

    def __init__(self, *conditions: FailureCondition) -> None:
        if not conditions:
            raise ValueError("AnyOf needs at least one condition")
        self.conditions = conditions

    def is_failed(self, view: SystemView) -> bool:
        return any(c.is_failed(view) for c in self.conditions)

    @property
    def description(self) -> str:
        return " OR ".join(c.description for c in self.conditions)

    def fused_limits(
        self, machine: MachineConfig
    ) -> "tuple[float, float, float] | None":
        if type(self) is not AnyOf:
            return None
        mem = rt = gen = NO_LIMIT
        for c in self.conditions:
            limits = c.fused_limits(machine)
            if limits is None:
                return None
            # x > min(a, b) iff (x > a or x > b): disjunction = per-channel min
            mem = min(mem, limits[0])
            rt = min(rt, limits[1])
            gen = min(gen, limits[2])
        return (mem, rt, gen)


def parse_failure(spec: str) -> FailureCondition:
    """Build a failure condition from a compact string spec.

    The grammar keeps campaign configs JSON-friendly (a config field can
    hold the spec instead of a condition object):

    ==================  ==============================================
    spec                condition
    ==================  ==============================================
    ``mem``             :class:`MemoryExhaustion`
    ``mem:0.05``        :class:`MemoryExhaustion` with 5% headroom
    ``rt>8``            :class:`ResponseTimeLimit` at 8 s
    ``gen>30``          :class:`GenerationTimeLimit` at 30 s
    ``fd``              :class:`FdExhaustion`
    ``fd:0.9``          :class:`FdExhaustion` at 90% table fill
    ``a|b``             :class:`AnyOf` disjunction of the terms
    ==================  ==============================================
    """
    if not isinstance(spec, str) or not spec.strip():
        raise ValueError(f"failure spec must be a non-empty string, got {spec!r}")
    terms: list[FailureCondition] = []
    for term in spec.split("|"):
        term = term.strip()
        try:
            if term == "mem":
                terms.append(MemoryExhaustion())
            elif term.startswith("mem:"):
                terms.append(MemoryExhaustion(headroom_frac=float(term[4:])))
            elif term.startswith("rt>"):
                terms.append(ResponseTimeLimit(float(term[3:])))
            elif term.startswith("gen>"):
                terms.append(GenerationTimeLimit(float(term[4:])))
            elif term == "fd":
                terms.append(FdExhaustion())
            elif term.startswith("fd:"):
                terms.append(FdExhaustion(fill_frac=float(term[3:])))
            else:
                raise ValueError("unrecognized term")
        except ValueError as exc:
            raise ValueError(
                f"bad failure spec term {term!r} in {spec!r}: "
                "expected mem[:headroom], rt>SECONDS, gen>SECONDS, or "
                f"fd[:fill] ({exc})"
            ) from None
    if len(terms) == 1:
        return terms[0]
    return AnyOf(*terms)
