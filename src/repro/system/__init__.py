"""Simulated testbed substituting the paper's VMware/TPC-W deployment.

The paper collects training data from a real two-VM testbed: a TPC-W
bookstore (Tomcat + MySQL) modified to leak memory and spawn unterminated
threads proportionally to the request load, monitored by an FMC/FMS pair.
That hardware is not available offline, so this package provides a
discrete-time simulation with the same observable surface:

- :mod:`~repro.system.resources` — machine memory/swap/CPU accounting;
- :mod:`~repro.system.tpcw` — TPC-W interaction mix and emulated browsers;
- :mod:`~repro.system.server` — closed-loop application-server model whose
  service times inflate under thread bloat and swap thrashing;
- :mod:`~repro.system.anomalies` — the paper's Sec. III-E injector design;
- :mod:`~repro.system.failure` — user-defined failure conditions;
- :mod:`~repro.system.monitor` — FMC/FMS with load-dependent sampling
  jitter (the source of the Fig. 3 inter-generation-time signal);
- :mod:`~repro.system.simulator` — run-until-crash campaigns producing
  :class:`~repro.core.history.DataHistory`;
- :mod:`~repro.system.fused` — the event-fused execution substrate, a
  bit-identical fast path for the campaign hot loop (see
  ``docs/PERFORMANCE.md``).
"""

from repro.system.resources import MACHINE_PROFILES, MachineConfig, MachineState
from repro.system.anomalies import (
    AnomalyProfile,
    MemoryLeakInjector,
    ThreadLeakInjector,
    LockContentionInjector,
    FdLeakInjector,
    ConnectionPoolInjector,
    HeapFragmentationInjector,
)
from repro.system.tpcw import (
    Interaction,
    TPCWMix,
    BROWSING_MIX,
    SHOPPING_MIX,
    ORDERING_MIX,
    EmulatedBrowserPool,
)
from repro.system.server import ServerConfig, AppServer
from repro.system.failure import (
    FailureCondition,
    MemoryExhaustion,
    ResponseTimeLimit,
    GenerationTimeLimit,
    FdExhaustion,
    AnyOf,
    parse_failure,
)
from repro.system.schedule import (
    LoadSchedule,
    ConstantLoad,
    DiurnalLoad,
    StepLoad,
    FlashCrowdLoad,
)
from repro.system.monitor import MonitorConfig, FeatureMonitorClient, FeatureMonitorServer
from repro.system.simulator import CampaignConfig, TestbedSimulator
from repro.system.fused import run_once_fused

__all__ = [
    "MACHINE_PROFILES",
    "MachineConfig",
    "MachineState",
    "AnomalyProfile",
    "MemoryLeakInjector",
    "ThreadLeakInjector",
    "LockContentionInjector",
    "FdLeakInjector",
    "ConnectionPoolInjector",
    "HeapFragmentationInjector",
    "Interaction",
    "TPCWMix",
    "BROWSING_MIX",
    "SHOPPING_MIX",
    "ORDERING_MIX",
    "EmulatedBrowserPool",
    "ServerConfig",
    "AppServer",
    "FailureCondition",
    "MemoryExhaustion",
    "ResponseTimeLimit",
    "GenerationTimeLimit",
    "FdExhaustion",
    "AnyOf",
    "parse_failure",
    "LoadSchedule",
    "ConstantLoad",
    "DiurnalLoad",
    "StepLoad",
    "FlashCrowdLoad",
    "MonitorConfig",
    "FeatureMonitorClient",
    "FeatureMonitorServer",
    "CampaignConfig",
    "TestbedSimulator",
    "run_once_fused",
]
