"""Time-varying workload intensity schedules.

The paper's testbed drives a constant emulated-browser population for a
week. Real web workloads are diurnal — and because the paper couples
anomaly generation to the request rate (Home-interaction probability),
load variation directly shapes the anomaly accumulation curve and hence
the diversity of RTTF trajectories F2PM trains on.

A :class:`LoadSchedule` maps simulation time to the fraction of the
browser pool that is active. The pool applies it by gating which EBs may
issue requests. Schedules are deterministic functions of time, keeping
campaigns reproducible.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np


class LoadSchedule(ABC):
    """Maps simulation time (seconds) to an active fraction in [0, 1]."""

    @abstractmethod
    def active_fraction(self, now: float) -> float:
        """Fraction of emulated browsers active at *now*."""

    def next_change_after(self, now: float) -> float:
        """Earliest time after *now* at which the fraction may change.

        Event-driven consumers (the fused substrate) use this to skip
        re-evaluating :meth:`active_fraction` between changes. The
        conservative default returns ``now`` — "may change immediately",
        forcing per-tick evaluation exactly like the legacy loop.
        Schedules that are constant or piecewise-constant override it;
        returning ``inf`` means "never changes again".
        """
        return now

    def validate_over(self, horizon: float, step: float = 60.0) -> None:
        """Raise if the schedule leaves [0, 1] anywhere on a grid."""
        times = np.arange(0.0, horizon + step, step)
        values = np.array([self.active_fraction(float(t)) for t in times])
        if (values < 0.0).any() or (values > 1.0).any():
            raise ValueError(
                f"{type(self).__name__} leaves [0, 1] over [0, {horizon}]"
            )


@dataclass(frozen=True)
class ConstantLoad(LoadSchedule):
    """The paper's setting: a constant fraction (default: everyone)."""

    fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0,1], got {self.fraction}")

    def active_fraction(self, now: float) -> float:
        return self.fraction

    def next_change_after(self, now: float) -> float:
        return float("inf")


@dataclass(frozen=True)
class DiurnalLoad(LoadSchedule):
    """Sinusoidal day/night cycle.

    ``fraction(t) = base + amplitude * sin(2 pi (t - phase)/period)``,
    clipped to [floor, 1]. Defaults give a 24 h cycle compressed to a
    simulated "day" of ``period`` seconds with load swinging between 30%
    and 90% of the pool.
    """

    period: float = 3600.0
    base: float = 0.6
    amplitude: float = 0.3
    phase: float = 0.0
    floor: float = 0.05

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be positive, got {self.period}")
        if not 0.0 <= self.floor <= 1.0:
            raise ValueError(f"floor must be in [0,1], got {self.floor}")

    def active_fraction(self, now: float) -> float:
        value = self.base + self.amplitude * np.sin(
            2.0 * np.pi * (now - self.phase) / self.period
        )
        return float(np.clip(value, self.floor, 1.0))


@dataclass(frozen=True)
class StepLoad(LoadSchedule):
    """Piecewise-constant schedule (e.g. a flash crowd).

    ``breakpoints`` are ascending times; ``fractions`` has one more entry
    than ``breakpoints`` (the level before the first breakpoint, between
    each pair, and after the last).
    """

    breakpoints: tuple[float, ...]
    fractions: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.fractions) != len(self.breakpoints) + 1:
            raise ValueError(
                "need len(fractions) == len(breakpoints) + 1, got "
                f"{len(self.fractions)} and {len(self.breakpoints)}"
            )
        if any(b2 <= b1 for b1, b2 in zip(self.breakpoints, self.breakpoints[1:])):
            raise ValueError("breakpoints must be strictly increasing")
        if any(not 0.0 <= f <= 1.0 for f in self.fractions):
            raise ValueError("fractions must be in [0, 1]")

    def active_fraction(self, now: float) -> float:
        idx = int(np.searchsorted(np.asarray(self.breakpoints), now, side="right"))
        return self.fractions[idx]

    def next_change_after(self, now: float) -> float:
        idx = int(np.searchsorted(np.asarray(self.breakpoints), now, side="right"))
        if idx >= len(self.breakpoints):
            return float("inf")
        return self.breakpoints[idx]


@dataclass(frozen=True)
class FlashCrowdLoad(LoadSchedule):
    """A flash crowd: baseline load, a linear ramp to a peak, a hold at
    the peak, and a linear decay back to baseline.

    The event that makes load-coupled anomaly accumulation *non-uniform
    in time*: a burst of Home interactions mid-run bends the RTTF
    trajectory in a way constant and even diurnal load never does.
    """

    base: float = 0.5
    peak: float = 1.0
    start: float = 600.0
    ramp: float = 120.0
    hold: float = 600.0
    decay: float = 300.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.base <= 1.0 or not 0.0 <= self.peak <= 1.0:
            raise ValueError(
                f"base and peak must be in [0,1], got ({self.base}, {self.peak})"
            )
        if self.start < 0 or self.ramp < 0 or self.hold < 0 or self.decay < 0:
            raise ValueError("start/ramp/hold/decay must be non-negative")

    def active_fraction(self, now: float) -> float:
        t = now - self.start
        if t < 0.0:
            return self.base
        if t < self.ramp:
            return self.base + (self.peak - self.base) * (t / self.ramp)
        t -= self.ramp
        if t < self.hold:
            return self.peak
        t -= self.hold
        if t < self.decay:
            return self.peak + (self.base - self.peak) * (t / self.decay)
        return self.base

    def next_change_after(self, now: float) -> float:
        # Piecewise: constant segments report their end (event-driven
        # consumers may batch across them); ramp/decay segments return
        # ``now`` — "changing continuously", per-tick evaluation.
        if now < self.start:
            return self.start
        t = now - self.start
        if t < self.ramp:
            return now
        t -= self.ramp
        if t < self.hold:
            return self.start + self.ramp + self.hold
        t -= self.hold
        if t < self.decay:
            return now
        return float("inf")
