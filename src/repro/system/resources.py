"""Machine resource model: memory, swap, and CPU-time accounting.

The model reproduces the observable behaviour of a Linux VM under a
memory-leaking workload, at the granularity the FMC samples it:

- **Memory.** Application demand (base working set + leaked heap + thread
  stacks) is served from RAM first. The page cache yields before the
  kernel swaps (as Linux does): cache shrinks toward a floor as demand
  grows, then overflow spills to swap. Swap usage is monotone within a
  run — leaked pages never come back — which is what makes ``swap_used``
  and the memory slopes such strong predictors in the paper's Table I.
- **Swap pressure.** ``swap_pressure`` in [0, 1] measures how much of the
  swap device is consumed; the server model turns it into service-time
  inflation and iowait (thrashing).
- **CPU.** Per-tick utilization is decomposed into the six accounting
  categories the FMC samples (user, nice, system, iowait, steal, idle).

All sizes are in KB, matching ``free``'s output units.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class MachineConfig:
    """Static sizing of the simulated VM.

    Defaults model a small VM comparable to the paper's testbed guests:
    2 GB RAM, 1 GB swap, 2 vCPUs.
    """

    ram_kb: float = 2_097_152.0
    swap_kb: float = 1_048_576.0
    n_cpus: int = 2
    #: OS + idle JVM + MySQL resident set.
    os_base_kb: float = 409_600.0
    #: Application working set at zero anomalies.
    app_working_set_kb: float = 307_200.0
    #: Stack reservation per (leaked) thread — Java default -Xss512k.
    thread_stack_kb: float = 512.0
    #: Page-cache floor the kernel defends before swapping.
    min_cache_kb: float = 65_536.0
    #: Fraction of headroom the page cache opportunistically occupies.
    cache_headroom_frac: float = 0.6
    #: Shared-memory segments (SysV/POSIX shm of the DB).
    shared_kb: float = 49_152.0
    #: OS data buffers at steady state.
    buffers_kb: float = 24_576.0
    #: Process file-descriptor table size (``ulimit -n``); fd/socket
    #: leaks degrade service as the table fills and crash the app when
    #: it is exhausted.
    fd_limit: int = 65_536

    def __post_init__(self) -> None:
        if self.ram_kb <= 0 or self.swap_kb < 0:
            raise ValueError("ram_kb must be positive, swap_kb non-negative")
        if self.n_cpus < 1:
            raise ValueError(f"n_cpus must be >= 1, got {self.n_cpus}")
        if self.fd_limit < 1:
            raise ValueError(f"fd_limit must be >= 1, got {self.fd_limit}")
        base = self.os_base_kb + self.app_working_set_kb
        if base >= self.ram_kb:
            raise ValueError(
                f"base memory demand {base} exceeds RAM {self.ram_kb}"
            )


#: Named machine presets for heterogeneous-fleet scenarios. Keys are
#: accepted anywhere a ``machine`` value is declared (CLI flags,
#: ``CampaignSpec`` axes, scenario presets); ``default`` is the paper's
#: 2 GB / 1 GB / 2-vCPU guest.
MACHINE_PROFILES: dict[str, MachineConfig] = {
    "default": MachineConfig(),
    # Memory-starved guest: same working set, half the RAM and swap —
    # memory anomalies hit the wall roughly twice as fast.
    "small-vm": MachineConfig(
        ram_kb=1_048_576.0,
        swap_kb=524_288.0,
        n_cpus=1,
        os_base_kb=262_144.0,
        app_working_set_kb=262_144.0,
        min_cache_kb=32_768.0,
        shared_kb=24_576.0,
        buffers_kb=12_288.0,
    ),
    # Over-provisioned guest: double RAM/swap/CPUs — the same anomaly
    # rates produce much longer, flatter RTTF trajectories.
    "large-vm": MachineConfig(
        ram_kb=4_194_304.0,
        swap_kb=2_097_152.0,
        n_cpus=4,
    ),
    # Tight ``ulimit -n``: fd/socket leaks exhaust the descriptor table
    # long before memory pressure shows up anywhere.
    "constrained-fd": MachineConfig(fd_limit=4_096),
}


def memory_layout(
    config: MachineConfig, demand_kb: float
) -> tuple[float, float, float, float]:
    """Return ``(resident_kb, cached_kb, free_kb, overflow_kb)`` for a demand.

    The single source of truth for the memory model's arithmetic: both
    :meth:`MachineState._memory_layout` and the fused substrate
    (:mod:`repro.system.fused`) evaluate this exact expression sequence,
    which is what keeps their float results bit-identical.
    """
    fixed = config.buffers_kb + config.shared_kb
    # RAM left for app pages after the kernel defends its cache floor.
    ram_for_app = config.ram_kb - fixed - config.min_cache_kb
    overflow = max(0.0, demand_kb - ram_for_app)
    resident = demand_kb - overflow
    headroom = max(0.0, config.ram_kb - fixed - resident - config.min_cache_kb)
    cached = config.min_cache_kb + config.cache_headroom_frac * headroom
    free = max(0.0, config.ram_kb - fixed - resident - cached)
    return resident, cached, free, overflow


def cpu_decomposition(
    *,
    busy_frac: float,
    sys_share: float,
    iowait_frac: float,
    steal_frac: float,
    nice_frac: float = 0.0,
) -> tuple[float, float, float, float, float, float]:
    """Decompose one tick into ``(user, nice, sys, iowait, steal, idle)`` %.

    Pure form of :meth:`MachineState.account_cpu` (which delegates here);
    the fused substrate calls it directly at sample ticks. Everything is
    clamped and normalized so the six categories sum to exactly 100%.
    """
    # Scalar clamp: bitwise equal to np.clip for every finite non -0.0
    # input (the only inputs that occur), ~10x cheaper per sample tick.
    busy = busy_frac if busy_frac < 1.0 else 1.0
    busy = float(busy if busy > 0.0 else 0.0)
    sys_share = sys_share if sys_share < 1.0 else 1.0
    sys_share = float(sys_share if sys_share > 0.0 else 0.0)
    user = busy * (1.0 - sys_share)
    sys_ = busy * sys_share
    iowait = max(0.0, iowait_frac)
    steal = max(0.0, steal_frac)
    nice = max(0.0, nice_frac)
    total = user + sys_ + iowait + steal + nice
    if total > 1.0:
        scale = 1.0 / total
        user *= scale
        sys_ *= scale
        iowait *= scale
        steal *= scale
        nice *= scale
        total = 1.0
    return (
        100.0 * user,
        100.0 * nice,
        100.0 * sys_,
        100.0 * iowait,
        100.0 * steal,
        100.0 * (1.0 - total),
    )


@dataclass
class CpuSample:
    """One tick's CPU decomposition, as percentages summing to 100."""

    user: float = 0.0
    nice: float = 0.0
    sys: float = 0.0
    iowait: float = 0.0
    steal: float = 0.0
    idle: float = 100.0

    def as_tuple(self) -> tuple[float, float, float, float, float, float]:
        return (self.user, self.nice, self.sys, self.iowait, self.steal, self.idle)


class MachineState:
    """Mutable resource state of the simulated VM within one run."""

    def __init__(self, config: MachineConfig) -> None:
        self.config = config
        self.leaked_kb: float = 0.0
        self.n_leaked_threads: int = 0
        self.n_leaked_fds: int = 0
        #: Threads of the healthy application (pool workers etc.).
        self.base_threads: int = 120
        self._swap_used_kb: float = 0.0  # monotone within a run
        self.cpu = CpuSample()

    # -- anomaly application ----------------------------------------------------

    def leak_memory(self, size_kb: float) -> None:
        """Account a leaked (written, hence resident) allocation."""
        if size_kb < 0:
            raise ValueError(f"leak size must be non-negative, got {size_kb}")
        self.leaked_kb += size_kb

    def spawn_threads(self, count: int) -> None:
        """Account unterminated threads (stack memory + scheduler load)."""
        if count < 0:
            raise ValueError(f"thread count must be non-negative, got {count}")
        self.n_leaked_threads += count

    def leak_fds(self, count: int) -> None:
        """Account leaked file descriptors/sockets (no RSS footprint)."""
        if count < 0:
            raise ValueError(f"fd count must be non-negative, got {count}")
        self.n_leaked_fds += count

    # -- derived memory accounting ----------------------------------------------

    @property
    def app_demand_kb(self) -> float:
        """Total resident demand of OS + application + anomalies."""
        c = self.config
        return (
            c.os_base_kb
            + c.app_working_set_kb
            + self.leaked_kb
            + self.n_leaked_threads * c.thread_stack_kb
        )

    def _memory_layout(self) -> tuple[float, float, float, float]:
        """Return (resident_kb, cached_kb, free_kb, overflow_kb).

        ``resident`` is the RAM actually held by OS+app; ``overflow`` is
        demand that no longer fits in RAM after the cache has yielded.
        """
        return memory_layout(self.config, self.app_demand_kb)

    def update_swap(self) -> None:
        """Advance the monotone swap high-water mark from current demand."""
        _, _, _, overflow = self._memory_layout()
        self._swap_used_kb = min(
            self.config.swap_kb, max(self._swap_used_kb, overflow)
        )

    @property
    def mem_used_kb(self) -> float:
        resident, _, _, _ = self._memory_layout()
        return resident

    @property
    def mem_free_kb(self) -> float:
        _, _, free, _ = self._memory_layout()
        return free

    @property
    def mem_cached_kb(self) -> float:
        _, cached, _, _ = self._memory_layout()
        return cached

    @property
    def swap_used_kb(self) -> float:
        return self._swap_used_kb

    @property
    def swap_free_kb(self) -> float:
        return self.config.swap_kb - self._swap_used_kb

    @property
    def swap_pressure(self) -> float:
        """Fraction of swap consumed, in [0, 1]."""
        if self.config.swap_kb == 0:
            return 1.0 if self.overflow_kb > 0 else 0.0
        return self._swap_used_kb / self.config.swap_kb

    @property
    def overflow_kb(self) -> float:
        _, _, _, overflow = self._memory_layout()
        return overflow

    @property
    def memory_exhausted(self) -> bool:
        """True when demand exceeds RAM + swap — the OOM crash point."""
        return self.overflow_kb > self.config.swap_kb

    @property
    def fd_pressure(self) -> float:
        """Fraction of the fd table consumed by leaked descriptors."""
        return self.n_leaked_fds / self.config.fd_limit

    @property
    def n_threads(self) -> int:
        return self.base_threads + self.n_leaked_threads

    # -- CPU accounting -----------------------------------------------------------

    def account_cpu(
        self,
        *,
        busy_frac: float,
        sys_share: float,
        iowait_frac: float,
        steal_frac: float,
        nice_frac: float = 0.0,
    ) -> None:
        """Record one tick's CPU decomposition.

        ``busy_frac`` is the total compute utilization (user+sys) in
        [0, 1]; ``sys_share`` the kernel share of it. iowait/steal/nice
        are independent fractions; everything is clamped and normalized
        so the six categories sum to exactly 100%.
        """
        user, nice, sys_, iowait, steal, idle = cpu_decomposition(
            busy_frac=busy_frac,
            sys_share=sys_share,
            iowait_frac=iowait_frac,
            steal_frac=steal_frac,
            nice_frac=nice_frac,
        )
        self.cpu = CpuSample(
            user=user, nice=nice, sys=sys_, iowait=iowait, steal=steal, idle=idle
        )
