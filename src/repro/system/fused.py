"""Event-fused execution substrate for the campaign simulator.

The legacy loop (:meth:`TestbedSimulator._run_once_loop`) pays one full
Python dispatch chain per tick — ``server.tick`` → injector ``advance`` →
``fmc.due`` → a frozen :class:`SystemView` → ``failure_condition.is_failed``
— even though monitor samples fire only every ~1.5 s, injectors every few
seconds, and failure transitions exactly once per run. This module runs
the same simulation as a scalar event loop instead:

- **Events, not objects.** Per-tick work is straight-line float
  arithmetic on hoisted locals; ``Datapoint``/``SystemView``/``TickStats``
  construction, method dispatch, and property chains happen only at
  *events* (monitor sample due, injector firing, load-schedule change,
  failure crossing). The stretch between two events is a *block*
  (``sim.fused_blocks_total``).
- **Compiled failure predicate.** The failure condition is compiled to
  three scalar thresholds by :meth:`FailureCondition.fused_limits`
  (overflow KB / mean RT / generation interval); the per-tick check is
  three float compares. Conditions with no threshold form fall back to
  the loop substrate in :meth:`TestbedSimulator.run_once`.
- **Quiet-gap batching.** A tick with no due browser, no event, and a
  currently-false predicate consumes exactly two Gaussian draws (the
  steal/nice accounting noise). Such gaps are scanned ahead and their
  draws taken in one batched ``Generator.normal`` call — bit-identical
  to the scalar sequence — while the backlog drains tick-by-tick in
  exact float order.
- **Precomputed sampling CDF.** i.i.d. mix draws go through
  :attr:`TPCWMix.sampling_cdf` + ``searchsorted`` — the exact internal
  computation of ``Generator.choice``, hoisted out of the hot loop.
- **Small-batch scalar path.** The typical tick completes only a few
  requests; numpy's per-call overhead dominates arrays that small. For
  ``k < 8`` due browsers the per-request arithmetic runs as a plain
  Python fold (``bisect`` over the same CDFs, sequential sums), which is
  bit-identical because ``np.sum``/``np.cumsum`` only switch to pairwise
  summation at length 8 — below that they are the same left-to-right
  fold. ``k >= 8`` keeps the vectorized mirror of ``AppServer.tick``.

**Bit-identity contract.** The engine consumes every RNG stream in the
same order as the loop and evaluates every float expression in the same
sequence — via the shared pure helpers in ``resources``/``monitor``, or
(for the two hottest per-tick formulas, ``degradation_multiplier`` and
``tick_cpu_inputs``) as commented inline copies — so
``RunRecord``/``DataHistory`` output is bit-identical to the loop
substrate, enforced by ``tests/system/test_substrate_equivalence.py``
across both code paths. All stochastic state
(anomaly profile, browser pool, injectors) lives in the *real* component
objects, so constructor-time draws can never diverge; only the per-tick
arithmetic is fused.
"""

from __future__ import annotations

import time
from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING

import numpy as np

from repro.core.history import RunRecord
from repro.obs import get_metrics, get_telemetry, span
from repro.system.anomalies import (
    AnomalyProfile,
    ConnectionPoolInjector,
    FdLeakInjector,
    HeapFragmentationInjector,
    LockContentionInjector,
    MemoryLeakInjector,
    ThreadLeakInjector,
)
from repro.system.monitor import stretched_interval
from repro.system.resources import MachineState, cpu_decomposition, memory_layout
from repro.system.server import AppServer
from repro.system.tpcw import SERVICE_DEMANDS, EmulatedBrowserPool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.system.simulator import CampaignConfig

_INF = float("inf")

#: Longest quiet gap batched into one Gaussian draw (bounds the
#: preallocated loc/scale tiles; longer gaps simply split).
GAP_MAX_TICKS = 512


def run_once_fused(
    cfg: "CampaignConfig",
    limits: tuple[float, float, float],
    rng: np.random.Generator,
) -> RunRecord:
    """Simulate one run on the fused substrate.

    ``limits`` is the compiled ``(overflow_kb, mean_rt, generation)``
    threshold triple from :meth:`FailureCondition.fused_limits`. The
    caller (:meth:`TestbedSimulator.run_once`) guarantees it is not None.
    """
    mem_limit, rt_limit, gen_limit = limits
    machine = cfg.machine
    server_cfg = cfg.server
    mon = cfg.monitor
    schedule = cfg.load_schedule
    dt = cfg.dt
    max_run = cfg.max_run_seconds

    # Stream setup: identical spawn topology to the loop substrate.
    r_profile, r_pool, r_server, r_monitor, r_inject = rng.spawn(5)
    profile = AnomalyProfile.draw(
        r_profile,
        p_leak_range=cfg.p_leak_range,
        leak_kb_range=cfg.leak_kb_range,
        p_thread_range=cfg.p_thread_range,
    )
    state = MachineState(machine)
    pool = EmulatedBrowserPool(
        cfg.n_browsers, cfg.mix, seed=r_pool, use_sessions=cfg.use_session_chain
    )
    # Real server object: owns the stream handed to apply_home_visits and
    # gives the lock injector its add_stuck_locks surface. Its tick() is
    # never called here.
    server = AppServer(server_cfg, state, pool, profile, seed=r_server)

    leak_inj = thread_inj = lock_inj = None
    leak_next = thread_next = lock_next = _INF
    if cfg.use_time_injectors:
        r_leak, r_thread = r_inject.spawn(2)
        leak_inj = MemoryLeakInjector(
            mean_interval_range=cfg.leak_injector_interval_range, seed=r_leak
        )
        thread_inj = ThreadLeakInjector(
            mean_interval_range=cfg.thread_injector_interval_range, seed=r_thread
        )
        leak_next = leak_inj.next_fire_time
        thread_next = thread_inj.next_fire_time
    if cfg.use_lock_injector:
        # spawned after the memory injectors so enabling locks never
        # perturbs the other components' streams
        (r_lock,) = r_inject.spawn(1)
        lock_inj = LockContentionInjector(
            mean_interval_range=cfg.lock_injector_interval_range, seed=r_lock
        )
        lock_next = lock_inj.next_fire_time
    # Later families spawn only when enabled, in fixed fd -> conn -> frag
    # order — the exact spawn topology of the loop substrate.
    fd_inj = conn_inj = frag_inj = None
    fd_next = conn_next = frag_next = _INF
    if cfg.use_fd_injector:
        (r_fd,) = r_inject.spawn(1)
        fd_inj = FdLeakInjector(
            count_range=cfg.fd_injector_count_range,
            mean_interval_range=cfg.fd_injector_interval_range,
            seed=r_fd,
        )
        fd_next = fd_inj.next_fire_time
    if cfg.use_conn_injector:
        (r_conn,) = r_inject.spawn(1)
        conn_inj = ConnectionPoolInjector(
            mean_interval_range=cfg.conn_injector_interval_range, seed=r_conn
        )
        conn_next = conn_inj.next_fire_time
    if cfg.use_frag_injector:
        (r_frag,) = r_inject.spawn(1)
        frag_inj = HeapFragmentationInjector(
            mean_interval_range=cfg.frag_injector_interval_range, seed=r_frag
        )
        frag_next = frag_inj.next_fire_time

    # -- hoisted constants -------------------------------------------------
    n_b = cfg.n_browsers
    n_cpus = machine.n_cpus
    capacity = n_cpus * dt
    base_demand = machine.os_base_kb + machine.app_working_set_kb
    fixed = machine.buffers_kb + machine.shared_kb
    ram_for_app = machine.ram_kb - fixed - machine.min_cache_kb
    swap_kb = machine.swap_kb
    thread_stack = machine.thread_stack_kb
    base_threads = state.base_threads
    think_mean = pool.THINK_MEAN
    think_cap = pool.THINK_CAP
    sigma_demand = server_cfg.demand_noise_sigma
    io_coef = server_cfg.io_stall_coef
    steal_mean = server_cfg.steal_mean
    thread_over = server_cfg.thread_overhead_per_1k
    lock_per = server_cfg.lock_contention_per_lock
    thrash_coef = server_cfg.swap_thrash_coef
    blowup_coef = server_cfg.swap_blowup_coef
    fd_coef = server_cfg.fd_pressure_coef
    fd_limit = machine.fd_limit
    conn_pool = server_cfg.conn_pool_size
    conn_coef = server_cfg.conn_wait_coef
    frag_per = server_cfg.frag_per_event
    frag_cap = server_cfg.frag_cap
    base_sys_share = server_cfg.base_sys_share
    iowait_coef = server_cfg.iowait_coef
    noise_sigma = mon.noise_sigma
    nominal = mon.nominal_interval

    prng = pool.rng
    srng = server.rng
    mrng = r_monitor
    nrt = pool.next_request_time
    chain = pool.session_chain
    chain_cdf = chain.cdf if chain is not None else None
    mix_cdf = cfg.mix.sampling_cdf
    steal_sd = steal_mean / 2.0

    # Bound-method and Python-list hoists for the scalar fast path.
    prng_random = prng.random
    prng_exponential = prng.exponential
    srng_lognormal = srng.lognormal
    srng_exponential = srng.exponential
    srng_normal = srng.normal
    demand_of = SERVICE_DEMANDS.tolist()
    mix_cdf_list = mix_cdf.tolist()
    chain_rows = (
        [row.tolist() for row in chain_cdf] if chain_cdf is not None else None
    )
    # Session states live as a Python list (the scalar path's native form);
    # the k >= 8 vector path reads/writes the same list.
    states_list = pool.session_states.tolist() if chain is not None else None

    # Steal+nice accounting noise tiles: quiet gaps take g tick-pairs of
    # draws in one batched call, bit-identical to the scalar sequence.
    loc_gap = np.tile(np.array([steal_mean, 0.001]), GAP_MAX_TICKS)
    scale_gap = np.tile(np.array([steal_sd, 0.001]), GAP_MAX_TICKS)

    # -- mutable run state -------------------------------------------------
    leaked_kb = 0.0
    n_leaked_threads = 0
    demand = base_demand + leaked_kb + n_leaked_threads * thread_stack
    overflow = max(0.0, demand - ram_for_app)
    swap_used = 0.0
    s = 0.0  # swap pressure
    backlog = 0.0
    ewma_rt = 0.0
    utilization = 0.0
    busy = sys_share = iowait = 0.0
    steal_d = nice_d = 0.0
    crashed = False
    fail_time = max_run
    now = 0.0
    next_sample = nominal  # fmc.reset(0.0)
    last_interval = nominal
    sched_next = 0.0  # force schedule evaluation on the first tick
    n_active = -1
    nrt_active = nrt  # rebound whenever n_active changes
    due_buf = np.empty(n_b, dtype=bool)
    home_leaked_kb = 0.0
    home_threads = 0
    total_completed = 0
    rows: list[tuple] = []
    resp_out: list[float] = []

    metrics = get_metrics()
    metrics_on = metrics.enabled
    n_blocks = 0
    block_ticks = 0
    total_ticks = 0
    gap_ticks = 0
    n_samples = 0
    block_t0 = time.perf_counter() if metrics_on else 0.0

    # Per-block samples are buffered locally and binned in one
    # vectorized pass at run end (`observe_many`) — a run closes
    # hundreds of blocks, and a Python-level histogram observe per
    # block was the dominant cost of leaving observability on. Block
    # *sizes* (ticks) stay exact and clock-free; block *durations* are
    # sampled — one block in 8 is individually timed (two clock reads
    # bracketing just that block), keeping the wall-clock histogram
    # honest per-block while the hot path pays a branch on the rest.
    block_ticks_log: list[int] = []
    block_secs_log: list[float] = []

    def _close_block() -> None:
        """An event (sample / injector firing / run end) ends a block."""
        nonlocal n_blocks, block_ticks, block_t0
        if block_ticks == 0:
            return
        n_blocks += 1
        if metrics_on:
            block_ticks_log.append(block_ticks)
            if not n_blocks & 7:  # open a timed block (closes next call)
                block_t0 = time.perf_counter()
            elif n_blocks & 7 == 1 and n_blocks > 1:
                block_secs_log.append(time.perf_counter() - block_t0)
        block_ticks = 0

    with span("simulate.run.fused", substrate="fused") as run_sp:
        while now < max_run:
            # ---- load schedule (evaluated at tick start, like the loop) --
            if now >= sched_next:
                frac = schedule.active_fraction(now)
                sched_next = schedule.next_change_after(now)
                if not 0.0 <= frac <= 1.0:
                    raise ValueError(
                        f"active_fraction must be in [0,1], got {frac}"
                    )
                na = int(round(frac * n_b))
                if na != n_active:
                    n_active = na
                    nrt_active = nrt if n_active >= n_b else nrt[:n_active]
                    due_buf = np.empty(nrt_active.shape[0], dtype=bool)

            # ---- due browsers --------------------------------------------
            np.less_equal(nrt_active, now, out=due_buf)
            ready = due_buf.nonzero()[0]
            k = ready.size

            # ---- quiet-gap fast path -------------------------------------
            # A tick is quiet when no browser is due, no event lands in it,
            # and the failure predicate is currently false (its inputs
            # cannot change during a quiet tick). Each quiet tick consumes
            # exactly the two steal/nice draws; batch them.
            t_end = now + dt
            if (
                k == 0
                and t_end < next_sample
                and leak_next > t_end
                and thread_next > t_end
                and lock_next > t_end
                and fd_next > t_end
                and conn_next > t_end
                and frag_next > t_end
                and sched_next > t_end
                and not (
                    overflow > mem_limit
                    or ewma_rt > rt_limit
                    or last_interval > gen_limit
                )
            ):
                next_arrival = (
                    float(nrt_active.min()) if n_active > 0 else _INF
                )
                g = 0
                t = now
                while True:
                    g += 1
                    t = t + dt  # sequential accumulation, as the loop does
                    t2 = t + dt
                    if not (
                        t < max_run
                        and next_arrival > t
                        and t2 < next_sample
                        and leak_next > t2
                        and thread_next > t2
                        and lock_next > t2
                        and fd_next > t2
                        and conn_next > t2
                        and frag_next > t2
                        and sched_next > t2
                        and g < GAP_MAX_TICKS
                    ):
                        break
                srng_normal(loc_gap[: 2 * g], scale_gap[: 2 * g])
                for _ in range(g):  # exact per-tick drain order
                    if backlog == 0.0:
                        break
                    processed = backlog if backlog < capacity else capacity
                    backlog -= processed
                now = t
                total_ticks += g
                gap_ticks += g
                block_ticks += g
                continue

            # ---- full tick: server phase ---------------------------------
            # Draw order per stream matches AppServer.tick exactly:
            # pool.rng: interactions, then think times at complete();
            # server.rng: home binomial/uniform/binomial, demand lognormal,
            # io-stall exponential, steal+nice normals. The k < 8 scalar
            # branch and the k >= 8 vector branch consume identical draws
            # and evaluate identical float folds (see module docstring).
            if k:
                if k < 8:
                    ready_list = ready.tolist()
                    u = prng_random(k).tolist()
                    n_home = 0
                    inter = []
                    if chain_rows is not None:
                        for i, x in zip(ready_list, u):
                            # count of row entries < x == (x > row).sum()
                            v = bisect_left(chain_rows[states_list[i]], x)
                            states_list[i] = v
                            inter.append(v)
                            if v == 0:
                                n_home += 1
                    else:
                        for x in u:
                            v = bisect_right(mix_cdf_list, x)
                            inter.append(v)
                            if v == 0:
                                n_home += 1
                    interactions = None
                else:
                    ready_list = ready.tolist()
                    draws = prng_random(k)
                    if chain_rows is not None:
                        sel = np.fromiter(
                            (states_list[i] for i in ready_list),
                            dtype=np.int64,
                            count=k,
                        )
                        interactions = (
                            (draws[:, None] > chain_cdf[sel])
                            .sum(axis=1)
                            .astype(np.int64)
                        )
                        for i, v in zip(ready_list, interactions.tolist()):
                            states_list[i] = v
                    else:
                        interactions = mix_cdf.searchsorted(draws, side="right")
                    n_home = int(np.count_nonzero(interactions == 0))
                if n_home > 0:
                    leaked, spawned = profile.apply_home_visits(state, n_home, srng)
                    home_leaked_kb += leaked
                    home_threads += spawned
                    leaked_kb = state.leaked_kb
                    n_leaked_threads = state.n_leaked_threads
                    demand = base_demand + leaked_kb + n_leaked_threads * thread_stack
                    overflow = max(0.0, demand - ram_for_app)

            # state.update_swap(): monotone high-water mark, scalar form
            if overflow > swap_used:
                swap_used = overflow if overflow < swap_kb else swap_kb
            if swap_kb > 0.0:
                s = swap_used / swap_kb
            else:
                s = 1.0 if overflow > 0.0 else 0.0

            if k:
                # degradation_multiplier (server.py), inlined: same
                # expression sequence on hoisted locals. The equivalence
                # battery keeps the copies in sync.
                thread_factor = 1.0 + thread_over * (n_leaked_threads / 1000.0)
                lock_factor = 1.0 + lock_per * server.n_stuck_locks
                swap_factor = 1.0 + thrash_coef * s * s
                if s < 1.0:
                    swap_factor += blowup_coef * s / (1.0 - s)
                else:
                    swap_factor += blowup_coef * 1e3
                fd_factor = 1.0
                n_fds = state.n_leaked_fds
                if n_fds > 0:
                    fill = n_fds / fd_limit
                    if fill < 1.0:
                        fd_factor = 1.0 + fd_coef * fill / (1.0 - fill)
                    else:
                        fd_factor = 1.0 + fd_coef * 1e3
                conn_factor = 1.0
                n_held = server.n_held_connections
                if n_held > 0:
                    free_conn = conn_pool - n_held
                    if free_conn > 0:
                        conn_factor = 1.0 + conn_coef * (n_held / free_conn)
                    else:
                        conn_factor = 1.0 + conn_coef * 1e3
                frag_factor = 1.0
                n_frag = server.frag_events
                if n_frag > 0:
                    frag = n_frag * frag_per
                    if frag > frag_cap:
                        frag = frag_cap
                    frag_factor = 1.0 / (1.0 - frag)
                multiplier = (
                    thread_factor
                    * lock_factor
                    * swap_factor
                    * fd_factor
                    * conn_factor
                    * frag_factor
                )
                if k < 8:
                    # Scalar fold: bit-identical to the vector branch below
                    # because np.sum/np.cumsum are plain left-to-right
                    # accumulation for fewer than 8 elements.
                    noise = srng_lognormal(
                        mean=0.0, sigma=sigma_demand, size=k
                    ).tolist()
                    if s > 0.0:
                        iob = io_coef * s * s
                        io_l = srng_exponential(0.5, size=k).tolist()
                    else:
                        io_l = None
                    th = prng_exponential(think_mean, size=k).tolist()
                    run = 0.0
                    sum_rt = 0.0
                    for j in range(k):
                        d = demand_of[inter[j]] * multiplier * noise[j]
                        rt = d + (backlog + run) / n_cpus
                        if io_l is not None:
                            rt = rt + iob * (1.0 + io_l[j])
                        t = th[j]
                        if t > think_cap:
                            t = think_cap
                        nrt[ready_list[j]] = (now + rt) + t
                        run = run + d
                        sum_rt = sum_rt + rt
                    backlog = backlog + run
                else:
                    noise = srng_lognormal(mean=0.0, sigma=sigma_demand, size=k)
                    demands = SERVICE_DEMANDS[interactions] * multiplier * noise
                    q = np.empty(k)
                    q[0] = 0.0
                    np.cumsum(demands[:-1], out=q[1:])
                    queue_ahead = backlog + q
                    waits = queue_ahead / n_cpus
                    if s > 0.0:
                        io = (io_coef * s * s) * (
                            1.0 + srng_exponential(0.5, size=k)
                        )
                        rts = demands + waits + io
                    else:
                        rts = demands + waits  # + zeros is a bitwise no-op
                    backlog += float(demands.sum())
                    think = np.minimum(
                        prng_exponential(think_mean, size=k), think_cap
                    )
                    nrt[ready] = (now + rts) + think
                    sum_rt = float(rts.sum())
                total_completed += k

            processed = backlog if backlog < capacity else capacity
            backlog -= processed
            utilization = processed / capacity
            # tick_cpu_inputs (server.py), inlined; min(c, x) == the
            # conditional for x == c (either returns the same value).
            sched_overhead = n_leaked_threads / 20_000.0
            if sched_overhead > 0.10:
                sched_overhead = 0.10
            sys_share = base_sys_share + sched_overhead
            if sys_share > 0.9:
                sys_share = 0.9
            us = utilization + s
            if us > 1.0:
                us = 1.0
            iowait = iowait_coef * s * s * (0.3 + 0.7 * us)
            busy = utilization + sched_overhead
            if busy > 1.0:
                busy = 1.0
            steal_d = float(srng_normal(steal_mean, steal_sd))
            nice_d = float(srng_normal(0.001, 0.001))

            # ---- tick end: time advance + deferred scalar updates --------
            now = now + dt
            total_ticks += 1
            block_ticks += 1
            if k:
                ewma_rt += 0.2 * (sum_rt / k - ewma_rt)

            # ---- time-based injectors (event-gated) ----------------------
            if leak_inj is not None:
                fired = False
                if leak_next <= now:
                    leak_inj.advance(state, now)
                    leak_next = leak_inj.next_fire_time
                    fired = True
                if thread_next <= now:
                    thread_inj.advance(state, now)
                    thread_next = thread_inj.next_fire_time
                    fired = True
                if fired:
                    _close_block()
                    leaked_kb = state.leaked_kb
                    n_leaked_threads = state.n_leaked_threads
                    demand = (
                        base_demand + leaked_kb + n_leaked_threads * thread_stack
                    )
                    overflow = max(0.0, demand - ram_for_app)
                    if overflow > swap_used:
                        swap_used = overflow if overflow < swap_kb else swap_kb
                    if swap_kb > 0.0:
                        s = swap_used / swap_kb
                    else:
                        s = 1.0 if overflow > 0.0 else 0.0
            if lock_inj is not None and lock_next <= now:
                lock_inj.advance(server, now)
                lock_next = lock_inj.next_fire_time
                _close_block()
            # fd/conn/frag families touch no memory state, so (like the
            # loop substrate) no swap recompute follows their advances.
            if fd_inj is not None and fd_next <= now:
                fd_inj.advance(state, now)
                fd_next = fd_inj.next_fire_time
                _close_block()
            if conn_inj is not None and conn_next <= now:
                conn_inj.advance(server, now)
                conn_next = conn_inj.next_fire_time
                _close_block()
            if frag_inj is not None and frag_next <= now:
                frag_inj.advance(server, now)
                frag_next = frag_inj.next_fire_time
                _close_block()

            # ---- monitor sample (event) ----------------------------------
            if now >= next_sample:
                _close_block()
                queue_delay = backlog / n_cpus
                user, nice, sys_, iow, steal, idle = cpu_decomposition(
                    busy_frac=busy,
                    sys_share=sys_share,
                    iowait_frac=iowait,
                    steal_frac=steal_d,
                    nice_frac=nice_d,
                )
                resident, cached, free, _ = memory_layout(machine, demand)
                rows.append(
                    (
                        now,
                        float(base_threads + n_leaked_threads),
                        resident,
                        free,
                        machine.shared_kb,
                        machine.buffers_kb,
                        cached,
                        swap_used,
                        swap_kb - swap_used,
                        user,
                        nice,
                        sys_,
                        iow,
                        steal,
                        idle,
                    )
                )
                resp_out.append(ewma_rt)
                n_samples += 1
                noise_m = float(np.exp(mrng.normal(0.0, noise_sigma)))
                step = stretched_interval(mon, utilization, s, queue_delay, noise_m)
                last_interval = step
                next_sample = now + step

            # ---- compiled failure predicate ------------------------------
            if (
                overflow > mem_limit
                or ewma_rt > rt_limit
                or last_interval > gen_limit
            ):
                crashed = True
                fail_time = now
                break

        _close_block()
        run_sp.set(
            blocks=n_blocks,
            ticks=total_ticks,
            gap_ticks=gap_ticks,
            datapoints=n_samples,
            crashed=crashed,
        )

    if not rows:
        raise RuntimeError(
            "run produced no datapoints before failing; "
            "lower anomaly rates or the monitor interval"
        )
    features = np.array(rows, dtype=np.float64)
    response_times = np.asarray(resp_out)

    metrics.inc("sim.runs_total")
    metrics.inc("sim.datapoints_total", features.shape[0])
    if crashed:
        metrics.inc("sim.fail_events_total")
    else:
        metrics.inc("sim.truncated_runs_total")
    metrics.observe("sim.run_seconds", fail_time)
    metrics.inc("monitor.samples_total", n_samples)
    metrics.inc("monitor.datapoints_total", n_samples)
    metrics.inc("sim.fused_runs_total")
    metrics.inc("sim.fused_blocks_total", n_blocks)
    if block_ticks_log:
        metrics.observe_many("sim.fused_block_ticks", block_ticks_log)
        metrics.observe_many("sim.fused_block_seconds", block_secs_log)
    # Per-run summary points for the live bus (the per-block latency and
    # block-size *distributions* live in the log-bucketed histograms
    # above, which merge bucket-exactly across workers). One point per
    # run keeps every worker's buffer lossless, preserving the
    # bit-identical-merge guarantee for any worker count.
    bus = get_telemetry()
    if bus.enabled:
        bus.emit("sim.fused_blocks", fail_time, float(n_blocks))
        bus.emit(
            "sim.fused_ticks_per_block",
            fail_time,
            total_ticks / n_blocks if n_blocks else 0.0,
        )

    return RunRecord(
        features=features,
        fail_time=fail_time,
        response_times=response_times,
        metadata={
            "crashed": float(crashed),
            "p_leak": profile.p_leak,
            "leak_min_kb": profile.leak_min_kb,
            "leak_max_kb": profile.leak_max_kb,
            "p_thread": profile.p_thread,
            "total_leaked_kb": home_leaked_kb,
            "total_threads_spawned": float(home_threads),
            "total_requests": float(total_completed),
        },
    )
