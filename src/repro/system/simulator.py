"""Run-until-crash campaign simulator (paper Sec. IV experimental setup).

Mirrors the paper's controlled experiment: the TPC-W VM serves emulated
browsers while request-coupled anomalies accumulate; the FMC samples
features; when the user-defined failure condition fires, the fail event
is logged and the VM restarts with *fresh anomaly rates* (the modified
servlet redraws them at startup) — producing runs of varied length, which
is what gives the RTTF training data its coverage.

The paper ran for one wall-clock week; here a campaign of tens of runs
simulates in seconds. The loop advances in fixed ticks:

    tick -> server.tick()        (arrivals, anomalies, degradation, CPU)
         -> FMC sample if due    (load-stretched interval)
         -> failure check        (fail event -> RunRecord, restart)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.history import DataHistory, RunRecord
from repro.system.anomalies import (
    AnomalyProfile,
    ConnectionPoolInjector,
    FdLeakInjector,
    HeapFragmentationInjector,
    LockContentionInjector,
    MemoryLeakInjector,
    ThreadLeakInjector,
)
from repro.system.failure import (
    FailureCondition,
    MemoryExhaustion,
    SystemView,
    parse_failure,
)
from repro.system.monitor import FeatureMonitorClient, FeatureMonitorServer, MonitorConfig
from repro.system.resources import MachineConfig, MachineState
from repro.system.schedule import ConstantLoad, LoadSchedule
from repro.system.server import AppServer, ServerConfig
from repro.system.tpcw import SHOPPING_MIX, EmulatedBrowserPool, TPCWMix
from repro.obs import get_logger, get_metrics, get_telemetry, kv, span
from repro.utils.rng import as_rng

if TYPE_CHECKING:  # pragma: no cover - checkpointing is optional plumbing
    from repro.store.checkpoint import CampaignCheckpoint

_log = get_logger("system.simulator")


@dataclass(frozen=True)
class CampaignConfig:
    """Everything needed to reproduce a monitoring campaign."""

    n_runs: int = 10
    seed: int | None = 0
    machine: MachineConfig = field(default_factory=MachineConfig)
    server: ServerConfig = field(default_factory=ServerConfig)
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    mix: TPCWMix = field(default_factory=lambda: SHOPPING_MIX)
    n_browsers: int = 80
    #: Workload-intensity schedule (the paper uses constant full load).
    load_schedule: LoadSchedule = field(default_factory=ConstantLoad)
    #: Drive browsers through the session Markov chain instead of
    #: stationary i.i.d. sampling (off by default for reproducibility of
    #: earlier campaigns; long-run frequencies stay near the mix targets).
    use_session_chain: bool = False
    #: Simulation tick (seconds).
    dt: float = 0.5
    #: Hard cap per run; a run that never fails is truncated and flagged.
    max_run_seconds: float = 20_000.0
    #: Per-run anomaly-profile draw ranges (paper: redrawn at startup).
    p_leak_range: tuple[float, float] = (0.15, 0.32)
    leak_kb_range: tuple[float, float] = (256.0, 4096.0)
    p_thread_range: tuple[float, float] = (0.02, 0.10)
    #: Optional time-based injectors (paper Sec. III-E utilities).
    use_time_injectors: bool = False
    leak_injector_interval_range: tuple[float, float] = (2.0, 20.0)
    thread_injector_interval_range: tuple[float, float] = (5.0, 60.0)
    #: Optional stuck-lock injector (extension; no memory footprint —
    #: degrades response times directly).
    use_lock_injector: bool = False
    lock_injector_interval_range: tuple[float, float] = (30.0, 300.0)
    #: Optional fd/socket-leak injector (extension; fills the process fd
    #: table — service degradation and an ``FdExhaustion`` crash with no
    #: RSS growth).
    use_fd_injector: bool = False
    fd_injector_interval_range: tuple[float, float] = (5.0, 60.0)
    fd_injector_count_range: tuple[int, int] = (8, 128)
    #: Optional connection-pool-depletion injector (extension; requests
    #: queue on the shrinking free set of DB connections).
    use_conn_injector: bool = False
    conn_injector_interval_range: tuple[float, float] = (20.0, 180.0)
    #: Optional heap-fragmentation injector (extension; service-time
    #: degradation without any memory-feature signature).
    use_frag_injector: bool = False
    frag_injector_interval_range: tuple[float, float] = (10.0, 120.0)
    #: Default failure condition as a compact spec string (see
    #: :func:`repro.system.failure.parse_failure`), e.g. ``"mem"``,
    #: ``"rt>8"``, ``"fd|rt>8"``. ``None`` keeps the historical default
    #: (:class:`MemoryExhaustion`). An explicit condition object passed
    #: to :class:`TestbedSimulator` always wins. Part of the config so
    #: campaign cells are content-addressed per failure definition.
    failure: "str | None" = None
    #: Execution substrate: ``"fused"`` runs the event-fused engine
    #: (:mod:`repro.system.fused`), ``"loop"`` the legacy per-tick loop.
    #: Both produce bit-identical output (see ``docs/PERFORMANCE.md``),
    #: so the choice is pure execution strategy — like ``jobs`` — and is
    #: excluded from cache fingerprints via ``__key_exclude__``.
    substrate: str = "fused"

    #: Fields that never affect campaign *output*, only how it is
    #: computed; :mod:`repro.store.keys` skips them when fingerprinting.
    __key_exclude__ = frozenset({"substrate"})

    def __post_init__(self) -> None:
        if self.n_runs < 1:
            raise ValueError(f"n_runs must be >= 1, got {self.n_runs}")
        if self.dt <= 0:
            raise ValueError(f"dt must be positive, got {self.dt}")
        if self.max_run_seconds <= 0:
            raise ValueError(
                f"max_run_seconds must be positive, got {self.max_run_seconds}"
            )
        if self.substrate not in ("fused", "loop"):
            raise ValueError(
                f'substrate must be "fused" or "loop", got {self.substrate!r}'
            )
        for name in ("p_leak_range", "p_thread_range"):
            lo, hi = getattr(self, name)
            if not 0.0 <= lo <= hi <= 1.0:
                raise ValueError(
                    f"{name} must satisfy 0 <= lo <= hi <= 1, got ({lo}, {hi})"
                )
        lo, hi = self.leak_kb_range
        if not 0.0 <= lo <= hi:
            raise ValueError(
                f"leak_kb_range must satisfy 0 <= lo <= hi, got ({lo}, {hi})"
            )
        for name in (
            "leak_injector_interval_range",
            "thread_injector_interval_range",
            "lock_injector_interval_range",
            "fd_injector_interval_range",
            "conn_injector_interval_range",
            "frag_injector_interval_range",
        ):
            lo, hi = getattr(self, name)
            if not 0.0 < lo <= hi:
                raise ValueError(
                    f"{name} must be positive-increasing, got ({lo}, {hi})"
                )
        lo, hi = self.fd_injector_count_range
        if not 1 <= lo <= hi:
            raise ValueError(
                f"fd_injector_count_range must satisfy 1 <= lo <= hi, got ({lo}, {hi})"
            )
        if self.failure is not None:
            parse_failure(self.failure)  # fail at construction, not mid-run


class TestbedSimulator:
    """Simulates monitoring campaigns, producing a :class:`DataHistory`."""

    __test__ = False  # starts with "Test" but is not a pytest class

    def __init__(
        self,
        config: CampaignConfig | None = None,
        failure_condition: FailureCondition | None = None,
    ) -> None:
        self.config = config or CampaignConfig()
        if failure_condition is None:
            if self.config.failure is not None:
                failure_condition = parse_failure(self.config.failure)
            else:
                failure_condition = MemoryExhaustion()
        self.failure_condition = failure_condition

    def run_once(self, seed: "int | None | np.random.Generator" = None) -> RunRecord:
        """Simulate one run from VM start to fail event (or truncation).

        Dispatches to the substrate selected by the config. The fused
        engine requires a threshold-compilable failure condition; a
        condition that does not compile (a user-defined predicate) falls
        back to the legacy loop, which evaluates it exactly.
        """
        cfg = self.config
        rng = as_rng(seed)
        if cfg.substrate == "fused":
            from repro.system.fused import run_once_fused

            limits = self.failure_condition.fused_limits(cfg.machine)
            if limits is not None:
                return run_once_fused(cfg, limits, rng)
            get_metrics().inc("sim.fused_fallback_total")
            get_telemetry().event(
                0.0,
                "fused_fallback",
                condition=self.failure_condition.description,
            )
            _log.info(
                "failure condition has no threshold form; using loop substrate %s",
                kv(condition=self.failure_condition.description),
            )
        return self._run_once_loop(rng)

    def _run_once_loop(self, rng: np.random.Generator) -> RunRecord:
        """The legacy per-tick loop — the fused engine's oracle."""
        cfg = self.config
        # Independent streams per component (paper: uncorrelated draws).
        r_profile, r_pool, r_server, r_monitor, r_inject = rng.spawn(5)

        profile = AnomalyProfile.draw(
            r_profile,
            p_leak_range=cfg.p_leak_range,
            leak_kb_range=cfg.leak_kb_range,
            p_thread_range=cfg.p_thread_range,
        )
        state = MachineState(cfg.machine)
        pool = EmulatedBrowserPool(
            cfg.n_browsers,
            cfg.mix,
            seed=r_pool,
            use_sessions=cfg.use_session_chain,
        )
        server = AppServer(cfg.server, state, pool, profile, seed=r_server)
        fmc = FeatureMonitorClient(cfg.monitor, seed=r_monitor)
        fms = FeatureMonitorServer()
        fmc.reset(0.0)

        injectors: list = []
        if cfg.use_time_injectors:
            r_leak, r_thread = r_inject.spawn(2)
            injectors = [
                MemoryLeakInjector(
                    mean_interval_range=cfg.leak_injector_interval_range, seed=r_leak
                ),
                ThreadLeakInjector(
                    mean_interval_range=cfg.thread_injector_interval_range,
                    seed=r_thread,
                ),
            ]
        lock_injector = None
        if cfg.use_lock_injector:
            # spawned after the memory injectors so enabling locks never
            # perturbs the other components' streams
            (r_lock,) = r_inject.spawn(1)
            lock_injector = LockContentionInjector(
                mean_interval_range=cfg.lock_injector_interval_range, seed=r_lock
            )
        # Each later family spawns its stream only when enabled, in fixed
        # fd -> conn -> frag order: toggling one injector never perturbs
        # the streams of the others (same discipline as the lock stream).
        fd_injector = None
        if cfg.use_fd_injector:
            (r_fd,) = r_inject.spawn(1)
            fd_injector = FdLeakInjector(
                count_range=cfg.fd_injector_count_range,
                mean_interval_range=cfg.fd_injector_interval_range,
                seed=r_fd,
            )
        conn_injector = None
        if cfg.use_conn_injector:
            (r_conn,) = r_inject.spawn(1)
            conn_injector = ConnectionPoolInjector(
                mean_interval_range=cfg.conn_injector_interval_range, seed=r_conn
            )
        frag_injector = None
        if cfg.use_frag_injector:
            (r_frag,) = r_inject.spawn(1)
            frag_injector = HeapFragmentationInjector(
                mean_interval_range=cfg.frag_injector_interval_range, seed=r_frag
            )

        now = 0.0
        # Exponentially-weighted mean RT: the "mean client response time"
        # a failure condition may inspect.
        ewma_rt = 0.0
        utilization = 0.0
        crashed = False
        fail_time = cfg.max_run_seconds

        # Sampled hot-path profiling: time every 64th tick (two clock
        # reads per sample, nothing on the other 63), feeding the
        # log-bucketed ``profile.sim.tick.wall_seconds`` histogram.
        from repro.obs.profile import get_profiler

        profiler = get_profiler()
        prof_on = profiler.enabled
        tick_index = 0

        while now < cfg.max_run_seconds:
            if prof_on and not tick_index & 63:
                t0 = time.perf_counter()
                stats = server.tick(
                    now, cfg.dt, cfg.load_schedule.active_fraction(now)
                )
                profiler.record("sim.tick", time.perf_counter() - t0)
            else:
                stats = server.tick(
                    now, cfg.dt, cfg.load_schedule.active_fraction(now)
                )
            tick_index += 1
            now += cfg.dt
            utilization = stats.utilization
            if stats.n_completed > 0:
                alpha = 0.2
                ewma_rt += alpha * (stats.mean_response_time - ewma_rt)
            for injector in injectors:
                injector.advance(state, now)
            if injectors:
                state.update_swap()
            if lock_injector is not None:
                lock_injector.advance(server, now)
            # fd/conn/frag families degrade service time without touching
            # memory, so no update_swap() is needed after them.
            if fd_injector is not None:
                fd_injector.advance(state, now)
            if conn_injector is not None:
                conn_injector.advance(server, now)
            if frag_injector is not None:
                frag_injector.advance(server, now)

            if fmc.due(now):
                queue_delay = server.backlog_cpu_s / cfg.machine.n_cpus
                dp = fmc.sample(now, state, utilization, queue_delay)
                fms.receive(dp, ewma_rt)

            view = SystemView(
                state=state,
                mean_response_time=ewma_rt,
                last_generation_interval=fmc.last_interval,
            )
            if self.failure_condition.is_failed(view):
                crashed = True
                fail_time = now
                break

        features, response_times = fms.as_arrays()
        if features.shape[0] == 0:
            raise RuntimeError(
                "run produced no datapoints before failing; "
                "lower anomaly rates or the monitor interval"
            )
        metrics = get_metrics()
        metrics.inc("sim.runs_total")
        metrics.inc("sim.datapoints_total", features.shape[0])
        if crashed:
            metrics.inc("sim.fail_events_total")
        else:
            metrics.inc("sim.truncated_runs_total")
        metrics.observe("sim.run_seconds", fail_time)
        return RunRecord(
            features=features,
            fail_time=fail_time,
            response_times=response_times,
            metadata={
                "crashed": float(crashed),
                "p_leak": profile.p_leak,
                "leak_min_kb": profile.leak_min_kb,
                "leak_max_kb": profile.leak_max_kb,
                "p_thread": profile.p_thread,
                "total_leaked_kb": server.total_leaked_kb,
                "total_threads_spawned": float(server.total_threads_spawned),
                "total_requests": float(server.total_completed),
            },
        )

    def run_many(
        self, rngs: "list[np.random.Generator]", *, jobs: int = 1, start_index: int = 0
    ) -> list[RunRecord]:
        """Simulate one run per (pre-spawned) generator.

        With ``jobs > 1`` the runs fan out to a process pool; results
        come back in generator order either way, and since every
        generator was spawned before dispatch the records are
        bit-identical for any worker count. ``jobs=1`` is the in-process
        serial path (no :mod:`concurrent.futures` involvement at all).
        ``start_index`` only offsets telemetry run indices (resumed or
        chunked campaigns).
        """
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if jobs > 1 and len(rngs) > 1:
            from repro.parallel.campaign import run_campaign_parallel

            return run_campaign_parallel(
                self, list(rngs), jobs=jobs, start_index=start_index
            )
        from repro.parallel.campaign import emit_run_series

        records: list[RunRecord] = []
        for i, run_rng in enumerate(rngs, start=start_index):
            with span("simulate.run", index=i) as run_sp:
                record = self.run_once(run_rng)
                run_sp.set(
                    datapoints=record.n_datapoints,
                    fail_time=record.fail_time,
                    crashed=bool(record.metadata.get("crashed", 0.0)),
                )
            emit_run_series(i, record)
            records.append(record)
            _log.info(
                "run complete %s",
                kv(
                    run=i,
                    datapoints=record.n_datapoints,
                    fail_time=record.fail_time,
                    crashed=bool(record.metadata.get("crashed", 0.0)),
                ),
            )
        return records

    def run_campaign(
        self,
        jobs: int = 1,
        *,
        checkpoint: "CampaignCheckpoint | None" = None,
        checkpoint_every: int = 8,
    ) -> DataHistory:
        """Simulate ``n_runs`` restart cycles (the week-long experiment).

        ``jobs`` workers execute the runs concurrently; the returned
        history (and the merged metrics/spans) is identical for any
        worker count — see ``docs/PARALLELISM.md``.

        With a :class:`~repro.store.CampaignCheckpoint`, the completed
        prefix is persisted every ``checkpoint_every`` runs and a killed
        campaign resumes from it — bit-identically, because every run's
        stream is pre-spawned from the campaign seed regardless of where
        the resume happened. The checkpoint is discarded on completion.
        """
        rngs = as_rng(self.config.seed).spawn(self.config.n_runs)
        done: list[RunRecord] = []
        if checkpoint is not None:
            if checkpoint.total_runs != self.config.n_runs:
                from repro.store.checkpoint import CampaignCheckpoint

                # A caller handed us a checkpoint sized for a different
                # campaign (e.g. the spec was narrowed between runs).
                # Silently replaying its prefix would mislabel runs —
                # evict it and start clean instead.
                _log.warning(
                    "checkpoint sized for different campaign, discarding %s",
                    kv(
                        path=checkpoint.path.name,
                        checkpoint_runs=checkpoint.total_runs,
                        campaign_runs=self.config.n_runs,
                    ),
                )
                checkpoint.discard()
                checkpoint = CampaignCheckpoint(
                    checkpoint.path,
                    key=checkpoint.key,
                    total_runs=self.config.n_runs,
                )
            done, _ = checkpoint.load()
        history = DataHistory()
        with span(
            "simulate.campaign",
            runs=self.config.n_runs,
            seed=self.config.seed,
            jobs=jobs,
            resumed_runs=len(done),
        ) as sp:
            for record in done:
                history.add_run(record)
            remaining = rngs[len(done) :]
            if checkpoint is None:
                new = self.run_many(remaining, jobs=jobs)
            else:
                from repro.parallel.campaign import run_campaign_checkpointed

                new = run_campaign_checkpointed(
                    self,
                    remaining,
                    done=done,
                    checkpoint=checkpoint,
                    every=checkpoint_every,
                    jobs=jobs,
                )
            for record in new:
                history.add_run(record)
            sp.set(
                datapoints=history.n_datapoints,
                mean_run_length=history.mean_run_length,
            )
        if checkpoint is not None:
            checkpoint.discard()
        _log.info(
            "campaign complete %s",
            kv(
                runs=len(history),
                datapoints=history.n_datapoints,
                mean_run_length=history.mean_run_length,
            ),
        )
        return history
