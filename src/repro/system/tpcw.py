"""TPC-W workload model: interaction mix and emulated browsers.

TPC-W models an on-line bookstore exercised by *emulated browsers* (EBs).
Each EB is a closed loop: issue a web interaction, wait for the response,
think (exponential time, mean 7 s, capped at 70 s per the spec), repeat.

The benchmark defines 14 web interactions and three workload mixes
(browsing / shopping / ordering) with target interaction frequencies; the
paper runs the standard configuration — the **shopping mix**. We sample
each EB's next interaction from the mix's stationary frequencies (the
spec's session transition matrix exists only to realize these frequencies;
the pipeline consumes nothing session-local, so the stationary
approximation preserves the relevant behaviour: the Home-interaction rate
that drives anomaly injection and the aggregate service demand).

Each interaction carries a base CPU service demand (servlet + database
work, in CPU-seconds on one core of a healthy machine); heavyweight
interactions (Best Sellers, Buy Confirm) cost several times a Home hit,
as in characterizations of the Java TPC-W implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from repro.utils.rng import as_rng


class Interaction(IntEnum):
    """The 14 TPC-W web interactions."""

    HOME = 0
    NEW_PRODUCTS = 1
    BEST_SELLERS = 2
    PRODUCT_DETAIL = 3
    SEARCH_REQUEST = 4
    SEARCH_RESULTS = 5
    SHOPPING_CART = 6
    CUSTOMER_REGISTRATION = 7
    BUY_REQUEST = 8
    BUY_CONFIRM = 9
    ORDER_INQUIRY = 10
    ORDER_DISPLAY = 11
    ADMIN_REQUEST = 12
    ADMIN_CONFIRM = 13


#: Base CPU demand per interaction (seconds on one core, healthy system).
SERVICE_DEMANDS: np.ndarray = np.array(
    [
        0.060,  # HOME (session setup + promotional query)
        0.110,  # NEW_PRODUCTS
        0.180,  # BEST_SELLERS (top-N join, the classic TPC-W hot spot)
        0.050,  # PRODUCT_DETAIL
        0.035,  # SEARCH_REQUEST (form render)
        0.130,  # SEARCH_RESULTS (LIKE query)
        0.070,  # SHOPPING_CART
        0.045,  # CUSTOMER_REGISTRATION
        0.085,  # BUY_REQUEST
        0.150,  # BUY_CONFIRM (transactional writes)
        0.040,  # ORDER_INQUIRY
        0.080,  # ORDER_DISPLAY
        0.050,  # ADMIN_REQUEST
        0.120,  # ADMIN_CONFIRM
    ]
)


@dataclass(frozen=True)
class TPCWMix:
    """A TPC-W workload mix: name + target interaction frequencies."""

    name: str
    frequencies: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.frequencies) != len(Interaction):
            raise ValueError(
                f"need {len(Interaction)} frequencies, got {len(self.frequencies)}"
            )
        total = sum(self.frequencies)
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError(f"frequencies must sum to 1, got {total}")
        if any(f < 0 for f in self.frequencies):
            raise ValueError("frequencies must be non-negative")

    @property
    def probabilities(self) -> np.ndarray:
        p = np.asarray(self.frequencies, dtype=np.float64)
        return p / p.sum()

    @property
    def home_fraction(self) -> float:
        """Fraction of interactions hitting Home — the anomaly driver."""
        return float(self.probabilities[Interaction.HOME])

    @property
    def mean_service_demand(self) -> float:
        """Expected CPU demand per interaction (seconds)."""
        return float(self.probabilities @ SERVICE_DEMANDS)

    @property
    def sampling_cdf(self) -> np.ndarray:
        """Normalized cumulative distribution over the interactions.

        Precomputed form of what :meth:`numpy.random.Generator.choice`
        derives internally on every call (``p.cumsum()`` normalized by
        its last entry). ``cdf.searchsorted(rng.random(n), side="right")``
        draws exactly the same interaction codes as :meth:`sample` while
        consuming the RNG stream identically — the fused substrate hoists
        this out of the hot loop.
        """
        cdf = self.probabilities.cumsum()
        cdf /= cdf[-1]
        return cdf

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Sample *n* interaction codes from the mix frequencies."""
        return rng.choice(len(Interaction), size=n, p=self.probabilities)


def _normalized(freqs: list[float]) -> tuple[float, ...]:
    total = sum(freqs)
    return tuple(f / total for f in freqs)


#: WIPSb — 95% browse / 5% order.
BROWSING_MIX = TPCWMix(
    "browsing",
    _normalized(
        [29.00, 11.00, 11.00, 21.00, 12.00, 11.00, 2.00, 0.82, 0.75, 0.69,
         0.30, 0.25, 0.10, 0.09]
    ),
)

#: WIPS — the standard shopping mix (80/20) used by the paper.
SHOPPING_MIX = TPCWMix(
    "shopping",
    _normalized(
        [16.00, 5.00, 5.00, 17.00, 20.00, 17.00, 11.60, 3.00, 2.60, 1.20,
         0.75, 0.66, 0.10, 0.09]
    ),
)

#: WIPSo — 50% browse / 50% order.
ORDERING_MIX = TPCWMix(
    "ordering",
    _normalized(
        [9.12, 0.46, 0.46, 12.35, 14.53, 13.08, 13.53, 12.86, 12.73, 10.18,
         0.25, 0.22, 0.12, 0.11]
    ),
)

MIXES: dict[str, TPCWMix] = {
    m.name: m for m in (BROWSING_MIX, SHOPPING_MIX, ORDERING_MIX)
}


# -- session Markov chain ---------------------------------------------------------

#: Structural session logic: hard-wired flows of the TPC-W state diagram
#: (a search form leads to results, a buy request to its confirmation, ...).
#: Each entry fixes part of a row's probability mass; the remainder is
#: filled proportionally to the mix frequencies.
_STRUCTURAL_FLOWS: dict[Interaction, dict[Interaction, float]] = {
    Interaction.SEARCH_REQUEST: {Interaction.SEARCH_RESULTS: 0.90},
    Interaction.BUY_REQUEST: {Interaction.BUY_CONFIRM: 0.70},
    Interaction.CUSTOMER_REGISTRATION: {Interaction.BUY_REQUEST: 0.80},
    Interaction.SHOPPING_CART: {
        Interaction.CUSTOMER_REGISTRATION: 0.25,
        Interaction.BUY_REQUEST: 0.10,
    },
    Interaction.ORDER_INQUIRY: {Interaction.ORDER_DISPLAY: 0.80},
    Interaction.ADMIN_REQUEST: {Interaction.ADMIN_CONFIRM: 0.80},
    Interaction.BUY_CONFIRM: {Interaction.HOME: 0.60},
    Interaction.ADMIN_CONFIRM: {Interaction.HOME: 0.60},
}


def build_transition_matrix(mix: TPCWMix, structure_weight: float = 0.5) -> np.ndarray:
    """A row-stochastic 14x14 session transition matrix for *mix*.

    Each row blends two components: the hard-wired session flows above
    (weight ``structure_weight``) and the mix's stationary frequencies
    (the remainder), so that long-run interaction frequencies stay close
    to the mix targets while sessions exhibit the benchmark's
    characteristic sequences (search -> results, buy -> confirm, ...).
    """
    if not 0.0 <= structure_weight <= 1.0:
        raise ValueError(
            f"structure_weight must be in [0,1], got {structure_weight}"
        )
    base = mix.probabilities
    n = len(Interaction)
    matrix = np.empty((n, n))
    for state in Interaction:
        flows = _STRUCTURAL_FLOWS.get(state, {})
        row = np.zeros(n)
        fixed = 0.0
        for target, p in flows.items():
            row[target] = structure_weight * p
            fixed += structure_weight * p
        row += (1.0 - fixed) * base
        matrix[state] = row / row.sum()
    return matrix


class SessionChain:
    """Per-browser session state advancing through a transition matrix."""

    def __init__(self, matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        n = len(Interaction)
        if matrix.shape != (n, n):
            raise ValueError(f"matrix must be ({n},{n}), got {matrix.shape}")
        if (matrix < 0).any() or not np.allclose(matrix.sum(axis=1), 1.0):
            raise ValueError("matrix must be row-stochastic")
        self._cdf = np.cumsum(matrix, axis=1)
        # guard against cumulative rounding at the row ends
        self._cdf[:, -1] = 1.0

    @property
    def cdf(self) -> np.ndarray:
        """Row-wise transition CDF (read-only view for the fused substrate)."""
        return self._cdf

    def next_states(
        self, states: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample each browser's next interaction given its current one."""
        states = np.asarray(states, dtype=np.int64)
        draws = rng.random(states.shape[0])
        # one searchsorted per row via fancy-indexed CDF rows
        rows = self._cdf[states]
        return (draws[:, None] > rows).sum(axis=1).astype(np.int64)


class EmulatedBrowserPool:
    """A vectorized pool of closed-loop emulated browsers.

    State per EB is a single timestamp: when it will issue its next
    request (think timer expiry). After the server computes a response
    completion time, :meth:`complete` re-arms the EB with a fresh think
    time. The paper instruments EBs with software probes to record
    response times; :attr:`last_response_times` plays that role.
    """

    #: TPC-W think time: exponential, mean 7 s, truncated at 70 s.
    THINK_MEAN = 7.0
    THINK_CAP = 70.0

    def __init__(
        self,
        n_browsers: int,
        mix: TPCWMix,
        seed: "int | None | np.random.Generator" = None,
        use_sessions: bool = False,
        structure_weight: float = 0.5,
    ) -> None:
        """``use_sessions=True`` drives each EB through the session
        Markov chain instead of i.i.d. mix sampling (default off: the
        stationary approximation, which keeps earlier campaigns
        bit-reproducible)."""
        if n_browsers < 1:
            raise ValueError(f"n_browsers must be >= 1, got {n_browsers}")
        self.mix = mix
        self.rng = as_rng(seed)
        # Stagger session starts over one think period to avoid a thundering herd.
        self.next_request_time = self.rng.uniform(0.0, self.THINK_MEAN, size=n_browsers)
        self._in_flight = np.zeros(n_browsers, dtype=bool)
        self._chain: "SessionChain | None" = None
        self._states: "np.ndarray | None" = None
        if use_sessions:
            self._chain = SessionChain(build_transition_matrix(mix, structure_weight))
            # every session begins at Home, as in the benchmark
            self._states = np.full(n_browsers, int(Interaction.HOME), dtype=np.int64)

    @property
    def n_browsers(self) -> int:
        return self.next_request_time.shape[0]

    @property
    def session_chain(self) -> "SessionChain | None":
        """The session chain, if this pool runs in session mode."""
        return self._chain

    @property
    def session_states(self) -> "np.ndarray | None":
        """Per-browser session states (mutable; the fused substrate
        advances them with the same draws :meth:`due_requests` makes)."""
        return self._states

    def _think_times(self, n: int) -> np.ndarray:
        return np.minimum(
            self.rng.exponential(self.THINK_MEAN, size=n), self.THINK_CAP
        )

    def due_requests(
        self, now: float, active_fraction: float = 1.0
    ) -> tuple[np.ndarray, np.ndarray]:
        """EBs whose think timer expired: returns (indices, interactions).

        ``active_fraction`` gates the pool for time-varying load
        schedules: only the first ``round(fraction * n)`` browsers may
        issue (a deterministic prefix, so reducing load never reshuffles
        which sessions exist). The returned EBs are marked in-flight
        until :meth:`complete`.
        """
        if not 0.0 <= active_fraction <= 1.0:
            raise ValueError(
                f"active_fraction must be in [0,1], got {active_fraction}"
            )
        n_active = int(round(active_fraction * self.n_browsers))
        eligible = ~self._in_flight & (self.next_request_time <= now)
        if n_active < self.n_browsers:
            eligible[n_active:] = False
        ready = np.flatnonzero(eligible)
        if ready.size == 0:
            return ready, np.empty(0, dtype=np.int64)
        self._in_flight[ready] = True
        if self._chain is not None:
            nxt = self._chain.next_states(self._states[ready], self.rng)
            self._states[ready] = nxt
            return ready, nxt
        return ready, self.mix.sample(ready.size, self.rng)

    def complete(self, indices: np.ndarray, completion_times: np.ndarray) -> None:
        """Deliver responses: EBs think, then become due again."""
        indices = np.asarray(indices, dtype=np.intp)
        if indices.size == 0:
            return
        if not self._in_flight[indices].all():
            raise ValueError("completing a request that was never issued")
        self._in_flight[indices] = False
        self.next_request_time[indices] = (
            np.asarray(completion_times, dtype=np.float64)
            + self._think_times(indices.size)
        )

    def reset(self, now: float = 0.0) -> None:
        """Fresh sessions after a VM restart."""
        self._in_flight[:] = False
        self.next_request_time = now + self.rng.uniform(
            0.0, self.THINK_MEAN, size=self.n_browsers
        )
        if self._states is not None:
            self._states[:] = int(Interaction.HOME)
