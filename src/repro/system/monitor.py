"""Feature Monitor Client / Server (paper Sec. III-E).

The FMC periodically reads the 15 system features and emits a datapoint;
the FMS collects the stream. The paper's FMC "waits about 1.5 seconds
between the generation of one datapoint and the next one", where "about"
hides the load signal F2PM later exploits: under CPU saturation and
swap thrashing the sampling loop itself is delayed, so the datapoint
**inter-generation time stretches with overload** — that stretching is
the Fig. 3 correlation with client response time and the basis of the
``gen_time`` derived metric.

The jitter model: the effective interval is the nominal one inflated by
a saturation term (scheduler delay once utilization approaches 1) and a
thrashing term (the monitor's own pages being swapped), plus small
scheduling noise.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from repro.core.datapoint import FEATURES, Datapoint
from repro.obs import get_logger, get_metrics, kv
from repro.system.resources import MachineState
from repro.utils.rng import as_rng

_log = get_logger("system.monitor")


@dataclass(frozen=True)
class MonitorConfig:
    """FMC sampling parameters."""

    #: Nominal wait between datapoints (the paper's ~1.5 s).
    nominal_interval: float = 1.5
    #: Interval inflation at full CPU saturation.
    saturation_coef: float = 1.2
    #: Utilization above which scheduler delay kicks in.
    saturation_knee: float = 0.7
    #: Interval inflation at full swap pressure (monitor pages swapped out).
    thrash_coef: float = 4.0
    #: Seconds of extra delay per second of CPU queueing delay (the
    #: monitor's own loop waits in the same run queue as the requests).
    queue_coef: float = 0.6
    #: Multiplicative scheduling noise sigma.
    noise_sigma: float = 0.05

    def __post_init__(self) -> None:
        if self.nominal_interval <= 0:
            raise ValueError(
                f"nominal_interval must be positive, got {self.nominal_interval}"
            )


def stretched_interval(
    config: MonitorConfig,
    utilization: float,
    swap_pressure: float,
    queue_delay: float,
    noise: float,
) -> float:
    """Effective sampling interval under load, given a drawn noise factor.

    The deterministic part of :meth:`FeatureMonitorClient.interval`
    (which delegates here after drawing ``noise`` from its own stream);
    the fused substrate calls it directly with an identically drawn
    noise factor, keeping both substrates bit-identical.
    """
    saturation = max(0.0, utilization - config.saturation_knee) / max(
        1e-9, 1.0 - config.saturation_knee
    )
    inflation = (
        1.0
        + config.saturation_coef * saturation**2
        + config.thrash_coef * swap_pressure**2
    )
    return (
        config.nominal_interval * inflation + config.queue_coef * queue_delay
    ) * noise


class FeatureMonitorClient:
    """Samples the 15-feature tuple with load-dependent timing."""

    def __init__(
        self,
        config: MonitorConfig,
        seed: "int | None | np.random.Generator" = None,
    ) -> None:
        self.config = config
        self.rng = as_rng(seed)
        self.next_sample_time: float = 0.0
        self.last_interval: float = config.nominal_interval

    def reset(self, now: float = 0.0) -> None:
        self.next_sample_time = now + self.config.nominal_interval
        self.last_interval = self.config.nominal_interval

    def interval(
        self, utilization: float, swap_pressure: float, queue_delay: float = 0.0
    ) -> float:
        """Effective sampling interval under the given load.

        ``queue_delay`` is the current CPU-queue drain time in seconds;
        the monitor loop waits in the same run queue as the requests, so
        its interval stretches with it.
        """
        cfg = self.config
        noise = float(
            np.exp(self.rng.normal(0.0, cfg.noise_sigma))
        )
        return stretched_interval(cfg, utilization, swap_pressure, queue_delay, noise)

    def due(self, now: float) -> bool:
        return now >= self.next_sample_time

    def sample(
        self,
        now: float,
        state: MachineState,
        utilization: float,
        queue_delay: float = 0.0,
    ) -> Datapoint:
        """Read the features and schedule the next sample."""
        dp = Datapoint(
            tgen=now,
            n_threads=float(state.n_threads),
            mem_used=state.mem_used_kb,
            mem_free=state.mem_free_kb,
            mem_shared=state.config.shared_kb,
            mem_buffers=state.config.buffers_kb,
            mem_cached=state.mem_cached_kb,
            swap_used=state.swap_used_kb,
            swap_free=state.swap_free_kb,
            cpu_user=state.cpu.user,
            cpu_nice=state.cpu.nice,
            cpu_sys=state.cpu.sys,
            cpu_iowait=state.cpu.iowait,
            cpu_steal=state.cpu.steal,
            cpu_idle=state.cpu.idle,
        )
        step = self.interval(utilization, state.swap_pressure, queue_delay)
        self.last_interval = step
        self.next_sample_time = now + step
        get_metrics().inc("monitor.samples_total")
        if _log.isEnabledFor(logging.DEBUG):
            _log.debug(
                "fmc sample %s",
                kv(
                    t=now,
                    interval=step,
                    utilization=utilization,
                    swap_used_kb=state.swap_used_kb,
                ),
            )
        return dp


@dataclass
class FeatureMonitorServer:
    """Collects the FMC's datapoint stream for one run.

    In the paper this is a TCP peer that may live on another machine; in
    the simulation it is an in-process accumulator with the same
    interface: receive datapoints, hand back the run's matrix.
    """

    _rows: list[np.ndarray] = field(default_factory=list)
    _response_times: list[float] = field(default_factory=list)

    def receive(self, datapoint: Datapoint, response_time: float) -> None:
        """Ingest one datapoint (+ the probe-measured RT ground truth)."""
        self._rows.append(datapoint.to_array())
        self._response_times.append(response_time)
        get_metrics().inc("monitor.datapoints_total")

    @property
    def n_datapoints(self) -> int:
        return len(self._rows)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(features (n,15), response_times (n,))``."""
        if not self._rows:
            return np.empty((0, len(FEATURES))), np.empty(0)
        return np.vstack(self._rows), np.asarray(self._response_times)

    def clear(self) -> None:
        self._rows.clear()
        self._response_times.clear()
