"""The F2PM orchestrator: monitoring data in, compared models out.

Chains the workflow of the paper's Fig. 1:

1. aggregate the :class:`~repro.core.history.DataHistory` (Sec. III-B);
2. run Lasso-regularization feature selection over the lambda grid
   (Sec. III-C — optional, but always computed so the user can compare);
3. split train/validation;
4. train every configured model on the *all-parameters* training set and
   on the *selected-parameters* training set;
5. validate each model: MAE, RAE, Max-AE, S-MAE, training/validation time.

The result object renders the paper's Tables II-IV and carries the
validation predictions behind Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.aggregation import AggregationConfig, aggregate_history
from repro.core.dataset import TrainingSet
from repro.core.evaluation import ModelReport, evaluate_model, resolve_smae_threshold
from repro.core.feature_selection import LassoFeatureSelector, SelectionResult
from repro.core.history import DataHistory
from repro.core.model_zoo import make_model
from repro.ml.base import Regressor
from repro.obs import get_logger, get_metrics, kv, span
from repro.obs.trace import Span
from repro.utils.rng import as_rng
from repro.utils.tables import render_table

_log = get_logger("core.framework")


@dataclass(frozen=True)
class F2PMConfig:
    """Configuration of an end-to-end F2PM execution."""

    aggregation: AggregationConfig = field(default_factory=AggregationConfig)
    #: Data-quality policy applied to the history before aggregation:
    #: ``None`` (default) trusts the input, ``"strict"`` raises a located
    #: :class:`~repro.core.sanitize.DataQualityError` on any defect (and
    #: is bit-identical to ``None`` on clean data), ``"repair"`` fixes
    #: what it can, ``"quarantine"`` drops offending rows/runs. Defaulted
    #: so existing artifact-store fingerprints are unchanged.
    sanitize: "str | None" = None
    #: Lambda grid for the feature-selection path (None = paper's 10^0..10^9).
    lambda_grid: "tuple[float, ...] | None" = None
    #: Lambda whose selection feeds the reduced models; None = the
    #: largest lambda retaining at least ``selection_min_features``
    #: (the paper's Table I operating point kept six features).
    selection_lambda: "float | None" = None
    selection_min_features: int = 6
    #: Models trained on both feature sets.
    models: tuple[str, ...] = ("linear", "m5p", "reptree", "svm", "svm2")
    #: Lambdas at which the Lasso is also evaluated as a predictor
    #: (the paper's Table II lists all ten).
    lasso_predictor_lambdas: tuple[float, ...] = tuple(10.0**k for k in range(10))
    #: S-MAE tolerance: absolute seconds, or fraction of mean run length.
    smae_threshold: "float | None" = None
    smae_threshold_frac: float = 0.10
    validation_fraction: float = 0.3
    #: Split whole runs (stricter, leakage-free) instead of rows.
    split_by_run: bool = False
    seed: int = 0


@dataclass
class F2PMResult:
    """Everything an F2PM execution produced."""

    config: F2PMConfig
    dataset: TrainingSet
    selector: LassoFeatureSelector
    selection: SelectionResult
    smae_threshold: float
    reports: list[ModelReport]
    #: (model name, feature_set) -> fitted estimator
    models: dict[tuple[str, str], Regressor]
    #: (model name, feature_set) -> validation predictions
    predictions: dict[tuple[str, str], np.ndarray]
    #: validation ground truth (shared by all models)
    y_validation: np.ndarray
    #: root span of the execution's trace (None when tracing is disabled)
    trace: "Span | None" = None
    #: sanitize-layer decisions (None when ``config.sanitize`` is None)
    quality: "object | None" = None

    # -- lookups ---------------------------------------------------------------

    def report(self, name: str, feature_set: str = "all") -> ModelReport:
        for r in self.reports:
            if r.name == name and r.feature_set == feature_set:
                return r
        raise KeyError(f"no report for ({name!r}, {feature_set!r})")

    def best_by_smae(self, feature_set: str = "all") -> ModelReport:
        """The winning model (lowest S-MAE) on a feature set."""
        candidates = [r for r in self.reports if r.feature_set == feature_set]
        if not candidates:
            raise ValueError(f"no reports for feature set {feature_set!r}")
        return min(candidates, key=lambda r: r.s_mae)

    # -- tables ------------------------------------------------------------------

    def comparison_table(self) -> str:
        """Full metric table over all models and both feature sets."""
        rows = [r.row() for r in self.reports]
        return render_table(
            ModelReport.HEADERS,
            rows,
            title=(
                f"F2PM model comparison (S-MAE threshold "
                f"{self.smae_threshold:.1f}s)"
            ),
        )

    def _two_column(self, metric: str, title: str) -> str:
        """Paper-style table: one row per model, all-vs-selected columns."""
        names: list[str] = []
        for r in self.reports:
            if r.feature_set == "all" and r.name not in names:
                names.append(r.name)
        rows = []
        for name in names:
            try:
                all_v = getattr(self.report(name, "all"), metric)
            except KeyError:
                all_v = float("nan")
            try:
                sel_v = getattr(self.report(name, "selected"), metric)
            except KeyError:
                sel_v = float("nan")
            rows.append([name, all_v, sel_v])
        return render_table(
            ("algorithm", "all parameters", "selected by Lasso"),
            rows,
            title=title,
        )

    def smae_table(self) -> str:
        """Paper Table II analogue."""
        return self._two_column(
            "s_mae",
            f"Soft Mean Absolute Error (seconds, threshold {self.smae_threshold:.0f}s)",
        )

    def training_time_table(self) -> str:
        """Paper Table III analogue."""
        return self._two_column("train_time", "Training time (seconds)")

    def validation_time_table(self) -> str:
        """Paper Table IV analogue."""
        return self._two_column("validation_time", "Validation time (seconds)")

    # -- provenance --------------------------------------------------------------

    def manifest(self) -> dict:
        """Reproducibility manifest for this execution.

        Everything needed to audit (or re-run) the execution in one JSON
        document: the full configuration and seed, the package version,
        the span tree with per-phase durations, the current metrics
        snapshot and every per-model validation report. Persist it next
        to the outputs with :func:`repro.obs.write_manifest`.
        """
        from repro.obs import build_manifest, get_metrics

        return build_manifest(
            "f2pm.run",
            config=self.config,
            seeds={"f2pm": self.config.seed},
            trace=self.trace,
            metrics=get_metrics().snapshot(),
            reports=[
                {
                    "name": r.name,
                    "feature_set": r.feature_set,
                    "n_features": r.n_features,
                    "mae": r.mae,
                    "rae": r.rae,
                    "max_ae": r.max_ae,
                    "s_mae": r.s_mae,
                    "s_mae_threshold": r.s_mae_threshold,
                    "train_time": r.train_time,
                    "validation_time": r.validation_time,
                }
                for r in self.reports
            ],
            extra={
                "dataset": {
                    "n_samples": self.dataset.n_samples,
                    "n_features": self.dataset.n_features,
                    "feature_names": list(self.dataset.feature_names),
                },
                "selection": {
                    "lambda": self.selection.lam,
                    "selected": list(self.selection.selected),
                },
                "smae_threshold": self.smae_threshold,
                "model_names": sorted({name for name, _ in self.models}),
            },
        )


class F2PM:
    """End-to-end framework driver."""

    def __init__(self, config: F2PMConfig | None = None) -> None:
        self.config = config or F2PMConfig()

    def run(self, history: DataHistory, jobs: int = 1) -> F2PMResult:
        """Execute the full workflow on a monitoring history.

        ``jobs`` worker processes fit the (model x feature-set) grid
        concurrently. Error metrics and predictions are identical for
        any worker count (every estimator fits deterministically); the
        per-model training/validation wall-clocks are measured inside
        whichever process ran the fit, exactly as in a serial run.
        """
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        cfg = self.config
        metrics = get_metrics()
        root = span("f2pm.run", runs=len(history), jobs=jobs)
        with root:
            # Phase A': optional sanitize pass (dirty telemetry defense).
            quality = None
            if cfg.sanitize is not None:
                from repro.core.sanitize import sanitize_history

                with span("sanitize", policy=cfg.sanitize) as sp:
                    history, quality = sanitize_history(
                        history, policy=cfg.sanitize
                    )
                    sp.set(
                        issues=len(quality.issues),
                        runs_quarantined=quality.n_runs_quarantined,
                    )

            # Phase B: aggregation + added metrics + RTTF labels.
            with span("aggregate") as sp:
                dataset = aggregate_history(history, cfg.aggregation)
                sp.set(
                    rows_in=history.n_datapoints,
                    rows_out=dataset.n_samples,
                    features=dataset.n_features,
                )
            _log.info(
                "aggregate %s",
                kv(
                    rows_in=history.n_datapoints,
                    rows_out=dataset.n_samples,
                    features=dataset.n_features,
                    window_s=cfg.aggregation.window_seconds,
                ),
            )

            # Phase C: Lasso regularization path.
            with span("select") as sp:
                grid = (
                    None if cfg.lambda_grid is None else np.asarray(cfg.lambda_grid)
                )
                selector = LassoFeatureSelector(grid).fit(dataset)
                if cfg.selection_lambda is None:
                    selection = selector.strongest_with_at_least(
                        cfg.selection_min_features
                    )
                else:
                    selection = selector.result_at(cfg.selection_lambda)
                dataset_selected = dataset.select_features(selection.selected)
                sp.set(lam=selection.lam, features_kept=selection.n_selected)
            _log.info(
                "select %s",
                kv(lam=selection.lam, features_kept=selection.n_selected),
            )
            metrics.set_gauge("f2pm.features_selected", selection.n_selected)

            # Shared train/validation split: identical rows for both feature
            # sets so errors are comparable column-to-column.
            with span("split") as sp:
                rng = as_rng(cfg.seed)
                train_full, val_full = dataset.split(
                    cfg.validation_fraction, by_run=cfg.split_by_run, seed=rng
                )
                # Re-derive the same rows on the selected columns.
                train_sel = train_full.select_features(selection.selected)
                val_sel = val_full.select_features(selection.selected)
                del dataset_selected  # the split views are what we train on
                sp.set(
                    n_train=train_full.n_samples, n_validation=val_full.n_samples
                )

            smae_threshold = resolve_smae_threshold(
                cfg.smae_threshold, cfg.smae_threshold_frac, history.mean_run_length
            )

            # Phase D: model generation + validation.
            reports: list[ModelReport] = []
            models: dict[tuple[str, str], Regressor] = {}
            predictions: dict[tuple[str, str], np.ndarray] = {}

            candidates: list[tuple[str, Regressor]] = [
                (name, make_model(name)) for name in cfg.models
            ]
            for lam in cfg.lasso_predictor_lambdas:
                exponent = int(round(np.log10(lam))) if lam > 0 else 0
                candidates.append(
                    (f"lasso(1e{exponent})", make_model("lasso", lam=lam))
                )

            # Deterministic grid order: feature set major, model minor —
            # the parallel path returns (and merges telemetry) in this
            # exact order, so reports/tables never depend on scheduling.
            grid: list[tuple[str, str, Regressor, TrainingSet, TrainingSet]] = [
                (feature_set, name, _fresh(prototype), train, val)
                for feature_set, train, val in (
                    ("all", train_full, val_full),
                    ("selected", train_sel, val_sel),
                )
                for name, prototype in candidates
            ]

            with span("train_validate", n_models=len(grid), jobs=jobs) as sp:
                if jobs > 1 and len(grid) > 1:
                    from repro.parallel.training import evaluate_grid_parallel

                    outcomes = evaluate_grid_parallel(
                        grid, smae_threshold=smae_threshold, jobs=jobs
                    )
                else:
                    outcomes = [
                        evaluate_model(
                            name,
                            model,
                            train,
                            val,
                            smae_threshold=smae_threshold,
                            feature_set=feature_set,
                        )
                        for feature_set, name, model, train, val in grid
                    ]
                for (feature_set, name, *_), (report, fitted, pred) in zip(
                    grid, outcomes
                ):
                    reports.append(report)
                    models[(name, feature_set)] = fitted
                    predictions[(name, feature_set)] = pred
                sp.set(n_reports=len(reports))

        metrics.inc("f2pm.runs_total")
        metrics.inc("f2pm.models_trained_total", len(models))
        _log.info(
            "f2pm run complete %s",
            kv(
                models=len(models),
                duration_s=root.duration if root else 0.0,
                smae_threshold=smae_threshold,
            ),
        )
        return F2PMResult(
            config=cfg,
            dataset=dataset,
            selector=selector,
            selection=selection,
            smae_threshold=smae_threshold,
            reports=reports,
            models=models,
            predictions=predictions,
            y_validation=val_full.y,
            trace=root if isinstance(root, Span) else None,
            quality=quality,
        )


def _fresh(prototype: Regressor) -> Regressor:
    """Clone a prototype estimator for an independent fit."""
    from repro.ml.base import clone

    return clone(prototype)
