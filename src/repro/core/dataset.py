"""Training-set container: feature matrix + RTTF target + provenance.

The feature-selection phase produces *several* training sets that differ
only in which columns they retain (paper Sec. III-C: "The output of this
phase is a number of training sets, each one including a sub-set of
selected features"). :class:`TrainingSet` keeps names and columns bound
together so that selections compose safely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.utils.rng import as_rng
from repro.utils.validation import check_consistent_length


@dataclass
class TrainingSet:
    """An aggregated dataset: ``X`` (n, d), ``y`` = RTTF seconds.

    ``run_ids`` records which system run each row came from, enabling
    leakage-free run-wise splits (all windows of a run stay on one side).
    """

    X: np.ndarray
    y: np.ndarray
    feature_names: tuple[str, ...]
    run_ids: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.float64)
        if self.X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {self.X.shape}")
        if self.X.shape[1] != len(self.feature_names):
            raise ValueError(
                f"{self.X.shape[1]} columns but {len(self.feature_names)} names"
            )
        if self.run_ids is None:
            self.run_ids = np.zeros(self.X.shape[0], dtype=np.int64)
        self.run_ids = np.asarray(self.run_ids, dtype=np.int64)
        check_consistent_length(self.X, self.y, self.run_ids)
        self.feature_names = tuple(self.feature_names)

    @property
    def n_samples(self) -> int:
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    def column(self, name: str) -> np.ndarray:
        """Values of a named feature."""
        try:
            idx = self.feature_names.index(name)
        except ValueError:
            raise KeyError(f"unknown feature {name!r}") from None
        return self.X[:, idx]

    def select_features(self, names: Sequence[str]) -> "TrainingSet":
        """Project onto a subset of features (order preserved as given)."""
        indices = []
        for name in names:
            try:
                indices.append(self.feature_names.index(name))
            except ValueError:
                raise KeyError(f"unknown feature {name!r}") from None
        if not indices:
            raise ValueError("cannot select an empty feature set")
        return TrainingSet(
            X=self.X[:, indices],
            y=self.y,
            feature_names=tuple(names),
            run_ids=self.run_ids,
        )

    def subset(self, mask_or_idx: np.ndarray) -> "TrainingSet":
        """Row subset by boolean mask or index array."""
        return TrainingSet(
            X=self.X[mask_or_idx],
            y=self.y[mask_or_idx],
            feature_names=self.feature_names,
            run_ids=self.run_ids[mask_or_idx],
        )

    def split(
        self,
        validation_fraction: float = 0.3,
        *,
        by_run: bool = False,
        seed: "int | None | np.random.Generator" = 0,
    ) -> tuple["TrainingSet", "TrainingSet"]:
        """Split into (train, validation).

        ``by_run=True`` assigns whole runs to a side (no window of a
        validation run ever appears in training — the stricter protocol);
        otherwise rows are shuffled individually, which matches the
        paper's "sub-set (validation set) of samples" wording.
        """
        if not 0.0 < validation_fraction < 1.0:
            raise ValueError(
                f"validation_fraction must be in (0,1), got {validation_fraction}"
            )
        rng = as_rng(seed)
        n = self.n_samples
        if by_run:
            runs = np.unique(self.run_ids)
            if runs.size < 2:
                raise ValueError("run-wise split needs at least 2 runs")
            perm = rng.permutation(runs)
            n_val_runs = max(1, int(round(runs.size * validation_fraction)))
            n_val_runs = min(n_val_runs, runs.size - 1)
            val_runs = set(perm[:n_val_runs].tolist())
            mask = np.fromiter(
                (rid in val_runs for rid in self.run_ids), dtype=bool, count=n
            )
            return self.subset(~mask), self.subset(mask)
        perm = rng.permutation(n)
        n_val = min(max(1, int(round(n * validation_fraction))), n - 1)
        return self.subset(perm[n_val:]), self.subset(perm[:n_val])
