"""The monitored feature schema (paper Sec. III-A).

Each raw datapoint is a tuple of 15 system-level values. F2PM is
application-agnostic precisely because this schema contains only values
any OS exposes (``free``, ``vmstat``, ``/proc``):

=============  ========================================================
name           paper symbol / meaning
=============  ========================================================
tgen           Tgen — elapsed seconds since (re)start
n_threads      nth — active threads in the system
mem_used       Mused — memory used by applications (KB)
mem_free       Mfree — freely available memory (KB)
mem_shared     Mshared — shared buffers (KB)
mem_buffers    Mbuff — OS data buffers (KB)
mem_cached     Mcached — disk cache (KB)
swap_used      SWused — swap in use (KB)
swap_free      SWfree — free swap (KB)
cpu_user       CPUus — % CPU in userspace
cpu_nice       CPUni — % CPU in niced processes
cpu_sys        CPUsys — % CPU in kernel mode
cpu_iowait     CPUiow — % CPU waiting for I/O
cpu_steal      CPUst — % CPU stolen by the hypervisor
cpu_idle       CPUid — % CPU idle
=============  ========================================================

Aggregation (Sec. III-B) extends this with one *slope* per non-time
feature (Eq. 1) and the derived *inter-generation time* ``gen_time``,
yielding the 30-column aggregated schema in :data:`AGGREGATED_FEATURES`
(15 base + 14 slopes + gen_time) — consistent with the ~30 parameters at
the left edge of the paper's Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

import numpy as np

TGEN = "tgen"
GEN_TIME = "gen_time"

#: Raw datapoint schema, in canonical column order.
FEATURES: tuple[str, ...] = (
    TGEN,
    "n_threads",
    "mem_used",
    "mem_free",
    "mem_shared",
    "mem_buffers",
    "mem_cached",
    "swap_used",
    "swap_free",
    "cpu_user",
    "cpu_nice",
    "cpu_sys",
    "cpu_iowait",
    "cpu_steal",
    "cpu_idle",
)

#: Features that get a slope column during aggregation (all but tgen).
BASE_FEATURES: tuple[str, ...] = FEATURES[1:]

#: Slope column names, paper-style (e.g. ``mem_used_slope``).
SLOPE_FEATURES: tuple[str, ...] = tuple(f"{name}_slope" for name in BASE_FEATURES)

#: Aggregated datapoint schema: base features + slopes + gen_time.
AGGREGATED_FEATURES: tuple[str, ...] = FEATURES + SLOPE_FEATURES + (GEN_TIME,)

#: Column index of each raw feature.
FEATURE_INDEX: dict[str, int] = {name: i for i, name in enumerate(FEATURES)}


@dataclass(frozen=True)
class Datapoint:
    """One raw measurement — a named view over the 15-feature tuple.

    The pipeline operates on ``(n, 15)`` arrays for speed; this dataclass
    exists for ergonomic construction and inspection of single points
    (e.g. in the monitoring client and in tests).
    """

    tgen: float
    n_threads: float
    mem_used: float
    mem_free: float
    mem_shared: float
    mem_buffers: float
    mem_cached: float
    swap_used: float
    swap_free: float
    cpu_user: float
    cpu_nice: float
    cpu_sys: float
    cpu_iowait: float
    cpu_steal: float
    cpu_idle: float

    def to_array(self) -> np.ndarray:
        """Return the point as a (15,) float array in canonical order."""
        return np.array([getattr(self, name) for name in FEATURES], dtype=np.float64)

    @classmethod
    def from_array(cls, values: np.ndarray) -> "Datapoint":
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (len(FEATURES),):
            raise ValueError(
                f"expected shape ({len(FEATURES)},), got {values.shape}"
            )
        return cls(**{name: float(v) for name, v in zip(FEATURES, values)})


# Consistency guard: the dataclass field order must match FEATURES so that
# to_array/from_array round-trip positionally.
assert tuple(f.name for f in fields(Datapoint)) == FEATURES
