"""Lasso-regularization feature selection (paper Sec. III-C).

For each lambda in a user grid (the paper sweeps 10^0 .. 10^9), the Lasso
of Eq. (2) is fitted to the aggregated training set; features whose beta
weight is exactly zero are filtered out. Larger lambdas zero out more —
and the survivors at large lambda are the features with the most weight
in predicting the RTTF (in the paper: memory/swap quantities and their
slopes, Table I).

The whole grid is fitted with one warm-started
:func:`~repro.ml.lasso.lasso_path` call.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import TrainingSet
from repro.ml.lasso import lasso_path
from repro.obs import get_logger, kv, span

_log = get_logger("core.feature_selection")


def default_lambda_grid() -> np.ndarray:
    """The paper's grid: powers of ten from 10^0 to 10^9."""
    return np.logspace(0, 9, 10)


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of Lasso regularization at one lambda."""

    lam: float
    feature_names: tuple[str, ...]
    weights: np.ndarray  # full-length beta, zeros included

    @property
    def selected(self) -> tuple[str, ...]:
        """Names of features with non-zero weight."""
        return tuple(
            name
            for name, w in zip(self.feature_names, self.weights)
            if w != 0.0
        )

    @property
    def n_selected(self) -> int:
        return int(np.count_nonzero(self.weights))

    def weight_table(self) -> list[tuple[str, float]]:
        """(name, weight) pairs of the surviving features, paper Table I
        style, ordered by descending absolute weight."""
        pairs = [
            (name, float(w))
            for name, w in zip(self.feature_names, self.weights)
            if w != 0.0
        ]
        pairs.sort(key=lambda kv: abs(kv[1]), reverse=True)
        return pairs


class LassoFeatureSelector:
    """Runs the regularization path and exposes per-lambda selections.

    Parameters
    ----------
    lambda_grid : array of lambdas (default: the paper's 10^0..10^9).
    normalize : fit on standardized features (weights are reported on the
        *original* scale either way). The paper fits raw features — its
        Table I weights are ~1e-4 because memory features are in KB — so
        the default is False.
    max_iter, tol : coordinate-descent controls.
    """

    def __init__(
        self,
        lambda_grid: np.ndarray | None = None,
        *,
        normalize: bool = False,
        max_iter: int = 2000,
        tol: float = 1e-10,
    ) -> None:
        self.lambda_grid = (
            default_lambda_grid() if lambda_grid is None else np.asarray(lambda_grid, dtype=np.float64)
        )
        if self.lambda_grid.ndim != 1 or self.lambda_grid.size == 0:
            raise ValueError("lambda_grid must be a non-empty 1-D array")
        self.normalize = normalize
        self.max_iter = max_iter
        self.tol = tol
        self.results_: list[SelectionResult] | None = None

    def fit(self, dataset: TrainingSet) -> "LassoFeatureSelector":
        """Fit the full regularization path on *dataset*."""
        with span(
            "lasso_path",
            n_lambdas=int(self.lambda_grid.size),
            n_samples=dataset.n_samples,
            n_features=dataset.n_features,
        ) as sp:
            coefs = lasso_path(
                dataset.X,
                dataset.y,
                self.lambda_grid,
                normalize=self.normalize,
                max_iter=self.max_iter,
                tol=self.tol,
            )
            self.results_ = [
                SelectionResult(
                    lam=float(lam),
                    feature_names=dataset.feature_names,
                    weights=coefs[i],
                )
                for i, lam in enumerate(self.lambda_grid)
            ]
            sp.set(nonzero_max=max(r.n_selected for r in self.results_))
        _log.info(
            "lasso path fitted %s",
            kv(
                n_lambdas=int(self.lambda_grid.size),
                n_samples=dataset.n_samples,
                n_features=dataset.n_features,
                counts=",".join(str(r.n_selected) for r in self.results_),
            ),
        )
        return self

    def _require_fit(self) -> list[SelectionResult]:
        if self.results_ is None:
            raise RuntimeError("selector is not fitted; call fit() first")
        return self.results_

    def selection_counts(self) -> list[tuple[float, int]]:
        """(lambda, #selected) pairs — the series of the paper's Fig. 4."""
        return [(r.lam, r.n_selected) for r in self._require_fit()]

    def result_at(self, lam: float) -> SelectionResult:
        """The selection at the grid lambda closest to *lam*."""
        results = self._require_fit()
        best = min(results, key=lambda r: abs(np.log10(max(r.lam, 1e-300)) - np.log10(max(lam, 1e-300))))
        return best

    def strongest_with_at_least(self, min_features: int) -> SelectionResult:
        """The largest-lambda selection retaining >= *min_features*.

        The paper's Table I operating point (lambda = 10^9) kept six
        features; this picks the analogous point on *this* data's path:
        maximal shrinkage subject to a floor on the surviving set size.
        Falls back to the least-shrunk selection if no lambda satisfies
        the floor.
        """
        if min_features < 1:
            raise ValueError(f"min_features must be >= 1, got {min_features}")
        results = sorted(self._require_fit(), key=lambda r: r.lam, reverse=True)
        for r in results:
            if r.n_selected >= min_features:
                return r
        candidate = max(results, key=lambda r: r.n_selected)
        if candidate.n_selected == 0:
            raise ValueError("every lambda in the grid zeroes out all features")
        return candidate

    def strongest_nonempty(self) -> SelectionResult:
        """The largest-lambda selection that still retains >= 1 feature.

        This is the paper's Table I operating point (lambda = 10^9 there):
        maximal shrinkage short of the empty model.
        """
        results = sorted(self._require_fit(), key=lambda r: r.lam, reverse=True)
        for r in results:
            if r.n_selected > 0:
                return r
        raise ValueError("every lambda in the grid zeroes out all features")
