"""Inter-generation-time / response-time correlation (paper Fig. 3).

The paper's key observation enabling application-agnostic monitoring: the
interval between consecutive FMC datapoints stretches when the system is
overloaded, and a *linear* model over it tracks the client-side response
time well — "a pragmatic estimation of the response time seen by end
users, without any modification to the software at the end point".

:class:`ResponseTimeCorrelator` fits that model: RT ~ a * gen_time + b,
trained on one instrumented run (the paper instruments the emulated
browsers with probes only for this study) and thereafter applicable to
uninstrumented systems.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.history import RunRecord
from repro.ml.linear import LinearRegression
from repro.ml.metrics import mean_absolute_error, r2_score
from repro.utils.validation import check_array, check_consistent_length


def generation_intervals(run: RunRecord) -> np.ndarray:
    """Per-datapoint inter-generation time of a run (first = its tgen)."""
    tgen = run.column("tgen")
    out = np.empty_like(tgen)
    out[0] = tgen[0]
    np.subtract(tgen[1:], tgen[:-1], out=out[1:])
    return out


@dataclass
class CorrelationSeries:
    """The three curves of the paper's Fig. 3 for one run."""

    time: np.ndarray  # x axis: execution time (tgen)
    generation_time: np.ndarray
    response_time: np.ndarray  # ground truth from browser probes
    correlated_rt: np.ndarray  # linear model evaluated on generation_time

    @property
    def r2(self) -> float:
        return r2_score(self.response_time, self.correlated_rt)

    @property
    def mae(self) -> float:
        return mean_absolute_error(self.response_time, self.correlated_rt)


class ResponseTimeCorrelator:
    """Linear model mapping inter-generation time to client response time."""

    def __init__(self) -> None:
        self._model: LinearRegression | None = None

    def fit(self, generation_time: np.ndarray, response_time: np.ndarray) -> "ResponseTimeCorrelator":
        generation_time = check_array(generation_time, ndim=1, name="generation_time")
        response_time = check_array(response_time, ndim=1, name="response_time")
        check_consistent_length(generation_time, response_time)
        self._model = LinearRegression().fit(
            generation_time[:, None], response_time
        )
        return self

    @property
    def slope(self) -> float:
        self._require_fit()
        return float(self._model.coef_[0])

    @property
    def intercept(self) -> float:
        self._require_fit()
        return float(self._model.intercept_)

    def _require_fit(self) -> None:
        if self._model is None:
            raise RuntimeError("correlator is not fitted; call fit() first")

    def predict(self, generation_time: np.ndarray) -> np.ndarray:
        """Predicted RT (the paper's "Correlated RT") from gen time only."""
        self._require_fit()
        generation_time = check_array(generation_time, ndim=1, name="generation_time")
        return self._model.predict(generation_time[:, None])

    def fit_run(self, run: RunRecord) -> CorrelationSeries:
        """Fit on one instrumented run and return the Fig. 3 series."""
        if run.response_times is None:
            raise ValueError(
                "run has no response-time ground truth; instrument the "
                "browsers (the simulator records RT by default)"
            )
        gen = generation_intervals(run)
        self.fit(gen, run.response_times)
        return CorrelationSeries(
            time=run.column("tgen"),
            generation_time=gen,
            response_time=run.response_times,
            correlated_rt=self.predict(gen),
        )
