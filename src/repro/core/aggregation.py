"""Datapoint aggregation and added metrics (paper Sec. III-B, Fig. 2).

Raw datapoints are binned into fixed time windows on the ``tgen`` axis.
Per window:

- every feature is **averaged** over the window's datapoints;
- per non-time feature, the **slope** of Eq. (1) is added::

      slope_j = (x_j^end - x_j^start) / n

  where ``x^start``/``x^end`` are the first/last *raw* datapoints in the
  window and ``n`` the number of raw datapoints in it (the paper divides
  by the count, not the elapsed time — a discrete derivative whose
  denominator stretches with the sampling interval, which is deliberate:
  under overload fewer points land in a window, steepening the slope);
- the **inter-generation time** derived metric: the mean spacing of raw
  datapoints in the window (each raw point carries the interval that
  preceded it, so single-point windows remain well-defined);
- the **RTTF label**: fail-event time minus the window's mean ``tgen``.

Aggregation is vectorized with sorted-segment reductions
(``np.add.reduceat``): no Python loop over windows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.datapoint import AGGREGATED_FEATURES, FEATURES
from repro.core.dataset import TrainingSet
from repro.core.history import DataHistory, RunRecord


@dataclass(frozen=True)
class AggregationConfig:
    """Aggregation parameters.

    window_seconds : the user-defined aggregation interval (paper Fig. 2).
    min_points : windows with fewer raw datapoints are dropped.
    include_non_crashed : whether truncated (never-failed) runs contribute
        datapoints. They have no fail event, so their RTTF labels would be
        lower bounds only; excluded by default, as in the paper where
        every run ends in a logged fail event.
    """

    window_seconds: float = 60.0
    min_points: int = 1
    include_non_crashed: bool = False

    def __post_init__(self) -> None:
        if self.window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be positive, got {self.window_seconds}"
            )
        if self.min_points < 1:
            raise ValueError(f"min_points must be >= 1, got {self.min_points}")


def aggregate_run(
    run: RunRecord, config: AggregationConfig | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Aggregate one run into ``(X, rttf)``.

    ``X`` has columns :data:`~repro.core.datapoint.AGGREGATED_FEATURES`
    (15 window means + 14 slopes + gen_time); ``rttf`` is the remaining
    time to the run's fail event at each window's mean ``tgen``.
    """
    config = config or AggregationConfig()
    feats = run.features
    tgen = feats[:, 0]
    n_raw = feats.shape[0]

    # Inter-generation time per raw point: interval that preceded it.
    # The first point's interval is taken as its own tgen (time since start).
    intervals = np.empty(n_raw)
    intervals[0] = tgen[0]
    np.subtract(tgen[1:], tgen[:-1], out=intervals[1:])

    bins = np.floor_divide(tgen, config.window_seconds).astype(np.int64)
    # tgen is sorted, so bins are non-decreasing: segment boundaries are
    # the positions where the bin id changes. Computed once and shared by
    # every reduction below (this used to run np.unique three times).
    _, all_starts, all_counts = np.unique(bins, return_index=True, return_counts=True)
    keep = all_counts >= config.min_points
    starts, counts = all_starts[keep], all_counts[keep]
    if starts.size == 0:
        return np.empty((0, len(AGGREGATED_FEATURES))), np.empty(0)
    ends = starts + counts - 1

    # Window means of all 15 raw features (segment sums / counts).
    sums = np.add.reduceat(feats, all_starts, axis=0)[keep]
    means = sums / counts[:, None]

    # Eq. (1) slopes for all features except tgen.
    slopes = (feats[ends, 1:] - feats[starts, 1:]) / counts[:, None]

    # Mean inter-generation time per window.
    gen_sums = np.add.reduceat(intervals, all_starts)
    gen_time = (gen_sums[keep] / counts)[:, None]

    X = np.hstack([means, slopes, gen_time])
    rttf = run.fail_time - means[:, 0]  # means[:,0] is the window-mean tgen
    return X, rttf


def aggregate_history(
    history: DataHistory,
    config: AggregationConfig | None = None,
    *,
    sanitize: "str | None" = None,
    sanitize_config=None,
    quality=None,
) -> TrainingSet:
    """Aggregate every (crashed) run and stack into a :class:`TrainingSet`.

    ``sanitize`` routes the history through the
    :mod:`repro.core.sanitize` layer first: ``"strict"`` raises a located
    :class:`~repro.core.sanitize.DataQualityError` on dirty input (and is
    a guaranteed no-op on clean input — bit-identical output), ``"repair"``
    fixes/quarantines, ``"quarantine"`` drops offenders. Pass an existing
    :class:`~repro.core.sanitize.QualityReport` as ``quality`` to collect
    the decisions; ``None`` (default) skips sanitation entirely.
    """
    config = config or AggregationConfig()
    if sanitize is not None:
        from repro.core.sanitize import sanitize_history

        history, _ = sanitize_history(
            history, policy=sanitize, config=sanitize_config, quality=quality
        )
    blocks: list[np.ndarray] = []
    labels: list[np.ndarray] = []
    run_ids: list[np.ndarray] = []
    for i, run in enumerate(history):
        crashed = float(run.metadata.get("crashed", 1.0)) != 0.0
        if not crashed and not config.include_non_crashed:
            continue
        X, rttf = aggregate_run(run, config)
        if X.shape[0] == 0:
            continue
        blocks.append(X)
        labels.append(rttf)
        run_ids.append(np.full(X.shape[0], i, dtype=np.int64))
    if not blocks:
        raise ValueError(
            "aggregation produced no datapoints; check window size and "
            "crash flags"
        )
    return TrainingSet(
        X=np.vstack(blocks),
        y=np.concatenate(labels),
        feature_names=AGGREGATED_FEATURES,
        run_ids=np.concatenate(run_ids),
    )


class OnlineAggregator:
    """Streaming counterpart of :func:`aggregate_run` (unlabelled).

    Feed raw datapoints one at a time; whenever a time window closes, the
    completed window's aggregated feature row (same 30-column schema,
    same Eq. 1 slope and gen-time semantics as the batch path — parity is
    tested) is returned. Used by the proactive-rejuvenation controller,
    which must evaluate the RTTF model *during* a run, not after it.

    Parameters
    ----------
    window_seconds : the aggregation interval (same as the batch config).
    min_points : windows with fewer raw datapoints are suppressed, exactly
        as :class:`AggregationConfig.min_points` drops them in the batch
        path (their datapoints still advance the inter-generation-time
        chain, again matching batch semantics).
    policy : ``"strict"`` (default) raises on out-of-order arrivals;
        ``"repair"`` tolerates bounded reordering — a late datapoint still
        belonging to the *current* window is inserted in timestamp order,
        one belonging to an already-closed window is dropped and counted
        in :attr:`late_dropped` (and the ``sanitize.online_late_dropped``
        counter). The bound therefore equals one aggregation window,
        which is also the most the batch path could absorb while keeping
        its windows identical.
    """

    def __init__(
        self,
        window_seconds: float,
        *,
        min_points: int = 1,
        policy: str = "strict",
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be positive, got {window_seconds}")
        if min_points < 1:
            raise ValueError(f"min_points must be >= 1, got {min_points}")
        if policy not in ("strict", "repair"):
            raise ValueError(
                f"policy must be 'strict' or 'repair', got {policy!r}"
            )
        self.window_seconds = window_seconds
        self.min_points = min_points
        self.policy = policy
        #: repair-mode count of datapoints dropped for arriving after
        #: their window had already closed.
        self.late_dropped = 0
        self._rows: list[np.ndarray] = []
        self._intervals: list[float] = []
        self._unsorted = False
        self._bin: int | None = None
        self._last_tgen: float = 0.0
        # Last tgen of the previously finalized window: the anchor the
        # interval chain restarts from when a window needs re-sorting.
        self._window_anchor: float = 0.0

    def _finalize(self) -> "np.ndarray | None":
        block = np.vstack(self._rows)
        if self._unsorted:
            # Bounded reordering happened inside this window: restore the
            # batch path's sorted order and rebuild the interval chain
            # from the previous window's last timestamp (exactly what the
            # batch path computes after its global stable sort).
            order = np.argsort(block[:, 0], kind="stable")
            block = block[order]
            intervals = np.diff(np.concatenate([[self._window_anchor], block[:, 0]]))
        else:
            intervals = np.asarray(self._intervals)
        n = block.shape[0]
        self._rows.clear()
        self._intervals.clear()
        self._unsorted = False
        self._window_anchor = float(block[-1, 0])
        if n < self.min_points:
            return None
        # Sum with np.add.reduceat, exactly like the batch path: np.mean
        # uses pairwise summation, which can differ from the sequential
        # segment sum in the last ulp and break batch<->online bit parity.
        start = np.zeros(1, dtype=np.intp)
        means = np.add.reduceat(block, start, axis=0)[0] / n
        slopes = (block[-1, 1:] - block[0, 1:]) / n
        gen_time = float(np.add.reduceat(np.asarray(intervals, dtype=np.float64), start)[0] / n)
        return np.concatenate([means, slopes, [gen_time]])

    def add(self, datapoint_row: np.ndarray) -> "np.ndarray | None":
        """Ingest one raw datapoint (15-column row, canonical order).

        Returns the completed previous window's aggregated row when this
        datapoint opens a new window (and the window clears
        ``min_points``), else ``None``.
        """
        row = np.asarray(datapoint_row, dtype=np.float64)
        if row.shape != (len(FEATURES),):
            raise ValueError(f"expected a ({len(FEATURES)},) row, got {row.shape}")
        tgen = float(row[0])
        if tgen < self._last_tgen:
            if self.policy == "strict":
                raise ValueError("datapoints must arrive in tgen order")
            new_bin = int(tgen // self.window_seconds)
            if self._bin is None or new_bin < self._bin:
                # The window this datapoint belongs to already closed:
                # beyond the reordering bound — quarantine the point.
                self.late_dropped += 1
                from repro.obs import get_metrics

                get_metrics().inc("sanitize.online_late_dropped")
                return None
            # Late but still inside the open window: insert in order.
            self._rows.append(row)
            self._unsorted = True
            return None
        new_bin = int(tgen // self.window_seconds)
        finished: np.ndarray | None = None
        if self._bin is not None and new_bin != self._bin and self._rows:
            finished = self._finalize()
        self._bin = new_bin
        self._rows.append(row)
        # Batch-path semantics: each point carries the interval that
        # preceded it; the run's first point carries its own tgen (and
        # _last_tgen is 0 right after construction/reset, so the same
        # expression covers it).
        self._intervals.append(tgen - self._last_tgen)
        self._last_tgen = tgen
        return finished

    def flush(self) -> "np.ndarray | None":
        """Finalize the (possibly partial) current window, if any.

        Windows below ``min_points`` are suppressed here too, mirroring
        the batch path's treatment of the run's final window.
        """
        if not self._rows:
            return None
        return self._finalize()

    def reset(self) -> None:
        """Forget all buffered state (after a restart/rejuvenation)."""
        self._rows.clear()
        self._intervals.clear()
        self._unsorted = False
        self._bin = None
        self._last_tgen = 0.0
        self._window_anchor = 0.0


# Re-export for convenience in sanity checks.
N_RAW_FEATURES = len(FEATURES)
