"""F2PM core: the paper's contribution.

Workflow phases (paper Sec. III, Fig. 1):

A. *Initial system monitoring* — produces a :class:`~repro.core.history.DataHistory`
   (raw datapoints + fail events over many runs). In this reproduction the
   history comes from :mod:`repro.system`'s simulated testbed, but any
   source emitting the 15-feature schema works.
B. *Datapoint aggregation and added metrics* —
   :func:`~repro.core.aggregation.aggregate_history` (time windows, Eq. 1
   slopes, inter-generation time, RTTF labels).
C. *Feature selection* — :class:`~repro.core.feature_selection.LassoFeatureSelector`.
D. *Model generation and validation* — :mod:`~repro.core.model_zoo` +
   :func:`~repro.core.evaluation.evaluate_model`.
E. Orchestrated end-to-end by :class:`~repro.core.framework.F2PM`.
"""

from repro.core.datapoint import (
    FEATURES,
    BASE_FEATURES,
    SLOPE_FEATURES,
    GEN_TIME,
    TGEN,
    AGGREGATED_FEATURES,
    Datapoint,
)
from repro.core.history import RunRecord, DataHistory
from repro.core.aggregation import AggregationConfig, aggregate_run, aggregate_history
from repro.core.dataset import TrainingSet
from repro.core.feature_selection import LassoFeatureSelector, SelectionResult
from repro.core.model_zoo import make_model, available_models, PAPER_MODELS
from repro.core.evaluation import ModelReport, evaluate_model
from repro.core.correlation import ResponseTimeCorrelator
from repro.core.framework import F2PM, F2PMConfig, F2PMResult
from repro.core.incremental import (
    IncrementalCollector,
    IncrementalConfig,
    IncrementalResult,
)
from repro.core.report import render_markdown_report, write_markdown_report
from repro.core.persistence import ModelEnvelope, save_model, load_model
from repro.core.ingest import (
    CSVTraceSpec,
    read_run_csv,
    read_campaign_csv,
    write_run_csv,
)
from repro.core.drift import (
    DriftStatus,
    ResidualDriftDetector,
    TrajectoryConsistencyMonitor,
)
from repro.core.sanitize import (
    DataQualityError,
    QualityReport,
    RunQualityReport,
    SanitizeConfig,
    StreamSanitizer,
    sanitize_history,
    sanitize_run,
)

__all__ = [
    "FEATURES",
    "BASE_FEATURES",
    "SLOPE_FEATURES",
    "GEN_TIME",
    "TGEN",
    "AGGREGATED_FEATURES",
    "Datapoint",
    "RunRecord",
    "DataHistory",
    "AggregationConfig",
    "aggregate_run",
    "aggregate_history",
    "TrainingSet",
    "LassoFeatureSelector",
    "SelectionResult",
    "make_model",
    "available_models",
    "PAPER_MODELS",
    "ModelReport",
    "evaluate_model",
    "ResponseTimeCorrelator",
    "F2PM",
    "F2PMConfig",
    "F2PMResult",
    "IncrementalCollector",
    "IncrementalConfig",
    "IncrementalResult",
    "render_markdown_report",
    "write_markdown_report",
    "ModelEnvelope",
    "save_model",
    "load_model",
    "CSVTraceSpec",
    "read_run_csv",
    "read_campaign_csv",
    "write_run_csv",
    "DriftStatus",
    "ResidualDriftDetector",
    "TrajectoryConsistencyMonitor",
    "DataQualityError",
    "QualityReport",
    "RunQualityReport",
    "SanitizeConfig",
    "StreamSanitizer",
    "sanitize_history",
    "sanitize_run",
]
