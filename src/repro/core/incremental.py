"""Incremental data collection until the models are accurate enough.

Paper Sec. III-A: determining how much monitoring data suffices "could
require a long period of training time. F2PM can support this task
incrementally, via the set of metrics that allow the user to evaluate the
accuracy of the produced models. If the estimated accuracy is not
sufficient, further system runs can be executed to collect new data into
the training set, and to produce new models."

:class:`IncrementalCollector` automates that loop: collect a batch of
runs, rebuild the models, check the best S-MAE against a target, repeat
until the target is met or the run budget is exhausted. The accuracy
trace (best S-MAE per campaign size) doubles as a learning-curve
diagnostic.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.framework import F2PM, F2PMConfig, F2PMResult
from repro.core.history import DataHistory
from repro.utils.rng import as_rng

if TYPE_CHECKING:  # import kept lazy: repro.system imports repro.core
    from repro.store.checkpoint import CampaignCheckpoint
    from repro.system.simulator import TestbedSimulator


@dataclass(frozen=True)
class IncrementalConfig:
    """Stopping rule and batch sizing for incremental collection."""

    #: Runs added per iteration.
    batch_runs: int = 4
    #: Hard budget on total runs.
    max_runs: int = 40
    #: Stop when the best model's S-MAE falls below this (seconds); if
    #: None, ``target_smae_frac`` of the mean run length is used.
    target_smae: "float | None" = None
    target_smae_frac: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        if self.batch_runs < 1:
            raise ValueError(f"batch_runs must be >= 1, got {self.batch_runs}")
        if self.max_runs < self.batch_runs:
            raise ValueError("max_runs must be >= batch_runs")
        if self.target_smae is not None and self.target_smae <= 0:
            raise ValueError("target_smae must be positive")
        if not 0.0 < self.target_smae_frac < 1.0:
            raise ValueError("target_smae_frac must be in (0, 1)")


@dataclass(frozen=True)
class TracePoint:
    """One iteration of the collect-train-evaluate loop."""

    n_runs: int
    n_windows: int
    best_model: str
    best_smae: float
    target: float


@dataclass
class IncrementalResult:
    """Outcome of an incremental campaign."""

    history: DataHistory
    final: F2PMResult
    trace: list[TracePoint] = field(default_factory=list)
    target_met: bool = False

    @property
    def n_runs(self) -> int:
        return len(self.history)

    def learning_curve(self) -> np.ndarray:
        """(n_runs, best_smae) pairs, one per iteration."""
        return np.array([(p.n_runs, p.best_smae) for p in self.trace])


class IncrementalCollector:
    """Collects runs in batches until the model accuracy target is met."""

    def __init__(
        self,
        simulator: "TestbedSimulator",
        f2pm_config: F2PMConfig,
        config: IncrementalConfig | None = None,
    ) -> None:
        self.simulator = simulator
        self.f2pm_config = f2pm_config
        self.config = config or IncrementalConfig()

    def _resolve_target(self, history: DataHistory) -> float:
        if self.config.target_smae is not None:
            return self.config.target_smae
        return self.config.target_smae_frac * history.mean_run_length

    def collect(
        self, jobs: int = 1, checkpoint: "CampaignCheckpoint | None" = None
    ) -> IncrementalResult:
        """Run the incremental loop; always returns a final model set.

        ``jobs`` parallelizes each batch of runs and each model grid;
        the collected history and the learning curve are identical for
        any worker count (the batch generators are spawned up front).

        With a :class:`~repro.store.CampaignCheckpoint`, the accumulated
        history and learning-curve trace are persisted after every batch
        and a killed collection resumes where it stopped: already-spawned
        batch generators are skipped, so the resumed loop continues the
        exact random streams an uninterrupted loop would have used. The
        checkpoint is discarded on completion.
        """
        cfg = self.config
        rng = as_rng(cfg.seed)
        history = DataHistory()
        trace: list[TracePoint] = []
        framework = F2PM(self.f2pm_config)
        result: F2PMResult | None = None
        target_met = False

        if checkpoint is not None:
            records, extra = checkpoint.load()
            if records and len(records) % cfg.batch_runs == 0 and len(records) <= cfg.max_runs:
                for record in records:
                    history.add_run(record)
                trace = [TracePoint(**point) for point in extra.get("trace", [])]
                for _ in range(len(records) // cfg.batch_runs):
                    rng.spawn(cfg.batch_runs)  # consume the resumed batches' spawns
                if trace and trace[-1].best_smae <= trace[-1].target:
                    target_met = True
            elif records:
                checkpoint.discard()  # batch-misaligned prefix: start clean

        while not target_met and len(history) < cfg.max_runs:
            for record in self.simulator.run_many(
                rng.spawn(cfg.batch_runs), jobs=jobs, start_index=len(history)
            ):
                history.add_run(record)
            result = framework.run(history, jobs=jobs)
            best = result.best_by_smae("all")
            target = self._resolve_target(history)
            trace.append(
                TracePoint(
                    n_runs=len(history),
                    n_windows=result.dataset.n_samples,
                    best_model=best.name,
                    best_smae=best.s_mae,
                    target=target,
                )
            )
            if checkpoint is not None:
                checkpoint.save(
                    list(history.runs),
                    extra={"trace": [asdict(point) for point in trace]},
                )
            if best.s_mae <= target:
                target_met = True

        if result is None:
            # Resumed at (or past) the stopping point: the restored trace
            # already ends the loop, so rebuild only the final model set.
            result = framework.run(history, jobs=jobs)
        if checkpoint is not None:
            checkpoint.discard()
        return IncrementalResult(
            history=history, final=result, trace=trace, target_met=target_met
        )
