"""Telemetry sanitize/repair layer (dirty production data -> clean pipeline input).

F2PM trains on *real* monitoring streams, and real streams are dirty:
NaN cells from a crashed exporter, gaps from a wedged monitor, duplicated
rows from an at-least-once transport, out-of-order delivery, NTP clock
resets, runs truncated before their fail event, unit-scale glitches from
a misconfigured collector. Before this layer, those all flowed silently
into training (``float("nan")`` parses!) and poisoned the models.

Every entry point takes a **policy**:

``strict``
    Raise :class:`DataQualityError` on the first category of defect
    found, with a per-cell located diagnostic for every offending value.
    On clean data, strict mode is a guaranteed no-op: the input objects
    flow through *unchanged* (bit-identical fingerprints).
``repair``
    Fix what can be fixed deterministically — interpolate non-finite
    cells, re-sort bounded reordering, de-duplicate, re-base clock
    resets, clamp a too-early fail time — and quarantine what cannot.
    Every decision lands in a :class:`QualityReport` and in the
    ``sanitize.*`` obs counters.
``quarantine``
    Drop offending rows (or, for run-level defects, whole runs) instead
    of repairing them.

The defect catalogue mirrors :mod:`repro.faults` one-to-one; the fault
harness exists to prove this layer converts any of its corruptions into
either a located diagnostic or a finite, ordered, fully-labelled
training set.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping

import numpy as np

from repro.core.datapoint import FEATURES
from repro.core.history import DataHistory, RunRecord
from repro.obs import get_logger, get_metrics, get_telemetry, kv

_log = get_logger("core.sanitize")

#: The three sanitize policies.
STRICT = "strict"
REPAIR = "repair"
QUARANTINE = "quarantine"
POLICIES: tuple[str, ...] = (STRICT, REPAIR, QUARANTINE)

#: Defect catalogue (kinds appearing in issues, reports and metrics).
KINDS: tuple[str, ...] = (
    "bad_timestamp",  # non-finite or negative tgen
    "clock_reset",  # tgen jumps backwards past the reset threshold
    "out_of_order",  # tgen not sorted (bounded reordering)
    "duplicate_row",  # an exact copy of an earlier datapoint
    "non_finite",  # NaN/inf in a feature or response-time cell
    "unit_scale",  # transient scale glitch (cell off by a large factor)
    "gap",  # sampling gap far beyond the run's median interval
    "truncated_run",  # fail event far beyond the last datapoint
    "fail_time",  # fail event before the last datapoint / non-finite
)


def as_policy(value: str) -> str:
    """Validate and normalize a policy name."""
    policy = str(value).strip().lower()
    if policy not in POLICIES:
        raise ValueError(f"unknown sanitize policy {value!r}; choose from {POLICIES}")
    return policy


@dataclass(frozen=True)
class SanitizeConfig:
    """Detection thresholds (defaults calibrated to never fire on clean
    simulator output, whose worst gap ratio is ~5x and worst fail-event
    gap is ~3x the median sampling interval).

    Attributes
    ----------
    clock_reset_fraction : a backwards tgen jump landing below this
        fraction of the running maximum is a clock reset (anything
        shallower is bounded reordering).
    min_reset_drop : a reset must also drop by at least this many median
        intervals, so adjacent-sample swaps never classify as resets.
    max_gap_factor : sampling gaps beyond ``factor x median interval``
        are flagged (``None`` disables gap detection).
    scale_glitch_factor : a cell exceeding both neighbours by this factor
        (or undercutting both by it) is a transient unit-scale glitch.
    scale_abs_floor : only cells whose magnitude (or whose neighbours'
        magnitude, for dips) exceeds this are glitch candidates — keeps
        noisy near-zero CPU percentages out of the detector.
    truncation_factor : a crashed run whose fail event trails the last
        datapoint by more than ``factor x median interval`` is flagged
        as truncated (``None`` disables).
    max_quarantine_fraction : in ``repair`` mode, a run losing more than
        this fraction of its rows is quarantined outright.
    """

    clock_reset_fraction: float = 0.5
    min_reset_drop: float = 4.0
    max_gap_factor: "float | None" = 50.0
    scale_glitch_factor: float = 64.0
    scale_abs_floor: float = 1024.0
    truncation_factor: "float | None" = 25.0
    max_quarantine_fraction: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 < self.clock_reset_fraction < 1.0:
            raise ValueError("clock_reset_fraction must be in (0, 1)")
        if self.scale_glitch_factor <= 1.0:
            raise ValueError("scale_glitch_factor must be > 1")
        if not 0.0 < self.max_quarantine_fraction <= 1.0:
            raise ValueError("max_quarantine_fraction must be in (0, 1]")


@dataclass(frozen=True)
class CellIssue:
    """One located data-quality decision."""

    kind: str  # one of KINDS
    action: str  # "repaired" | "quarantined_row" | "quarantined_run" | "noted" | "raised"
    run_index: int
    row: "int | None" = None  # input-order row index within the run
    column: "str | None" = None
    value: "float | None" = None
    detail: str = ""
    label: "str | None" = None  # e.g. a source file path
    row_base: int = 0  # offset mapping row -> human line number

    @property
    def location(self) -> str:
        where = f"run {self.run_index}"
        if self.label is not None:
            where = self.label
        if self.row is not None:
            sep = ":" if self.label is not None else ", row "
            where += f"{sep}{self.row + self.row_base}"
        if self.column is not None:
            where += f", column {self.column}"
        return where

    @property
    def message(self) -> str:
        return f"{self.location}: {self.detail} [{self.kind} -> {self.action}]"


class DataQualityError(ValueError):
    """Strict-mode rejection carrying every located diagnostic."""

    def __init__(self, issues: list[CellIssue]) -> None:
        self.issues = list(issues)
        shown = [i.message for i in self.issues[:8]]
        extra = len(self.issues) - len(shown)
        if extra > 0:
            shown.append(f"... and {extra} more")
        super().__init__(
            f"{len(self.issues)} data-quality issue(s):\n  " + "\n  ".join(shown)
        )


@dataclass
class RunQualityReport:
    """Sanitize outcome for one run."""

    run_index: int
    n_rows_in: int = 0
    n_rows_out: int = 0
    quarantined: bool = False
    issues: list[CellIssue] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.issues

    def count(self, kind: "str | None" = None, action: "str | None" = None) -> int:
        return sum(
            1
            for i in self.issues
            if (kind is None or i.kind == kind)
            and (action is None or i.action == action)
        )


@dataclass
class QualityReport:
    """Sanitize outcome for a whole history/campaign."""

    policy: str = REPAIR
    runs: list[RunQualityReport] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return all(r.clean for r in self.runs)

    @property
    def issues(self) -> list[CellIssue]:
        return [i for r in self.runs for i in r.issues]

    @property
    def n_runs_quarantined(self) -> int:
        return sum(1 for r in self.runs if r.quarantined)

    def count(self, kind: "str | None" = None, action: "str | None" = None) -> int:
        return sum(r.count(kind, action) for r in self.runs)

    def counts_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for issue in self.issues:
            out[issue.kind] = out.get(issue.kind, 0) + 1
        return out

    def add(self, run_report: RunQualityReport) -> None:
        self.runs.append(run_report)

    def to_dict(self) -> dict:
        """JSON-ready summary (the quality-report schema of ROBUSTNESS.md)."""
        return {
            "schema": "f2pm-quality-report-v1",
            "policy": self.policy,
            "clean": self.clean,
            "n_runs": len(self.runs),
            "n_runs_quarantined": self.n_runs_quarantined,
            "counts_by_kind": self.counts_by_kind(),
            "runs": [
                {
                    "run_index": r.run_index,
                    "rows_in": r.n_rows_in,
                    "rows_out": r.n_rows_out,
                    "quarantined": r.quarantined,
                    "issues": [
                        {
                            "kind": i.kind,
                            "action": i.action,
                            "row": i.row,
                            "column": i.column,
                            "value": None
                            if i.value is None or not np.isfinite(i.value)
                            else float(i.value),
                            "message": i.message,
                        }
                        for i in r.issues
                    ],
                }
                for r in self.runs
            ],
        }

    def summary(self) -> str:
        if self.clean:
            return f"quality: clean ({len(self.runs)} runs, policy={self.policy})"
        kinds = ", ".join(f"{k}={v}" for k, v in sorted(self.counts_by_kind().items()))
        return (
            f"quality: {len(self.issues)} issue(s) across {len(self.runs)} runs "
            f"(policy={self.policy}; {kinds}; "
            f"{self.n_runs_quarantined} run(s) quarantined)"
        )


# -- array-level sanitizer ---------------------------------------------------------


def _record(report: RunQualityReport, issue: CellIssue) -> None:
    report.issues.append(issue)
    metrics = get_metrics()
    metrics.inc(f"sanitize.issues_total.{issue.kind}")
    metrics.inc(f"sanitize.actions_total.{issue.action}")
    if issue.column is not None:
        # Per-cell (per-feature-column) repair accounting: the basis of
        # the repair-rate series the telemetry layer exposes. Bounded:
        # 15 feature columns x a handful of actions.
        metrics.inc(f"sanitize.cell_actions_total.{issue.action}.col{issue.column}")
    _log.debug("issue %s", kv(kind=issue.kind, action=issue.action, at=issue.location))


def sanitize_arrays(
    features: np.ndarray,
    response_times: "np.ndarray | None" = None,
    fail_time: "float | None" = None,
    *,
    crashed: bool = True,
    policy: str = REPAIR,
    config: "SanitizeConfig | None" = None,
    run_index: int = 0,
    label: "str | None" = None,
    row_base: int = 0,
) -> "tuple[np.ndarray, np.ndarray | None, float | None, bool, RunQualityReport]":
    """Sanitize one run's raw arrays.

    Returns ``(features, response_times, fail_time, crashed, report)``.
    A quarantined run comes back with ``report.quarantined`` set and zero
    output rows. ``fail_time=None`` means "resolve to the last datapoint
    later" and skips the fail-event checks. In ``strict`` mode the first
    defective category raises :class:`DataQualityError` listing every
    offending cell of that category; clean input is returned *unmodified*
    (the same array objects).
    """
    policy = as_policy(policy)
    cfg = config or SanitizeConfig()
    feats = np.asarray(features, dtype=np.float64)
    if feats.ndim != 2 or feats.shape[1] != len(FEATURES):
        raise ValueError(f"features must be (n, {len(FEATURES)}), got {feats.shape}")
    rts = (
        None
        if response_times is None
        else np.asarray(response_times, dtype=np.float64)
    )
    if rts is not None and rts.shape != (feats.shape[0],):
        raise ValueError("response_times must align with datapoints")
    report = RunQualityReport(run_index=run_index, n_rows_in=feats.shape[0])

    def issue(kind, action, row=None, column=None, value=None, detail=""):
        _record(
            report,
            CellIssue(
                kind=kind,
                action=action,
                run_index=run_index,
                row=row,
                column=column,
                value=value,
                detail=detail,
                label=label,
                row_base=row_base,
            ),
        )

    def fail_strict():
        if policy == STRICT and report.issues:
            raise DataQualityError(report.issues)

    def quarantine_run(kind, detail):
        issue(kind, "quarantined_run", detail=detail)
        report.quarantined = True
        report.n_rows_out = 0
        empty = np.empty((0, len(FEATURES)))
        return empty, (None if rts is None else np.empty(0)), fail_time, crashed, report

    dirty = False  # any mutation performed (clean fast path returns inputs as-is)
    rows = np.arange(feats.shape[0])  # original row index, for diagnostics

    # 1. timestamps must be finite and non-negative -------------------------------
    tgen = feats[:, 0]
    bad_t = ~np.isfinite(tgen) | (tgen < 0)
    if bad_t.any():
        for r in np.flatnonzero(bad_t):
            issue(
                "bad_timestamp",
                "raised" if policy == STRICT else "quarantined_row",
                row=int(rows[r]),
                column="tgen",
                value=float(tgen[r]),
                detail=f"unusable timestamp {tgen[r]!r}",
            )
        fail_strict()
        keep = ~bad_t
        feats, rows = feats[keep], rows[keep]
        rts = rts[keep] if rts is not None else None
        dirty = True
        tgen = feats[:, 0]

    if feats.shape[0] == 0:
        return quarantine_run("bad_timestamp", "no rows with usable timestamps")

    # Median sampling interval (robust, from positive diffs only) — the
    # yardstick for clock-reset, gap and truncation detection.
    diffs = np.diff(tgen)
    pos = diffs[diffs > 0]
    med_dt = float(np.median(pos)) if pos.size else 0.0

    # 2. clock resets -------------------------------------------------------------
    running_max = np.maximum.accumulate(tgen)
    drop = running_max - tgen
    reset_mask = (
        (tgen < cfg.clock_reset_fraction * running_max)
        & (drop > max(cfg.min_reset_drop * med_dt, 0.0))
        & (drop > 0)
    )
    if med_dt > 0 and reset_mask.any():
        first = int(np.flatnonzero(reset_mask)[0])
        if policy == STRICT:
            issue(
                "clock_reset",
                "raised",
                row=int(rows[first]),
                column="tgen",
                value=float(tgen[first]),
                detail=(
                    f"clock reset: tgen fell from {running_max[first]:.3f} "
                    f"to {tgen[first]:.3f}"
                ),
            )
            fail_strict()
        elif policy == REPAIR:
            # Re-base each reset tail so time keeps increasing: the reset
            # sample is placed one median interval after the pre-reset max.
            t = tgen.copy()
            n_resets = 0
            i = 1
            high = t[0]
            while i < t.shape[0]:
                if t[i] < cfg.clock_reset_fraction * high and (
                    high - t[i]
                ) > cfg.min_reset_drop * med_dt:
                    offset = high + med_dt - t[i]
                    issue(
                        "clock_reset",
                        "repaired",
                        row=int(rows[i]),
                        column="tgen",
                        value=float(t[i]),
                        detail=(
                            f"clock reset re-based by +{offset:.3f}s "
                            f"(was {t[i]:.3f} after {high:.3f})"
                        ),
                    )
                    t[i:] += offset
                    n_resets += 1
                high = max(high, t[i])
                i += 1
            feats = feats.copy()
            feats[:, 0] = t
            tgen = feats[:, 0]
            dirty = True
        else:  # quarantine: drop the tail from the first reset on
            for r in range(first, feats.shape[0]):
                if r == first:
                    issue(
                        "clock_reset",
                        "quarantined_row",
                        row=int(rows[r]),
                        column="tgen",
                        value=float(tgen[r]),
                        detail=f"clock reset at tgen {tgen[r]:.3f}; tail dropped",
                    )
            keep = np.arange(feats.shape[0]) < first
            feats, rows = feats[keep], rows[keep]
            rts = rts[keep] if rts is not None else None
            dirty = True
            tgen = feats[:, 0]

    # 3. bounded reordering -------------------------------------------------------
    if feats.shape[0] > 1:
        inversions = np.flatnonzero(np.diff(tgen) < 0)
        if inversions.size:
            for r in inversions:
                issue(
                    "out_of_order",
                    "raised" if policy == STRICT else "repaired",
                    row=int(rows[r + 1]),
                    column="tgen",
                    value=float(tgen[r + 1]),
                    detail=(
                        f"out of order: tgen {tgen[r + 1]:.3f} after "
                        f"{tgen[r]:.3f}"
                    ),
                )
            fail_strict()
            order = np.argsort(tgen, kind="stable")
            feats, rows = feats[order], rows[order]
            rts = rts[order] if rts is not None else None
            dirty = True
            tgen = feats[:, 0]

    # 4. duplicated rows ----------------------------------------------------------
    if feats.shape[0] > 1:
        same_t = np.concatenate([[False], np.diff(tgen) == 0])
        dup = same_t & np.concatenate(
            [[False], (feats[1:] == feats[:-1]).all(axis=1)]
        )
        if rts is not None:
            dup = dup & np.concatenate([[False], rts[1:] == rts[:-1]])
        if dup.any():
            for r in np.flatnonzero(dup):
                issue(
                    "duplicate_row",
                    "raised" if policy == STRICT else "quarantined_row",
                    row=int(rows[r]),
                    value=float(tgen[r]),
                    detail=f"exact duplicate of the previous datapoint (tgen {tgen[r]:.3f})",
                )
            fail_strict()
            keep = ~dup
            feats, rows = feats[keep], rows[keep]
            rts = rts[keep] if rts is not None else None
            dirty = True
            tgen = feats[:, 0]

    # 5. non-finite feature / response-time cells ---------------------------------
    nonfinite = ~np.isfinite(feats[:, 1:])
    rt_bad = (
        np.zeros(feats.shape[0], dtype=bool) if rts is None else ~np.isfinite(rts)
    )
    if nonfinite.any() or rt_bad.any():
        action = {STRICT: "raised", REPAIR: "repaired", QUARANTINE: "quarantined_row"}[
            policy
        ]
        for r, c in zip(*np.nonzero(nonfinite)):
            issue(
                "non_finite",
                action,
                row=int(rows[r]),
                column=FEATURES[c + 1],
                value=float(feats[r, c + 1]),
                detail=f"non-finite value {float(feats[r, c + 1])!r}",
            )
        for r in np.flatnonzero(rt_bad):
            issue(
                "non_finite",
                action,
                row=int(rows[r]),
                column="response_time",
                value=float(rts[r]),
                detail=f"non-finite response time {rts[r]!r}",
            )
        fail_strict()
        if policy == REPAIR:
            feats = feats.copy()
            columns = [(j, feats[:, j]) for j in range(1, feats.shape[1])]
            if rts is not None:
                rts = rts.copy()
                columns.append((-1, rts))
            for j, col in columns:
                bad = ~np.isfinite(col)
                if not bad.any():
                    continue
                good = ~bad
                if not good.any():
                    name = "response_time" if j == -1 else FEATURES[j]
                    return quarantine_run(
                        "non_finite", f"column {name} has no finite values to repair from"
                    )
                col[bad] = np.interp(tgen[bad], tgen[good], col[good])
            dirty = True
        else:  # quarantine rows
            keep = ~(nonfinite.any(axis=1) | rt_bad)
            feats, rows = feats[keep], rows[keep]
            rts = rts[keep] if rts is not None else None
            dirty = True
            tgen = feats[:, 0] if feats.shape[0] else tgen[:0]
            if feats.shape[0] == 0:
                return quarantine_run("non_finite", "every row had non-finite cells")

    # 6. transient unit-scale glitches -------------------------------------------
    if feats.shape[0] >= 3:
        spike_rows: list[tuple[int, int]] = []
        for j in range(1, feats.shape[1]):
            v = np.abs(feats[:, j])
            mid, prev, nxt = v[1:-1], v[:-2], v[2:]
            hi = np.maximum(prev, nxt)
            lo = np.minimum(prev, nxt)
            spikes = (mid > cfg.scale_abs_floor) & (
                mid > cfg.scale_glitch_factor * np.maximum(hi, 1e-12)
            )
            dips = (lo > cfg.scale_abs_floor) & (
                mid < lo / cfg.scale_glitch_factor
            )
            for r in np.flatnonzero(spikes | dips):
                spike_rows.append((int(r) + 1, j))
        if spike_rows:
            action = {
                STRICT: "raised",
                REPAIR: "repaired",
                QUARANTINE: "quarantined_row",
            }[policy]
            for r, j in spike_rows:
                issue(
                    "unit_scale",
                    action,
                    row=int(rows[r]),
                    column=FEATURES[j],
                    value=float(feats[r, j]),
                    detail=(
                        f"transient scale glitch: {feats[r, j]:.6g} between "
                        f"{feats[r - 1, j]:.6g} and {feats[r + 1, j]:.6g}"
                    ),
                )
            fail_strict()
            if policy == REPAIR:
                feats = feats.copy()
                for r, j in spike_rows:
                    feats[r, j] = 0.5 * (feats[r - 1, j] + feats[r + 1, j])
            else:
                bad_rows = {r for r, _ in spike_rows}
                keep = np.array(
                    [i not in bad_rows for i in range(feats.shape[0])], dtype=bool
                )
                feats, rows = feats[keep], rows[keep]
                rts = rts[keep] if rts is not None else None
            dirty = True
            tgen = feats[:, 0]

    # 6b. duplicates reconstructed by the repairs above ---------------------------
    # A duplicated row whose copy carried a NaN cell or a scale glitch is
    # *not* an exact duplicate when step 4 runs; interpolation (step 5)
    # or neighbour averaging (step 6) can rebuild the twin's values
    # exactly, so repair mode sweeps duplicates once more after repairing.
    if policy == REPAIR and dirty and feats.shape[0] > 1:
        dup = np.concatenate([[False], (feats[1:] == feats[:-1]).all(axis=1)])
        if rts is not None:
            dup &= np.concatenate([[False], rts[1:] == rts[:-1]])
        if dup.any():
            for r in np.flatnonzero(dup):
                issue(
                    "duplicate_row",
                    "quarantined_row",
                    row=int(rows[r]),
                    value=float(tgen[r]),
                    detail=(
                        "exact duplicate reconstructed by repair "
                        f"(tgen {tgen[r]:.3f})"
                    ),
                )
            keep = ~dup
            feats, rows = feats[keep], rows[keep]
            rts = rts[keep] if rts is not None else None
            tgen = feats[:, 0]

    # 7. sampling gaps (dropped samples) — detectable but not inventable ----------
    if cfg.max_gap_factor is not None and feats.shape[0] > 1 and med_dt > 0:
        gd = np.diff(feats[:, 0])
        for r in np.flatnonzero(gd > cfg.max_gap_factor * med_dt):
            issue(
                "gap",
                "raised" if policy == STRICT else "noted",
                row=int(rows[r + 1]),
                column="tgen",
                value=float(gd[r]),
                detail=(
                    f"sampling gap of {gd[r]:.3f}s "
                    f"(~{gd[r] / med_dt:.0f}x the median interval)"
                ),
            )
        fail_strict()

    # 8. fail-event checks --------------------------------------------------------
    if fail_time is not None and feats.shape[0]:
        last = float(feats[-1, 0])
        if not np.isfinite(fail_time):
            issue(
                "fail_time",
                "raised" if policy == STRICT else "repaired",
                value=float(fail_time),
                detail=f"non-finite fail time {fail_time!r}",
            )
            fail_strict()
            if policy == QUARANTINE:
                return quarantine_run("fail_time", "non-finite fail time")
            fail_time = last
            dirty = True
        elif fail_time < last:
            detail = (
                f"fail time {fail_time:.3f} precedes the last datapoint "
                f"{last:.3f} (would yield negative RTTF labels)"
            )
            if policy == STRICT:
                issue("fail_time", "raised", value=float(fail_time), detail=detail)
                fail_strict()
            elif policy == REPAIR:
                issue(
                    "fail_time",
                    "repaired",
                    value=float(fail_time),
                    detail=detail + "; clamped to the last datapoint",
                )
                fail_time = last
                dirty = True
            else:
                return quarantine_run("fail_time", detail)
        elif (
            crashed
            and cfg.truncation_factor is not None
            and med_dt > 0
            and fail_time - last > cfg.truncation_factor * med_dt
        ):
            detail = (
                f"fail event {fail_time - last:.3f}s after the last datapoint "
                f"(~{(fail_time - last) / med_dt:.0f}x the median interval): "
                "monitoring was truncated"
            )
            if policy == STRICT:
                issue("truncated_run", "raised", value=float(fail_time), detail=detail)
                fail_strict()
            elif policy == REPAIR:
                issue(
                    "truncated_run",
                    "repaired",
                    value=float(fail_time),
                    detail=detail + "; run excluded from RTTF labelling",
                )
                crashed = False
                dirty = True
            else:
                return quarantine_run("truncated_run", detail)

    # 9. did repair give up on too much of the run? -------------------------------
    if (
        policy == REPAIR
        and report.n_rows_in > 0
        and (report.n_rows_in - feats.shape[0]) / report.n_rows_in
        > cfg.max_quarantine_fraction
    ):
        return quarantine_run(
            "non_finite",
            f"repair lost {report.n_rows_in - feats.shape[0]} of "
            f"{report.n_rows_in} rows (beyond max_quarantine_fraction)",
        )

    report.n_rows_out = feats.shape[0]
    if not dirty:
        # Clean fast path: hand back the caller's own arrays so strict
        # mode on clean data is bit-identical by construction.
        return features, response_times, fail_time, crashed, report
    return feats, rts, fail_time, crashed, report


# -- run / history sanitizers ------------------------------------------------------


def sanitize_run(
    run,
    *,
    policy: str = REPAIR,
    config: "SanitizeConfig | None" = None,
    run_index: int = 0,
    label: "str | None" = None,
) -> "tuple[RunRecord | None, RunQualityReport]":
    """Sanitize one run-like object into a validated :class:`RunRecord`.

    Accepts a :class:`RunRecord` or any object with ``features``,
    ``fail_time``, ``response_times`` and ``metadata`` attributes (e.g.
    :class:`repro.faults.DirtyRun`, which can carry defects RunRecord's
    own validation rejects). Returns ``(None, report)`` when the run is
    quarantined. A clean :class:`RunRecord` input is returned unchanged
    (the same object).
    """
    metadata = dict(getattr(run, "metadata", {}) or {})
    crashed = float(metadata.get("crashed", 1.0)) != 0.0
    feats, rts, fail_time, crashed_out, report = sanitize_arrays(
        run.features,
        getattr(run, "response_times", None),
        float(run.fail_time),
        crashed=crashed,
        policy=policy,
        config=config,
        run_index=run_index,
        label=label,
    )
    if report.quarantined:
        return None, report
    if report.clean and isinstance(run, RunRecord):
        return run, report
    if crashed_out != crashed:
        metadata["crashed"] = 1.0 if crashed_out else 0.0
    out = RunRecord(
        features=feats,
        fail_time=float(fail_time),
        response_times=rts,
        metadata=metadata if metadata else getattr(run, "metadata", {}),
    )
    return out, report


def sanitize_history(
    runs: "DataHistory | Iterable",
    *,
    policy: str = REPAIR,
    config: "SanitizeConfig | None" = None,
    quality: "QualityReport | None" = None,
) -> "tuple[DataHistory, QualityReport]":
    """Sanitize every run of a history (or iterable of run-likes).

    Returns ``(history, report)``. With ``policy="strict"`` and clean
    input, the output history holds the *same* :class:`RunRecord`
    objects, so content fingerprints are unchanged. Quarantined runs are
    dropped (strict raises instead). Pass ``quality`` to accumulate into
    an existing report.
    """
    policy = as_policy(policy)
    report = quality if quality is not None else QualityReport(policy=policy)
    report.policy = policy
    out = DataHistory()
    n_in = 0
    for i, run in enumerate(runs):
        n_in += 1
        cleaned, run_report = sanitize_run(
            run, policy=policy, config=config, run_index=i
        )
        report.add(run_report)
        if cleaned is not None:
            out.add_run(cleaned)
    if n_in and not len(out):
        raise DataQualityError(
            [
                i
                for r in report.runs
                for i in r.issues
                if i.action == "quarantined_run"
            ]
            or report.issues
        )
    if not report.clean:
        _log.info(
            "sanitize %s",
            kv(
                policy=policy,
                runs_in=n_in,
                runs_out=len(out),
                issues=len(report.issues),
                **{f"n_{k}": v for k, v in report.counts_by_kind().items()},
            ),
        )
    get_metrics().inc("sanitize.histories_total")
    get_metrics().observe(
        "sanitize.issues_per_history", float(len(report.issues))
    )
    return out, report


# -- streaming sanitizer -----------------------------------------------------------


@dataclass
class StreamDecision:
    """What :meth:`StreamSanitizer.process` did with one datapoint."""

    row: "np.ndarray | None"  # sanitized row to feed downstream, or None
    dropped: bool = False
    reset: bool = False  # a clock reset was detected (and re-based)


class StreamSanitizer:
    """Guard in front of a live :class:`~repro.core.aggregation.OnlineAggregator`.

    Applies the repair policy to a datapoint *stream*: rows with
    non-finite cells are dropped (interpolation needs the future),
    clock resets are re-based onto the monotone stream clock, and
    bounded reordering is passed through for the aggregator's own
    repair mode to resolve. Used by the rejuvenation controller so a
    monitor glitch degrades the control loop instead of crashing it.
    """

    def __init__(self, config: "SanitizeConfig | None" = None) -> None:
        self.config = config or SanitizeConfig()
        self.dropped_total = 0
        self.resets_total = 0
        self._offset = 0.0
        self._max_tgen = 0.0
        self._last_intervals: list[float] = []

    def reset(self) -> None:
        """Forget stream state (after a restart/rejuvenation)."""
        self._offset = 0.0
        self._max_tgen = 0.0
        self._last_intervals.clear()

    def _median_interval(self) -> float:
        return float(np.median(self._last_intervals)) if self._last_intervals else 0.0

    def process(self, datapoint_row: np.ndarray) -> StreamDecision:
        row = np.asarray(datapoint_row, dtype=np.float64)
        metrics = get_metrics()
        if row.shape != (len(FEATURES),) or not np.isfinite(row).all() or row[0] < 0:
            self.dropped_total += 1
            metrics.inc("sanitize.stream_dropped_total")
            # Live cumulative-drop series, timestamped on the monotone
            # stream clock (the row's own clock may be the corruption).
            get_telemetry().emit(
                "sanitize.stream_dropped", self._max_tgen, float(self.dropped_total)
            )
            return StreamDecision(row=None, dropped=True)
        tgen = float(row[0]) + self._offset
        med = self._median_interval()
        reset = False
        if (
            med > 0
            and tgen < self.config.clock_reset_fraction * self._max_tgen
            and self._max_tgen - tgen > self.config.min_reset_drop * med
        ):
            # Clock reset: re-base so the downstream clock stays monotone.
            self._offset += self._max_tgen + med - tgen
            tgen = float(row[0]) + self._offset
            self.resets_total += 1
            reset = True
            metrics.inc("sanitize.stream_resets_total")
            get_telemetry().emit(
                "sanitize.stream_resets", tgen, float(self.resets_total)
            )
        if tgen > self._max_tgen:
            if self._max_tgen > 0:
                self._last_intervals.append(tgen - self._max_tgen)
                if len(self._last_intervals) > 32:
                    del self._last_intervals[0]
            self._max_tgen = tgen
        if self._offset != 0.0:
            row = row.copy()
            row[0] = tgen
        return StreamDecision(row=row, reset=reset)
