"""Fitted-model persistence.

The monitoring/training phase and the prediction phase of F2PM run at
different times (often on different machines — the FMS trains, the
monitored host predicts). ``save_model``/``load_model`` persist any
fitted estimator from this package, wrapped in an envelope that records
the package version and the feature schema the model expects, so a
mismatched deployment fails loudly instead of predicting garbage.

Pickle is the serialization (models are plain Python/numpy objects);
the usual caveat applies — only load files you trust.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro._version import __version__
from repro.ml.base import Regressor

#: Envelope format version (bump on incompatible layout changes).
FORMAT_VERSION = 1


@dataclass(frozen=True)
class ModelEnvelope:
    """A fitted model plus the metadata needed to use it safely."""

    model: Regressor
    feature_names: "tuple[str, ...] | None"
    package_version: str
    format_version: int
    metadata: dict

    def check_features(self, feature_names: Sequence[str]) -> None:
        """Raise if the deployment's schema differs from training's."""
        if self.feature_names is None:
            return
        given = tuple(feature_names)
        if given != self.feature_names:
            raise ValueError(
                "feature schema mismatch: model was trained on "
                f"{self.feature_names}, deployment provides {given}"
            )

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Convenience passthrough to the wrapped model."""
        return self.model.predict(X)


def save_model(
    model: Regressor,
    path: "str | Path",
    *,
    feature_names: "Sequence[str] | None" = None,
    metadata: "dict | None" = None,
) -> Path:
    """Persist a fitted *model* to *path*; returns the written path."""
    envelope = ModelEnvelope(
        model=model,
        feature_names=tuple(feature_names) if feature_names is not None else None,
        package_version=__version__,
        format_version=FORMAT_VERSION,
        metadata=dict(metadata or {}),
    )
    path = Path(path)
    with path.open("wb") as fh:
        pickle.dump(envelope, fh, protocol=pickle.HIGHEST_PROTOCOL)
    return path


def load_model(path: "str | Path") -> ModelEnvelope:
    """Load a model envelope written by :func:`save_model`."""
    path = Path(path)
    with path.open("rb") as fh:
        envelope = pickle.load(fh)
    if not isinstance(envelope, ModelEnvelope):
        raise ValueError(f"{path} does not contain an F2PM model envelope")
    if envelope.format_version > FORMAT_VERSION:
        raise ValueError(
            f"{path} uses envelope format {envelope.format_version}; this "
            f"package supports up to {FORMAT_VERSION}"
        )
    return envelope
