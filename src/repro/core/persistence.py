"""Fitted-model persistence.

The monitoring/training phase and the prediction phase of F2PM run at
different times (often on different machines — the FMS trains, the
monitored host predicts). ``save_model``/``load_model`` persist any
fitted estimator from this package, wrapped in an envelope that records
the package version and the feature schema the model expects, so a
mismatched deployment fails loudly instead of predicting garbage.

Pickle is the serialization (models are plain Python/numpy objects);
the usual caveat applies — only load files you trust.

On disk, an envelope is a small framed container::

    F2PMENV1 | sha256(payload) | payload (pickle)

written atomically (temp file + ``os.replace``), so a crash mid-save
never publishes a torn file and :func:`load_model` verifies the
checksum before unpickling — a truncated or bit-rotted envelope fails
loudly instead of deserializing garbage. Headerless files from older
package versions still load (a plain pickle fallback).
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro._version import __version__
from repro.ml.base import Regressor
from repro.store.atomic import atomic_writer

#: Envelope format version (bump on incompatible layout changes).
FORMAT_VERSION = 1

#: Container frame magic; the trailing digit versions the frame itself.
MAGIC = b"F2PMENV1"

_DIGEST_LEN = hashlib.sha256().digest_size


@dataclass(frozen=True)
class ModelEnvelope:
    """A fitted model plus the metadata needed to use it safely."""

    model: Regressor
    feature_names: "tuple[str, ...] | None"
    package_version: str
    format_version: int
    metadata: dict
    #: Optional compiled serving artifact
    #: (:class:`repro.ml.serving.CompiledPredictor`) persisted alongside
    #: the exact model. ``None`` on envelopes saved without one — and on
    #: every pre-serving envelope, which :func:`load_model` normalizes.
    #: When the artifact wraps this same ``model`` object, pickle's
    #: reference sharing stores the exact model only once.
    compiled: "object | None" = None

    def check_features(self, feature_names: Sequence[str]) -> None:
        """Raise if the deployment's schema differs from training's."""
        if self.feature_names is None:
            return
        given = tuple(feature_names)
        if given != self.feature_names:
            raise ValueError(
                "feature schema mismatch: model was trained on "
                f"{self.feature_names}, deployment provides {given}"
            )

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Convenience passthrough to the wrapped (exact) model."""
        return self.model.predict(X)

    @property
    def serving_model(self):
        """The model to serve predictions with: compiled when present."""
        return self.compiled if self.compiled is not None else self.model


def save_model(
    model: Regressor,
    path: "str | Path",
    *,
    feature_names: "Sequence[str] | None" = None,
    metadata: "dict | None" = None,
    compiled: "object | None" = None,
) -> Path:
    """Persist a fitted *model* to *path*; returns the written path.

    ``compiled``, if given, is a
    :class:`repro.ml.serving.CompiledPredictor` stored alongside the
    exact model so deployments can serve the fast form without
    recompiling (``envelope.serving_model``).
    """
    envelope = ModelEnvelope(
        model=model,
        feature_names=tuple(feature_names) if feature_names is not None else None,
        package_version=__version__,
        format_version=FORMAT_VERSION,
        metadata=dict(metadata or {}),
        compiled=compiled,
    )
    path = Path(path)
    payload = pickle.dumps(envelope, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).digest()
    with atomic_writer(path) as tmp:
        tmp.write_bytes(MAGIC + digest + payload)
    return path


def load_model(path: "str | Path") -> ModelEnvelope:
    """Load (and checksum-verify) an envelope written by :func:`save_model`."""
    path = Path(path)
    blob = path.read_bytes()
    if blob.startswith(MAGIC):
        digest = blob[len(MAGIC) : len(MAGIC) + _DIGEST_LEN]
        payload = blob[len(MAGIC) + _DIGEST_LEN :]
        if hashlib.sha256(payload).digest() != digest:
            raise ValueError(
                f"{path} is corrupt: checksum mismatch (truncated or damaged "
                "model envelope)"
            )
    else:
        payload = blob  # pre-frame envelope from an older package version
    try:
        envelope = pickle.loads(payload)
    except Exception as exc:
        raise ValueError(
            f"{path} does not contain an F2PM model envelope: {exc}"
        ) from exc
    if not isinstance(envelope, ModelEnvelope):
        raise ValueError(f"{path} does not contain an F2PM model envelope")
    if envelope.format_version > FORMAT_VERSION:
        raise ValueError(
            f"{path} uses envelope format {envelope.format_version}; this "
            f"package supports up to {FORMAT_VERSION}"
        )
    if "compiled" not in envelope.__dict__:
        # Envelope pickled before the compiled-serving field existed;
        # normalize so every loaded envelope has the full schema.
        object.__setattr__(envelope, "compiled", None)
    return envelope
