"""Markdown report generation from an F2PM execution.

F2PM's contract with the user is a set of metrics for choosing a model
(paper Sec. III-D). ``render_markdown_report`` turns an
:class:`~repro.core.framework.F2PMResult` into a self-contained Markdown
document: campaign summary, feature selection, the three paper-style
tables, the winner, and the error profile vs distance-to-failure — the
artifact you would attach to a capacity-planning ticket.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.framework import F2PMResult


def _md_table(headers: list[str], rows: list[list[str]]) -> str:
    out = ["| " + " | ".join(headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        out.append("| " + " | ".join(row) + " |")
    return "\n".join(out)


def _two_column_rows(result: F2PMResult, metric: str, fmt: str) -> list[list[str]]:
    names: list[str] = []
    for r in result.reports:
        if r.feature_set == "all" and r.name not in names:
            names.append(r.name)
    rows = []
    for name in names:
        cells = [name]
        for feature_set in ("all", "selected"):
            try:
                value = getattr(result.report(name, feature_set), metric)
                cells.append(format(value, fmt))
            except KeyError:
                cells.append("-")
        rows.append(cells)
    return rows


def render_markdown_report(result: F2PMResult, *, title: str = "F2PM report") -> str:
    """Render *result* as a Markdown document (returned as a string)."""
    ds = result.dataset
    lines: list[str] = [f"# {title}", ""]

    # -- campaign summary ------------------------------------------------------
    n_runs = int(np.unique(ds.run_ids).size)
    lines += [
        "## Campaign",
        "",
        f"- runs: {n_runs}",
        f"- aggregated datapoints: {ds.n_samples} x {ds.n_features} features",
        f"- aggregation window: {result.config.aggregation.window_seconds:.0f}s",
        f"- RTTF range: {ds.y.min():.0f}s .. {ds.y.max():.0f}s",
        f"- S-MAE tolerance: {result.smae_threshold:.0f}s",
        "",
    ]

    # -- feature selection --------------------------------------------------------
    lines += [
        "## Feature selection (Lasso regularization)",
        "",
        f"Operating point: lambda = {result.selection.lam:.0e}, "
        f"{result.selection.n_selected} of {ds.n_features} features survive.",
        "",
        _md_table(
            ["parameter", "weight"],
            [[name, f"{w:+.9f}"] for name, w in result.selection.weight_table()],
        ),
        "",
    ]

    # -- the three paper tables -----------------------------------------------------
    for heading, metric, fmt in (
        ("S-MAE (seconds)", "s_mae", ".3f"),
        ("Training time (seconds)", "train_time", ".3f"),
        ("Validation time (seconds)", "validation_time", ".4f"),
    ):
        lines += [
            f"## {heading}",
            "",
            _md_table(
                ["algorithm", "all parameters", "selected by Lasso"],
                _two_column_rows(result, metric, fmt),
            ),
            "",
        ]

    # -- winner -----------------------------------------------------------------------
    best = result.best_by_smae("all")
    lines += [
        "## Recommendation",
        "",
        f"Best model: **{best.name}** — S-MAE {best.s_mae:.1f}s, "
        f"MAE {best.mae:.1f}s, RAE {best.rae:.3f}, trained in "
        f"{best.train_time:.3f}s.",
        "",
    ]

    # -- error vs distance from failure ----------------------------------------------
    y = result.y_validation
    pred = result.predictions[(best.name, "all")]
    edges = np.quantile(y, [1 / 3, 2 / 3])
    near = float(np.abs(pred - y)[y <= edges[0]].mean())
    mid = float(
        np.abs(pred - y)[(y > edges[0]) & (y <= edges[1])].mean()
    )
    far = float(np.abs(pred - y)[y > edges[1]].mean())
    lines += [
        "## Error profile of the recommended model",
        "",
        _md_table(
            ["true RTTF tercile", "MAE (s)"],
            [
                [f"near failure (<= {edges[0]:.0f}s)", f"{near:.1f}"],
                [f"mid ({edges[0]:.0f}..{edges[1]:.0f}s)", f"{mid:.1f}"],
                [f"far (> {edges[1]:.0f}s)", f"{far:.1f}"],
            ],
        ),
        "",
        "Error shrinks toward the failure point, where proactive actions "
        "are scheduled.",
        "",
    ]
    return "\n".join(lines)


def write_markdown_report(
    result: F2PMResult, path: "str | Path", *, title: str = "F2PM report"
) -> Path:
    """Render and write the report; returns the written path."""
    path = Path(path)
    path.write_text(render_markdown_report(result, title=title))
    return path
