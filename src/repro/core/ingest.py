"""Ingesting real monitoring traces (CSV) into F2PM.

The simulator substitutes for the paper's testbed, but the framework is
meant to run on *real* data: anything that periodically dumps the 15
system features (collectd, sadc, a cron'd ``free``/``vmstat`` wrapper,
the FMC itself). This module maps delimited text traces onto the
canonical schema:

- :class:`CSVTraceSpec` — how your columns are named, which column is
  the timestamp, optional response-time ground truth, unit scaling;
- :func:`read_run_csv` — one run (one restart cycle) per file;
- :func:`read_campaign_csv` — a directory of run files -> DataHistory;
- :func:`write_run_csv` — the inverse, for exporting simulated runs to
  other tools.

Parsing is dependency-free (``csv`` module); values must be numeric
after scaling.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

import numpy as np

from repro.core.datapoint import FEATURES
from repro.core.history import DataHistory, RunRecord


@dataclass(frozen=True)
class CSVTraceSpec:
    """Mapping from a CSV layout to the canonical feature schema.

    Attributes
    ----------
    columns : mapping of canonical feature name -> CSV header name.
        Must cover all 15 features (``tgen`` included).
    response_time_column : optional CSV header with client RT ground
        truth (enables the Fig. 3 correlation on real data).
    scale : optional per-feature multipliers applied after parsing
        (e.g. ``{"mem_used": 1024.0}`` when the trace is in MB but the
        schema expects KB).
    delimiter : CSV delimiter.
    """

    columns: Mapping[str, str]
    response_time_column: "str | None" = None
    scale: Mapping[str, float] = field(default_factory=dict)
    delimiter: str = ","

    def __post_init__(self) -> None:
        missing = [name for name in FEATURES if name not in self.columns]
        if missing:
            raise ValueError(f"column mapping missing features: {missing}")
        unknown = [name for name in self.scale if name not in FEATURES]
        if unknown:
            raise ValueError(f"scale refers to unknown features: {unknown}")

    @classmethod
    def identity(cls, **kwargs) -> "CSVTraceSpec":
        """Spec for traces already using the canonical column names."""
        return cls(columns={name: name for name in FEATURES}, **kwargs)


def read_run_csv(
    path: "str | Path",
    spec: CSVTraceSpec,
    *,
    fail_time: "float | None" = None,
    crashed: bool = True,
    policy: str = "repair",
    sanitize_config=None,
    quality=None,
    run_index: int = 0,
) -> "RunRecord | None":
    """Parse one run's trace file into a :class:`RunRecord`.

    ``fail_time`` defaults to the last datapoint's timestamp (the fail
    event coincides with monitoring stopping); pass the logged fail-event
    time when you have one. ``crashed=False`` marks truncated runs that
    aggregation should skip for RTTF labelling.

    Real traces are dirty, so every parsed run is routed through the
    :mod:`repro.core.sanitize` layer under *policy*:

    - ``"strict"`` raises :class:`~repro.core.sanitize.DataQualityError`
      with ``file:line``-located diagnostics for every defect —
      ``nan``/``inf`` strings (which ``float()`` happily parses), unsorted
      rows (instead of silently re-sorting them), duplicate rows, clock
      resets, and an explicit ``fail_time`` earlier than the trace's last
      datapoints (which would otherwise poison training with negative
      RTTF labels).
    - ``"repair"`` (default) fixes what is deterministic — interpolates
      non-finite cells, re-sorts, de-duplicates, clamps a too-early fail
      time — recording every decision in the optional ``quality``
      accumulator (a :class:`~repro.core.sanitize.QualityReport`).
    - ``"quarantine"`` drops offending rows; a run that is defective at
      the run level returns ``None``.

    Values that are not numbers at all (``"oops"``) are rejected at parse
    time regardless of policy.
    """
    from repro.core.sanitize import QualityReport, as_policy, sanitize_arrays

    policy = as_policy(policy)
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh, delimiter=spec.delimiter)
        if reader.fieldnames is None:
            raise ValueError(f"{path}: empty file")
        header = set(reader.fieldnames)
        missing = [c for c in spec.columns.values() if c not in header]
        if missing:
            raise ValueError(f"{path}: missing columns {missing}")
        if (
            spec.response_time_column is not None
            and spec.response_time_column not in header
        ):
            raise ValueError(
                f"{path}: missing response-time column "
                f"{spec.response_time_column!r}"
            )
        rows: list[list[float]] = []
        rts: list[float] = []
        for lineno, record in enumerate(reader, start=2):
            try:
                row = [
                    float(record[spec.columns[name]])
                    * float(spec.scale.get(name, 1.0))
                    for name in FEATURES
                ]
            except (TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{lineno}: non-numeric value ({exc})")
            rows.append(row)
            if spec.response_time_column is not None:
                try:
                    rts.append(float(record[spec.response_time_column]))
                except (TypeError, ValueError) as exc:
                    raise ValueError(
                        f"{path}:{lineno}: non-numeric response time ({exc})"
                    )
    if not rows:
        raise ValueError(f"{path}: no datapoints")
    features = np.asarray(rows, dtype=np.float64)
    response_times = (
        np.asarray(rts, dtype=np.float64)
        if spec.response_time_column is not None
        else None
    )
    features, response_times, fail_out, crashed_out, report = sanitize_arrays(
        features,
        response_times,
        None if fail_time is None else float(fail_time),
        crashed=crashed,
        policy=policy,
        config=sanitize_config,
        run_index=run_index,
        label=str(path),
        row_base=2,  # CSV line numbers: header is line 1
    )
    if quality is not None:
        if not isinstance(quality, QualityReport):
            raise TypeError("quality must be a repro.core.sanitize.QualityReport")
        quality.add(report)
    if report.quarantined:
        return None
    resolved_fail = float(features[-1, 0]) if fail_out is None else float(fail_out)
    return RunRecord(
        features=features,
        fail_time=resolved_fail,
        response_times=response_times,
        metadata={"crashed": 1.0 if crashed_out else 0.0, "source": 0.0},
    )


def read_campaign_csv(
    directory: "str | Path",
    spec: CSVTraceSpec,
    *,
    pattern: str = "*.csv",
    policy: str = "repair",
    sanitize_config=None,
    quality=None,
) -> DataHistory:
    """Read every run file in *directory* (sorted by name) into a history.

    Each file goes through :func:`read_run_csv` under *policy*; runs
    quarantined by the sanitize layer are skipped (their verdicts land in
    the optional ``quality`` report). Raises if every run is quarantined.
    """
    directory = Path(directory)
    files = sorted(directory.glob(pattern))
    if not files:
        raise ValueError(f"no files matching {pattern!r} in {directory}")
    history = DataHistory()
    for i, file in enumerate(files):
        run = read_run_csv(
            file,
            spec,
            policy=policy,
            sanitize_config=sanitize_config,
            quality=quality,
            run_index=i,
        )
        if run is not None:
            history.add_run(run)
    if not len(history):
        raise ValueError(
            f"every run in {directory} was quarantined by the sanitize layer"
        )
    return history


def write_run_csv(
    run: RunRecord, path: "str | Path", *, include_response_time: bool = True
) -> Path:
    """Export a run in the canonical CSV layout (inverse of identity spec)."""
    path = Path(path)
    headers = list(FEATURES)
    with_rt = include_response_time and run.response_times is not None
    if with_rt:
        headers.append("response_time")
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for i in range(run.n_datapoints):
            # %.17g round-trips float64 exactly (repr of numpy scalars
            # would render as 'np.float64(...)' under numpy >= 2)
            row = [format(float(v), ".17g") for v in run.features[i]]
            if with_rt:
                row.append(format(float(run.response_times[i]), ".17g"))
            writer.writerow(row)
    return path
