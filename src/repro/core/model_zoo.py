"""Registry of the six F2PM prediction methods (paper Sec. III-D).

``make_model(name)`` returns a ready-to-fit estimator with
paper-faithful defaults:

==========  ==========================================================
name        estimator
==========  ==========================================================
linear      :class:`~repro.ml.linear.LinearRegression`
m5p         :class:`~repro.ml.tree.m5p.M5PRegressor`
reptree     :class:`~repro.ml.tree.reptree.REPTreeRegressor`
lasso       :class:`~repro.ml.lasso.Lasso` as a predictor
            (parameterized: ``make_model("lasso", lam=1e3)``)
svm         epsilon-:class:`~repro.ml.svr.SVR` (WEKA's SMOreg analogue)
svm2        :class:`~repro.ml.lssvm.LSSVMRegressor` (the paper's
            "Least-Square SVM", labelled SVM2 in its tables)
==========  ==========================================================

The SVM-family and Lasso learners are wrapped in
:class:`~repro.ml.pipeline.ScaledModel` (internal standardization, as
WEKA's SMOreg does); trees and OLS consume raw features. The set is
user-customizable (paper: "the set can be customized by the user by
adding other methods or removing some of them") via :func:`register`.
"""

from __future__ import annotations

from typing import Callable

from repro.ml.base import Regressor
from repro.ml.lasso import Lasso
from repro.ml.linear import LinearRegression
from repro.ml.lssvm import LSSVMRegressor
from repro.ml.pipeline import ScaledModel
from repro.ml.svr import SVR
from repro.ml.tree import M5PRegressor, REPTreeRegressor

#: The six methods of the paper, in its table order.
PAPER_MODELS: tuple[str, ...] = ("linear", "m5p", "reptree", "svm", "svm2", "lasso")

_REGISTRY: dict[str, Callable[..., Regressor]] = {}


def register(name: str, factory: Callable[..., Regressor]) -> None:
    """Add (or replace) a model constructor under *name*."""
    if not name:
        raise ValueError("model name must be non-empty")
    _REGISTRY[name] = factory


def available_models() -> tuple[str, ...]:
    """Registered model names."""
    return tuple(sorted(_REGISTRY))


def make_model(name: str, **overrides) -> Regressor:
    """Instantiate a registered model; ``overrides`` go to the factory."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; available: {available_models()}"
        ) from None
    return factory(**overrides)


# -- default factories ---------------------------------------------------------


def _linear(**kw) -> Regressor:
    return LinearRegression(**kw)


def _m5p(**kw) -> Regressor:
    return M5PRegressor(**kw)


def _reptree(**kw) -> Regressor:
    kw.setdefault("seed", 1)
    return REPTreeRegressor(**kw)


def _lasso(lam: float = 1.0, **kw) -> Regressor:
    # As a predictor the Lasso runs on standardized features: on raw
    # KB-scale features a single lambda cannot be meaningful across
    # columns of wildly different scales (the regularization-path
    # *selector* works on raw scales, as in the paper, but its lambda has
    # a different meaning there).
    kw.setdefault("max_iter", 2000)
    return ScaledModel(Lasso(lam=lam, **kw))


def _svm(**kw) -> Regressor:
    # WEKA SMOreg defaults: C = 1 with a degree-1 polynomial (i.e. linear)
    # kernel — which is why the paper's SVM errors sit next to its Linear
    # Regression errors in Table II.
    kw.setdefault("C", 1.0)
    kw.setdefault("epsilon", 0.05)
    kw.setdefault("kernel", "linear")
    # A linear-kernel SVR has a rank-p Gram matrix, on which SMO is known
    # to converge slowly (the paper's Table III: 417s in WEKA); cap the
    # iterations — prediction quality plateaus long before the cap.
    kw.setdefault("tol", 1e-2)
    kw.setdefault("max_iter", 200_000)
    return ScaledModel(SVR(**kw))


def _svm2(**kw) -> Regressor:
    kw.setdefault("gam", 10.0)
    kw.setdefault("kernel", "linear")
    return ScaledModel(LSSVMRegressor(**kw))


def _bagging(**kw) -> Regressor:
    # The extension-point demo (paper: "the set can be customized by the
    # user"): bagged unpruned REP-Trees.
    from repro.ml.ensemble import BaggingRegressor

    kw.setdefault("n_estimators", 10)
    return BaggingRegressor(**kw)


register("linear", _linear)
register("bagging", _bagging)
register("m5p", _m5p)
register("reptree", _reptree)
register("lasso", _lasso)
register("svm", _svm)
register("svm2", _svm2)
