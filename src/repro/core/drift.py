"""Model-staleness detection for deployed RTTF models.

A trained F2PM model ages: the application gets patched, the anomaly mix
shifts, the VM is resized. The paper's answer is to collect more runs
and retrain — but *noticing* that the model went stale is left to the
user. Two detectors close that gap:

:class:`TrajectoryConsistencyMonitor`
    Label-free, online. Within a run, the true RTTF falls at exactly
    -1 s/s by construction; a healthy model's *predicted* RTTF
    trajectory must track that slope. The monitor regresses the recent
    predictions against time and flags drift when the slope strays from
    -1 beyond a tolerance — catching a stale model *before* the failure,
    with no ground truth needed.

:class:`ResidualDriftDetector`
    Post-hoc, labelled. After a run completes (its fail event is known),
    every window's true RTTF becomes available; the detector compares
    the realized error against the validation S-MAE the model shipped
    with and flags staleness when errors inflate beyond a factor.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DriftStatus:
    """Outcome of a trajectory-consistency check."""

    slope: float
    score: float  # |slope + 1|
    drifting: bool
    n_points: int


class TrajectoryConsistencyMonitor:
    """Online slope check on the predicted-RTTF trajectory.

    Parameters
    ----------
    window : number of recent (time, prediction) points regressed.
    tolerance : maximum |slope + 1| considered healthy. The paper's
        Fig. 5 shows predictions compress far from failure (slope closer
        to 0 there), so tolerances below ~0.5 are only meaningful near
        the failure region — which is where the check matters.
    min_points : checks report ``drifting=False`` until this many points.
    """

    def __init__(
        self, window: int = 10, tolerance: float = 0.5, min_points: int = 4
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if tolerance <= 0:
            raise ValueError(f"tolerance must be positive, got {tolerance}")
        if not 2 <= min_points <= window:
            raise ValueError("need 2 <= min_points <= window")
        self.window = window
        self.tolerance = tolerance
        self.min_points = min_points
        #: count of observations ignored for being non-finite (a wedged
        #: model emitting NaN must not poison the slope regression).
        self.skipped = 0
        self._times: deque[float] = deque(maxlen=window)
        self._preds: deque[float] = deque(maxlen=window)

    def reset(self) -> None:
        """Forget the trajectory (call after a restart)."""
        self._times.clear()
        self._preds.clear()
        self.skipped = 0

    def _status(self) -> DriftStatus:
        n = len(self._times)
        if n < self.min_points:
            return DriftStatus(
                slope=float("nan"), score=float("nan"), drifting=False, n_points=n
            )
        t = np.asarray(self._times)
        p = np.asarray(self._preds)
        tc = t - t.mean()
        denom = float(tc @ tc)
        slope = float(tc @ (p - p.mean()) / denom) if denom > 0 else 0.0
        score = abs(slope + 1.0)
        return DriftStatus(
            slope=slope, score=score, drifting=score > self.tolerance, n_points=n
        )

    def add(self, now: float, predicted_rttf: float) -> DriftStatus:
        """Ingest one prediction; returns the current status.

        Non-finite observations (a NaN prediction from a wedged model, a
        NaN timestamp from a corrupted monitor) are counted in
        :attr:`skipped` and ignored — one bad sample must not blind the
        detector for an entire ``window``.
        """
        now = float(now)
        predicted_rttf = float(predicted_rttf)
        if not (np.isfinite(now) and np.isfinite(predicted_rttf)):
            self.skipped += 1
            return self._status()
        if self._times and now <= self._times[-1]:
            raise ValueError("observations must arrive in increasing time order")
        self._times.append(now)
        self._preds.append(predicted_rttf)
        return self._status()


class ResidualDriftDetector:
    """Post-hoc staleness check against the shipped validation S-MAE.

    Parameters
    ----------
    baseline_smae : the S-MAE the model achieved at training time.
    smae_threshold : the tolerance T the S-MAE was computed with.
    inflation_factor : realized S-MAE beyond ``factor * baseline`` on a
        completed run flags the model as stale.
    """

    def __init__(
        self,
        baseline_smae: float,
        smae_threshold: float,
        inflation_factor: float = 2.0,
    ) -> None:
        if baseline_smae < 0:
            raise ValueError(f"baseline_smae must be >= 0, got {baseline_smae}")
        if smae_threshold < 0:
            raise ValueError(f"smae_threshold must be >= 0, got {smae_threshold}")
        if inflation_factor <= 1.0:
            raise ValueError(
                f"inflation_factor must be > 1, got {inflation_factor}"
            )
        self.baseline_smae = baseline_smae
        self.smae_threshold = smae_threshold
        self.inflation_factor = inflation_factor

    def evaluate_run(
        self, predicted_rttf: np.ndarray, true_rttf: np.ndarray
    ) -> tuple[float, bool]:
        """Realized S-MAE on a completed run and the staleness verdict.

        Returns ``(realized_smae, is_stale)``. Non-finite pairs (holes a
        dirty trace left in either series) are excluded; a run with no
        finite pair at all returns ``(nan, False)`` — no verdict.
        """
        from repro.ml.metrics import soft_mean_absolute_error

        pred = np.asarray(predicted_rttf, dtype=np.float64)
        true = np.asarray(true_rttf, dtype=np.float64)
        finite = np.isfinite(pred) & np.isfinite(true)
        if not finite.any():
            return float("nan"), False
        realized = soft_mean_absolute_error(
            true[finite], pred[finite], self.smae_threshold
        )
        floor = max(self.baseline_smae, 1e-9)
        return realized, realized > self.inflation_factor * floor
