"""Model validation: the paper's per-model metric set (Sec. III-D).

For each generated model F2PM reports MAE (Eq. 5), RAE (Eq. 6), the
maximum absolute error, S-MAE (errors below a tolerance T count as zero),
the training time and the validation time — "useful information for
comparing the different models produced by F2PM".

Training/validation times are real wall-clock measurements of this
repository's implementations (the only metrics here that are not
deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataset import TrainingSet
from repro.ml.base import Regressor
from repro.ml.metrics import (
    max_absolute_error,
    mean_absolute_error,
    relative_absolute_error,
    soft_mean_absolute_error,
)
from repro.obs import get_logger, get_metrics, kv, span
from repro.utils.timing import Timer

_log = get_logger("core.evaluation")


@dataclass(frozen=True)
class ModelReport:
    """Validation outcome of one model on one training-set variant."""

    name: str
    feature_set: str  # "all" or "selected"
    n_features: int
    mae: float
    rae: float
    max_ae: float
    s_mae: float
    s_mae_threshold: float
    train_time: float
    validation_time: float

    def row(self) -> list[object]:
        """Row for the comparison table."""
        return [
            self.name,
            self.feature_set,
            self.n_features,
            self.mae,
            self.rae,
            self.max_ae,
            self.s_mae,
            self.train_time,
            self.validation_time,
        ]

    HEADERS = (
        "model",
        "features",
        "d",
        "MAE (s)",
        "RAE",
        "MaxAE (s)",
        "S-MAE (s)",
        "train (s)",
        "validate (s)",
    )


def resolve_smae_threshold(
    threshold: "float | None", threshold_frac: "float | None", history_mean_run: float
) -> float:
    """Resolve the S-MAE tolerance in seconds.

    Either an absolute ``threshold`` or ``threshold_frac`` (the paper's
    "10% threshold": a fraction of the mean run length, i.e. of the
    proactive-rejuvenation horizon) must be given.
    """
    if threshold is not None:
        if threshold < 0:
            raise ValueError(f"threshold must be non-negative, got {threshold}")
        return float(threshold)
    if threshold_frac is None:
        raise ValueError("provide threshold or threshold_frac")
    if not 0.0 <= threshold_frac < 1.0:
        raise ValueError(f"threshold_frac must be in [0,1), got {threshold_frac}")
    return float(threshold_frac * history_mean_run)


def evaluate_model(
    name: str,
    model: Regressor,
    train: TrainingSet,
    validation: TrainingSet,
    *,
    smae_threshold: float,
    feature_set: str = "all",
) -> tuple[ModelReport, Regressor, np.ndarray]:
    """Fit *model* on *train*, validate on *validation*.

    Returns ``(report, fitted_model, validation_predictions)`` — the
    predictions feed the Fig. 5 predicted-vs-real plots.
    """
    if train.feature_names != validation.feature_names:
        raise ValueError("train/validation feature sets differ")
    metrics = get_metrics()
    with span("evaluate", model=name, feature_set=feature_set) as sp:
        with span("train"), Timer() as t_train:
            model.fit(train.X, train.y)
        with span("validate"), Timer() as t_val:
            pred = model.predict(validation.X)
            mae = mean_absolute_error(validation.y, pred)
            rae = relative_absolute_error(validation.y, pred)
            max_ae = max_absolute_error(validation.y, pred)
            s_mae = soft_mean_absolute_error(validation.y, pred, smae_threshold)
        sp.set(
            n_train=train.n_samples,
            n_validation=validation.n_samples,
            n_features=train.n_features,
            s_mae=float(s_mae),
        )
    metrics.observe(f"model.fit_seconds.{name}", t_train.elapsed)
    metrics.observe(f"model.predict_seconds.{name}", t_val.elapsed)
    _log.info(
        "model evaluated %s",
        kv(
            model=name,
            feature_set=feature_set,
            mae=float(mae),
            s_mae=float(s_mae),
            train_s=t_train.elapsed,
            validate_s=t_val.elapsed,
        ),
    )
    report = ModelReport(
        name=name,
        feature_set=feature_set,
        n_features=train.n_features,
        mae=mae,
        rae=rae,
        max_ae=max_ae,
        s_mae=s_mae,
        s_mae_threshold=smae_threshold,
        train_time=t_train.elapsed,
        validation_time=t_val.elapsed,
    )
    return report, model, pred
