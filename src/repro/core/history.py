"""Data history: the output of the initial monitoring phase.

A :class:`DataHistory` is a sequence of :class:`RunRecord` — one per
system run between restarts. Each run carries the raw datapoint matrix,
the fail-event time, and optional ground-truth response-time samples
(the paper instruments the emulated browsers *only* to validate the
inter-generation-time correlation of Fig. 3; the models themselves never
see RT).

Histories serialize to ``.npz`` so an expensive monitoring campaign can
be collected once and re-used across experiments — mirroring the paper's
incremental data-collection support ("further system runs can be executed
to collect new data into the training set").
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

from repro.core.datapoint import FEATURES
from repro.store.atomic import atomic_writer


@dataclass
class RunRecord:
    """One run of the monitored system, from (re)start to fail event.

    Attributes
    ----------
    features : (n, 15) float array
        Raw datapoints in :data:`~repro.core.datapoint.FEATURES` order,
        sorted by ``tgen``.
    fail_time : float
        Elapsed seconds from run start to the fail event.
    response_times : (n,) float array or None
        Mean client response time at each datapoint instant (ground truth
        for the Fig. 3 correlation; optional).
    metadata : mapping
        Free-form provenance (anomaly rates, seeds, crash reason, ...).
    """

    features: np.ndarray
    fail_time: float
    response_times: np.ndarray | None = None
    metadata: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.features = np.asarray(self.features, dtype=np.float64)
        if self.features.ndim != 2 or self.features.shape[1] != len(FEATURES):
            raise ValueError(
                f"features must be (n, {len(FEATURES)}), got {self.features.shape}"
            )
        if self.features.shape[0] == 0:
            raise ValueError("run has no datapoints")
        tgen = self.features[:, 0]
        # NaN timestamps make every comparison below vacuously pass, so
        # they must be rejected first (a NaN-laden trace otherwise slips
        # through and poisons window binning and RTTF labels downstream).
        if not np.isfinite(tgen).all():
            bad = int(np.flatnonzero(~np.isfinite(tgen))[0])
            raise ValueError(
                f"timestamps must be finite; row {bad} has tgen {tgen[bad]!r} "
                "(route dirty traces through repro.core.sanitize)"
            )
        if (np.diff(tgen) < 0).any():
            raise ValueError("datapoints must be sorted by tgen")
        self.fail_time = float(self.fail_time)
        if not np.isfinite(self.fail_time):
            raise ValueError(f"fail_time must be finite, got {self.fail_time!r}")
        if self.fail_time < tgen[-1]:
            raise ValueError(
                f"fail_time {self.fail_time} precedes last datapoint {tgen[-1]}: "
                "RTTF labels would go negative (fix the fail event or use "
                "repro.core.sanitize repair mode)"
            )
        if self.response_times is not None:
            self.response_times = np.asarray(self.response_times, dtype=np.float64)
            if self.response_times.shape != (self.features.shape[0],):
                raise ValueError(
                    "response_times must align with datapoints: "
                    f"{self.response_times.shape} vs {self.features.shape[0]}"
                )

    @property
    def n_datapoints(self) -> int:
        return self.features.shape[0]

    @property
    def duration(self) -> float:
        """Run length in seconds (equals the fail-event time)."""
        return self.fail_time

    def column(self, name: str) -> np.ndarray:
        """Raw values of one named feature across the run."""
        try:
            idx = FEATURES.index(name)
        except ValueError:
            raise KeyError(f"unknown feature {name!r}") from None
        return self.features[:, idx]


@dataclass
class DataHistory:
    """All runs collected during a monitoring campaign."""

    runs: list[RunRecord] = field(default_factory=list)

    def add_run(self, run: RunRecord) -> None:
        self.runs.append(run)

    def __len__(self) -> int:
        return len(self.runs)

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self.runs)

    def __getitem__(self, i: int) -> RunRecord:
        return self.runs[i]

    @property
    def n_datapoints(self) -> int:
        return sum(run.n_datapoints for run in self.runs)

    @property
    def mean_run_length(self) -> float:
        """Mean time-to-failure across runs (seconds).

        Used to resolve fractional S-MAE thresholds (the paper's "10%
        threshold") into seconds.
        """
        if not self.runs:
            raise ValueError("history is empty")
        return float(np.mean([run.fail_time for run in self.runs]))

    def extend(self, other: "DataHistory") -> None:
        """Merge another campaign in (incremental data collection)."""
        self.runs.extend(other.runs)

    # -- content identity ------------------------------------------------------

    def content_fingerprint(self) -> str:
        """sha256 over the history's *content* (runs, in order).

        Two histories with identical runs fingerprint identically no
        matter where the objects live — unlike ``id()``, a fingerprint
        can never alias a garbage-collected history's address to a
        different campaign. Used as the F2PM memoization key and as the
        artifact-store identity of a saved campaign.
        """
        digest = hashlib.sha256(b"f2pm-history-v1")
        digest.update(struct.pack("<q", len(self.runs)))
        for run in self.runs:
            features = np.ascontiguousarray(run.features, dtype=np.float64)
            digest.update(struct.pack("<qq", *features.shape))
            digest.update(features.tobytes())
            digest.update(struct.pack("<d", float(run.fail_time)))
            if run.response_times is None:
                digest.update(b"rt:none")
            else:
                rt = np.ascontiguousarray(run.response_times, dtype=np.float64)
                digest.update(b"rt:")
                digest.update(rt.tobytes())
            for key in sorted(run.metadata):
                digest.update(key.encode())
                digest.update(struct.pack("<d", float(run.metadata[key])))
        return digest.hexdigest()

    # -- serialization --------------------------------------------------------

    def save(self, path: "str | Path") -> None:
        """Write the history to a ``.npz`` archive.

        The write is atomic (temp file + ``os.replace``): a crash mid-save
        leaves either the previous complete file or none — never a
        truncated archive that :meth:`load` would choke on.
        """
        payload: dict[str, np.ndarray] = {"n_runs": np.array(len(self.runs))}
        for i, run in enumerate(self.runs):
            payload[f"run{i}_features"] = run.features
            payload[f"run{i}_fail_time"] = np.array(run.fail_time)
            if run.response_times is not None:
                payload[f"run{i}_rt"] = run.response_times
            if run.metadata:
                keys = sorted(run.metadata)
                payload[f"run{i}_meta_keys"] = np.array(keys)
                payload[f"run{i}_meta_vals"] = np.array(
                    [float(run.metadata[k]) for k in keys]
                )
        with atomic_writer(path) as tmp:
            # Write through a file object so numpy cannot re-suffix the
            # temporary name and break the atomic replace.
            with tmp.open("wb") as fh:
                np.savez_compressed(fh, **payload)

    @classmethod
    def load(cls, path: "str | Path") -> "DataHistory":
        """Read a history previously written by :meth:`save`."""
        with np.load(path, allow_pickle=False) as data:
            n_runs = int(data["n_runs"])
            runs = []
            for i in range(n_runs):
                rt = data[f"run{i}_rt"] if f"run{i}_rt" in data else None
                meta: dict[str, float] = {}
                if f"run{i}_meta_keys" in data:
                    meta = {
                        str(k): float(v)
                        for k, v in zip(
                            data[f"run{i}_meta_keys"], data[f"run{i}_meta_vals"]
                        )
                    }
                runs.append(
                    RunRecord(
                        features=data[f"run{i}_features"],
                        fail_time=float(data[f"run{i}_fail_time"]),
                        response_times=rt,
                        metadata=meta,
                    )
                )
        return cls(runs=runs)
