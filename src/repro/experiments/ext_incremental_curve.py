"""Extension experiment — how much monitoring data does F2PM need?

Paper Sec. III-A: the initial monitoring phase must collect "a given
amount of data, which would be sufficient to build ML models with a
given accuracy", collected incrementally until the model metrics say
enough. This driver runs the :class:`~repro.core.incremental.IncrementalCollector`
loop and reports the learning curve: best-model S-MAE as the campaign
grows, with the iteration at which a target accuracy is first met.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import AggregationConfig, F2PMConfig
from repro.core.incremental import (
    IncrementalCollector,
    IncrementalConfig,
    IncrementalResult,
)
from repro.experiments.common import DEFAULT_CAMPAIGN, EXPERIMENT_WINDOW
from repro.system import TestbedSimulator
from repro.utils.tables import render_table


@dataclass
class IncrementalCurveResult:
    result: IncrementalResult

    def table(self) -> str:
        rows = [
            [p.n_runs, p.n_windows, p.best_model, p.best_smae, p.target]
            for p in self.result.trace
        ]
        return render_table(
            ("runs", "windows", "best model", "best S-MAE (s)", "target (s)"),
            rows,
            title="Learning curve: accuracy vs campaign size",
            float_fmt=".1f",
        )

    @property
    def smae_improves(self) -> bool:
        """Accuracy at the end is no worse than after the first batch."""
        trace = self.result.trace
        return trace[-1].best_smae <= trace[0].best_smae * 1.05


def run(
    campaign=None,
    verbose: bool = True,
    *,
    batch_runs: int = 4,
    max_runs: int = 20,
    target_smae_frac: float = 0.03,
    seed: int = 11,
    jobs: int = 1,
) -> IncrementalCurveResult:
    """Run the incremental loop on a fresh campaign configuration.

    Unlike the table/figure drivers this one owns its simulation (the
    loop *is* the collection process), so it takes a campaign config
    rather than a history.
    """
    if campaign is None:
        campaign = DEFAULT_CAMPAIGN
    collector = IncrementalCollector(
        TestbedSimulator(campaign),
        F2PMConfig(
            aggregation=AggregationConfig(window_seconds=EXPERIMENT_WINDOW),
            models=("m5p", "reptree"),
            lasso_predictor_lambdas=(),
            seed=0,
        ),
        IncrementalConfig(
            batch_runs=batch_runs,
            max_runs=max_runs,
            target_smae=None,
            target_smae_frac=target_smae_frac,
            seed=seed,
        ),
    )
    result = IncrementalCurveResult(result=collector.collect(jobs=jobs))
    if verbose:
        print(result.table())
        inner = result.result
        if inner.target_met:
            print(
                f"\ntarget met after {inner.n_runs} runs "
                f"({inner.trace[-1].best_smae:.1f}s <= "
                f"{inner.trace[-1].target:.1f}s)"
            )
        else:
            print(
                f"\ntarget not met within {inner.n_runs} runs; "
                f"best {inner.trace[-1].best_smae:.1f}s vs target "
                f"{inner.trace[-1].target:.1f}s"
            )
    return result


if __name__ == "__main__":
    run()
