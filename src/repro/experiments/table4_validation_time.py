"""Table IV — model validation time.

Time to predict the validation set and compute the error metrics. Paper
shape: all methods validate in fractions of a second, and validation on
Lasso-selected features is uniformly cheaper than on all parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import DataHistory, F2PMResult
from repro.experiments.common import default_history, run_f2pm_cached


@dataclass
class Table4Result:
    result: F2PMResult

    def validation_time(self, name: str, feature_set: str = "all") -> float:
        return self.result.report(name, feature_set).validation_time

    @property
    def all_sub_second(self) -> bool:
        """Paper shape: validation is fast (sub-second) for every model."""
        return all(r.validation_time < 1.0 for r in self.result.reports)

    def table(self) -> str:
        return self.result.validation_time_table()

    def manifest(self) -> dict:
        """Provenance manifest for the Table IV artefact."""
        from repro.experiments.common import driver_manifest

        return driver_manifest("table4_validation_time", self.result)


def run(history: DataHistory | None = None, verbose: bool = True) -> Table4Result:
    if history is None:
        history = default_history()
    result = Table4Result(result=run_f2pm_cached(history))
    if verbose:
        print(result.table())
    return result


if __name__ == "__main__":
    run()
