"""Extension experiment — workload mix sensitivity.

The paper evaluates under TPC-W's standard (shopping) mix only. Since
the anomaly rate is coupled to the Home-interaction rate, the three
standard mixes stress the system differently: the browsing mix hits Home
almost twice as often as the shopping mix (29% vs 16% of interactions),
while the ordering mix barely does (9%). This driver collects a campaign
per mix and compares time-to-failure and model accuracy — a portability
check for the F2PM workflow across workload compositions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.campaign import CampaignManager, CampaignSpec
from repro.experiments.common import DEFAULT_CAMPAIGN, EXPERIMENT_WINDOW, get_store
from repro.system.tpcw import MIXES
from repro.utils.tables import render_table


@dataclass(frozen=True)
class MixOutcome:
    mix: str
    home_fraction: float
    mean_ttf: float
    best_model: str
    best_smae: float
    smae_threshold: float


@dataclass
class MixComparisonResult:
    outcomes: dict[str, MixOutcome]

    def table(self) -> str:
        rows = [
            [
                o.mix,
                o.home_fraction,
                o.mean_ttf,
                o.best_model,
                o.best_smae,
                o.smae_threshold,
            ]
            for o in self.outcomes.values()
        ]
        return render_table(
            (
                "mix",
                "home fraction",
                "mean TTF (s)",
                "best model",
                "S-MAE (s)",
                "threshold (s)",
            ),
            rows,
            title="F2PM across TPC-W workload mixes",
            float_fmt=".2f",
        )

    @property
    def home_rate_orders_ttf(self) -> bool:
        """More Home hits -> faster anomaly accumulation -> earlier crash."""
        browsing = self.outcomes["browsing"].mean_ttf
        ordering = self.outcomes["ordering"].mean_ttf
        return browsing < ordering


def mix_spec(campaign=None, n_runs: int = 8) -> CampaignSpec:
    """The mix-sensitivity sweep as a declarative spec: one ``mix`` axis
    over the three standard TPC-W mixes, simulate + evaluate staged."""
    if campaign is None:
        campaign = DEFAULT_CAMPAIGN
    return CampaignSpec(
        name="ext-mix-comparison",
        base=replace(campaign, n_runs=n_runs),
        axes={"mix": tuple(MIXES)},
        stages=("simulate", "evaluate"),
        window_seconds=EXPERIMENT_WINDOW,
        models=("m5p", "reptree"),
        train_seed=0,
    )


def run(
    campaign=None,
    verbose: bool = True,
    n_runs: int = 8,
    jobs: int = 1,
    use_cache: bool = False,
) -> MixComparisonResult:
    spec = mix_spec(campaign, n_runs=n_runs)
    manager = CampaignManager(spec, get_store() if use_cache else None)
    campaign_result = manager.run(jobs=jobs)
    outcomes: dict[str, MixOutcome] = {}
    for outcome in campaign_result.outcomes:
        name = dict(outcome.cell.params)["mix"]
        history = outcome.results["simulate"]
        report = outcome.results["evaluate"]
        outcomes[name] = MixOutcome(
            mix=name,
            home_fraction=MIXES[name].home_fraction,
            mean_ttf=history.mean_run_length,
            best_model=report["best"]["model"],
            best_smae=report["best"]["s_mae"],
            smae_threshold=report["smae_threshold"],
        )
    result = MixComparisonResult(outcomes=outcomes)
    if verbose:
        print(result.table())
        print(
            "\nhigher Home rate -> earlier failure: "
            f"{result.home_rate_orders_ttf}"
        )
    return result


if __name__ == "__main__":
    run()
