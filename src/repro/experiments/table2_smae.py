"""Table II — Soft Mean Absolute Error (10% threshold).

One S-MAE per (algorithm, feature set). Paper shape: REP-Tree and M5P are
the best methods by a wide margin over the linear family (Linear
Regression, SVM, LS-SVM cluster together — WEKA's SMOreg defaults to a
linear kernel); Lasso-as-a-predictor is worst and nearly flat across
lambda; selecting features trades some accuracy for training time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import DataHistory, F2PMResult
from repro.experiments.common import default_history, run_f2pm_cached


@dataclass
class Table2Result:
    result: F2PMResult

    def smae(self, name: str, feature_set: str = "all") -> float:
        return self.result.report(name, feature_set).s_mae

    @property
    def tree_models_best(self) -> bool:
        """Paper claim: the tree learners beat every other method.

        Compares against whatever non-tree models the F2PM configuration
        actually ran (so reduced test configurations still work).
        """
        trees = min(self.smae("reptree"), self.smae("m5p"))
        others = [
            r.s_mae
            for r in self.result.reports
            if r.feature_set == "all" and r.name not in ("reptree", "m5p")
        ]
        return trees < min(others)

    def table(self) -> str:
        return self.result.smae_table()

    def manifest(self) -> dict:
        """Provenance manifest for the Table II artefact."""
        from repro.experiments.common import driver_manifest

        return driver_manifest(
            "table2_smae",
            self.result,
            extra={"tree_models_best": self.tree_models_best},
        )


def run(history: DataHistory | None = None, verbose: bool = True) -> Table2Result:
    if history is None:
        history = default_history()
    result = Table2Result(result=run_f2pm_cached(history))
    if verbose:
        print(result.table())
        best = result.result.best_by_smae("all")
        print(f"best model (all parameters): {best.name} at {best.s_mae:.1f}s")
    return result


if __name__ == "__main__":
    run()
