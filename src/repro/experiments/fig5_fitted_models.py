"""Fig. 5 — predicted vs real RTTF per method (all parameters).

The paper plots, for each of the six methods, the model prediction (y)
against the true RTTF (x) on the validation set, with the diagonal as
ground truth. Shape to reproduce: predictions hug the diagonal near the
failure point (small RTTF) and under-predict far from it — because the
accumulating anomalies depress throughput, which slows further anomaly
accumulation and delays the actual failure beyond what early-run
dynamics suggest. Lasso-as-a-predictor stays far from the diagonal
everywhere.

Since the harness is text-based, the driver quantifies the plot: per
model, the MAE *binned by true RTTF* (near / mid / far thirds of the
horizon) plus the mean signed error far from failure (negative =
under-prediction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import DataHistory, F2PMResult
from repro.experiments.common import default_history, run_f2pm_cached
from repro.utils.tables import render_table

#: Models plotted in the paper's Fig. 5 panels (a)-(f).
FIG5_MODELS = ("lasso(1e9)", "linear", "m5p", "reptree", "svm", "svm2")


@dataclass
class ModelBins:
    """Binned error profile of one model's predicted-vs-real curve."""

    name: str
    mae_near: float  # true RTTF in the bottom third of the horizon
    mae_mid: float
    mae_far: float
    bias_far: float  # mean (pred - true) in the far bin

    @property
    def error_grows_with_rttf(self) -> bool:
        """Paper shape: error smallest while approaching the failure."""
        return self.mae_near <= self.mae_far


@dataclass
class Fig5Result:
    result: F2PMResult
    bins: dict[str, ModelBins]

    def table(self) -> str:
        rows = [
            [b.name, b.mae_near, b.mae_mid, b.mae_far, b.bias_far]
            for b in self.bins.values()
        ]
        return render_table(
            (
                "model",
                "MAE near failure (s)",
                "MAE mid (s)",
                "MAE far (s)",
                "bias far (s)",
            ),
            rows,
            title="Fig. 5 — prediction error vs distance from failure",
        )

    def manifest(self) -> dict:
        """Provenance manifest for the Fig. 5 artefact."""
        from repro.experiments.common import driver_manifest

        return driver_manifest(
            "fig5_fitted_models",
            self.result,
            extra={
                "bins": {
                    name: {
                        "mae_near": b.mae_near,
                        "mae_mid": b.mae_mid,
                        "mae_far": b.mae_far,
                        "bias_far": b.bias_far,
                    }
                    for name, b in self.bins.items()
                }
            },
        )


def _bin_errors(name: str, y_true: np.ndarray, y_pred: np.ndarray) -> ModelBins:
    edges = np.quantile(y_true, [1.0 / 3.0, 2.0 / 3.0])
    near = y_true <= edges[0]
    mid = (y_true > edges[0]) & (y_true <= edges[1])
    far = y_true > edges[1]
    err = y_pred - y_true
    return ModelBins(
        name=name,
        mae_near=float(np.abs(err[near]).mean()),
        mae_mid=float(np.abs(err[mid]).mean()),
        mae_far=float(np.abs(err[far]).mean()),
        bias_far=float(err[far].mean()),
    )


def run(history: DataHistory | None = None, verbose: bool = True) -> Fig5Result:
    if history is None:
        history = default_history()
    f2pm = run_f2pm_cached(history)
    y_true = f2pm.y_validation
    bins: dict[str, ModelBins] = {}
    for name in FIG5_MODELS:
        pred = f2pm.predictions.get((name, "all"))
        if pred is None:
            continue
        bins[name] = _bin_errors(name, y_true, pred)
    result = Fig5Result(result=f2pm, bins=bins)
    if verbose:
        print(result.table())
    return result


if __name__ == "__main__":
    run()
