"""Shared campaign data and F2PM execution for the experiment drivers.

The paper collected one week of monitoring data and derived every table
and figure from it. Analogously, all drivers here share a single default
campaign: 20 simulated runs of the TPC-W testbed under the shopping mix
with request-coupled anomalies. The campaign is cached as ``.npz`` under
``~/.cache/f2pm-repro`` (override with ``F2PM_CACHE_DIR``), keyed by the
campaign parameters, so the first experiment pays the simulation cost and
the rest load it in milliseconds.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

from repro.core import (
    AggregationConfig,
    DataHistory,
    F2PM,
    F2PMConfig,
    F2PMResult,
)
from repro.obs import build_manifest, get_logger, get_metrics, kv, write_manifest
from repro.system import CampaignConfig, TestbedSimulator

_log = get_logger("experiments.common")

#: The campaign every experiment shares (the "one-week trace").
DEFAULT_CAMPAIGN = CampaignConfig(n_runs=20, seed=7)

#: Aggregation window used by the experiments (seconds).
EXPERIMENT_WINDOW = 30.0


def cache_dir() -> Path:
    """Resolve (and create) the on-disk cache directory."""
    root = os.environ.get("F2PM_CACHE_DIR")
    path = Path(root) if root else Path.home() / ".cache" / "f2pm-repro"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _campaign_key(config: CampaignConfig) -> str:
    """Deterministic cache key from the campaign parameters."""
    digest = hashlib.sha256(repr(config).encode()).hexdigest()[:16]
    return f"history_{digest}"


_HISTORY_MEMO: dict[str, DataHistory] = {}


def default_history(
    config: CampaignConfig | None = None, *, use_cache: bool = True, jobs: int = 1
) -> DataHistory:
    """The shared monitoring campaign (simulate once, then load).

    With ``use_cache`` the result is memoized both in-process and on disk,
    so every driver in one process sees the *same object* (which also lets
    :func:`run_f2pm_cached` share one F2PM execution across tables).
    ``jobs`` parallelizes a cache-miss simulation; the campaign is
    deterministic for any worker count, so the cache key needs no
    ``jobs`` component.
    """
    config = config or DEFAULT_CAMPAIGN
    key = _campaign_key(config)
    if use_cache and key in _HISTORY_MEMO:
        return _HISTORY_MEMO[key]
    path = cache_dir() / f"{key}.npz"
    if use_cache and path.exists():
        history = DataHistory.load(path)
        _HISTORY_MEMO[key] = history
        return history
    history = TestbedSimulator(config).run_campaign(jobs=jobs)
    if use_cache:
        history.save(path)
        _HISTORY_MEMO[key] = history
    return history


def default_f2pm_config() -> F2PMConfig:
    """The F2PM configuration behind Tables II-IV and Fig. 5."""
    return F2PMConfig(
        aggregation=AggregationConfig(window_seconds=EXPERIMENT_WINDOW),
        smae_threshold_frac=0.10,
        validation_fraction=0.3,
        seed=0,
    )


_F2PM_MEMO: dict[int, F2PMResult] = {}


def run_f2pm_cached(history: DataHistory | None = None, jobs: int = 1) -> F2PMResult:
    """Run F2PM once per process per history object (Tables II-IV and
    Fig. 5 all read the same execution, as in the paper).

    ``jobs`` parallelizes the model grid on a memo miss; error metrics
    are worker-count-invariant, so the memo stays valid either way.
    """
    if history is None:
        history = default_history(jobs=jobs)
    key = id(history)
    if key not in _F2PM_MEMO:
        _F2PM_MEMO[key] = F2PM(default_f2pm_config()).run(history, jobs=jobs)
    return _F2PM_MEMO[key]


# -- manifests ---------------------------------------------------------------------


def driver_manifest(
    driver: str,
    f2pm_result: "F2PMResult | None" = None,
    *,
    extra: "dict | None" = None,
) -> dict:
    """Manifest for one experiment driver run.

    Wraps :func:`repro.obs.build_manifest` with the experiment naming
    convention: the F2PM execution behind the artefact (config, seed,
    trace, per-model reports) when the driver has one, the current
    metrics snapshot, and any driver-specific payload in *extra*.
    """
    kwargs: dict = {"metrics": get_metrics().snapshot(), "extra": extra}
    if f2pm_result is not None:
        kwargs["config"] = f2pm_result.config
        kwargs["seeds"] = {"f2pm": f2pm_result.config.seed}
        kwargs["trace"] = f2pm_result.trace
        kwargs["reports"] = [
            {
                "name": r.name,
                "feature_set": r.feature_set,
                "s_mae": r.s_mae,
                "mae": r.mae,
                "train_time": r.train_time,
                "validation_time": r.validation_time,
            }
            for r in f2pm_result.reports
        ]
    return build_manifest(f"experiment.{driver}", **kwargs)


def write_driver_manifest(
    driver: str, manifest: dict, directory: "Path | str | None" = None
) -> Path:
    """Persist a driver manifest next to the campaign outputs.

    Defaults to the experiment cache directory (where the shared
    campaign ``.npz`` lives), so every artefact's provenance sits beside
    the data it was derived from.
    """
    target = Path(directory) if directory is not None else cache_dir()
    path = write_manifest(manifest, target / f"{driver}.manifest.json")
    _log.info("manifest written %s", kv(driver=driver, path=str(path)))
    return path
