"""Shared campaign data and F2PM execution for the experiment drivers.

The paper collected one week of monitoring data and derived every table
and figure from it. Analogously, all drivers here share a single default
campaign: 20 simulated runs of the TPC-W testbed under the shopping mix
with request-coupled anomalies. The campaign persists through the
content-addressed artifact store (:mod:`repro.store`) under
``~/.cache/f2pm-repro`` (override with ``F2PM_CACHE_DIR``), keyed by a
canonical fingerprint of the campaign parameters — so the first
experiment pays the simulation cost (checkpointing every few runs in
case it is killed) and the rest load the verified artifact in
milliseconds. Concurrent cold-cache drivers cooperate on a file lock:
one simulates, the others wait and load.

``F2PM_DEFAULT_RUNS`` shrinks the shared campaign (CI uses a small one
to exercise the cache cheaply); the cache key follows the config, so
differently-sized campaigns never alias.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core import (
    AggregationConfig,
    DataHistory,
    F2PM,
    F2PMConfig,
    F2PMResult,
)
from repro.obs import build_manifest, get_logger, get_metrics, kv, write_manifest
from repro.store import ArtifactStore, fingerprint
from repro.system import CampaignConfig

_log = get_logger("experiments.common")

#: The campaign every experiment shares (the "one-week trace").
DEFAULT_CAMPAIGN = CampaignConfig(
    n_runs=int(os.environ.get("F2PM_DEFAULT_RUNS", "20") or "20"), seed=7
)

#: Aggregation window used by the experiments (seconds).
EXPERIMENT_WINDOW = 30.0

#: Cold-cache campaigns checkpoint their completed prefix this often.
CHECKPOINT_EVERY = 5


def cache_dir() -> Path:
    """Resolve (and create) the on-disk cache directory."""
    path = ArtifactStore().root  # honors F2PM_CACHE_DIR
    return path


def get_store() -> ArtifactStore:
    """The experiment artifact store (re-resolved per call, so tests can
    repoint ``F2PM_CACHE_DIR`` freely)."""
    return ArtifactStore()


def _campaign_fingerprint(config: CampaignConfig) -> str:
    """Full canonical fingerprint of the campaign parameters.

    Derived from the explicitly enumerated, canonically encoded config
    fields (:mod:`repro.store.keys`) — never from ``repr()``, so float
    repr changes and dataclass field additions alter the key only when
    they alter the *content* of the config.
    """
    return fingerprint("campaign", config)


def _campaign_key(config: CampaignConfig) -> str:
    """Deterministic artifact name for a campaign's history."""
    return f"history_{_campaign_fingerprint(config)[:16]}"


def paper_spec(stages: tuple[str, ...] = ("simulate",)) -> "CampaignSpec":
    """The shared experiment campaign as a declarative spec.

    One cell — the default campaign ("the one-week trace") — whose
    simulate-stage artifact is the very ``history_<fp16>.npz`` entry
    :func:`default_history` has always cached, so specs and the legacy
    helpers interchangeably hit the same store entries.
    """
    from repro.campaign import CampaignSpec

    return CampaignSpec(
        name="paper-default",
        base=DEFAULT_CAMPAIGN,
        stages=stages,
        window_seconds=EXPERIMENT_WINDOW,
    )


_HISTORY_MEMO: dict[str, DataHistory] = {}


def default_history(
    config: CampaignConfig | None = None, *, use_cache: bool = True, jobs: int = 1
) -> DataHistory:
    """The shared monitoring campaign (simulate once, then load).

    With ``use_cache`` the result is memoized both in-process and in the
    artifact store, so every driver in one process sees the *same
    object* (which also lets :func:`run_f2pm_cached` share one F2PM
    execution across tables). ``jobs`` parallelizes a cache-miss
    simulation; the campaign is deterministic for any worker count, so
    the cache key needs no ``jobs`` component.

    The store interaction (naming, fingerprints, checkpointed cold
    production, lock cooperation) lives in
    :func:`repro.campaign.stages.simulate_cell` — this helper is a thin
    memoizing wrapper over the campaign simulate stage.
    """
    from repro.campaign.stages import simulate_cell

    config = config or DEFAULT_CAMPAIGN
    key = _campaign_key(config)
    if use_cache and key in _HISTORY_MEMO:
        return _HISTORY_MEMO[key]
    history, produced = simulate_cell(
        config,
        get_store() if use_cache else None,
        jobs=jobs,
        checkpoint_every=CHECKPOINT_EVERY,
    )
    if not use_cache:
        return history
    _log.info(
        "campaign %s %s",
        "simulated" if produced else "loaded",
        kv(key=key, runs=len(history)),
    )
    _HISTORY_MEMO[key] = history
    return history


def default_f2pm_config() -> F2PMConfig:
    """The F2PM configuration behind Tables II-IV and Fig. 5."""
    return F2PMConfig(
        aggregation=AggregationConfig(window_seconds=EXPERIMENT_WINDOW),
        smae_threshold_frac=0.10,
        validation_fraction=0.3,
        seed=0,
    )


_F2PM_MEMO: dict[tuple[str, str], F2PMResult] = {}


def run_f2pm_cached(history: DataHistory | None = None, jobs: int = 1) -> F2PMResult:
    """Run F2PM once per process per (history content, config) pair
    (Tables II-IV and Fig. 5 all read the same execution, as in the
    paper).

    The memo is keyed by the history's content fingerprint plus the
    F2PM config fingerprint — never by ``id()``, which a garbage
    collector could alias to a different campaign occupying the same
    address. ``jobs`` parallelizes the model grid on a memo miss; error
    metrics are worker-count-invariant, so the memo stays valid either
    way.
    """
    if history is None:
        history = default_history(jobs=jobs)
    config = default_f2pm_config()
    key = (history.content_fingerprint(), fingerprint("f2pm-config", config))
    if key not in _F2PM_MEMO:
        get_metrics().inc("experiments.f2pm_memo_misses_total")
        _F2PM_MEMO[key] = F2PM(config).run(history, jobs=jobs)
    else:
        get_metrics().inc("experiments.f2pm_memo_hits_total")
    return _F2PM_MEMO[key]


# -- manifests ---------------------------------------------------------------------


def driver_manifest(
    driver: str,
    f2pm_result: "F2PMResult | None" = None,
    *,
    extra: "dict | None" = None,
) -> dict:
    """Manifest for one experiment driver run.

    Wraps :func:`repro.obs.build_manifest` with the experiment naming
    convention: the F2PM execution behind the artefact (config, seed,
    trace, per-model reports) when the driver has one, the current
    metrics snapshot, and any driver-specific payload in *extra*.
    """
    kwargs: dict = {"metrics": get_metrics().snapshot(), "extra": extra}
    if f2pm_result is not None:
        kwargs["config"] = f2pm_result.config
        kwargs["seeds"] = {"f2pm": f2pm_result.config.seed}
        kwargs["trace"] = f2pm_result.trace
        kwargs["reports"] = [
            {
                "name": r.name,
                "feature_set": r.feature_set,
                "s_mae": r.s_mae,
                "mae": r.mae,
                "train_time": r.train_time,
                "validation_time": r.validation_time,
            }
            for r in f2pm_result.reports
        ]
    return build_manifest(f"experiment.{driver}", **kwargs)


def write_driver_manifest(
    driver: str, manifest: dict, directory: "Path | str | None" = None
) -> Path:
    """Persist a driver manifest next to the campaign outputs.

    Defaults to the experiment cache directory (where the shared
    campaign artifact lives), so every artefact's provenance sits beside
    the data it was derived from.
    """
    target = Path(directory) if directory is not None else cache_dir()
    path = write_manifest(manifest, target / f"{driver}.manifest.json")
    _log.info("manifest written %s", kv(driver=driver, path=str(path)))
    return path
