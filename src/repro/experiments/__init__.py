"""Experiment drivers — one per table/figure of the paper's Sec. IV.

Every driver exposes ``run(history=None, verbose=True)`` returning a
structured result, and can be executed as a script::

    python -m repro.experiments.fig4_lasso_path

The default monitoring campaign is simulated once and cached on disk
(:mod:`repro.experiments.common`), so repeated experiment runs are fast
and share identical data — like the paper's one-week trace feeding all
its tables.

=========  ===================================================
driver     paper artefact
=========  ===================================================
fig3_*     Fig. 3 — response-time / inter-generation-time correlation
fig4_*     Fig. 4 — #parameters selected by Lasso vs lambda
table1_*   Table I — weights at the strongest selection point
table2_*   Table II — S-MAE, all vs selected parameters
table3_*   Table III — training time
table4_*   Table IV — validation time
fig5_*     Fig. 5 — predicted vs real RTTF per method
runall     all of the above, sharing one F2PM execution
=========  ===================================================
"""

from repro.experiments.common import (
    DEFAULT_CAMPAIGN,
    default_history,
    default_f2pm_config,
    run_f2pm_cached,
)

__all__ = [
    "DEFAULT_CAMPAIGN",
    "default_history",
    "default_f2pm_config",
    "run_f2pm_cached",
]
