"""Table I — features and weights at the strongest selection point.

The paper reports the six features surviving at lambda = 10^9 with their
beta weights: exclusively memory/swap quantities and slopes ("slopes play
an important role ... memory is a predominant factor"). Absolute weights
differ between testbeds; the reproducible claim is *which kinds* of
features survive maximal shrinkage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import AggregationConfig, DataHistory, LassoFeatureSelector, aggregate_history
from repro.core.feature_selection import SelectionResult
from repro.experiments.common import EXPERIMENT_WINDOW, default_history
from repro.utils.tables import render_table

#: Feature-name fragments counting as "memory-related" for the shape check.
MEMORY_MARKERS = ("mem_", "swap_")


@dataclass
class Table1Result:
    selection: SelectionResult

    @property
    def memory_dominated(self) -> bool:
        """True when >= half of the surviving features are memory/swap."""
        selected = self.selection.selected
        n_mem = sum(
            1 for name in selected if any(m in name for m in MEMORY_MARKERS)
        )
        return n_mem * 2 >= len(selected)

    def table(self) -> str:
        rows = [[name, f"{w:+.15f}"] for name, w in self.selection.weight_table()]
        return render_table(
            ("parameter", "weight"),
            rows,
            title=f"Table I — weights at lambda = {self.selection.lam:.0e}",
        )

    def manifest(self) -> dict:
        """Provenance manifest for the Table I artefact."""
        from repro.experiments.common import driver_manifest

        return driver_manifest(
            "table1_weights",
            extra={
                "lambda": self.selection.lam,
                "weights": {
                    name: w for name, w in self.selection.weight_table()
                },
                "memory_dominated": self.memory_dominated,
            },
        )


def run(
    history: DataHistory | None = None,
    verbose: bool = True,
    min_features: int = 6,
) -> Table1Result:
    if history is None:
        history = default_history()
    dataset = aggregate_history(
        history, AggregationConfig(window_seconds=EXPERIMENT_WINDOW)
    )
    selector = LassoFeatureSelector().fit(dataset)
    selection = selector.strongest_with_at_least(min_features)
    result = Table1Result(selection=selection)
    if verbose:
        print(result.table())
        print(f"memory/swap-dominated selection: {result.memory_dominated}")
    return result


if __name__ == "__main__":
    run()
