"""Fig. 3 — response time vs datapoint inter-generation time.

The paper instruments the emulated browsers (only for this study) to get
ground-truth response times, then shows that a linear model over the FMC
datapoint inter-generation time tracks them: both grow as memory leaks
and unterminated threads accumulate.

Shape to reproduce: Generation Time and Response Time both increase
toward the failure point, and the Correlated RT curve (linear model
evaluated on generation time alone) follows the measured RT closely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import DataHistory, ResponseTimeCorrelator
from repro.core.correlation import CorrelationSeries
from repro.experiments.common import default_history
from repro.utils.tables import render_table


@dataclass
class Fig3Result:
    """Correlation outcome for one monitored run."""

    series: CorrelationSeries
    slope: float
    intercept: float

    @property
    def r2(self) -> float:
        return self.series.r2

    @property
    def mae(self) -> float:
        return self.series.mae

    def table(self, n_rows: int = 12) -> str:
        """Downsampled series table (the plotted curves, as text)."""
        s = self.series
        idx = np.linspace(0, s.time.size - 1, n_rows).astype(int)
        rows = [
            [
                float(s.time[i]),
                float(s.generation_time[i]),
                float(s.response_time[i]),
                float(s.correlated_rt[i]),
            ]
            for i in idx
        ]
        return render_table(
            ("exec time (s)", "generation time (s)", "response time (s)", "correlated RT (s)"),
            rows,
            title="Fig. 3 — Response Time Correlation",
            float_fmt=".3f",
        )

    def manifest(self) -> dict:
        """Provenance manifest for the Fig. 3 artefact."""
        from repro.experiments.common import driver_manifest

        return driver_manifest(
            "fig3_rt_correlation",
            extra={
                "slope": self.slope,
                "intercept": self.intercept,
                "r2": self.r2,
                "mae": self.mae,
                "n_points": int(self.series.time.size),
            },
        )


def run(history: DataHistory | None = None, verbose: bool = True) -> Fig3Result:
    """Fit the correlation on the campaign's first run and report it."""
    if history is None:
        history = default_history()
    run_record = history[0]
    correlator = ResponseTimeCorrelator()
    series = correlator.fit_run(run_record)
    result = Fig3Result(
        series=series, slope=correlator.slope, intercept=correlator.intercept
    )
    if verbose:
        print(result.table())
        print(
            f"linear model: RT = {result.slope:.3f} * gen_time "
            f"{result.intercept:+.3f}   (R^2 = {result.r2:.3f}, "
            f"MAE = {result.mae:.3f}s)"
        )
    return result


if __name__ == "__main__":
    run()
