"""Run every experiment in paper order, sharing one campaign + F2PM run.

Usage::

    python -m repro.experiments.runall

Besides the tables/figures, a full reproduction emits one consolidated
telemetry bundle — a manifest with the span tree of the whole session
(one child per driver), the final metrics snapshot and the per-driver
manifests — written next to the cached campaign (``runall.telemetry.json``
under the experiment cache directory, see
:func:`repro.experiments.common.cache_dir`).
"""

from __future__ import annotations

from pathlib import Path

from repro.campaign import CampaignManager
from repro.experiments import common
from repro.experiments import (
    ext_generalization,
    ext_incremental_curve,
    ext_mix_comparison,
    ext_rejuvenation_sweep,
    fig3_rt_correlation,
    fig4_lasso_path,
    fig5_fitted_models,
    table1_weights,
    table2_smae,
    table3_training_time,
    table4_validation_time,
)
from repro.obs import build_manifest, get_metrics, get_tracer, span, write_manifest


def main(telemetry_dir: "Path | str | None" = None, jobs: int = 1) -> Path:
    """Run every driver; returns the telemetry-bundle path.

    ``jobs`` parallelizes the shared campaign, the shared F2PM model
    grid, and the extension drivers' own simulations; every table and
    figure is identical for any worker count.
    """
    tracer = get_tracer()
    metrics = get_metrics()
    driver_manifests: dict[str, dict] = {}

    root = span("experiments.runall", jobs=jobs)
    with root:
        # The shared campaign as a declarative spec: print the
        # spec-vs-store diff, execute only the missing frontier, then let
        # `default_history` memoize the (now published) artifact so every
        # driver below shares one object.
        manager = CampaignManager(common.paper_spec(), common.get_store())
        print(manager.plan().summary())
        with span("campaign"):
            manager.run(jobs=jobs)
            history = common.default_history(jobs=jobs)
        print(
            f"campaign: {len(history)} runs, {history.n_datapoints} datapoints, "
            f"mean run length {history.mean_run_length:.0f}s\n"
        )
        # Prewarm the shared F2PM execution with the requested
        # parallelism; the table/figure drivers below hit the memo.
        common.run_f2pm_cached(history, jobs=jobs)
        for driver in (
            fig3_rt_correlation,
            fig4_lasso_path,
            table1_weights,
            table2_smae,
            table3_training_time,
            table4_validation_time,
            fig5_fitted_models,
            ext_rejuvenation_sweep,
        ):
            name = driver.__name__.rsplit(".", 1)[-1]
            print(f"==== {name} ====")
            with span(name):
                result = driver.run(history)
            if hasattr(result, "manifest"):
                driver_manifests[name] = result.manifest()
            print()

        # These extensions own their simulations (campaign config, not history).
        print("==== ext_incremental_curve ====")
        with span("ext_incremental_curve"):
            ext_incremental_curve.run(batch_runs=4, max_runs=12, jobs=jobs)
        print()
        print("==== ext_mix_comparison ====")
        with span("ext_mix_comparison"):
            ext_mix_comparison.run(n_runs=6, jobs=jobs, use_cache=True)
        print()
        print("==== ext_generalization ====")
        with span("ext_generalization"):
            ext_generalization.run(n_runs=4, jobs=jobs, use_cache=True)
        print()

    bundle = build_manifest(
        "experiments.runall",
        trace=root if tracer.enabled else None,
        metrics=metrics.snapshot(),
        extra={"drivers": driver_manifests},
    )
    target = Path(telemetry_dir) if telemetry_dir is not None else common.cache_dir()
    path = write_manifest(bundle, target / "runall.telemetry.json")
    print(f"telemetry bundle -> {path}")
    return path


if __name__ == "__main__":
    import argparse

    from repro.parallel import resolve_jobs

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for campaigns and model grids (default: all cores)",
    )
    main(jobs=resolve_jobs(parser.parse_args().jobs))
