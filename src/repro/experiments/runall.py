"""Run every experiment in paper order, sharing one campaign + F2PM run.

Usage::

    python -m repro.experiments.runall
"""

from __future__ import annotations

from repro.experiments import common
from repro.experiments import (
    ext_incremental_curve,
    ext_mix_comparison,
    ext_rejuvenation_sweep,
    fig3_rt_correlation,
    fig4_lasso_path,
    fig5_fitted_models,
    table1_weights,
    table2_smae,
    table3_training_time,
    table4_validation_time,
)


def main() -> None:
    history = common.default_history()
    print(
        f"campaign: {len(history)} runs, {history.n_datapoints} datapoints, "
        f"mean run length {history.mean_run_length:.0f}s\n"
    )
    for driver in (
        fig3_rt_correlation,
        fig4_lasso_path,
        table1_weights,
        table2_smae,
        table3_training_time,
        table4_validation_time,
        fig5_fitted_models,
        ext_rejuvenation_sweep,
    ):
        print(f"==== {driver.__name__.rsplit('.', 1)[-1]} ====")
        driver.run(history)
        print()

    # These extensions own their simulations (campaign config, not history).
    print("==== ext_incremental_curve ====")
    ext_incremental_curve.run(batch_runs=4, max_runs=12)
    print()
    print("==== ext_mix_comparison ====")
    ext_mix_comparison.run(n_runs=6)
    print()


if __name__ == "__main__":
    main()
