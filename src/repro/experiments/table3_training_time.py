"""Table III — model training time.

Paper shape: the SVM variants train orders of magnitude slower than the
linear/tree methods (SMO iterations over a dense kernel matrix vs a
closed-form solve or a greedy tree build), and the Lasso-selected
training sets train uniformly faster than the all-parameters sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import DataHistory, F2PMResult
from repro.experiments.common import default_history, run_f2pm_cached


@dataclass
class Table3Result:
    result: F2PMResult

    def train_time(self, name: str, feature_set: str = "all") -> float:
        return self.result.report(name, feature_set).train_time

    @property
    def svm_slowest(self) -> bool:
        """Paper claim: SVR training dominates every other method's."""
        svm = self.train_time("svm")
        others = max(
            self.train_time(n) for n in ("linear", "m5p", "reptree")
        )
        return svm > others

    @property
    def selection_speeds_up_training(self) -> bool:
        """Paper claim: fewer features -> faster training, per method."""
        names = ("linear", "m5p", "reptree", "svm", "svm2")
        return all(
            self.train_time(n, "selected") <= self.train_time(n, "all")
            for n in names
        )

    def table(self) -> str:
        return self.result.training_time_table()

    def manifest(self) -> dict:
        """Provenance manifest for the Table III artefact."""
        from repro.experiments.common import driver_manifest

        return driver_manifest("table3_training_time", self.result)


def run(history: DataHistory | None = None, verbose: bool = True) -> Table3Result:
    if history is None:
        history = default_history()
    result = Table3Result(result=run_f2pm_cached(history))
    if verbose:
        print(result.table())
    return result


if __name__ == "__main__":
    run()
