"""Extension experiment — cross-scenario generalization matrix.

The paper trains and validates on a single failure scenario
(request-coupled memory/thread anomalies under the shopping mix), so it
cannot say whether an F2PM model *transfers*: does a predictor trained
on memory-leak aging still anticipate failures driven by lock
contention, connection-pool depletion, or a different machine sizing?
The related work (CHAOS, the creep-failure study) shows aging signatures
differ sharply across fault families — which makes transfer the
interesting question.

This driver answers it empirically. For every scenario in a subset of
the catalog (:mod:`repro.scenarios`) it collects a campaign, trains the
best-by-S-MAE model, then scores every (train scenario A, test scenario
B) pair: A's model predicts B's RTTF targets, scored with B's own 10%
S-MAE threshold (each scenario has its own failure horizon, so each
column uses its own tolerance). The diagonal is in-scenario accuracy;
off-diagonal minus diagonal is the *generalization gap*.

Alongside the matrix, a Lasso selection per scenario reports which of
the aggregated features survive shrinkage in each family, and the
carryover table counts, per base feature, how many scenarios select it
— separating universal aging signals (e.g. ``gen_time``) from
family-specific ones (swap for memory leaks, nothing memory-shaped for
lock contention).

Everything rides the campaign layer: the scenarios are one ``scenario``
axis of a :class:`~repro.campaign.CampaignSpec`, so cells are
content-addressed, cached per stage, and shared with any other spec
that resolves to the same configs. The cross-scoring report itself
publishes as a ``report_<fp16>.json`` artifact keyed by the cell
fingerprints + analysis parameters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace

from repro.campaign import CampaignManager, CampaignSpec
from repro.core.evaluation import resolve_smae_threshold
from repro.core.feature_selection import LassoFeatureSelector
from repro.experiments.common import (
    DEFAULT_CAMPAIGN,
    EXPERIMENT_WINDOW,
    driver_manifest,
    get_store,
    write_driver_manifest,
)
from repro.ml.metrics import soft_mean_absolute_error
from repro.store.keys import SHORT_DIGEST_LEN, fingerprint
from repro.utils.tables import render_table

#: Default scenario subset: the paper's baseline plus three anomaly
#: families with disjoint signatures (pure RT degradation, pool
#: depletion, time-based memory storms on a smaller VM).
GENERALIZATION_SCENARIOS: tuple[str, ...] = (
    "baseline-shopping",
    "lock-contention",
    "conn-pool-exhaustion",
    "memory-leak-storm",
)

#: Feature-selection floor: the largest lambda keeping at least this
#: many features (the paper's Table I operating point kept six).
MIN_SELECTED_FEATURES = 4


@dataclass
class GeneralizationResult:
    """The full cross-scenario matrix plus per-scenario diagnostics."""

    scenarios: tuple[str, ...]
    #: ``matrix[A][B]`` = S-MAE of A's model scored on B's data, using
    #: B's own 10% threshold.
    matrix: dict[str, dict[str, float]]
    thresholds: dict[str, float]
    mean_ttf: dict[str, float]
    best_models: dict[str, str]
    selected_features: dict[str, tuple[str, ...]]
    feature_carryover: dict[str, int]
    report_name: str

    def gap(self, train: str, test: str) -> float:
        """Generalization gap: cross-scenario S-MAE minus the test
        scenario's own in-scenario S-MAE."""
        return self.matrix[train][test] - self.matrix[test][test]

    def table(self) -> str:
        rows = [
            [a, self.best_models[a]]
            + [self.matrix[a][b] for b in self.scenarios]
            for a in self.scenarios
        ]
        return render_table(
            ("train \\ test", "model", *self.scenarios),
            rows,
            title="Cross-scenario S-MAE (s); row trains, column tests",
            float_fmt=".1f",
        )

    def carryover_table(self) -> str:
        rows = sorted(
            self.feature_carryover.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return render_table(
            ("feature", "scenarios selecting it"),
            [[name, float(count)] for name, count in rows],
            title=f"Lasso carryover across {len(self.scenarios)} scenarios",
            float_fmt=".0f",
        )


def generalization_spec(
    campaign=None,
    n_runs: int = 8,
    scenarios: tuple[str, ...] = GENERALIZATION_SCENARIOS,
) -> CampaignSpec:
    """The matrix's data-collection side as a declarative spec: one
    ``scenario`` axis, staged through training (the cross-scoring is
    this driver's own synthesis on top of the cached cell artifacts)."""
    if campaign is None:
        campaign = DEFAULT_CAMPAIGN
    if len(scenarios) < 2:
        raise ValueError(
            f"need at least 2 scenarios for a matrix, got {list(scenarios)}"
        )
    return CampaignSpec(
        name="ext-generalization",
        base=replace(campaign, n_runs=n_runs),
        axes={"scenario": tuple(scenarios)},
        stages=("simulate", "aggregate", "train"),
        window_seconds=EXPERIMENT_WINDOW,
        models=("m5p", "reptree"),
        train_seed=0,
    )


def _base_feature(name: str) -> str:
    """Collapse an aggregated column to its base feature (slope columns
    count toward the feature they differentiate)."""
    return name[: -len("_slope")] if name.endswith("_slope") else name


def run(
    campaign=None,
    verbose: bool = True,
    n_runs: int = 8,
    jobs: int = 1,
    use_cache: bool = True,
    scenarios: tuple[str, ...] = GENERALIZATION_SCENARIOS,
) -> GeneralizationResult:
    """Collect/load every scenario's campaign, then cross-score all pairs."""
    spec = generalization_spec(campaign, n_runs=n_runs, scenarios=scenarios)
    store = get_store() if use_cache else None
    campaign_result = CampaignManager(spec, store).run(jobs=jobs)

    histories: dict[str, object] = {}
    datasets: dict[str, object] = {}
    envelopes: dict[str, object] = {}
    cell_fps: dict[str, str] = {}
    for outcome in campaign_result.outcomes:
        name = dict(outcome.cell.params)["scenario"]
        histories[name] = outcome.results["simulate"]
        datasets[name] = outcome.results["aggregate"]
        envelopes[name] = outcome.results["train"]
        cell_fps[name] = outcome.cell.fingerprint
    missing = [s for s in scenarios if s not in envelopes]
    if missing:
        raise RuntimeError(f"campaign produced no outcome for {missing}")

    # Per-column tolerance: each scenario fails on its own horizon, so
    # its 10% S-MAE threshold comes from its own mean run length.
    thresholds = {
        b: resolve_smae_threshold(None, 0.10, histories[b].mean_run_length)
        for b in scenarios
    }
    matrix: dict[str, dict[str, float]] = {}
    for a in scenarios:
        env = envelopes[a]
        row: dict[str, float] = {}
        for b in scenarios:
            ds = datasets[b]
            if env.feature_names is not None and tuple(
                env.feature_names
            ) != tuple(ds.feature_names):
                raise RuntimeError(
                    f"feature schema mismatch between {a} and {b}"
                )
            row[b] = soft_mean_absolute_error(
                ds.y, env.model.predict(ds.X), thresholds[b]
            )
        matrix[a] = row

    # Which features carry across families: Lasso path per scenario at
    # the paper's operating point (max shrinkage, floor on set size).
    selected: dict[str, tuple[str, ...]] = {}
    for s in scenarios:
        selector = LassoFeatureSelector().fit(datasets[s])
        selected[s] = selector.strongest_with_at_least(
            MIN_SELECTED_FEATURES
        ).selected
    carryover: dict[str, int] = {}
    for s in scenarios:
        for base in {_base_feature(n) for n in selected[s]}:
            carryover[base] = carryover.get(base, 0) + 1

    mean_ttf = {s: float(histories[s].mean_run_length) for s in scenarios}
    best_models = {
        s: str(envelopes[s].metadata.get("model", "?")) for s in scenarios
    }
    doc = {
        "schema": "f2pm.generalization-report/1",
        "scenarios": list(scenarios),
        "n_runs": spec.base.n_runs,
        "window_seconds": spec.window_seconds,
        "models": list(spec.models),
        "train_seed": spec.train_seed,
        "cell_fingerprints": cell_fps,
        "mean_ttf": mean_ttf,
        "smae_thresholds": thresholds,
        "best_models": best_models,
        "matrix": matrix,
        "generalization_gap": {
            a: {b: matrix[a][b] - matrix[b][b] for b in scenarios}
            for a in scenarios
        },
        "selected_features": {s: list(v) for s, v in selected.items()},
        "feature_carryover": carryover,
    }
    # Publish the synthesis as a first-class report artifact, keyed by
    # exactly its inputs: the cell fingerprints plus analysis params.
    report_fp = fingerprint(
        "campaign-report",
        {
            "generalization": sorted(cell_fps.items()),
            "window_seconds": spec.window_seconds,
            "models": spec.models,
            "train_seed": spec.train_seed,
            "min_selected": MIN_SELECTED_FEATURES,
        },
    )
    report_name = f"report_{report_fp[:SHORT_DIGEST_LEN]}.json"
    if store is not None:
        store.get_or_produce(
            report_name,
            lambda: doc,
            save=lambda d, path: path.write_text(
                json.dumps(d, indent=2, sort_keys=True) + "\n"
            ),
            load=lambda path: json.loads(path.read_text()),
            kind="campaign-report",
            fingerprint=report_fp,
        )

    result = GeneralizationResult(
        scenarios=tuple(scenarios),
        matrix=matrix,
        thresholds=thresholds,
        mean_ttf=mean_ttf,
        best_models=best_models,
        selected_features=selected,
        feature_carryover=carryover,
        report_name=report_name,
    )
    if verbose:
        print(result.table())
        print()
        print(result.carryover_table())
        if store is not None:
            print(f"\nreport artifact: {report_name}")
    if use_cache:
        write_driver_manifest(
            "ext_generalization",
            driver_manifest(
                "ext_generalization",
                extra={"report": report_name, "scenarios": list(scenarios)},
            ),
        )
    return result


if __name__ == "__main__":
    import argparse

    from repro.parallel import resolve_jobs

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs", type=int, default=8, metavar="N")
    parser.add_argument("--jobs", type=int, default=None, metavar="N")
    parser.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="NAME",
        help="scenario to include (repeatable; default: the standard four)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="skip the artifact store"
    )
    args = parser.parse_args()
    run(
        n_runs=args.runs,
        jobs=resolve_jobs(args.jobs),
        use_cache=not args.no_cache,
        scenarios=tuple(args.scenarios) if args.scenarios else GENERALIZATION_SCENARIOS,
    )
