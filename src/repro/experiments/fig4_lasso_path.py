"""Fig. 4 — number of parameters selected by Lasso vs lambda.

The paper sweeps lambda over ten decades (10^0 .. 10^9) and counts the
non-zero weights of the Eq. (2) solution: the curve is non-increasing,
starting near the full parameter count (~30: base features + slopes +
gen_time) and ending with a handful of high-interest features.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import AggregationConfig, DataHistory, LassoFeatureSelector, aggregate_history
from repro.experiments.common import EXPERIMENT_WINDOW, default_history
from repro.utils.tables import render_table


@dataclass
class Fig4Result:
    """The selection-count series over the lambda grid."""

    lambdas: np.ndarray
    counts: np.ndarray
    selector: LassoFeatureSelector

    def table(self) -> str:
        rows = [
            [f"1e{int(round(np.log10(lam)))}", int(cnt)]
            for lam, cnt in zip(self.lambdas, self.counts)
        ]
        return render_table(
            ("lambda", "selected parameters"),
            rows,
            title="Fig. 4 — Parameters selected by Lasso",
        )

    def manifest(self) -> dict:
        """Provenance manifest for the Fig. 4 artefact."""
        from repro.experiments.common import driver_manifest

        return driver_manifest(
            "fig4_lasso_path",
            extra={
                "lambdas": [float(lam) for lam in self.lambdas],
                "counts": [int(c) for c in self.counts],
            },
        )


def run(history: DataHistory | None = None, verbose: bool = True) -> Fig4Result:
    if history is None:
        history = default_history()
    dataset = aggregate_history(
        history, AggregationConfig(window_seconds=EXPERIMENT_WINDOW)
    )
    selector = LassoFeatureSelector().fit(dataset)
    pairs = selector.selection_counts()
    result = Fig4Result(
        lambdas=np.array([lam for lam, _ in pairs]),
        counts=np.array([cnt for _, cnt in pairs]),
        selector=selector,
    )
    if verbose:
        print(result.table())
    return result


if __name__ == "__main__":
    run()
