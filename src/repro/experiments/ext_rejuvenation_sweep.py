"""Extension experiment — proactive-rejuvenation margin sweep.

Not a paper artefact: this closes the loop the paper motivates but never
evaluates. For a range of RTTF margins, a predictive policy built on the
best F2PM model manages the testbed over a long horizon; the sweep shows
the availability trade-off:

- margin too small -> the model's prediction error (S-MAE) exceeds the
  margin, restarts fire too late, crashes slip through;
- margin too large -> restarts fire needlessly early, wasting uptime;
- margins around the S-MAE tolerance maximize availability — precisely
  why the paper defines S-MAE relative to the rejuvenation lead time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import AggregationConfig, DataHistory, F2PM, F2PMConfig
from repro.experiments.common import DEFAULT_CAMPAIGN, EXPERIMENT_WINDOW, default_history
from repro.rejuvenation import (
    ManagedSystem,
    ManagedSystemConfig,
    NoRejuvenation,
    PredictiveRejuvenation,
    summarize,
)
from repro.rejuvenation.metrics import AvailabilityReport
from repro.utils.tables import render_table

#: Margins expressed as multiples of the model's S-MAE tolerance.
MARGIN_FACTORS = (0.25, 0.5, 1.0, 2.0, 4.0)


@dataclass
class RejuvenationSweepResult:
    baseline: AvailabilityReport
    by_margin: dict[float, AvailabilityReport]
    smae_threshold: float

    def table(self) -> str:
        rows = [["crash-only", *self.baseline.row()[1:]]]
        for factor, report in sorted(self.by_margin.items()):
            rows.append([f"margin {factor:.2f}x S-MAE", *report.row()[1:]])
        return render_table(
            ("policy", *AvailabilityReport.HEADERS[1:]),
            rows,
            title="Proactive rejuvenation: availability vs RTTF margin",
            float_fmt=".4f",
        )

    @property
    def best_factor(self) -> float:
        return max(self.by_margin, key=lambda f: self.by_margin[f].availability)


def run(
    history: DataHistory | None = None,
    verbose: bool = True,
    horizon_seconds: float = 40_000.0,
    campaign=None,
) -> RejuvenationSweepResult:
    """Sweep predictive margins over a managed horizon.

    ``campaign`` must describe the same system *history* was collected on
    (the model transfers only within one machine configuration); defaults
    to the shared experiment campaign.
    """
    if history is None:
        history = default_history()
    f2pm = F2PM(
        F2PMConfig(
            aggregation=AggregationConfig(window_seconds=EXPERIMENT_WINDOW),
            models=("m5p", "reptree"),
            lasso_predictor_lambdas=(),
            seed=0,
        )
    ).run(history)
    best = f2pm.best_by_smae("all")
    model = f2pm.models[(best.name, "all")]

    managed_cfg = ManagedSystemConfig(
        horizon_seconds=horizon_seconds,
        rejuvenation_downtime=30.0,
        crash_downtime=300.0,
        window_seconds=EXPERIMENT_WINDOW,
    )
    if campaign is None:
        campaign = DEFAULT_CAMPAIGN

    baseline = summarize(
        ManagedSystem(campaign, managed_cfg, NoRejuvenation()).run(seed=101)
    )
    by_margin: dict[float, AvailabilityReport] = {}
    for factor in MARGIN_FACTORS:
        policy = PredictiveRejuvenation(
            model, rttf_margin=factor * f2pm.smae_threshold, consecutive=2
        )
        log = ManagedSystem(campaign, managed_cfg, policy).run(seed=101)
        by_margin[factor] = summarize(log)

    result = RejuvenationSweepResult(
        baseline=baseline, by_margin=by_margin, smae_threshold=f2pm.smae_threshold
    )
    if verbose:
        print(result.table())
        print(
            f"\nbest margin: {result.best_factor:.2f}x the S-MAE tolerance "
            f"({f2pm.smae_threshold:.0f}s); model: {best.name}"
        )
    return result


if __name__ == "__main__":
    run()
